#!/usr/bin/env sh
# Gate: the query-path benchmarks must not regress against checked-in
# baselines.
#
# Runs the `query` criterion bench (point_query, bursty_event_query,
# the fused `query/` group, and the SoA `soa/` group — the kernels the
# fused-query and struct-of-arrays PRs optimized), takes the best of
# BED_BENCH_RUNS runs per benchmark to damp scheduler noise, and fails
# if any benchmark is more than BED_BENCH_TOLERANCE percent slower than
# its entry in results/baselines/query_bench.tsv.
#
# Best-of-N min is the right statistic here: these are CPU-bound
# microbenches, so the minimum approaches the true cost while the mean
# absorbs preemption spikes. A genuine regression shifts the minimum.
# On a contended 1-core box, best-of-3 still swings ~±25% (each "run"
# is one 1 s averaged pass, so a preemption burst poisons the whole
# sample); best-of-5 was measured stable to ±3%. Hence the default.
#
# Usage:
#   scripts/check_bench_regression.sh            # compare against baselines
#   BED_BENCH_UPDATE=1 scripts/check_bench_regression.sh  # regenerate them
#
# Environment:
#   BED_BENCH_RUNS       bench repetitions, best-of (default 5)
#   BED_BENCH_TOLERANCE  allowed slowdown in percent (default 15)
#   BED_BENCH_UPDATE     1 = rewrite the baseline file and exit
set -eu

cd "$(dirname "$0")/.."

runs=${BED_BENCH_RUNS:-5}
tol=${BED_BENCH_TOLERANCE:-15}
baseline=results/baselines/query_bench.tsv
raw=$(mktemp)
current=$(mktemp)
trap 'rm -f "$raw" "$current"' EXIT

cargo bench -p bed-bench --bench query --no-run

i=1
while [ "$i" -le "$runs" ]; do
    echo "=== bench run $i/$runs ==="
    cargo bench -p bed-bench --bench query >> "$raw"
    i=$((i + 1))
done

# Parse `name  time: X.XX unit  (N iters)` lines into `name<TAB>ns`,
# keeping the minimum across runs for each benchmark.
awk '
    / time: / {
        name = $1
        for (j = 2; j <= NF; j++) {
            if ($j == "time:") { val = $(j + 1) + 0; unit = $(j + 2); break }
        }
        sub(/[[:space:]]*\(.*/, "", unit)
        if (unit == "ns")      ns = val
        else if (unit == "µs" || unit == "us") ns = val * 1e3
        else if (unit == "ms") ns = val * 1e6
        else if (unit == "s")  ns = val * 1e9
        else { print "unknown time unit: " unit > "/dev/stderr"; exit 1 }
        if (!(name in best) || ns < best[name]) best[name] = ns
    }
    END {
        if (length(best) == 0) { print "no benchmark lines parsed" > "/dev/stderr"; exit 1 }
        for (name in best) printf "%s\t%.2f\n", name, best[name]
    }
' "$raw" | sort > "$current"

if [ "${BED_BENCH_UPDATE:-0}" = 1 ]; then
    mkdir -p results/baselines
    {
        echo "# Best-of-$runs per-iteration times (ns) for \`cargo bench -p bed-bench --bench query\`."
        echo "# Regenerate with: BED_BENCH_UPDATE=1 scripts/check_bench_regression.sh"
        cat "$current"
    } > "$baseline"
    echo "wrote $(grep -cv '^#' "$baseline") baselines to $baseline"
    exit 0
fi

[ -f "$baseline" ] || { echo "missing $baseline — run with BED_BENCH_UPDATE=1 first"; exit 1; }

awk -F '\t' -v tol="$tol" '
    FNR == NR { if ($0 !~ /^#/) base[$1] = $2 + 0; next }
    {
        seen[$1] = 1
        if (!($1 in base)) { printf "NEW      %-40s %10.2f ns (no baseline — regenerate)\n", $1, $2; new = 1; next }
        delta = ($2 - base[$1]) / base[$1] * 100
        status = delta > tol ? "REGRESS" : (delta < -tol ? "IMPROVE" : "ok")
        printf "%-8s %-40s %10.2f ns vs %10.2f ns  (%+.1f%%)\n", status, $1, $2, base[$1], delta
        if (delta > tol) fail = 1
        if (delta < -tol) improve = 1
    }
    END {
        for (name in base) if (!(name in seen)) { printf "MISSING  %-40s (in baseline, not in run)\n", name; fail = 1 }
        if (fail) { print "FAIL: benchmark regressed beyond " tol "% (or vanished)"; exit 1 }
        if (new) { print "FAIL: new benchmarks lack baselines — BED_BENCH_UPDATE=1 scripts/check_bench_regression.sh"; exit 1 }
        if (improve) print "note: >" tol "% improvement — consider refreshing baselines to tighten the gate"
        print "OK: all benchmarks within " tol "% of baseline"
    }
' "$baseline" "$current"
