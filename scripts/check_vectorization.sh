#!/usr/bin/env sh
# Guard: the SoA probe kernel must stay auto-vectorized.
#
# `PieceBank::probe3_rows` gathers selected piece parameters into
# fixed-width rows and evaluates them in fixed-trip mul/add/max loops
# precisely so the compiler lowers the evaluation to packed SIMD. That
# property is easy to lose silently — a bounds check or an early exit in
# the evaluation loop turns it back into scalar code with no test
# failure. This script re-emits the crate's release assembly, cuts out
# the probe3_rows body, and fails if no packed floating-point ops are
# found in it.
#
# Usage: scripts/check_vectorization.sh
set -eu

cd "$(dirname "$0")/.."

# Stale .s files from earlier builds would let the grep pass vacuously,
# and a fully cached build skips codegen and emits nothing — touch the
# crate root so cargo actually re-runs rustc.
rm -f target/release/deps/bed_pbe-*.s
touch crates/pbe/src/lib.rs
cargo rustc -p bed-pbe --release -- --emit asm

asm=$(ls target/release/deps/bed_pbe-*.s)
[ "$(echo "$asm" | wc -l)" -eq 1 ] || { echo "expected exactly one bed_pbe .s file, got: $asm"; exit 1; }

body=/tmp/probe3_rows.s
awk '/probe3_rows/ { f = 1 } f { print } f && /^\.Lfunc_end/ { exit }' "$asm" > "$body"
[ -s "$body" ] || { echo "FAIL: probe3_rows not found in $asm"; exit 1; }

# x86-64: SSE2/AVX packed doubles. aarch64: NEON vector fp (v-register
# operands). Either counts — the guard is "packed math exists", not a
# specific ISA.
packed=$(grep -cE '(^|[[:space:]])v?(mulpd|addpd|maxpd|fmadd[0-9]*pd)|fmul[[:space:]]+v|fadd[[:space:]]+v|fmax[[:space:]]+v' "$body" || true)
lines=$(wc -l < "$body")
echo "probe3_rows: $lines asm lines, $packed packed SIMD ops"
if [ "$packed" -lt 4 ]; then
    echo "FAIL: probe3_rows no longer vectorizes (found $packed packed ops, need >= 4)"
    echo "--- kernel body tail ---"
    tail -40 "$body"
    exit 1
fi
echo "OK: probe3_rows is vectorized"
