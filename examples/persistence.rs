//! Persistence walkthrough: build a detector, store it as a file, reload it
//! later (or on another machine) and keep querying — the "persistent" in
//! persistent burstiness estimation.
//!
//! Run with: `cargo run --release --example persistence`

use bed::stream::Codec;
use bed::workload::olympics::{self, OlympicsConfig};
use bed::{BurstDetector, BurstSpan, PbeVariant, QueryStrategy, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = olympics::generate(OlympicsConfig { total_elements: 100_000, seed: 2016 });

    // Phase 1 (the "archiver"): summarise the stream and store the summary.
    let mut det = BurstDetector::builder()
        .universe(data.universe)
        .variant(PbeVariant::pbe2(8.0))
        .accuracy(0.005, 0.02)
        .seed(7)
        .build()?;
    for el in data.stream.iter() {
        det.ingest(el.event, el.ts)?;
    }
    det.finalize();

    let path = std::env::temp_dir().join("rio-2016.bed");
    let bytes = det.to_bytes();
    std::fs::write(&path, &bytes)?;
    println!(
        "archived {} elements into {} ({} KB on disk, summary {} KB)",
        det.arrivals(),
        path.display(),
        bytes.len() / 1024,
        det.size_bytes() / 1024
    );

    // Phase 2 (the "historian", possibly months later): reload and query.
    let restored = BurstDetector::from_bytes(&std::fs::read(&path)?)?;
    let tau = BurstSpan::DAY_SECONDS;
    let day21 = Timestamp(21 * 86_400);
    println!("\nhistorian asks: what burst on day 21?");
    let (hits, stats) = restored.bursty_events_with(day21, 1_000.0, tau, QueryStrategy::Pruned)?;
    for h in &hits {
        println!("  {}  b̃ = {:.0}", h.event, h.burstiness);
    }
    println!("  ({} probes over a {}-event universe)", stats.point_queries, data.universe);

    // The restored detector answers identically to the original.
    assert_eq!(
        det.point_query(data.soccer, day21, tau),
        restored.point_query(data.soccer, day21, tau)
    );
    println!("\nrestored sketch answers are bit-identical to the original — done.");
    Ok(())
}
