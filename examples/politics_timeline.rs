//! Rebuilding the paper's Fig. 13 storyline: a burst timeline of
//! Democrat vs Republican events across a six-month campaign stream,
//! detected per day with the hierarchical bursty-event query.
//!
//! Run with: `cargo run --release --example politics_timeline`

use bed::workload::politics::{self, Party, PoliticsConfig, POLITICS_HORIZON_SECS};
use bed::{BurstDetector, BurstSpan, PbeVariant, QueryStrategy, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data =
        politics::generate(PoliticsConfig { total_elements: 200_000, skew: 1.1, seed: 1776 });
    println!("generated {} elements over {} events", data.stream.len(), data.universe);

    let mut detector = BurstDetector::builder()
        .universe(data.universe)
        .variant(PbeVariant::pbe2(8.0))
        .accuracy(0.005, 0.02)
        .seed(11)
        .build()?;
    for el in data.stream.iter() {
        detector.ingest(el.event, el.ts)?;
    }
    detector.finalize();

    let tau = BurstSpan::DAY_SECONDS;
    let theta = 15.0;
    let days = POLITICS_HORIZON_SECS / 86_400;

    println!("\nday  democrat   republican  (one █ per 200 units of summed burstiness)");
    for d in 1..days {
        let t = Timestamp(d * 86_400 + 43_200);
        let (hits, _) = detector.bursty_events_with(t, theta, tau, QueryStrategy::Pruned)?;
        let mut dem = 0.0f64;
        let mut rep = 0.0f64;
        for h in &hits {
            match data.party_of(h.event) {
                Party::Democrat => dem += h.burstiness,
                Party::Republican => rep += h.burstiness,
            }
        }
        if dem + rep < 200.0 {
            continue; // quiet day
        }
        let bar = |v: f64| "█".repeat((v / 200.0).min(40.0) as usize);
        let moment: String = data
            .national_moments
            .iter()
            .filter(|&&(md, _)| md == d)
            .map(|&(_, p)| format!("  << {p:?} moment"))
            .collect();
        println!("{d:>3}  D {dem:>8.0} {:<20}  R {rep:>8.0} {}{moment}", bar(dem), bar(rep));
    }
    Ok(())
}
