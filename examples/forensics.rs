//! Historical forensics: how close is the sketch to ground truth when you
//! go back in time?
//!
//! Mirrors the paper's motivating scenario — "understand how a city's
//! emergency network responded under an emergency event" — by replaying an
//! incident window and comparing the sketch's answers against the exact
//! baseline it would normally be too expensive to keep.
//!
//! Run with: `cargo run --release --example forensics`

use bed::stream::ExactBaseline;
use bed::{BurstDetector, BurstSpan, EventId, PbeVariant, Timestamp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Simulate a city feed: 32 channels (fire, police, transit, ...) with
    // Poisson chatter; a "fire breakout" cascades across three channels with
    // staggered onsets around hour 100.
    let mut rng = SmallRng::seed_from_u64(5);
    let mut els: Vec<(u32, u64)> = Vec::new();
    for hour in 0..240u64 {
        for ch in 0..32u32 {
            let mut rate = 2.0;
            if (100..106).contains(&hour) {
                match ch {
                    0 => rate += 60.0 * (hour - 99) as f64, // fire dept: sharp ramp
                    1 if hour >= 101 => rate += 80.0,       // police: delayed plateau
                    2 if hour >= 103 => rate += 40.0,       // transit: later still
                    _ => {}
                }
            }
            let count = rate as u64 + rng.gen_range(0..3);
            for _ in 0..count {
                els.push((ch, hour * 3_600 + rng.gen_range(0..3_600)));
            }
        }
    }
    els.sort_by_key(|&(_, t)| t);

    // Build both the exact baseline (what you normally can't afford) and
    // the sketch.
    let mut baseline = ExactBaseline::new();
    let mut detector = BurstDetector::builder()
        .universe(32)
        .variant(PbeVariant::pbe1(64))
        .accuracy(0.002, 0.02)
        .seed(3)
        .build()?;
    for &(e, t) in &els {
        baseline.ingest(EventId(e), Timestamp(t))?;
        detector.ingest(EventId(e), Timestamp(t))?;
    }
    detector.finalize();
    println!(
        "stream: {} elements | exact store: {} KB | sketch: {} KB\n",
        els.len(),
        baseline.size_bytes() / 1024,
        detector.size_bytes() / 1024
    );

    // Replay the incident hour by hour: which channels were accelerating?
    let tau = BurstSpan::new(3_600)?;
    println!("hour | channel: sketch b̃ (exact b) for the three responders");
    for hour in 99..108u64 {
        let t = Timestamp(hour * 3_600 + 3_599);
        let row: Vec<String> = (0..3u32)
            .map(|ch| {
                let est = detector.point_query(EventId(ch), t, tau);
                let truth = baseline.point_query(EventId(ch), t, tau);
                format!("ch{ch}: {est:>7.0} ({truth:>6})")
            })
            .collect();
        println!("{hour:>4} | {}", row.join("   "));
    }

    // Mean absolute error over many random historical probes.
    let mut err = 0.0;
    let probes = 1_000;
    for _ in 0..probes {
        let e = EventId(rng.gen_range(0..32));
        let t = Timestamp(rng.gen_range(0..240 * 3_600));
        err += (detector.point_query(e, t, tau) - baseline.point_query(e, t, tau) as f64).abs();
    }
    println!("\nmean |b̃ − b| over {probes} random historical probes: {:.1}", err / probes as f64);
    Ok(())
}
