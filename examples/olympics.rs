//! Historical burst analysis over a mixed stream: the Rio-2016-like
//! workload of the paper's experiments.
//!
//! Builds a CM-PBE-backed detector over ~200k synthetic tweets (864 events,
//! one month at second granularity), then travels back in time:
//!   * point queries on soccer around the "final",
//!   * a bursty-time query recovering the swimming week,
//!   * a bursty-event query for "what burst on day 21?".
//!
//! Run with: `cargo run --release --example olympics`

use bed::workload::olympics::{self, OlympicsConfig};
use bed::{BurstDetector, BurstSpan, PbeVariant, QueryStrategy, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = olympics::generate(OlympicsConfig { total_elements: 200_000, seed: 2016 });
    println!(
        "generated {} elements over {} events",
        data.stream.len(),
        data.stream.distinct_events().len()
    );

    let mut detector = BurstDetector::builder()
        .universe(data.universe)
        .variant(PbeVariant::pbe2(8.0))
        .accuracy(0.005, 0.02) // the paper's ε/δ
        .seed(7)
        .build()?;
    for el in data.stream.iter() {
        detector.ingest(el.event, el.ts)?;
    }
    detector.finalize();
    println!(
        "detector holds {} KB for a stream the exact baseline stores in {} KB\n",
        detector.size_bytes() / 1024,
        data.stream.len() * 16 / 1024
    );

    let tau = BurstSpan::DAY_SECONDS;
    let day = |d: u64| Timestamp(d * 86_400);

    // Was soccer bursty on the final's day? And the day after?
    for d in [19u64, 21, 23] {
        println!(
            "soccer burstiness on day {d}: {:>10.0}",
            detector.point_query(data.soccer, day(d), tau)
        );
    }

    // When was swimming hot? (bursty-time query)
    let horizon = Timestamp(olympics::OLYMPICS_HORIZON_SECS);
    let times = detector.bursty_times(data.swimming, 400.0, tau, horizon);
    if let (Some(first), Some(last)) = (times.first(), times.last()) {
        println!(
            "\nswimming bursty (θ=400) from day {:.1} to day {:.1}",
            first.0.ticks() as f64 / 86_400.0,
            last.0.ticks() as f64 / 86_400.0
        );
    }

    // What burst on day 21? (bursty-event query, pruned dyadic search)
    let (hits, stats) =
        detector.bursty_events_with(day(21), 2_000.0, tau, QueryStrategy::Pruned)?;
    println!(
        "\nbursty events on day 21 (θ=2000): {} hits using {} probes (vs {} events)",
        hits.len(),
        stats.point_queries,
        data.universe
    );
    for h in hits.iter().take(5) {
        let label = if h.event == data.soccer {
            "soccer"
        } else if h.event == data.swimming {
            "swimming"
        } else {
            "other"
        };
        println!("  {:>8}  b̃ = {:>10.0}  ({label})", h.event.to_string(), h.burstiness);
    }
    Ok(())
}
