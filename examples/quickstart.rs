//! Quickstart: summarise a single event stream with PBE-2 and ask
//! historical burstiness questions.
//!
//! Run with: `cargo run --release --example quickstart`

use bed::{BurstDetector, BurstSpan, EventId, PbeVariant, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A single "earthquake" event: quiet background chatter, then a sudden
    // cascade of mentions at minute 500, tapering off afterwards.
    let mut detector = BurstDetector::builder()
        .single_event()
        .variant(PbeVariant::pbe2(2.0)) // ≤ 2 mentions of pointwise error
        .build()?;

    for minute in 0..2_000u64 {
        // one background mention every 10 minutes
        if minute % 10 == 0 {
            detector.ingest_single(Timestamp(minute * 60))?;
        }
        // the cascade: 50 mentions/minute for 20 minutes
        if (500..520).contains(&minute) {
            for s in 0..50 {
                detector.ingest_single(Timestamp(minute * 60 + s))?;
            }
        }
    }
    detector.finalize();

    println!(
        "ingested {} mentions, summary uses {} bytes",
        detector.arrivals(),
        detector.size_bytes()
    );

    // POINT QUERY: how bursty was the event at minute 510, with a
    // 10-minute burst span? (The event id is ignored in single-event mode.)
    let tau = BurstSpan::new(600)?;
    let e = EventId(0);
    for minute in [100u64, 505, 515, 530, 560, 1_000] {
        let t = Timestamp(minute * 60);
        println!(
            "b(minute {minute:>4}) = {:>8.1}   (rate {:>6.1}/span)",
            detector.point_query(e, t, tau),
            detector.burst_frequency(e, t, tau),
        );
    }

    // BURSTY TIME QUERY: when did burstiness exceed 300?
    let horizon = Timestamp(2_000 * 60);
    let times = detector.bursty_times(e, 300.0, tau, horizon);
    let (first, last) = (times.first().unwrap().0, times.last().unwrap().0);
    println!(
        "burstiness ≥ 300 between minute {} and minute {} ({} probe hits)",
        first.ticks() / 60,
        last.ticks() / 60,
        times.len()
    );
    Ok(())
}
