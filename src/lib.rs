//! # bed — Bursty Event Detection Throughout Histories
//!
//! Facade crate re-exporting the full public API of the `bed` workspace, a
//! Rust implementation of *"Bursty Event Detection Throughout Histories"*
//! (Paul, Peng & Li, ICDE 2019).
//!
//! Start with [`bed_core::BurstDetector`]; see the `examples/` directory for
//! runnable walkthroughs and `crates/bench` for the paper's experiments.

#![forbid(unsafe_code)]

pub use bed_core as core;
pub use bed_hierarchy as hierarchy;
pub use bed_obs as obs;
pub use bed_pbe as pbe;
pub use bed_sketch as sketch;
pub use bed_stream as stream;
pub use bed_workload as workload;

pub use bed_core::*;
