//! Query latency: point queries across structures, and bursty-event
//! queries pruned vs scanned.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use bed_core::{
    AnyDetector, BurstDetector, BurstQueries as _, DetectorEpochs, PbeVariant, QueryRequest,
    Traceable as _, Tracer, TracerConfig,
};
use bed_hierarchy::DyadicCmPbe;
use bed_pbe::{CurveSketch, Pbe1, Pbe1Config, Pbe2, Pbe2Config};
use bed_sketch::{Combiner, QueryScratch, SketchParams};
use bed_stream::{BurstSpan, EventId, ExactBaseline, Timestamp};

const UNIVERSE: u32 = 1_024;

/// Mixed workload with a handful of bursting events.
fn workload() -> Vec<(EventId, Timestamp)> {
    let mut x = 0xDEAD_BEEFu64;
    let mut out = Vec::with_capacity(120_000);
    for i in 0..100_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out.push((EventId((x % UNIVERSE as u64) as u32), Timestamp(i / 10)));
    }
    // bursts for events 17 and 600 near the end
    for t in 9_000..10_000u64 {
        for _ in 0..10 {
            out.push((EventId(17), Timestamp(t)));
            out.push((EventId(600), Timestamp(t)));
        }
    }
    out.sort_by_key(|&(_, t)| t);
    out
}

fn bench_query(c: &mut Criterion) {
    let els = workload();
    let tau = BurstSpan::new(500).unwrap();
    let t_query = Timestamp(9_800);

    let mut baseline = ExactBaseline::new();
    let mut pbe1 = Pbe1::new(Pbe1Config { n_buf: 1_500, eta: 64 }).unwrap();
    let mut pbe2 = Pbe2::new(Pbe2Config { gamma: 8.0, max_vertices: 64 }).unwrap();
    let mut forest =
        DyadicCmPbe::new(UNIVERSE, SketchParams { epsilon: 0.01, delta: 0.05 }, 7, |_| {
            Pbe2::new(Pbe2Config { gamma: 8.0, max_vertices: 64 }).unwrap()
        })
        .unwrap();
    for &(e, t) in &els {
        baseline.ingest(e, t).unwrap();
        forest.update(e, t).unwrap();
        if e == EventId(17) {
            pbe1.update(t);
            pbe2.update(t);
        }
    }
    pbe1.finalize();
    pbe2.finalize();
    forest.finalize();

    let mut g = c.benchmark_group("point_query");
    g.bench_function("exact_baseline", |b| {
        b.iter(|| baseline.point_query(EventId(17), t_query, tau))
    });
    g.bench_function("pbe1", |b| b.iter(|| pbe1.estimate_burstiness(t_query, tau)));
    g.bench_function("pbe2", |b| b.iter(|| pbe2.estimate_burstiness(t_query, tau)));
    g.bench_function("cmpbe_leaf", |b| {
        b.iter(|| forest.estimate_burstiness(EventId(17), t_query, tau))
    });
    g.finish();

    let mut g = c.benchmark_group("bursty_event_query");
    g.bench_function("dyadic_pruned", |b| b.iter(|| forest.bursty_events(t_query, 2_000.0, tau)));
    g.bench_function("naive_scan", |b| b.iter(|| forest.bursty_events_scan(t_query, 2_000.0, tau)));
    g.finish();

    // Fused kernels vs the composed reference path (three independent
    // Vec-median estimates per probe, fresh candidate allocation per query)
    // — the before/after pair behind results/query_throughput.md.
    let grid = forest.grid(0);
    let theta = 1_000.0;
    let horizon = Timestamp(11_000);

    let mut g = c.benchmark_group("query");
    g.bench_function("bursty_time/composed", |b| {
        b.iter(|| {
            let mut cands: Vec<u64> = Vec::new();
            for knee in grid.segment_starts(EventId(17)) {
                for delta in [0, tau.ticks(), tau.ticks().saturating_mul(2)] {
                    let t = knee.ticks().saturating_add(delta);
                    if t <= horizon.ticks() {
                        cands.push(t);
                    }
                }
            }
            cands.sort_unstable();
            cands.dedup();
            let mut hits: Vec<(Timestamp, f64)> = Vec::new();
            for t in cands {
                let b =
                    grid.estimate_burstiness_with(EventId(17), Timestamp(t), tau, Combiner::Median);
                if b >= theta {
                    hits.push((Timestamp(t), b));
                }
            }
            hits
        })
    });
    g.bench_function("bursty_time/fused", |b| {
        let mut scratch = QueryScratch::new();
        let mut out: Vec<(Timestamp, f64)> = Vec::new();
        b.iter(|| {
            grid.bursty_times_into(EventId(17), theta, tau, horizon, &mut scratch, &mut out);
            out.len()
        })
    });
    g.bench_function("bursty_event/composed", |b| {
        b.iter(|| {
            let mut hits: Vec<(EventId, f64)> = Vec::new();
            for e in 0..UNIVERSE {
                let b = grid.estimate_burstiness_with(EventId(e), t_query, tau, Combiner::Median);
                if b >= theta {
                    hits.push((EventId(e), b));
                }
            }
            hits
        })
    });
    g.bench_function("bursty_event/batched", |b| {
        let mut scratch = QueryScratch::new();
        b.iter(|| {
            let mut hits = 0u32;
            grid.burstiness_scan_into(0, UNIVERSE, t_query, tau, &mut scratch, |_, b| {
                if b >= theta {
                    hits += 1;
                }
            });
            hits
        })
    });
    g.finish();

    // Struct-of-arrays bank vs array-of-structs cells: the same fused
    // kernels on the same finalized grid, with and without the probe
    // mirror — the before/after pair behind results/query_soa.md.
    let soa = grid.clone();
    assert!(soa.has_bank(), "finalize must have built the bank");
    let mut aos = grid.clone();
    aos.clear_bank();

    let mut g = c.benchmark_group("soa");
    g.bench_function("probe3/aos", |b| b.iter(|| aos.probe3(EventId(17), t_query, tau)));
    g.bench_function("probe3/soa", |b| b.iter(|| soa.probe3(EventId(17), t_query, tau)));
    g.bench_function("bursty_event_scan/aos", |b| {
        let mut scratch = QueryScratch::new();
        b.iter(|| {
            let mut hits = 0u32;
            aos.burstiness_scan_into(0, UNIVERSE, t_query, tau, &mut scratch, |_, b| {
                if b >= theta {
                    hits += 1;
                }
            });
            hits
        })
    });
    g.bench_function("bursty_event_scan/soa", |b| {
        let mut scratch = QueryScratch::new();
        b.iter(|| {
            let mut hits = 0u32;
            soa.burstiness_scan_into(0, UNIVERSE, t_query, tau, &mut scratch, |_, b| {
                if b >= theta {
                    hits += 1;
                }
            });
            hits
        })
    });
    g.bench_function("bursty_time/aos", |b| {
        let mut scratch = QueryScratch::new();
        let mut out: Vec<(Timestamp, f64)> = Vec::new();
        b.iter(|| {
            aos.bursty_times_into(EventId(17), theta, tau, horizon, &mut scratch, &mut out);
            out.len()
        })
    });
    g.bench_function("bursty_time/soa", |b| {
        let mut scratch = QueryScratch::new();
        let mut out: Vec<(Timestamp, f64)> = Vec::new();
        b.iter(|| {
            soa.bursty_times_into(EventId(17), theta, tau, horizon, &mut scratch, &mut out);
            out.len()
        })
    });
    g.finish();
}

/// The `/query` serving path end to end: an epoch view answering exactly
/// as `bed serve` drives it — a trace id minted and stamped into the
/// scratch per request, explain off.
///
/// `BED_BENCH_TRACED=1` installs an enabled-but-unsampled tracer (the
/// state a production server idles in). CI's bench-regression job runs
/// the gate in that mode against baselines recorded untraced, so the
/// "tracing costs one relaxed ticket fetch-add and zero allocation"
/// claim is enforced by the same tolerance as every other query bench.
fn bench_serve_path(c: &mut Criterion) {
    let els = workload();
    let traced = std::env::var("BED_BENCH_TRACED").is_ok_and(|v| v == "1");
    let tracer = Arc::new(if traced {
        Tracer::new(TracerConfig {
            sample_every: u64::MAX,
            slow_threshold_ns: u64::MAX,
            buffer_capacity: 64,
            slow_capacity: 1,
            dump_slow_on_drop: false,
        })
    } else {
        Tracer::disabled()
    });

    let mut det = AnyDetector::Plain(Box::new(
        BurstDetector::builder()
            .universe(UNIVERSE)
            .variant(PbeVariant::pbe2(8.0))
            .accuracy(0.01, 0.05)
            .seed(7)
            .build()
            .unwrap(),
    ));
    det.set_tracer(Arc::clone(&tracer));
    for &(e, t) in &els {
        det.ingest(e, t).unwrap();
    }
    let mut epochs = DetectorEpochs::new(&det);
    epochs.set_tracer(Arc::clone(&tracer));
    let view = epochs.view();
    view.refresh_latest();

    let tau = BurstSpan::new(500).unwrap();
    let point = QueryRequest::Point { event: EventId(17), t: Timestamp(9_800), tau };
    let events = QueryRequest::BurstyEvents {
        t: Timestamp(9_800),
        theta: 2_000.0,
        tau,
        strategy: bed_core::QueryStrategy::Pruned,
    };
    let mut scratch = QueryScratch::new();
    // Warm the scratch and burn sampler ticket 0: the first ticket
    // matches any period, so it must not land inside a measured loop.
    view.query_reusing(&point, &mut scratch).unwrap();
    view.query_reusing(&events, &mut scratch).unwrap();

    let mut g = c.benchmark_group("serve_path");
    g.bench_function("point_epoch_view", |b| {
        b.iter(|| {
            scratch.trace_id = tracer.next_trace_id().0;
            view.query_reusing(&point, &mut scratch).unwrap()
        })
    });
    g.bench_function("bursty_events_epoch_view", |b| {
        b.iter(|| {
            scratch.trace_id = tracer.next_trace_id().0;
            view.query_reusing(&events, &mut scratch).unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_query, bench_serve_path
}
criterion_main!(benches);
