//! Ingest throughput of every sketch variant.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use bed_pbe::{CurveSketch, Pbe1, Pbe1Config, Pbe2, Pbe2Config};
use bed_sketch::{CmPbe, SketchParams};
use bed_stream::{EventId, Timestamp};

/// A deterministic mixed workload: 50k elements over 1k events, mildly
/// bursty timestamps.
fn workload() -> Vec<(EventId, Timestamp)> {
    let mut x = 0x9E37_79B9u64;
    let mut out = Vec::with_capacity(50_000);
    for i in 0..50_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let e = EventId((x % 1_000) as u32);
        out.push((e, Timestamp(i / 5)));
    }
    out
}

fn bench_ingest(c: &mut Criterion) {
    let els = workload();
    let mut g = c.benchmark_group("ingest");
    g.throughput(Throughput::Elements(els.len() as u64));

    g.bench_function("pbe1_single", |b| {
        b.iter_batched(
            || Pbe1::new(Pbe1Config { n_buf: 1_500, eta: 128 }).unwrap(),
            |mut p| {
                for &(_, t) in &els {
                    p.update(t);
                }
                p.finalize();
                p.size_bytes()
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("pbe2_single", |b| {
        b.iter_batched(
            || Pbe2::new(Pbe2Config { gamma: 8.0, max_vertices: 64 }).unwrap(),
            |mut p| {
                for &(_, t) in &els {
                    p.update(t);
                }
                p.finalize();
                p.size_bytes()
            },
            BatchSize::SmallInput,
        )
    });

    let params = SketchParams { epsilon: 0.01, delta: 0.05 };
    g.bench_function("cmpbe1_mixed", |b| {
        b.iter_batched(
            || {
                CmPbe::new(params, 7, || Pbe1::new(Pbe1Config { n_buf: 1_500, eta: 32 }).unwrap())
                    .unwrap()
            },
            |mut cm| {
                for &(e, t) in &els {
                    cm.update(e, t);
                }
                cm.finalize();
                cm.size_bytes()
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("cmpbe2_mixed", |b| {
        b.iter_batched(
            || {
                CmPbe::new(params, 7, || {
                    Pbe2::new(Pbe2Config { gamma: 8.0, max_vertices: 64 }).unwrap()
                })
                .unwrap()
            },
            |mut cm| {
                for &(e, t) in &els {
                    cm.update(e, t);
                }
                cm.finalize();
                cm.size_bytes()
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("cmpbe2_mixed_parallel_rows", |b| {
        b.iter_batched(
            || {
                CmPbe::new(params, 7, || {
                    Pbe2::new(Pbe2Config { gamma: 8.0, max_vertices: 64 }).unwrap()
                })
                .unwrap()
            },
            |mut cm| {
                cm.update_batch_parallel(&els);
                cm.finalize();
                cm.size_bytes()
            },
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ingest
}
criterion_main!(benches);
