//! Ingest throughput of every sketch variant.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use bed_core::{BurstDetector, PbeVariant};
use bed_pbe::{CurveSketch, Pbe1, Pbe1Config, Pbe2, Pbe2Config};
use bed_sketch::{CmPbe, SketchParams};
use bed_stream::{EventId, Timestamp};
use bed_workload::Zipf;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A deterministic mixed workload: 50k elements over 1k events, mildly
/// bursty timestamps.
fn workload() -> Vec<(EventId, Timestamp)> {
    let mut x = 0x9E37_79B9u64;
    let mut out = Vec::with_capacity(50_000);
    for i in 0..50_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let e = EventId((x % 1_000) as u32);
        out.push((e, Timestamp(i / 5)));
    }
    out
}

fn bench_ingest(c: &mut Criterion) {
    let els = workload();
    let mut g = c.benchmark_group("ingest");
    g.throughput(Throughput::Elements(els.len() as u64));

    g.bench_function("pbe1_single", |b| {
        b.iter_batched(
            || Pbe1::new(Pbe1Config { n_buf: 1_500, eta: 128 }).unwrap(),
            |mut p| {
                for &(_, t) in &els {
                    p.update(t);
                }
                p.finalize();
                p.size_bytes()
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("pbe2_single", |b| {
        b.iter_batched(
            || Pbe2::new(Pbe2Config { gamma: 8.0, max_vertices: 64 }).unwrap(),
            |mut p| {
                for &(_, t) in &els {
                    p.update(t);
                }
                p.finalize();
                p.size_bytes()
            },
            BatchSize::SmallInput,
        )
    });

    let params = SketchParams { epsilon: 0.01, delta: 0.05 };
    g.bench_function("cmpbe1_mixed", |b| {
        b.iter_batched(
            || {
                CmPbe::new(params, 7, || Pbe1::new(Pbe1Config { n_buf: 1_500, eta: 32 }).unwrap())
                    .unwrap()
            },
            |mut cm| {
                for &(e, t) in &els {
                    cm.update(e, t);
                }
                cm.finalize();
                cm.size_bytes()
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("cmpbe2_mixed", |b| {
        b.iter_batched(
            || {
                CmPbe::new(params, 7, || {
                    Pbe2::new(Pbe2Config { gamma: 8.0, max_vertices: 64 }).unwrap()
                })
                .unwrap()
            },
            |mut cm| {
                for &(e, t) in &els {
                    cm.update(e, t);
                }
                cm.finalize();
                cm.size_bytes()
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("cmpbe2_mixed_parallel_rows", |b| {
        b.iter_batched(
            || {
                CmPbe::new(params, 7, || {
                    Pbe2::new(Pbe2Config { gamma: 8.0, max_vertices: 64 }).unwrap()
                })
                .unwrap()
            },
            |mut cm| {
                cm.update_batch_parallel(&els);
                cm.finalize();
                cm.size_bytes()
            },
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

/// Ingest cost of the always-on observability layer: the same hierarchical
/// detector with metrics enabled (the default) vs disabled. The enabled
/// path adds one relaxed `fetch_add` per ingest plus a 1-in-64 sampled
/// timer, so the two curves should sit within a few percent of each other;
/// a regression here means something slipped onto the hot path.
fn bench_metrics_overhead(c: &mut Criterion) {
    let els = workload();
    let mut g = c.benchmark_group("metrics_overhead");
    g.throughput(Throughput::Elements(els.len() as u64));
    for (name, on) in [("metrics_on", true), ("metrics_off", false)] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    BurstDetector::builder()
                        .universe(1_024)
                        .variant(PbeVariant::pbe2(8.0))
                        .accuracy(0.01, 0.05)
                        .seed(7)
                        .metrics(on)
                        .build()
                        .unwrap()
                },
                |mut det| {
                    for &(e, t) in &els {
                        det.ingest(e, t).unwrap();
                    }
                    det.finalize();
                    det.arrivals()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// A 1M-arrival Zipf(1.1) stream over 1024 events — the heavy-tailed
/// mixed workload the sharding layer targets.
fn zipf_workload(n: u64, universe: u32) -> Vec<(EventId, Timestamp)> {
    let zipf = Zipf::new(universe as usize, 1.1);
    let mut rng = SmallRng::seed_from_u64(0xBED);
    (0..n).map(|i| (EventId(zipf.sample(&mut rng) as u32), Timestamp(i / 20))).collect()
}

/// Shard scaling of batch ingestion: the same hierarchical detector
/// configuration split 1/2/4/8 ways. `results/sharded_ingest.md` tracks
/// the throughput curve; speedup above 1 shard needs as many free cores.
fn bench_ingest_sharded(c: &mut Criterion) {
    let universe = 1_024u32;
    let els = zipf_workload(1_000_000, universe);
    let mut g = c.benchmark_group("ingest_sharded");
    g.throughput(Throughput::Elements(els.len() as u64));
    for shards in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &n| {
            b.iter_batched(
                || {
                    BurstDetector::builder()
                        .universe(universe)
                        .variant(PbeVariant::pbe2(8.0))
                        .accuracy(0.005, 0.02)
                        .seed(7)
                        .shards(n)
                        .build()
                        .unwrap()
                },
                |mut det| {
                    det.ingest_batch(&els).unwrap();
                    det.finalize();
                    det.arrivals()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ingest, bench_metrics_overhead, bench_ingest_sharded
}
criterion_main!(benches);
