//! The PBE-1 dynamic-programming kernel: naive O(η·n²) vs the
//! convex-hull-trick O(η·n) at the paper's buffer size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bed_pbe::pbe1::dp;
use bed_stream::curve::CornerPoint;
use bed_stream::Timestamp;

/// Deterministic pseudo-random staircase of `n` corners.
fn staircase(n: usize) -> Vec<CornerPoint> {
    let mut x = 0xBAD_C0DEu64;
    let mut t = 0u64;
    let mut cum = 0u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t += 1 + x % 17;
            cum += 1 + (x >> 32) % 9;
            CornerPoint { t: Timestamp(t), cum }
        })
        .collect()
}

fn bench_dp(c: &mut Criterion) {
    let mut g = c.benchmark_group("dp_kernel");
    for &n in &[300usize, 1_500] {
        let points = staircase(n);
        let eta = 128.min(n / 2);
        g.bench_with_input(BenchmarkId::new("cht", n), &points, |b, p| {
            b.iter(|| dp::solve(p, eta).cost)
        });
        // the naive kernel is quadratic — keep it to the small size
        if n <= 300 {
            g.bench_with_input(BenchmarkId::new("naive", n), &points, |b, p| {
                b.iter(|| dp::solve_naive(p, eta).cost)
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dp
}
criterion_main!(benches);
