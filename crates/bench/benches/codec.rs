//! Persistence codec throughput: encode/decode of realistic sketches.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bed_pbe::{CurveSketch, Pbe1, Pbe1Config, Pbe2, Pbe2Config};
use bed_sketch::{CmPbe, SketchParams};
use bed_stream::{Codec, EventId, Timestamp};

fn bench_codec(c: &mut Criterion) {
    // single-stream sketches over a 100k-arrival spiky stream
    let ts: Vec<u64> = (0..100_000u64).map(|i| i / 3 + (i % 11)).collect();
    let mut sorted = ts.clone();
    sorted.sort_unstable();

    let mut p1 = Pbe1::new(Pbe1Config { n_buf: 1_500, eta: 128 }).unwrap();
    let mut p2 = Pbe2::new(Pbe2Config { gamma: 4.0, max_vertices: 64 }).unwrap();
    for &t in &sorted {
        p1.update(Timestamp(t));
        p2.update(Timestamp(t));
    }
    p1.finalize();
    p2.finalize();

    let mut cm = CmPbe::new(SketchParams { epsilon: 0.01, delta: 0.05 }, 7, || {
        Pbe2::new(Pbe2Config { gamma: 8.0, max_vertices: 64 }).unwrap()
    })
    .unwrap();
    for i in 0..100_000u64 {
        cm.update(EventId((i % 500) as u32), Timestamp(i / 10));
    }
    cm.finalize();

    let p1_bytes = p1.to_bytes();
    let p2_bytes = p2.to_bytes();
    let cm_bytes = cm.to_bytes();

    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes(p1_bytes.len() as u64));
    g.bench_function("pbe1_encode", |b| b.iter(|| p1.to_bytes().len()));
    g.bench_function("pbe1_decode", |b| b.iter(|| Pbe1::from_bytes(&p1_bytes).unwrap().arrivals()));
    g.throughput(Throughput::Bytes(p2_bytes.len() as u64));
    g.bench_function("pbe2_encode", |b| b.iter(|| p2.to_bytes().len()));
    g.bench_function("pbe2_decode", |b| b.iter(|| Pbe2::from_bytes(&p2_bytes).unwrap().arrivals()));
    g.throughput(Throughput::Bytes(cm_bytes.len() as u64));
    g.bench_function("cmpbe_encode", |b| b.iter(|| cm.to_bytes().len()));
    g.bench_function("cmpbe_decode", |b| {
        b.iter(|| CmPbe::<Pbe2>::from_bytes(&cm_bytes).unwrap().arrivals())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_codec
}
criterion_main!(benches);
