//! Sketch construction and accuracy measurement helpers.

use std::time::Duration;

use bed_pbe::{CurveSketch, Pbe1, Pbe1Config, Pbe2, Pbe2Config};
use bed_sketch::{CmPbe, SketchParams};
use bed_stream::{BurstSpan, EventId, EventStream, ExactBaseline, SingleEventStream, Timestamp};
use bed_workload::truth;

use crate::time;

/// Builds a PBE-1 over a single stream, returning it with the construction
/// time.
pub fn build_pbe1(stream: &SingleEventStream, eta: usize, n_buf: usize) -> (Pbe1, Duration) {
    time(|| {
        let mut p = Pbe1::new(Pbe1Config { n_buf, eta }).expect("valid config");
        for &t in stream.timestamps() {
            p.update(t);
        }
        p.finalize();
        p
    })
}

/// Builds a PBE-2 over a single stream.
pub fn build_pbe2(stream: &SingleEventStream, gamma: f64) -> (Pbe2, Duration) {
    time(|| {
        let mut p = Pbe2::new(Pbe2Config { gamma, max_vertices: 64 }).expect("valid config");
        for &t in stream.timestamps() {
            p.update(t);
        }
        p.finalize();
        p
    })
}

/// Binary-searches γ so the finished PBE-2 lands within ~5% of
/// `target_bytes` (used for the equal-space comparisons of Figs. 10–11).
pub fn pbe2_for_budget(stream: &SingleEventStream, target_bytes: usize) -> Pbe2 {
    let mut lo = 0.5f64;
    let mut hi = 65_536.0f64;
    let mut best: Option<Pbe2> = None;
    for _ in 0..24 {
        let gamma = (lo * hi).sqrt();
        let (p, _) = build_pbe2(stream, gamma);
        let size = p.size_bytes();
        let better = match &best {
            None => true,
            Some(b) => {
                (size as i64 - target_bytes as i64).abs()
                    < (b.size_bytes() as i64 - target_bytes as i64).abs()
            }
        };
        if better {
            best = Some(p.clone());
        }
        if size > target_bytes {
            lo = gamma; // need looser γ → fewer segments
        } else {
            hi = gamma;
        }
        if (size as f64 - target_bytes as f64).abs() / target_bytes as f64 <= 0.05 {
            break;
        }
    }
    best.expect("at least one iteration ran")
}

/// Mean absolute burstiness error of a single-stream sketch over `q` random
/// historical point queries.
pub fn single_stream_error(
    sketch: &impl CurveSketch,
    baseline: &ExactBaseline,
    horizon: Timestamp,
    tau: BurstSpan,
    q: usize,
    seed: u64,
) -> f64 {
    let queries = truth::random_point_queries(&[EventId(0)], horizon, q, seed);
    truth::mean_abs_error(baseline, &queries, tau, |_, t| sketch.estimate_burstiness(t, tau))
}

/// Builds a CM-PBE over a mixed stream from a cell factory.
pub fn build_cmpbe<P: CurveSketch>(
    stream: &EventStream,
    params: SketchParams,
    seed: u64,
    make_cell: impl FnMut() -> P,
) -> (CmPbe<P>, Duration) {
    time(|| {
        let mut cm = CmPbe::new(params, seed, make_cell).expect("valid params");
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        cm.finalize();
        cm
    })
}

/// Mean absolute burstiness error of a CM-PBE over `q` random
/// `(event, time)` queries drawn from the observed events.
pub fn cmpbe_error<P: CurveSketch>(
    cm: &CmPbe<P>,
    baseline: &ExactBaseline,
    events: &[EventId],
    horizon: Timestamp,
    tau: BurstSpan,
    q: usize,
    seed: u64,
) -> f64 {
    let queries = truth::random_point_queries(events, horizon, q, seed);
    truth::mean_abs_error(baseline, &queries, tau, |e, t| cm.estimate_burstiness(e, t, tau))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn budgeted_pbe2_hits_target() {
        let (soccer, _) = data::single_streams(3_000);
        let target = 2_048;
        let p = pbe2_for_budget(&soccer, target);
        let size = p.size_bytes();
        assert!(
            size >= target / 4 && size <= target * 4,
            "size {size} too far from target {target}"
        );
    }

    #[test]
    fn errors_shrink_with_budget() {
        let (soccer, _) = data::single_streams(3_000);
        let baseline = data::single_baseline(&soccer);
        let horizon = data::horizon(&soccer);
        let tau = BurstSpan::DAY_SECONDS;
        let (small, _) = build_pbe1(&soccer, 8, 400);
        let (large, _) = build_pbe1(&soccer, 200, 400);
        let e_small = single_stream_error(&small, &baseline, horizon, tau, 60, 1);
        let e_large = single_stream_error(&large, &baseline, horizon, tau, 60, 1);
        assert!(e_large <= e_small, "{e_large} > {e_small}");
    }
}
