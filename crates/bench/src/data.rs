//! Dataset construction shared by the experiment binaries.

use bed_stream::{EventId, ExactBaseline, SingleEventStream, Timestamp};
use bed_workload::olympics::{self, OlympicsConfig, OlympicsStream};
use bed_workload::politics::{self, PoliticsConfig, PoliticsStream};

/// The olympicrio-like mixed stream at `n` elements.
pub fn olympics_stream(n: u64) -> OlympicsStream {
    olympics::generate(OlympicsConfig { total_elements: n, seed: 2016 })
}

/// The uspolitics-like mixed stream at `n` elements.
pub fn politics_stream(n: u64) -> PoliticsStream {
    politics::generate(PoliticsConfig { total_elements: n, skew: 1.1, seed: 1776 })
}

/// The two single-event study streams of Figs. 7–10 (soccer, swimming),
/// normalised so each carries roughly `n_each` elements — mirroring the
/// paper's "we then normalize the volume of both datasets to 1 million
/// tweets".
pub fn single_streams(n_each: u64) -> (SingleEventStream, SingleEventStream) {
    // The marquee pair receives ~20% of the mixed stream's volume, split
    // roughly 60/40 between soccer and swimming by profile mass; blow up the
    // mixed stream so each single stream lands near n_each.
    let s = olympics_stream(n_each * 8);
    let soccer = s.stream.project(s.soccer);
    let swimming = s.stream.project(s.swimming);
    (soccer, swimming)
}

/// Exact oracle for a single stream (as event 0).
pub fn single_baseline(stream: &SingleEventStream) -> ExactBaseline {
    let mut b = ExactBaseline::new();
    for &t in stream.timestamps() {
        b.ingest(EventId(0), t).expect("sorted");
    }
    b
}

/// Horizon (latest timestamp) of a single stream.
pub fn horizon(stream: &SingleEventStream) -> Timestamp {
    stream.last_timestamp().unwrap_or(Timestamp::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_streams_have_requested_scale() {
        let (soccer, swimming) = single_streams(5_000);
        // within a factor of ~4 of the target each (profile masses differ)
        assert!(soccer.len() > 1_200, "soccer {}", soccer.len());
        assert!(swimming.len() > 1_200, "swimming {}", swimming.len());
        assert!(soccer.len() < 40_000);
    }
}
