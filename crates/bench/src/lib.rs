//! # bed-bench — experiment harness for the ICDE 2019 reproduction
//!
//! One binary per figure/table of the paper (see `src/bin/`), plus Criterion
//! microbenchmarks (`benches/`). Every binary prints TSV to stdout with a
//! `#`-prefixed header describing the corresponding paper artifact.
//!
//! Scale control: the environment variable `BED_N` sets the element count
//! per dataset (default 200,000 for fast iteration; the paper's normalised
//! scale is 1,000,000 — pass `BED_N=1000000` to match).

#![forbid(unsafe_code)]

pub mod data;
pub mod measure;

use std::time::{Duration, Instant};

/// Elements per generated dataset (`BED_N`, default 200k).
pub fn env_scale() -> u64 {
    std::env::var("BED_N").ok().and_then(|v| v.parse().ok()).unwrap_or(200_000)
}

/// Number of random queries per accuracy measurement (`BED_QUERIES`,
/// default 100 — the paper reports averages over random queries).
pub fn env_queries() -> usize {
    std::env::var("BED_QUERIES").ok().and_then(|v| v.parse().ok()).unwrap_or(100)
}

/// Times a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Prints a TSV header line (prefixed `#`) followed by rows.
pub fn print_table<H, R, C>(title: &str, headers: H, rows: R)
where
    H: IntoIterator,
    H::Item: std::fmt::Display,
    R: IntoIterator,
    R::Item: IntoIterator<Item = C>,
    C: std::fmt::Display,
{
    println!("# {title}");
    let head: Vec<String> = headers.into_iter().map(|h| h.to_string()).collect();
    println!("{}", head.join("\t"));
    for row in rows {
        let cells: Vec<String> = row.into_iter().map(|c| c.to_string()).collect();
        println!("{}", cells.join("\t"));
    }
    println!();
}

/// Formats a byte count as KB with one decimal.
pub fn kb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

/// Formats a duration as seconds with three decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(kb(2048), "2.0");
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_secs() < 1);
    }
}
