//! Concurrent read-path load bench: ingest throughput with 0/1/2/4 reader
//! threads querying the published epochs, plus reader query throughput —
//! the serve-under-load numbers behind `results/concurrent_serve.md`.
//!
//! The writer ingests the full stream in batches, publishing an epoch
//! every `--publish-every`-equivalent cadence (`BED_CADENCE`, default
//! 8 192 arrivals); readers hammer point and bursty-event queries against
//! the latest published epoch until the writer finishes. Zero readers is
//! the baseline; the deltas show what concurrent queries cost ingest
//! (nothing, architecturally: readers never take the writer's locks — on
//! a single-core host they still steal cycles).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use bed_bench::{env_scale, print_table};
use bed_core::{
    AnyDetector, BurstQueries, CheckpointPolicy, DetectorEpochs, EpochPublisher, PbeVariant,
    QueryRequest, QueryStrategy, ShardedDetector,
};
use bed_stream::{BurstSpan, EventId, Timestamp};
use bed_workload::{olympics, OlympicsConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn cadence() -> u64 {
    std::env::var("BED_CADENCE").ok().and_then(|s| s.parse().ok()).unwrap_or(8_192)
}

/// One run: returns (ingest wall time, total reader queries answered).
fn run(els: &[(EventId, Timestamp)], readers: usize, cadence: u64) -> (Duration, u64) {
    let mut det = AnyDetector::Sharded(
        ShardedDetector::builder(4)
            .universe(864)
            .variant(PbeVariant::pbe2(8.0))
            .accuracy(0.005, 0.02)
            .seed(42)
            .build()
            .unwrap(),
    );
    let epochs = DetectorEpochs::new(&det);
    let done = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    let horizon = els.last().unwrap().1 .0;

    let ingest_time = std::thread::scope(|scope| {
        for i in 0..readers {
            let (epochs, done, queries) = (&epochs, &done, &queries);
            scope.spawn(move || {
                let view = epochs.view();
                let mut rng = SmallRng::seed_from_u64(7 + i as u64);
                let tau = BurstSpan::new(86_400).unwrap();
                let mut n = 0u64;
                while !done.load(Ordering::Acquire) {
                    let t = Timestamp(rng.gen_range(0..=horizon));
                    let req = if rng.gen_bool(0.9) {
                        QueryRequest::Point { event: EventId(rng.gen_range(0..864)), t, tau }
                    } else {
                        QueryRequest::BurstyEvents {
                            t,
                            theta: 100.0,
                            tau,
                            strategy: QueryStrategy::Pruned,
                        }
                    };
                    std::hint::black_box(view.query(&req).unwrap());
                    n += 1;
                }
                queries.fetch_add(n, Ordering::Relaxed);
            });
        }
        let started = std::time::Instant::now();
        let mut publisher = EpochPublisher::new(CheckpointPolicy { every_arrivals: cadence });
        for chunk in els.chunks(1_024) {
            for &(e, t) in chunk {
                det.ingest(e, t).unwrap();
            }
            publisher.maybe_publish(&det, &epochs);
        }
        det.finalize();
        epochs.publish(&det);
        let dt = started.elapsed();
        done.store(true, Ordering::Release);
        dt
    });
    (ingest_time, queries.load(Ordering::Relaxed))
}

fn main() {
    let n = env_scale();
    let cadence = cadence();
    let s = olympics::generate(OlympicsConfig { total_elements: n, seed: 42 });
    let els: Vec<(EventId, Timestamp)> =
        s.stream.elements().iter().map(|el| (el.event, el.ts)).collect();

    let mut rows = Vec::new();
    for readers in [0usize, 1, 2, 4] {
        let (dt, queries) = run(&els, readers, cadence);
        let ingest_rate = els.len() as f64 / dt.as_secs_f64();
        let query_rate = queries as f64 / dt.as_secs_f64();
        rows.push(vec![
            readers.to_string(),
            format!("{:.2}", dt.as_secs_f64()),
            format!("{:.0}", ingest_rate / 1_000.0),
            queries.to_string(),
            format!("{:.0}", query_rate / 1_000.0),
        ]);
    }
    print_table(
        &format!(
            "Concurrent serve: olympics N={}, 4 shards, publish every {} arrivals",
            els.len(),
            cadence
        ),
        ["readers", "ingest_s", "ingest_kelem_s", "queries", "query_k_s"],
        rows,
    );
}
