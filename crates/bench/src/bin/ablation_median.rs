//! Row-combiner ablation (Section IV design choice): the paper combines the
//! d per-row estimates by **median**, not the classic Count-Min minimum.
//!
//! With plain counters, min is right because the only error is collision
//! inflation. With PBE cells the per-cell estimate also *under*-shoots (by
//! up to Δ/γ), so min compounds the under-estimation while max compounds the
//! collision over-estimation; the median splits the difference — exactly the
//! argument under Theorem 1. This binary quantifies it.

use bed_bench::{data, env_queries, env_scale, measure, print_table};
use bed_pbe::{Pbe2, Pbe2Config};
use bed_sketch::{Combiner, SketchParams};
use bed_stream::{BurstSpan, ExactBaseline, Timestamp};
use bed_workload::truth;

fn main() {
    let n = env_scale();
    let q = env_queries();
    let tau = BurstSpan::DAY_SECONDS;
    let olympics = data::olympics_stream(n);
    let stream = olympics.stream;
    let baseline = ExactBaseline::from_stream(&stream);
    let events = stream.distinct_events();
    let horizon = Timestamp(bed_workload::olympics::OLYMPICS_HORIZON_SECS);
    let queries = truth::random_point_queries(&events, horizon, q, 31);

    let mut rows = Vec::new();
    for gamma in [4.0f64, 16.0, 64.0, 256.0] {
        let (cm, _) = measure::build_cmpbe(&stream, SketchParams::PAPER, 5, || {
            Pbe2::new(Pbe2Config { gamma, max_vertices: 64 }).unwrap()
        });
        // rowwise median (median of per-row burstiness) vs the paper's
        // compose-from-median-F̃ (Lemma 5's formulation)
        let rowwise_err = truth::mean_abs_error(&baseline, &queries, tau, |e, t| {
            cm.estimate_burstiness_rowwise(e, t, tau)
        });
        rows.push(vec![
            format!("{gamma}"),
            "Median(rowwise)".to_string(),
            format!("{rowwise_err:.1}"),
            "-".to_string(),
        ]);
        for combiner in [Combiner::Median, Combiner::Min, Combiner::Max] {
            let err = truth::mean_abs_error(&baseline, &queries, tau, |e, t| {
                cm.estimate_burstiness_with(e, t, tau, combiner)
            });
            // signed bias of the cumulative estimate at the horizon
            let bias: f64 = events
                .iter()
                .map(|&e| {
                    let truth = baseline.cumulative_frequency(e, horizon) as f64;
                    cm.estimate_cum_with(e, horizon, combiner) - truth
                })
                .sum::<f64>()
                / events.len() as f64;
            rows.push(vec![
                format!("{gamma}"),
                format!("{combiner:?}"),
                format!("{err:.1}"),
                format!("{bias:+.1}"),
            ]);
        }
    }

    print_table(
        &format!(
            "Combiner ablation (olympicrio N={}, K={}, {} queries): median vs min vs max",
            stream.len(),
            events.len(),
            q
        ),
        ["gamma", "combiner", "mean_abs_burstiness_err", "mean_signed_cum_bias"],
        rows,
    );
}
