//! Core-aware shard scaling: the 1/2/4/8-shard ingest + query curve with
//! the measurement host's core count stamped into the artifact — the
//! numbers behind `results/sharded_ingest.md`.
//!
//! Ingest is the sharded batch path (`ingest_batch` partitions the stream
//! and runs one scoped worker per shard, `finalize` included so the SoA
//! probe banks are built). Queries run through published epochs with one
//! reader thread per shard, each hammering point probes from its own
//! `bed_core::EpochView` — the concurrent read architecture the serve
//! layer uses.
//! On a single-core host the curve records sharding *overhead* rather
//! than speedup; the `nproc` column makes that legible in the artifact,
//! and CI simply checks the file exists and is well-formed.
//!
//! Scale: `BED_N` arrivals (default 200k; paper-scale runs use 1M),
//! `BED_QUERY_N` total point queries per layout (default 100k).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bed_bench::{env_scale, print_table};
use bed_core::{
    AnyDetector, BurstQueries, DetectorEpochs, EventSink, PbeVariant, QueryRequest, ShardedDetector,
};
use bed_stream::{BurstSpan, EventId, Timestamp};
use bed_workload::Zipf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const UNIVERSE: u32 = 1_024;

fn query_scale() -> u64 {
    std::env::var("BED_QUERY_N").ok().and_then(|v| v.parse().ok()).unwrap_or(100_000)
}

/// The heavy-tailed mixed workload the sharding layer targets (same shape
/// as the `ingest_sharded` Criterion group).
fn zipf_workload(n: u64) -> Vec<(EventId, Timestamp)> {
    let zipf = Zipf::new(UNIVERSE as usize, 1.1);
    let mut rng = SmallRng::seed_from_u64(0xBED);
    (0..n).map(|i| (EventId(zipf.sample(&mut rng) as u32), Timestamp(i / 20))).collect()
}

fn main() {
    let nproc = std::thread::available_parallelism().map_or(1, usize::from);
    let n = env_scale();
    let q_total = query_scale();
    let els = zipf_workload(n);
    let horizon = els.last().map_or(0, |&(_, t)| t.0);
    let tau = BurstSpan::new((horizon / 20).max(1)).unwrap();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let mut det = AnyDetector::Sharded(
            ShardedDetector::builder(shards)
                .universe(UNIVERSE)
                .variant(PbeVariant::pbe2(8.0))
                .accuracy(0.005, 0.02)
                .seed(7)
                .build()
                .unwrap(),
        );

        let start = Instant::now();
        det.ingest_batch(&els).unwrap();
        det.finalize();
        let ingest = start.elapsed();

        // One reader thread per shard, each answering its slice of the
        // query budget from its own epoch view.
        let epochs = DetectorEpochs::new(&det);
        let answered = AtomicU64::new(0);
        let per_thread = q_total / shards as u64;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for worker in 0..shards {
                let (epochs, answered) = (&epochs, &answered);
                scope.spawn(move || {
                    let view = epochs.view();
                    let mut rng = SmallRng::seed_from_u64(0xC0DE + worker as u64);
                    let mut ok = 0u64;
                    for _ in 0..per_thread {
                        let req = QueryRequest::Point {
                            event: EventId(rng.gen_range(0..UNIVERSE)),
                            t: Timestamp(rng.gen_range(0..=horizon)),
                            tau,
                        };
                        if view.query(&req).is_ok() {
                            ok += 1;
                        }
                    }
                    answered.fetch_add(ok, Ordering::Relaxed);
                });
            }
        });
        let query = start.elapsed();
        let answered = answered.load(Ordering::Relaxed);

        rows.push(vec![
            nproc.to_string(),
            shards.to_string(),
            format!("{:.3}", ingest.as_secs_f64()),
            format!("{:.0}", els.len() as f64 / ingest.as_secs_f64() / 1e3),
            answered.to_string(),
            format!("{:.3}", query.as_secs_f64()),
            format!("{:.0}", answered as f64 / query.as_secs_f64() / 1e3),
        ]);
    }

    print_table(
        &format!(
            "Shard scaling — nproc={nproc}, {n} Zipf(1.1) arrivals over {UNIVERSE} events, \
             hierarchical CM-PBE-2 (γ=8, ε=0.005, δ=0.02), {q_total} point queries per layout"
        ),
        ["nproc", "shards", "ingest_s", "ingest_kelem_s", "queries", "query_s", "query_kq_s"],
        rows,
    );
}
