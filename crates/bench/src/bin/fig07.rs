//! Figure 7 — incoming rate and burstiness of the soccer and swimming
//! events over the month (τ = 86,400 s = 1 day).
//!
//! Paper: soccer bursts repeatedly with the largest burst right before the
//! final; swimming is concentrated in the first half and then collapses to
//! ~zero in both rate and burstiness.

use bed_bench::{data, env_scale, print_table};
use bed_stream::{BurstSpan, EventId};
use bed_workload::truth;

fn main() {
    let n = env_scale();
    let (soccer, swimming) = data::single_streams(n);
    let tau = BurstSpan::DAY_SECONDS;
    let day = 86_400u64;

    let bases = [data::single_baseline(&soccer), data::single_baseline(&swimming)];
    let horizon = bed_stream::Timestamp(31 * day);

    let rate: Vec<Vec<(bed_stream::Timestamp, u64)>> = bases
        .iter()
        .map(|b| truth::incoming_rate_series(b, EventId(0), tau, horizon, day))
        .collect();
    let burst: Vec<Vec<(bed_stream::Timestamp, i64)>> =
        bases.iter().map(|b| truth::burstiness_series(b, EventId(0), tau, horizon, day)).collect();

    let rows: Vec<Vec<String>> = (0..rate[0].len())
        .map(|i| {
            vec![
                format!("{}", i), // day index
                rate[0][i].1.to_string(),
                rate[1][i].1.to_string(),
                burst[0][i].1.to_string(),
                burst[1][i].1.to_string(),
            ]
        })
        .collect();

    print_table(
        &format!(
            "Fig. 7: per-day incoming rate and burstiness (soccer N={}, swimming N={}, tau=1 day)",
            soccer.len(),
            swimming.len()
        ),
        ["day", "soccer_rate", "swim_rate", "soccer_burstiness", "swim_burstiness"],
        rows,
    );
}
