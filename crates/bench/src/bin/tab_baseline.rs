//! Baseline cost table (Sections II-B and VI setup): exact storage vs the
//! sketches, with construction and point-query times.
//!
//! Paper anchor: "The baseline method that stores F(t) exactly for the
//! entire olympicrio or uspolitics requires approximately 1GB" (at the
//! authors' 5M-element scale with full metadata); the PBEs use KBs and the
//! CM-PBEs use MBs.

use bed_bench::{data, env_scale, kb, measure, print_table, secs, time};
use bed_pbe::{CurveSketch, Pbe1, Pbe1Config, Pbe2, Pbe2Config};
use bed_sketch::SketchParams;
use bed_stream::{BurstSpan, EventId, ExactBaseline, Timestamp};
use bed_workload::truth;
use std::time::Duration;

fn per_query(d: Duration, q: usize) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e6 / q as f64)
}

fn main() {
    let n = env_scale();
    let tau = BurstSpan::DAY_SECONDS;
    let q = 2_000usize;
    let olympics = data::olympics_stream(n);
    let stream = olympics.stream;
    let events = stream.distinct_events();
    let horizon = Timestamp(bed_workload::olympics::OLYMPICS_HORIZON_SECS);
    let queries = truth::random_point_queries(&events, horizon, q, 3);

    let (baseline, t_base) = time(|| ExactBaseline::from_stream(&stream));
    let (_, t_base_q) = time(|| {
        let mut acc = 0i64;
        for &(e, t) in &queries {
            acc += baseline.point_query(e, t, tau);
        }
        acc
    });

    // Single-stream sketches on the soccer projection.
    let soccer = stream.project(olympics.soccer);
    let (p1, t_p1) = measure::build_pbe1(&soccer, 100, 1_500);
    let (p2, t_p2) = measure::build_pbe2(&soccer, 50.0);
    let (_, t_p1_q) = time(|| {
        let mut acc = 0.0;
        for &(_, t) in &queries {
            acc += p1.estimate_burstiness(t, tau);
        }
        acc
    });
    let (_, t_p2_q) = time(|| {
        let mut acc = 0.0;
        for &(_, t) in &queries {
            acc += p2.estimate_burstiness(t, tau);
        }
        acc
    });

    // Mixed-stream sketches.
    let params = SketchParams::PAPER;
    let (cm1, t_cm1) = measure::build_cmpbe(&stream, params, 5, || {
        Pbe1::new(Pbe1Config { n_buf: 1_500, eta: 32 }).unwrap()
    });
    let (cm2, t_cm2) = measure::build_cmpbe(&stream, params, 5, || {
        Pbe2::new(Pbe2Config { gamma: 16.0, max_vertices: 64 }).unwrap()
    });
    let (_, t_cm1_q) = time(|| {
        let mut acc = 0.0;
        for &(e, t) in &queries {
            acc += cm1.estimate_burstiness(e, t, tau);
        }
        acc
    });
    let (_, t_cm2_q) = time(|| {
        let mut acc = 0.0;
        for &(e, t) in &queries {
            acc += cm2.estimate_burstiness(e, t, tau);
        }
        acc
    });

    let soccer_baseline = data::single_baseline(&soccer);
    let rows = vec![
        vec![
            "exact-baseline (mixed)".to_string(),
            kb(baseline.size_bytes()),
            secs(t_base),
            per_query(t_base_q, q),
            "0".into(),
        ],
        vec![
            "exact-baseline (soccer)".to_string(),
            kb(soccer_baseline.size_bytes()),
            "-".into(),
            "-".into(),
            "0".into(),
        ],
        vec![
            "PBE-1 eta=100 (soccer)".to_string(),
            kb(p1.size_bytes()),
            secs(t_p1),
            per_query(t_p1_q, q),
            format!(
                "{:.1}",
                measure::single_stream_error(&p1, &soccer_baseline, horizon, tau, 200, 4)
            ),
        ],
        vec![
            "PBE-2 gamma=50 (soccer)".to_string(),
            kb(p2.size_bytes()),
            secs(t_p2),
            per_query(t_p2_q, q),
            format!(
                "{:.1}",
                measure::single_stream_error(&p2, &soccer_baseline, horizon, tau, 200, 4)
            ),
        ],
        vec![
            "CM-PBE-1 eta=32 (mixed)".to_string(),
            kb(cm1.size_bytes()),
            secs(t_cm1),
            per_query(t_cm1_q, q),
            format!("{:.1}", measure::cmpbe_error(&cm1, &baseline, &events, horizon, tau, 200, 4)),
        ],
        vec![
            "CM-PBE-2 gamma=16 (mixed)".to_string(),
            kb(cm2.size_bytes()),
            secs(t_cm2),
            per_query(t_cm2_q, q),
            format!("{:.1}", measure::cmpbe_error(&cm2, &baseline, &events, horizon, tau, 200, 4)),
        ],
    ];

    print_table(
        &format!(
            "Baseline cost table (olympicrio N={}, K={}, {} point queries for timing)",
            stream.len(),
            events.len(),
            q
        ),
        ["structure", "space_kb", "build_s", "query_us", "mean_abs_err"],
        rows,
    );

    // Suppress unused warnings for ids used only in docs.
    let _ = EventId(0);
}
