//! Pruning ablation (Section V / VI-D): probe counts and wall time of the
//! dyadic pruned search vs the naive per-event scan, across thresholds.
//!
//! Paper: "in most cases we only need to issue O(log K) point queries,
//! roughly O(1) per level ... rather than O(K)".

use bed_bench::{data, env_scale, print_table, time};
use bed_core::PbeCell;
use bed_hierarchy::DyadicCmPbe;
use bed_pbe::{Pbe2, Pbe2Config};
use bed_sketch::SketchParams;
use bed_stream::{BurstSpan, Timestamp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = env_scale();
    let tau = BurstSpan::DAY_SECONDS;
    let s = data::olympics_stream(n);
    let universe = bed_workload::olympics::OLYMPICS_UNIVERSE;

    let mut forest = DyadicCmPbe::new(universe, SketchParams::PAPER, 23, |_| {
        PbeCell::Two(Pbe2::new(Pbe2Config { gamma: 8.0, max_vertices: 64 }).unwrap())
    })
    .unwrap();
    for el in s.stream.iter() {
        forest.update(el.event, el.ts).unwrap();
    }
    forest.finalize();

    let mut rng = SmallRng::seed_from_u64(5);
    let times: Vec<Timestamp> = (0..30)
        .map(|_| Timestamp(rng.gen_range(86_400..bed_workload::olympics::OLYMPICS_HORIZON_SECS)))
        .collect();

    let mut rows = Vec::new();
    for theta in [50.0f64, 200.0, 1_000.0, 5_000.0] {
        let mut pruned_probes = 0usize;
        let mut pruned_hits = 0usize;
        let (_, t_pruned) = time(|| {
            for &t in &times {
                let (hits, stats) = forest.bursty_events(t, theta, tau);
                pruned_probes += stats.point_queries;
                pruned_hits += hits.len();
            }
        });
        let mut scan_probes = 0usize;
        let mut scan_hits = 0usize;
        let (_, t_scan) = time(|| {
            for &t in &times {
                let (hits, stats) = forest.bursty_events_scan(t, theta, tau);
                scan_probes += stats.point_queries;
                scan_hits += hits.len();
            }
        });
        rows.push(vec![
            format!("{theta}"),
            (pruned_probes / times.len()).to_string(),
            (scan_probes / times.len()).to_string(),
            format!("{:.1}", scan_probes as f64 / pruned_probes.max(1) as f64),
            format!("{:.2}", t_pruned.as_secs_f64() * 1e3 / times.len() as f64),
            format!("{:.2}", t_scan.as_secs_f64() * 1e3 / times.len() as f64),
            pruned_hits.to_string(),
            scan_hits.to_string(),
        ]);
    }

    print_table(
        &format!(
            "Pruning ablation (olympicrio N={}, K={universe}, {} query instants, log2(K')={})",
            s.stream.len(),
            times.len(),
            forest.levels() - 1
        ),
        [
            "theta",
            "pruned_probes",
            "scan_probes",
            "probe_ratio",
            "pruned_ms",
            "scan_ms",
            "pruned_hits",
            "scan_hits",
        ],
        rows,
    );
}
