//! PBE-1 design-choice ablation (Section III-A): the optimal DP selection
//! vs cheaper heuristics at equal point budgets.
//!
//! * `uniform` — keep every ⌈n/η⌉-th corner point;
//! * `largest-jump` — keep the η corners with the largest frequency jumps;
//! * `dp-optimal` — Algorithm 1 (what PBE-1 actually does).
//!
//! Justifies paying the DP: the heuristics are 2–10× worse in area error
//! and visibly worse on burstiness queries.

use bed_bench::{data, env_queries, env_scale, print_table};
use bed_pbe::pbe1::dp;
use bed_stream::curve::{CornerPoint, FrequencyCurve};
use bed_stream::{BurstSpan, EventId, Timestamp};
use bed_workload::truth;

/// Burstiness of a staircase defined by `points` at time t.
fn staircase_burstiness(points: &[CornerPoint], t: Timestamp, tau: BurstSpan) -> f64 {
    let value = |q: Option<Timestamp>| -> f64 {
        let Some(q) = q else { return 0.0 };
        let idx = points.partition_point(|c| c.t <= q);
        if idx == 0 {
            0.0
        } else {
            points[idx - 1].cum as f64
        }
    };
    value(Some(t)) - 2.0 * value(t.checked_sub(tau.ticks())) + value(t.checked_sub(2 * tau.ticks()))
}

fn uniform_selection(n: usize, eta: usize) -> Vec<usize> {
    let mut sel: Vec<usize> = (0..eta).map(|i| i * (n - 1) / (eta - 1)).collect();
    sel.dedup();
    sel
}

fn largest_jump_selection(points: &[CornerPoint], eta: usize) -> Vec<usize> {
    let n = points.len();
    let mut jumps: Vec<(u64, usize)> =
        (1..n - 1).map(|i| (points[i].cum - points[i - 1].cum, i)).collect();
    jumps.sort_unstable_by(|a, b| b.cmp(a));
    let mut sel: Vec<usize> =
        jumps.into_iter().take(eta.saturating_sub(2)).map(|(_, i)| i).collect();
    sel.push(0);
    sel.push(n - 1);
    sel.sort_unstable();
    sel.dedup();
    sel
}

fn main() {
    let n = env_scale();
    let q = env_queries();
    let (soccer, _) = data::single_streams(n);
    let curve = FrequencyCurve::from_stream(&soccer);
    let corners = curve.corners();
    let baseline = data::single_baseline(&soccer);
    let horizon = data::horizon(&soccer);
    let tau = BurstSpan::DAY_SECONDS;
    let queries = truth::random_point_queries(&[EventId(0)], horizon, q, 77);

    let mut rows = Vec::new();
    for eta in [16usize, 64, 256] {
        let strategies: Vec<(&str, Vec<usize>)> = vec![
            ("uniform", uniform_selection(corners.len(), eta)),
            ("largest-jump", largest_jump_selection(corners, eta)),
            ("dp-optimal", dp::solve(corners, eta).chosen),
        ];
        for (name, sel) in strategies {
            let area = dp::selection_cost(corners, &sel);
            let chosen: Vec<CornerPoint> = sel.iter().map(|&i| corners[i]).collect();
            let err = truth::mean_abs_error(&baseline, &queries, tau, |_, t| {
                staircase_burstiness(&chosen, t, tau)
            });
            rows.push(vec![
                eta.to_string(),
                name.to_string(),
                sel.len().to_string(),
                area.to_string(),
                format!("{err:.1}"),
            ]);
        }
    }

    print_table(
        &format!(
            "DP ablation (soccer N={}, n={} corner points, {} queries)",
            soccer.len(),
            corners.len(),
            q
        ),
        ["eta", "strategy", "points", "area_error", "mean_abs_burstiness_err"],
        rows,
    );
}
