//! Bounded-memory soak: drive millions of arrivals through a detector
//! under `--retention` and watch the resident set plateau while an
//! unbounded detector's summary keeps growing.
//!
//! Prints one TSV row per round: arrivals so far, summary bytes of the
//! retained detector, summary bytes of the unretained reference (compare
//! mode only), VmRSS from `/proc/self/status`, and compaction count —
//! the data behind `results/retention.md`'s memory-vs-horizon table.
//!
//! Environment:
//! - `BED_SOAK_N`        total arrivals (default 5,000,000)
//! - `BED_RETENTION`     policy spec `window:budget[:every]`
//!   (default `4096:64:65536`)
//! - `BED_SOAK_ROUNDS`   measurement rounds (default 10)
//! - `BED_SOAK_COMPARE`  `1` = also grow an unretained reference detector
//!   (doubles memory; off by default so the RSS column isolates the
//!   retained detector)
//! - `BED_SOAK_ASSERT`   `1` = exit non-zero unless the retained summary
//!   plateaus (peak over the last half < 25% above the peak over the
//!   first half) and, in compare mode, the unretained summary ends ≥ 8×
//!   the retained peak

use bed_core::{BurstDetector, PbeVariant, RetentionPolicy};
use bed_stream::Timestamp;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1").unwrap_or(false)
}

/// VmRSS in kilobytes, from `/proc/self/status` (0 where unavailable,
/// e.g. non-Linux dev machines — the TSV schema stays stable).
fn rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

fn build(retention: Option<RetentionPolicy>) -> BurstDetector {
    BurstDetector::builder()
        .single_event()
        .variant(PbeVariant::pbe2(0.5))
        .seed(0xBED)
        .retention(retention)
        .build()
        .expect("valid soak configuration")
}

fn main() {
    let n = env_u64("BED_SOAK_N", 5_000_000);
    let spec = std::env::var("BED_RETENTION").unwrap_or_else(|_| "4096:64:65536".into());
    let policy = RetentionPolicy::parse(&spec).expect("BED_RETENTION spec");
    let rounds = env_u64("BED_SOAK_ROUNDS", 10).max(2);
    let compare = env_flag("BED_SOAK_COMPARE");

    let mut retained = build(Some(policy));
    let mut unretained = compare.then(|| build(None));

    // Workload: every tick arrives once, every second tick twice more —
    // distinct per-tick counts, so PLA pruning alone cannot flatten the
    // curve and memory pressure is real.
    let per_round = n / rounds;
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut retained_sizes = Vec::new();
    let mut arrivals = 0u64;
    let mut tick = 0u64;
    while arrivals < n {
        let target = (arrivals + per_round).min(n);
        while arrivals < target {
            let t = Timestamp(tick);
            let burst = if tick.is_multiple_of(2) { 3 } else { 1 };
            for _ in 0..burst {
                retained.ingest_single(t).expect("in-order ingest");
                if let Some(u) = unretained.as_mut() {
                    u.ingest_single(t).expect("in-order ingest");
                }
            }
            arrivals += burst;
            tick += 1;
        }
        retained_sizes.push(retained.size_bytes());
        rows.push(vec![
            arrivals.to_string(),
            tick.to_string(),
            retained.size_bytes().to_string(),
            unretained.as_ref().map_or_else(|| "-".into(), |u| u.size_bytes().to_string()),
            rss_kb().to_string(),
            retained.compactions().to_string(),
        ]);
    }

    bed_bench::print_table(
        format!("retention soak: {arrivals} arrivals under --retention {policy}").as_str(),
        [
            "arrivals",
            "horizon_ticks",
            "retained_bytes",
            "unretained_bytes",
            "rss_kb",
            "compactions",
        ],
        rows,
    );

    if env_flag("BED_SOAK_ASSERT") {
        assert!(retained.compactions() > 0, "soak never compacted — raise BED_SOAK_N");
        // The retained summary sawtooths with the compaction cadence, so
        // single samples are phase-dependent; bounded memory means the
        // sawtooth's *peak* stops climbing. Compare half-peaks.
        let half = retained_sizes.len() / 2;
        let early_peak = *retained_sizes[..half].iter().max().expect("at least two rounds");
        let late_peak = *retained_sizes[half..].iter().max().expect("at least two rounds");
        assert!(
            late_peak <= early_peak + early_peak / 4,
            "retained summary still growing: peak {early_peak} -> {late_peak} bytes over the last half"
        );
        if let Some(u) = &unretained {
            assert!(
                u.size_bytes() >= 8 * late_peak,
                "expected >=8x separation, unretained {} vs retained peak {late_peak}",
                u.size_bytes()
            );
        }
        eprintln!(
            "soak assertions passed: retained peak bounded at {late_peak} bytes after {arrivals} arrivals"
        );
    }
}
