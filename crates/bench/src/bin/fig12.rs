//! Figure 12 — bursty event detection: precision and recall vs space on
//! both datasets, using the dyadic hierarchy of Section V.
//!
//! Paper: high precision and recall at small space; recall generally beats
//! precision (collisions can fake bursts, but a real burst is rarely
//! missed); olympicrio beats uspolitics at equal space.

use bed_bench::{data, env_scale, print_table, time};
use bed_hierarchy::DyadicCmPbe;
use bed_pbe::{Pbe1, Pbe1Config, Pbe2, Pbe2Config};
use bed_sketch::SketchParams;
use bed_stream::{BurstSpan, ExactBaseline, Timestamp};
use bed_workload::truth;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = env_scale();
    let tau = BurstSpan::DAY_SECONDS;
    let params = SketchParams::PAPER;
    let queries = 40usize;

    for (name, stream, universe, horizon) in [
        (
            "olympicrio",
            data::olympics_stream(n).stream,
            bed_workload::olympics::OLYMPICS_UNIVERSE,
            bed_workload::olympics::OLYMPICS_HORIZON_SECS,
        ),
        (
            "uspolitics",
            data::politics_stream(n).stream,
            bed_workload::politics::POLITICS_UNIVERSE,
            bed_workload::politics::POLITICS_HORIZON_SECS,
        ),
    ] {
        let (baseline, _) = time(|| ExactBaseline::from_stream(&stream));

        // Draw query instants from the active period and thresholds from the
        // observed burstiness range ("we generated a set of burstiness
        // thresholds θ from the range of possible burstiness values").
        let mut rng = SmallRng::seed_from_u64(99);
        let max_b = {
            let mut m = 1i64;
            for e in baseline.events().collect::<Vec<_>>() {
                for d in 1..(horizon / 86_400) {
                    m = m.max(baseline.point_query(e, Timestamp(d * 86_400), tau));
                }
            }
            m
        };
        let query_set: Vec<(Timestamp, i64)> = (0..queries)
            .map(|_| {
                let t = Timestamp(rng.gen_range(86_400..horizon));
                let theta = rng.gen_range((max_b / 200).max(1)..=(max_b / 10).max(2));
                (t, theta)
            })
            .collect();

        let mut rows = Vec::new();
        for (eta, gamma) in [(4usize, 1024.0f64), (8, 256.0), (16, 64.0), (32, 16.0), (64, 4.0)] {
            for variant in ["CM-PBE-1", "CM-PBE-2"] {
                let forest: DyadicCmPbe<bed_core::PbeCell> = {
                    let mut f = DyadicCmPbe::new(universe, params, 13, |_| match variant {
                        "CM-PBE-1" => bed_core::PbeCell::One(
                            Pbe1::new(Pbe1Config { n_buf: 1_500, eta }).unwrap(),
                        ),
                        _ => bed_core::PbeCell::Two(
                            Pbe2::new(Pbe2Config { gamma, max_vertices: 64 }).unwrap(),
                        ),
                    })
                    .unwrap();
                    for el in stream.iter() {
                        f.update(el.event, el.ts).unwrap();
                    }
                    f.finalize();
                    f
                };
                let mut p_sum = 0.0;
                let mut r_sum = 0.0;
                for &(t, theta) in &query_set {
                    let (hits, _) = forest.bursty_events(t, theta as f64, tau);
                    let reported: Vec<_> = hits.iter().map(|h| h.event).collect();
                    let pr = truth::precision_recall(&baseline, &reported, t, theta, tau);
                    p_sum += pr.precision;
                    r_sum += pr.recall;
                }
                rows.push(vec![
                    variant.to_string(),
                    format!("{:.2}", forest.size_bytes() as f64 / (1024.0 * 1024.0)),
                    format!("{:.3}", p_sum / queries as f64),
                    format!("{:.3}", r_sum / queries as f64),
                ]);
            }
        }
        print_table(
            &format!(
                "Fig. 12 ({name}): bursty event detection, precision/recall vs space (N={}, K={universe}, {} queries)",
                stream.len(),
                queries
            ),
            ["variant", "space_mb", "precision", "recall"],
            rows,
        );
    }
}
