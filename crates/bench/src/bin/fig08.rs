//! Figure 8 — PBE-1 parameter study: space, construction time, and point
//! query accuracy as functions of η (soccer and swimming single streams,
//! n_buf = 1,500 as in the paper).

use bed_bench::{data, env_queries, env_scale, kb, measure, print_table, secs};
use bed_pbe::CurveSketch;
use bed_stream::BurstSpan;

fn main() {
    let n = env_scale();
    let q = env_queries();
    let (soccer, swimming) = data::single_streams(n);
    let tau = BurstSpan::DAY_SECONDS;
    let etas = [10usize, 50, 100, 200, 400, 700];

    let mut rows = Vec::new();
    for &eta in &etas {
        let mut cells = vec![eta.to_string()];
        for (name, stream) in [("soccer", &soccer), ("swimming", &swimming)] {
            let baseline = data::single_baseline(stream);
            let horizon = data::horizon(stream);
            let (pbe, dt) = measure::build_pbe1(stream, eta, 1_500);
            let err = measure::single_stream_error(&pbe, &baseline, horizon, tau, q, 8);
            let _ = name;
            cells.push(kb(pbe.size_bytes()));
            cells.push(secs(dt));
            cells.push(format!("{err:.1}"));
        }
        rows.push(cells);
    }

    print_table(
        &format!(
            "Fig. 8: PBE-1 vs eta (soccer N={}, swimming N={}, n_buf=1500, {} random queries)",
            soccer.len(),
            swimming.len(),
            q
        ),
        [
            "eta",
            "soccer_space_kb",
            "soccer_build_s",
            "soccer_err",
            "swim_space_kb",
            "swim_build_s",
            "swim_err",
        ],
        rows,
    );
}
