//! estorm-style HTML report (the paper's web demo at estorm.org, Fig. 13):
//! a self-contained SVG timeline of Democrat vs Republican burstiness with
//! the major "national moments" circled on top of their bursts, plus the
//! run's `bed-obs` metrics snapshot (ingest/query latency histograms and
//! structural gauges) for the detector that produced the timeline.
//!
//! Writes `results/report.html`; open it in any browser.

use std::fmt::Write as _;

use bed_bench::{data, env_scale};
use bed_core::{BurstDetector, PbeVariant, QueryStrategy};
use bed_sketch::SketchParams;
use bed_stream::{BurstSpan, Timestamp};
use bed_workload::politics::{Party, POLITICS_HORIZON_SECS, POLITICS_UNIVERSE};

const WIDTH: f64 = 1100.0;
const HEIGHT: f64 = 360.0;
const MARGIN: f64 = 50.0;

fn main() -> std::io::Result<()> {
    let n = env_scale();
    let tau = BurstSpan::DAY_SECONDS;
    let s = data::politics_stream(n);

    let mut det = BurstDetector::builder()
        .universe(POLITICS_UNIVERSE)
        .variant(PbeVariant::pbe2(8.0))
        .accuracy(SketchParams::PAPER.epsilon, SketchParams::PAPER.delta)
        .seed(17)
        .build()
        .expect("paper params are valid");
    for el in s.stream.iter() {
        det.ingest(el.event, el.ts).expect("generator stays in universe");
    }
    det.finalize();

    let theta = (n as f64 * 5e-5).max(2.0);
    let days = POLITICS_HORIZON_SECS / 86_400;
    let mut dem_series = Vec::new();
    let mut rep_series = Vec::new();
    for d in 1..days {
        let t = Timestamp(d * 86_400 + 43_200);
        let (hits, _) = det
            .bursty_events_with(t, theta, tau, QueryStrategy::Pruned)
            .expect("theta is positive and finite");
        let (mut dem, mut rep) = (0.0, 0.0);
        for h in &hits {
            match s.party_of(h.event) {
                Party::Democrat => dem += h.burstiness,
                Party::Republican => rep += h.burstiness,
            }
        }
        dem_series.push((d, dem));
        rep_series.push((d, rep));
    }

    let max_b = dem_series.iter().chain(rep_series.iter()).map(|&(_, b)| b).fold(1.0f64, f64::max);
    let x = |day: u64| MARGIN + (day as f64 / days as f64) * (WIDTH - 2.0 * MARGIN);
    let y = |b: f64| HEIGHT - MARGIN - (b / max_b) * (HEIGHT - 2.0 * MARGIN);

    let polyline = |series: &[(u64, f64)]| -> String {
        series
            .iter()
            .map(|&(d, b)| format!("{:.1},{:.1}", x(d), y(b)))
            .collect::<Vec<_>>()
            .join(" ")
    };

    let mut svg = String::new();
    // axes
    let _ = write!(
        svg,
        r##"<line x1="{m}" y1="{h}" x2="{w}" y2="{h}" stroke="#888"/>
<line x1="{m}" y1="{m}" x2="{m}" y2="{h}" stroke="#888"/>"##,
        m = MARGIN,
        h = HEIGHT - MARGIN,
        w = WIDTH - MARGIN
    );
    // month ticks every 30 days
    for d in (0..days).step_by(30) {
        let _ = write!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" font-size="11" fill="#555" text-anchor="middle">day {d}</text>"##,
            x(d),
            HEIGHT - MARGIN + 18.0
        );
    }
    // series
    let _ = write!(
        svg,
        r##"<polyline points="{}" fill="none" stroke="#1f77b4" stroke-width="1.6"/>
<polyline points="{}" fill="none" stroke="#d62728" stroke-width="1.6"/>"##,
        polyline(&dem_series),
        polyline(&rep_series)
    );
    // national-moment circles ("we have marked major event happenings with
    // circle on top of its bursts")
    for &(day, party) in &s.national_moments {
        let series = match party {
            Party::Democrat => &dem_series,
            Party::Republican => &rep_series,
        };
        if let Some(&(_, b)) = series.iter().find(|&&(d, _)| d == day) {
            let colour = match party {
                Party::Democrat => "#1f77b4",
                Party::Republican => "#d62728",
            };
            let _ = write!(
                svg,
                r##"<circle cx="{:.1}" cy="{:.1}" r="7" fill="none" stroke="{colour}" stroke-width="2"/>"##,
                x(day),
                y(b)
            );
        }
    }

    // bed-obs snapshot of the run that produced the figure: every ingest,
    // each day's bursty-event query, and the finished structure's gauges.
    let metrics_text = det.metrics().to_text();

    // Latest recorded query-kernel numbers, if a perf run has been logged.
    let query_perf = std::fs::read_to_string("results/query_throughput.md")
        .map(|md| {
            format!(
                r##"<h3>Query-kernel throughput (recorded)</h3>
<pre style="font-size: 12px; background: #f6f6f6; padding: 1em; overflow-x: auto;">{md}</pre>"##
            )
        })
        .unwrap_or_default();

    let html = format!(
        r##"<!doctype html>
<html><head><meta charset="utf-8"><title>bed — burst timeline</title></head>
<body style="font-family: sans-serif; max-width: {WIDTH}px; margin: 2em auto;">
<h2>Bursty event timeline — uspolitics-like stream</h2>
<p>N = {n_actual} elements, K = {k} events, &tau; = 1 day, &theta; = {theta:.0}.
Detected with a CM-PBE-2-backed dyadic hierarchy
(<span style="color:#1f77b4">&#9632; Democrat</span>,
<span style="color:#d62728">&#9632; Republican</span>; circles mark planted
national moments — conventions, debates, election day).</p>
<svg width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">{svg}</svg>
<h3>Run metrics (bed-obs)</h3>
<pre style="font-size: 12px; background: #f6f6f6; padding: 1em; overflow-x: auto;">{metrics_text}</pre>
{query_perf}
<p style="color:#777">Generated by <code>bed-bench::report</code>, after Fig. 13
of Paul, Peng &amp; Li, ICDE 2019 (estorm.org).</p>
</body></html>
"##,
        n_actual = s.stream.len(),
        k = POLITICS_UNIVERSE,
    );

    std::fs::create_dir_all("results")?;
    std::fs::write("results/report.html", html)?;
    println!("wrote results/report.html ({} days, max party burstiness {max_b:.0})", days);
    Ok(())
}
