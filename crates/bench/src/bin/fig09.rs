//! Figure 9 — PBE-2 parameter study: space, construction time, and point
//! query accuracy as functions of γ.
//!
//! Paper: space drops steeply as γ grows, then flattens once only the large
//! bursts remain; construction stays in fractions of a second; error grows
//! roughly linearly in γ and sits well under the 4γ bound.

use bed_bench::{data, env_queries, env_scale, kb, measure, print_table};
use bed_pbe::CurveSketch;
use bed_stream::BurstSpan;

fn main() {
    let n = env_scale();
    let q = env_queries();
    let (soccer, swimming) = data::single_streams(n);
    let tau = BurstSpan::DAY_SECONDS;
    let gammas = [2.0f64, 10.0, 50.0, 100.0, 200.0, 500.0];

    let mut rows = Vec::new();
    for &gamma in &gammas {
        let mut cells = vec![format!("{gamma}")];
        for stream in [&soccer, &swimming] {
            let baseline = data::single_baseline(stream);
            let horizon = data::horizon(stream);
            let (pbe, dt) = measure::build_pbe2(stream, gamma);
            let err = measure::single_stream_error(&pbe, &baseline, horizon, tau, q, 9);
            cells.push(kb(pbe.size_bytes()));
            cells.push(format!("{:.1}", dt.as_secs_f64() * 1e3)); // ms
            cells.push(format!("{err:.1}"));
        }
        rows.push(cells);
    }

    print_table(
        &format!(
            "Fig. 9: PBE-2 vs gamma (soccer N={}, swimming N={}, {} random queries)",
            soccer.len(),
            swimming.len(),
            q
        ),
        [
            "gamma",
            "soccer_space_kb",
            "soccer_build_ms",
            "soccer_err",
            "swim_space_kb",
            "swim_build_ms",
            "swim_err",
        ],
        rows,
    );
}
