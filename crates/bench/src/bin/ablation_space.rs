//! Space-model ablation (Section IV cost analysis): the paper argues the
//! CM-PBE space is `O((N/Δ + 1/ε)·log(1/δ))` — the `N/Δ` factor being the
//! improvement over a naive `N`-scaling ("the Δ-factor improvement on the
//! space is significant as Δ is an additive error controlled by user").
//!
//! This binary measures both halves:
//!   (a) fixed γ, growing N   → sketch size grows sub-linearly in N when
//!       the extra volume rides existing trends (more arrivals, similar
//!       curve shapes);
//!   (b) fixed N, growing γ   → size shrinks ~1/γ until only macro-bursts
//!       remain.

use bed_bench::{data, measure, print_table};
use bed_pbe::{Pbe2, Pbe2Config};
use bed_sketch::SketchParams;

fn main() {
    // (a) size vs N at fixed per-cell error budget
    let mut rows = Vec::new();
    for n in [125_000u64, 250_000, 500_000, 1_000_000] {
        let stream = data::olympics_stream(n).stream;
        let (cm, _) = measure::build_cmpbe(&stream, SketchParams::PAPER, 5, || {
            Pbe2::new(Pbe2Config { gamma: 32.0, max_vertices: 64 }).unwrap()
        });
        rows.push(vec![
            n.to_string(),
            stream.len().to_string(),
            (cm.size_bytes() / 1024).to_string(),
            format!("{:.3}", cm.size_bytes() as f64 / stream.len() as f64),
        ]);
    }
    print_table(
        "Space model (a): CM-PBE-2 size vs N at fixed gamma=32 (olympicrio)",
        ["target_n", "actual_n", "size_kb", "bytes_per_element"],
        rows,
    );

    // (b) size vs γ at fixed N — the 1/Δ law
    let stream = data::olympics_stream(500_000).stream;
    let mut rows = Vec::new();
    let mut last_size = 0usize;
    for gamma in [8.0f64, 16.0, 32.0, 64.0, 128.0, 256.0] {
        let (cm, _) = measure::build_cmpbe(&stream, SketchParams::PAPER, 5, || {
            Pbe2::new(Pbe2Config { gamma, max_vertices: 64 }).unwrap()
        });
        let size = cm.size_bytes();
        rows.push(vec![
            format!("{gamma}"),
            (size / 1024).to_string(),
            if last_size == 0 {
                "-".to_string()
            } else {
                format!("{:.2}", last_size as f64 / size as f64)
            },
        ]);
        last_size = size;
    }
    print_table(
        &format!(
            "Space model (b): CM-PBE-2 size vs gamma at N={} — doubling gamma should roughly halve the size until macro-bursts dominate",
            stream.len()
        ),
        ["gamma", "size_kb", "shrink_vs_prev"],
        rows,
    );
}
