//! Figure 10 — single event stream head-to-head.
//!
//! (a) PBE-1 vs PBE-2 at equal space: sweep η for PBE-1, then binary-search
//!     γ so PBE-2 matches the byte budget; report both errors.
//!     Paper: both are accurate; PBE-1 always enjoys better quality.
//! (b) error vs n (points in the exact curve) at a fixed ~1 KB budget:
//!     grow the stream prefix, fit both sketches into 1 KB, report errors.
//!     Paper: error rises with n, stepping up where the incoming rate shifts.

use bed_bench::{data, env_queries, env_scale, measure, print_table};
use bed_pbe::CurveSketch;
use bed_stream::{BurstSpan, SingleEventStream};

fn main() {
    let n = env_scale();
    let q = env_queries();
    let (soccer, swimming) = data::single_streams(n);
    let tau = BurstSpan::DAY_SECONDS;

    // (a) space vs accuracy at equal budgets
    let mut rows = Vec::new();
    for &eta in &[25usize, 50, 100, 200, 400] {
        let mut cells = Vec::new();
        let mut budget_kb = 0.0;
        for stream in [&soccer, &swimming] {
            let baseline = data::single_baseline(stream);
            let horizon = data::horizon(stream);
            let (p1, _) = measure::build_pbe1(stream, eta, 1_500);
            let budget = p1.size_bytes();
            budget_kb = budget as f64 / 1024.0;
            let p2 = measure::pbe2_for_budget(stream, budget);
            let e1 = measure::single_stream_error(&p1, &baseline, horizon, tau, q, 10);
            let e2 = measure::single_stream_error(&p2, &baseline, horizon, tau, q, 10);
            cells.push(format!("{e1:.1}"));
            cells.push(format!("{e2:.1}"));
            cells.push(format!("{:.1}", p2.size_bytes() as f64 / 1024.0));
        }
        let mut row = vec![eta.to_string(), format!("{budget_kb:.1}")];
        row.extend(cells);
        rows.push(row);
    }
    print_table(
        &format!(
            "Fig. 10a: equal-space accuracy, PBE-1 vs PBE-2 (soccer N={}, swimming N={})",
            soccer.len(),
            swimming.len()
        ),
        [
            "eta",
            "space_kb",
            "soccer_err_pbe1",
            "soccer_err_pbe2",
            "soccer_pbe2_kb",
            "swim_err_pbe1",
            "swim_err_pbe2",
            "swim_pbe2_kb",
        ],
        rows,
    );

    // (b) n vs accuracy at ~1 KB
    let budget = 1_024usize;
    let mut rows = Vec::new();
    for frac in [0.2, 0.4, 0.6, 0.8, 1.0f64] {
        let mut cells = Vec::new();
        let mut ns = Vec::new();
        for stream in [&soccer, &swimming] {
            let prefix = prefix_stream(stream, frac);
            let baseline = data::single_baseline(&prefix);
            let horizon = data::horizon(&prefix);
            let n_points = bed_stream::curve::FrequencyCurve::from_stream(&prefix).n_points();
            ns.push(n_points);
            // PBE-1: pick η so total summary ≈ budget (η per buffer of 1500
            // points → κ·n points total → bytes = 16·κ·n).
            let keep_points = (budget / 16).max(4);
            let buffers = n_points.div_ceil(1_500);
            let eta = (keep_points / buffers.max(1)).max(2);
            let (p1, _) = measure::build_pbe1(&prefix, eta, 1_500);
            let p2 = measure::pbe2_for_budget(&prefix, budget);
            let e1 = measure::single_stream_error(&p1, &baseline, horizon, tau, q, 11);
            let e2 = measure::single_stream_error(&p2, &baseline, horizon, tau, q, 11);
            cells.push(format!("{e1:.1}"));
            cells.push(format!("{e2:.1}"));
            cells.push((p1.size_bytes() / 16).to_string());
        }
        let mut row = vec![format!("{frac}"), ns[0].to_string(), ns[1].to_string()];
        row.extend(cells);
        rows.push(row);
    }
    print_table(
        "Fig. 10b: error vs n at ~1 KB per sketch",
        [
            "prefix_frac",
            "soccer_n",
            "swim_n",
            "soccer_err_pbe1",
            "soccer_err_pbe2",
            "soccer_points",
            "swim_err_pbe1",
            "swim_err_pbe2",
            "swim_points",
        ],
        rows,
    );
}

/// First `frac` of the stream by element count.
fn prefix_stream(stream: &SingleEventStream, frac: f64) -> SingleEventStream {
    let keep = ((stream.len() as f64 * frac) as usize).max(1);
    SingleEventStream::from_sorted(stream.timestamps()[..keep].to_vec()).expect("sorted prefix")
}
