//! Figure 13 — the uspolitics burst timeline: per-day aggregate burstiness
//! of Democrat vs Republican events, detected with the dyadic hierarchy.
//!
//! Paper: intermittent spikes through the campaign; e.g. "our method
//! successfully detected the burst right around the start of the republican
//! party national convention on July 18" (day ≈ 48 of the horizon).

use bed_bench::{data, env_scale, print_table};
use bed_core::PbeCell;
use bed_hierarchy::DyadicCmPbe;
use bed_pbe::{Pbe2, Pbe2Config};
use bed_sketch::SketchParams;
use bed_stream::{BurstSpan, Timestamp};
use bed_workload::politics::{Party, POLITICS_HORIZON_SECS, POLITICS_UNIVERSE};

fn main() {
    let n = env_scale();
    let tau = BurstSpan::DAY_SECONDS;
    let s = data::politics_stream(n);

    let mut forest = DyadicCmPbe::new(POLITICS_UNIVERSE, SketchParams::PAPER, 17, |_| {
        PbeCell::Two(Pbe2::new(Pbe2Config { gamma: 8.0, max_vertices: 64 }).unwrap())
    })
    .unwrap();
    for el in s.stream.iter() {
        forest.update(el.event, el.ts).unwrap();
    }
    forest.finalize();

    // θ scaled to the stream volume: a day-over-day acceleration of 0.005%
    // of the stream is "a burst worth plotting".
    let theta = (n as f64 * 5e-5).max(2.0);
    let days = POLITICS_HORIZON_SECS / 86_400;

    let mut rows = Vec::new();
    for d in 1..days {
        let t = Timestamp(d * 86_400 + 43_200);
        let (hits, _) = forest.bursty_events(t, theta, tau);
        let mut dem = 0.0;
        let mut rep = 0.0;
        let mut dem_events = 0usize;
        let mut rep_events = 0usize;
        for h in &hits {
            match s.party_of(h.event) {
                Party::Democrat => {
                    dem += h.burstiness;
                    dem_events += 1;
                }
                Party::Republican => {
                    rep += h.burstiness;
                    rep_events += 1;
                }
            }
        }
        let moment: Vec<String> = s
            .national_moments
            .iter()
            .filter(|&&(md, _)| md == d)
            .map(|&(_, p)| format!("{p:?}"))
            .collect();
        rows.push(vec![
            d.to_string(),
            format!("{dem:.0}"),
            format!("{rep:.0}"),
            dem_events.to_string(),
            rep_events.to_string(),
            moment.join("+"),
        ]);
    }

    print_table(
        &format!(
            "Fig. 13: Democrat/Republican burst timeline (N={}, K={}, theta={theta:.0}, tau=1 day)",
            s.stream.len(),
            POLITICS_UNIVERSE
        ),
        [
            "day",
            "dem_burstiness",
            "rep_burstiness",
            "dem_bursty_events",
            "rep_bursty_events",
            "national_moment",
        ],
        rows,
    );
}
