//! Figure 11 — CM-PBE space vs accuracy on the two mixed datasets
//! (ε = 0.005, δ = 0.02 as in Section VI-C).
//!
//! Paper: both CM-PBE variants reach errors in the hundreds (vs burstiness
//! values up to tens of thousands) with megabyte-scale sketches; uspolitics
//! suffers more at small budgets because of its popularity skew.

use bed_bench::{data, env_queries, env_scale, measure, print_table, time};
use bed_pbe::{Pbe1, Pbe1Config, Pbe2, Pbe2Config};
use bed_sketch::SketchParams;
use bed_stream::{BurstSpan, ExactBaseline};

fn main() {
    let n = env_scale();
    let q = env_queries();
    let tau = BurstSpan::DAY_SECONDS;
    let params = SketchParams::PAPER;

    for (name, stream, horizon) in [
        (
            "olympicrio",
            data::olympics_stream(n).stream,
            bed_workload::olympics::OLYMPICS_HORIZON_SECS,
        ),
        (
            "uspolitics",
            data::politics_stream(n).stream,
            bed_workload::politics::POLITICS_HORIZON_SECS,
        ),
    ] {
        let (baseline, _) = time(|| ExactBaseline::from_stream(&stream));
        let events = stream.distinct_events();
        let horizon = bed_stream::Timestamp(horizon);

        let mut rows = Vec::new();
        // Sweep per-cell budgets: η for CM-PBE-1, γ for CM-PBE-2.
        for (eta, gamma) in [(8usize, 256.0f64), (16, 64.0), (32, 16.0), (64, 4.0), (128, 1.0)] {
            let (cm1, t1) = measure::build_cmpbe(&stream, params, 5, || {
                Pbe1::new(Pbe1Config { n_buf: 1_500, eta }).unwrap()
            });
            let e1 = measure::cmpbe_error(&cm1, &baseline, &events, horizon, tau, q, 21);
            let (cm2, t2) = measure::build_cmpbe(&stream, params, 5, || {
                Pbe2::new(Pbe2Config { gamma, max_vertices: 64 }).unwrap()
            });
            let e2 = measure::cmpbe_error(&cm2, &baseline, &events, horizon, tau, q, 21);
            rows.push(vec![
                eta.to_string(),
                format!("{:.2}", cm1.size_bytes() as f64 / (1024.0 * 1024.0)),
                format!("{e1:.1}"),
                format!("{:.1}", t1.as_secs_f64()),
                format!("{gamma}"),
                format!("{:.2}", cm2.size_bytes() as f64 / (1024.0 * 1024.0)),
                format!("{e2:.1}"),
                format!("{:.1}", t2.as_secs_f64()),
            ]);
        }
        print_table(
            &format!(
                "Fig. 11 ({name}): CM-PBE space vs accuracy (N={}, K={}, eps={}, delta={}, {} queries)",
                stream.len(),
                events.len(),
                params.epsilon,
                params.delta,
                q
            ),
            [
                "eta",
                "cmpbe1_mb",
                "cmpbe1_err",
                "cmpbe1_build_s",
                "gamma",
                "cmpbe2_mb",
                "cmpbe2_err",
                "cmpbe2_build_s",
            ],
            rows,
        );
    }
}
