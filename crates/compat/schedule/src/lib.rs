//! Offline, std-only schedule permuter for single-stepped concurrency
//! protocols — a loom-flavoured tester that works without crates.io.
//!
//! Real model checkers (loom, shuttle) intercept every atomic operation
//! and explore thread interleavings. This workspace cannot vendor them,
//! but the protocols under test here (the `bed-core` epoch seqlock) have
//! a much smaller state space: a **single writer** whose only action is
//! "publish the next generation", and a reader whose protocol exposes
//! explicit yield points. Every observable interleaving is then fully
//! described by *how many publishes land at each reader yield point* — a
//! finite sequence of small integers. A [`Schedule`] is that sequence;
//! [`exhaustive`] enumerates **all** of them up to a bound (exact
//! coverage of the small schedules, the loom discipline), and
//! [`ScheduleGen`] draws unbounded seeded random ones for soak-style
//! sweeps on top.
//!
//! The driver owns the actual protocol actions; this crate only supplies
//! deterministic counts:
//!
//! ```
//! use schedule::exhaustive;
//!
//! let mut covered = 0;
//! for mut s in exhaustive(2, 3) {
//!     // at each yield point the driver performs s.next() publishes
//!     let counts: Vec<usize> = std::iter::from_fn(|| Some(s.next())).take(3).collect();
//!     assert!(counts.iter().all(|&c| c <= 2));
//!     covered += 1;
//! }
//! assert_eq!(covered, 27); // (2+1)^3 — every interleaving, exactly once
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One interleaving: a finite sequence of per-yield-point action counts,
/// consumed left to right. Once exhausted, [`Schedule::next`] returns 0 —
/// the protocol run simply sees no further injected actions, so drivers
/// never need to know how many yield points a run will hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    actions: Vec<usize>,
    cursor: usize,
}

impl Schedule {
    /// A schedule from an explicit count sequence.
    pub fn new(actions: Vec<usize>) -> Self {
        Schedule { actions, cursor: 0 }
    }

    /// Actions to perform at the current yield point (0 when exhausted).
    pub fn next(&mut self) -> usize {
        let n = self.actions.get(self.cursor).copied().unwrap_or(0);
        self.cursor += 1;
        n
    }

    /// Yield points consumed so far.
    pub fn consumed(&self) -> usize {
        self.cursor
    }

    /// The counts not yet consumed.
    pub fn remaining(&self) -> &[usize] {
        self.actions.get(self.cursor.min(self.actions.len())..).unwrap_or(&[])
    }
}

/// Iterator over **every** schedule of exactly `steps` yield points with
/// at most `max_actions` actions each — `(max_actions + 1)^steps`
/// schedules, enumerated in lexicographic order (all-zeros first). This
/// is the exhaustive small-schedule sweep: if a protocol invariant can be
/// broken by any interleaving within the bound, some yielded schedule
/// breaks it.
pub fn exhaustive(max_actions: usize, steps: usize) -> Exhaustive {
    Exhaustive { max_actions, counts: vec![0; steps], done: false }
}

/// Iterator returned by [`exhaustive`].
#[derive(Debug, Clone)]
pub struct Exhaustive {
    max_actions: usize,
    counts: Vec<usize>,
    done: bool,
}

impl Iterator for Exhaustive {
    type Item = Schedule;

    fn next(&mut self) -> Option<Schedule> {
        if self.done {
            return None;
        }
        let out = Schedule::new(self.counts.clone());
        // Increment the base-(max_actions + 1) odometer, least significant
        // digit last (lexicographic order over the emitted sequences).
        let mut i = self.counts.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.counts[i] < self.max_actions {
                self.counts[i] += 1;
                break;
            }
            self.counts[i] = 0;
        }
        // A zero-step space still yields its one (empty) schedule once.
        if self.counts.is_empty() {
            self.done = true;
        }
        Some(out)
    }
}

/// Seeded random schedule source (xorshift64*; deterministic per seed) —
/// the soak companion to [`exhaustive`] for spaces too large to
/// enumerate. The distribution is biased toward 0 actions per step so
/// generated runs look like real executions (publishes racing a read are
/// rare) while still covering multi-publish laps.
#[derive(Debug, Clone)]
pub struct ScheduleGen {
    state: u64,
}

impl ScheduleGen {
    /// A generator seeded with `seed` (0 is remapped — xorshift needs a
    /// non-zero state).
    pub fn new(seed: u64) -> Self {
        ScheduleGen { state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64* — tiny, seedable, plenty for schedule sampling.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Draws one schedule of `steps` yield points with counts in
    /// `0..=max_actions`, roughly half of the steps quiet.
    pub fn schedule(&mut self, max_actions: usize, steps: usize) -> Schedule {
        let actions = (0..steps)
            .map(|_| {
                let r = self.next_u64();
                if r & 1 == 0 {
                    0
                } else {
                    ((r >> 1) % (max_actions as u64 + 1)) as usize
                }
            })
            .collect();
        Schedule::new(actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_enumerates_every_sequence_once() {
        let all: Vec<Vec<usize>> = exhaustive(2, 3).map(|s| s.remaining().to_vec()).collect();
        assert_eq!(all.len(), 27);
        assert_eq!(all[0], [0, 0, 0]);
        assert_eq!(all[26], [2, 2, 2]);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 27, "no duplicates");
    }

    #[test]
    fn zero_step_space_has_exactly_the_empty_schedule() {
        let all: Vec<Schedule> = exhaustive(3, 0).collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].remaining(), &[] as &[usize]);
    }

    #[test]
    fn schedules_read_zero_past_the_end() {
        let mut s = Schedule::new(vec![2, 1]);
        assert_eq!((s.next(), s.next(), s.next(), s.next()), (2, 1, 0, 0));
        assert_eq!(s.consumed(), 4);
    }

    #[test]
    fn generator_is_deterministic_and_bounded() {
        let a = ScheduleGen::new(42).schedule(5, 100);
        let b = ScheduleGen::new(42).schedule(5, 100);
        assert_eq!(a, b);
        assert!(a.remaining().iter().all(|&c| c <= 5));
        assert!(a.remaining().iter().any(|&c| c == 0), "biased toward quiet steps");
        let c = ScheduleGen::new(43).schedule(5, 100);
        assert_ne!(a, c, "different seeds diverge");
    }
}
