//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a tiny API-compatible implementation instead of the
//! real dependency: [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64),
//! the [`Rng`] extension trait with `gen` / `gen_range` / `gen_bool`, and
//! [`SeedableRng::seed_from_u64`]. Workload generators only need a fast,
//! seedable, statistically-decent source — they do not depend on the exact
//! output sequence of upstream `rand`, which this crate does **not**
//! reproduce.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore` ("standard"
/// distribution in upstream terms).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types [`Rng::gen_range`] can draw uniformly from a range.
///
/// Mirrors upstream's `SampleUniform`: the blanket [`SampleRange`] impls
/// below are what let `gen_range(0..3)` infer its integer type from the
/// surrounding expression instead of falling back to `i32`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    /// Panics on an empty range.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let ok = if inclusive { lo <= hi } else { lo < hi };
                assert!(ok, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
        assert!(lo < hi, "cannot sample from an empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing convenience methods, blanket-implemented for every bit
/// source (mirrors upstream's extension-trait design).
pub trait Rng: RngCore {
    /// Uniform sample of `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1], got {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructible from a small integer seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator — xoshiro256++ with SplitMix64
    /// seed expansion (the same construction upstream's `SmallRng` family
    /// uses on 64-bit targets, though the exact output stream differs).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let z = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&z));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((4_000..6_000).contains(&hits), "{hits}");
    }

    #[test]
    fn unsized_rng_is_usable_through_generics() {
        fn takes_dyn<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(takes_dyn(&mut rng) < 100);
    }
}
