//! Offline stand-in for the subset of the `criterion` crate this
//! workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a tiny API-compatible harness: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`Throughput`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark calibrates an
//! iteration count against a wall-clock budget
//! (`measurement_time / sample_size` scaled), then reports the mean time
//! per iteration and, when a [`Throughput`] is set, the implied rate.
//! There is no statistical analysis, outlier rejection, or HTML report —
//! one line per benchmark on stdout, which is what `results/` captures.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value barrier, as upstream offers.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How much work a single benchmark iteration represents.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Hint for how much setup output to buffer in `iter_batched`.
///
/// The stub runs one setup per timed invocation regardless, so the
/// variants only exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier, optionally parameterised (`"cht/1024"`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter into `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Uses the parameter alone as the identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Top-level benchmark harness configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards its trailing arguments here;
        // flags like `--bench` that cargo itself injects are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { sample_size: 100, measurement_time: Duration::from_secs(1), filter }
    }
}

impl Criterion {
    /// Sets the nominal sample count (scales the per-benchmark budget).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    fn budget(&self) -> Duration {
        // Upstream spends roughly measurement_time per benchmark and
        // scales with sample_size; mirror that coarsely so
        // `sample_size(10)` keeps CI-sized runs quick.
        self.measurement_time.mul_f64((self.sample_size as f64 / 100.0).clamp(0.05, 1.0))
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let budget = self.budget();
        let filter = self.filter.clone();
        run_one(&filter, "", &id.into().id, None, budget, f);
    }

    /// Upstream prints a summary here; the stub has nothing buffered.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration of subsequent benchmarks does.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the nominal sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let budget = self.criterion.budget();
        let filter = self.criterion.filter.clone();
        run_one(&filter, &self.name, &id.into().id, self.throughput, budget, f);
    }

    /// Runs one benchmark that borrows a shared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (drop does the same; provided for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures to time the routine under test.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back-to-back until the budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.budget {
                self.iters = iters;
                self.elapsed = elapsed;
                return;
            }
        }
    }

    /// Times `routine` on fresh `setup()` outputs, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut iters = 0u64;
        let mut in_routine = Duration::ZERO;
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            in_routine += t0.elapsed();
            iters += 1;
            if in_routine >= self.budget {
                self.iters = iters;
                self.elapsed = in_routine;
                return;
            }
        }
    }
}

fn run_one(
    filter: &Option<String>,
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    budget: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let full = if group.is_empty() { id.to_owned() } else { format!("{group}/{id}") };
    if let Some(pat) = filter {
        if !full.contains(pat.as_str()) {
            return;
        }
    }
    // One untimed warmup pass (tiny budget) so cold caches and lazy
    // allocations don't land in the measured run.
    let mut warm = Bencher { budget: budget.mul_f64(0.1), iters: 0, elapsed: Duration::ZERO };
    f(&mut warm);
    let mut b = Bencher { budget, iters: 0, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  thrpt: {}/s", si(n as f64 / per_iter, "elem")),
        Some(Throughput::Bytes(n)) => format!("  thrpt: {}/s", si(n as f64 / per_iter, "B")),
        None => String::new(),
    };
    println!("{full:<40} time: {}  ({} iters){rate}", fmt_time(per_iter), b.iters);
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn si(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.2} {unit}")
    }
}

/// Bundles benchmark functions into a runnable group, in both the
/// positional and the `name = …; config = …; targets = …` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
            $crate::Criterion::final_summary(&mut criterion);
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default().sample_size(1).measurement_time(Duration::from_millis(20))
    }

    #[test]
    fn groups_run_and_report() {
        let mut c = quick();
        let mut g = c.benchmark_group("stub");
        g.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        g.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| black_box(1 + 1))
        });
        let data = vec![1u64; 16];
        g.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        g.finish();
        assert!(ran >= 2, "warmup + measured run expected, got {ran}");
    }

    #[test]
    fn iter_batched_times_only_routine() {
        let mut c = quick();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
