//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A half-open range of acceptable collection lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range {r:?}");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec length range {r:?}");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors of `element`-drawn values with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(0);
        let strat = vec(0u8..10, 2..5);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        assert_eq!(vec(0u64..5, 3usize).generate(&mut rng).len(), 3);
    }
}
