//! Deterministic case runner behind the [`proptest!`](crate::proptest)
//! macro.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// A `prop_assume!` was not met; the case is discarded and redrawn.
    Reject(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds the discard variant.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Default number of passing cases required per test.
const DEFAULT_CASES: u32 = 64;

/// Abort if rejections outnumber passes by this factor.
const MAX_REJECTS_PER_CASE: u32 = 64;

fn configured_cases() -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_CASES must be a positive integer, got {s:?}")),
        Err(_) => DEFAULT_CASES,
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `case` until `PROPTEST_CASES` (default 64) cases pass, panicking
/// on the first failure with the generated inputs and the case seed.
///
/// The seed for attempt `i` of test `name` is `hash(name) ⊕ mix(i)`, so a
/// failure reproduces by rerunning the same test on the same build — no
/// regression files are involved.
pub fn run(name: &str, mut case: impl FnMut(&mut SmallRng, &mut Vec<String>) -> TestCaseResult) {
    let cases = configured_cases();
    let base = fnv1a(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while passed < cases {
        let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        attempt += 1;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut inputs = Vec::new();
        match case(&mut rng, &mut inputs) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                assert!(
                    rejected <= cases.saturating_mul(MAX_REJECTS_PER_CASE),
                    "proptest `{name}`: too many rejected cases \
                     ({rejected} rejects for {passed} passes; last assume: {why})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed after {passed} passing case(s)\n\
                     {msg}\n\
                     inputs:\n  {}\n\
                     (case seed {seed:#x}; no shrinking in the offline stub)",
                    inputs.join("\n  ")
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_only_passing_cases() {
        let mut calls = 0u32;
        run("counts_only_passing_cases", |_rng, _inputs| {
            calls += 1;
            if calls % 3 == 0 {
                Err(TestCaseError::reject("every third"))
            } else {
                Ok(())
            }
        });
        assert!(calls >= DEFAULT_CASES);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics_with_message() {
        run("failure_panics_with_message", |_rng, _inputs| Err(TestCaseError::fail("boom")));
    }
}
