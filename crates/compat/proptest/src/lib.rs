//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a tiny API-compatible implementation: the
//! [`strategy::Strategy`] trait with `prop_map`, range / tuple / `Just` /
//! [`collection::vec`] / [`arbitrary::any`] strategies, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`] macros backed by a deterministic [`test_runner`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **No shrinking.** On failure the runner prints the generated inputs
//!   and the per-case seed instead of minimising them.
//! - **Deterministic seeds.** Case `i` of test `name` always uses the
//!   same seed (a hash of the test name mixed with `i`), so failures
//!   reproduce without `.proptest-regressions` files (which are neither
//!   read nor written).
//! - **Case count** defaults to 64 and honours the `PROPTEST_CASES`
//!   environment variable, like upstream.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirrors upstream's `prop` module alias (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng, __inputs| {
                    $(
                        let __generated =
                            $crate::strategy::Strategy::generate(&($strat), __rng);
                        __inputs.push(::std::format!(
                            concat!(stringify!($arg), " = {:?}"),
                            &__generated
                        ));
                        let $arg = __generated;
                    )+
                    let __outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __outcome
                });
            }
        )+
    };
}

/// Fails the current case (without aborting the whole run) if `cond` is
/// false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{} at {}:{}",
                    ::std::format!($($fmt)*),
                    ::std::file!(),
                    ::std::line!()
                ),
            ));
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (drawing a fresh one) if `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
