//! `any::<T>()` and the [`Arbitrary`] trait for full-domain strategies.

use std::fmt::Debug;
use std::marker::PhantomData;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws one value uniformly from the type's domain.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — enough for the probability-shaped uses in
    /// this workspace (upstream draws from the full bit domain).
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen()
    }
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T` (`any::<u8>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
