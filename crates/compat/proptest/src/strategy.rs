//! The [`Strategy`] trait and the primitive strategies built on it.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream, generation is direct (no value trees): a strategy is
/// just a deterministic function of the runner's RNG state, and there is
/// no shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Returns a strategy producing `f(v)` for `v` drawn from `self`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy that always yields a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let mut rng = SmallRng::seed_from_u64(0);
        let strat = (0u32..10, 5u64..=6).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..1_000 {
            let v = strat.generate(&mut rng);
            assert!((5..16).contains(&v), "{v}");
        }
        assert_eq!(Just(41).generate(&mut rng) + 1, 42);
    }
}
