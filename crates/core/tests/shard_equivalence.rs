//! Sharded-vs-unsharded equivalence: the ISSUE's headline claim is that
//! sharding is *semantically invisible* — a [`ShardedDetector`] answers
//! every query the same as one [`BurstDetector`] over the whole stream.
//!
//! The tests run in the collision-free regime (hierarchical mode, a
//! 64-event universe under the paper's default accuracy), where every
//! dyadic level is direct-indexed. There each event's curve depends only
//! on that event's own substream, which sharding leaves untouched — so
//! per-event answers must match *bit for bit*, not merely approximately.
//! Pruned `bursty_events` is the one deliberate exception (sign
//! cancellation inside dyadic sums differs per forest), so for it we
//! assert precision against the exact scan instead of set equality.

use bed_core::{BurstDetector, PbeVariant, QueryStrategy, ShardedDetector};
use bed_stream::{BurstSpan, EventId, Timestamp};
use proptest::prelude::*;

const UNIVERSE: u32 = 64;

/// Random time-sorted mixed stream over the small universe.
fn arb_stream(max_len: usize) -> impl Strategy<Value = Vec<(u32, u64)>> {
    prop::collection::vec((0u32..UNIVERSE, 0u64..500), 1..max_len).prop_map(|mut v| {
        v.sort_by_key(|&(_, t)| t);
        v
    })
}

/// One unsharded and one n-sharded detector, identically configured and
/// fed the identical stream.
fn build_pair(
    els: &[(u32, u64)],
    shards: usize,
    gamma: f64,
    seed: u64,
) -> (BurstDetector, ShardedDetector) {
    let plain = {
        let mut d = BurstDetector::builder()
            .universe(UNIVERSE)
            .variant(PbeVariant::pbe2(gamma))
            .seed(seed)
            .build()
            .unwrap();
        for &(e, t) in els {
            d.ingest(EventId(e), Timestamp(t)).unwrap();
        }
        d.finalize();
        d
    };
    let sharded = {
        let mut d = BurstDetector::builder()
            .universe(UNIVERSE)
            .variant(PbeVariant::pbe2(gamma))
            .seed(seed)
            .shards(shards)
            .build()
            .unwrap();
        let batch: Vec<(EventId, Timestamp)> =
            els.iter().map(|&(e, t)| (EventId(e), Timestamp(t))).collect();
        d.ingest_batch(&batch).unwrap();
        d.finalize();
        d
    };
    (plain, sharded)
}

/// Hits as a canonical, bit-exact comparable set.
fn hit_set(hits: &[bed_core::BurstyEventHit]) -> Vec<(u32, u64)> {
    let mut v: Vec<(u32, u64)> = hits.iter().map(|h| (h.event.0, h.burstiness.to_bits())).collect();
    v.sort_unstable();
    v
}

proptest! {
    /// Per-event curve queries are bit-for-bit shard-invariant: point
    /// burstiness, cumulative frequency, and burst frequency at every
    /// event and a grid of query times.
    #[test]
    fn point_queries_are_shard_invariant(
        els in arb_stream(250),
        shards in 2usize..8,
        tau in 1u64..120,
        seed in 0u64..1_000,
    ) {
        let (plain, sharded) = build_pair(&els, shards, 4.0, seed);
        let tau = BurstSpan::new(tau).unwrap();
        let horizon = els.last().unwrap().1 + 50;
        for e in 0..UNIVERSE {
            let e = EventId(e);
            let mut t = 0u64;
            while t <= horizon {
                let q = Timestamp(t);
                prop_assert_eq!(
                    sharded.point_query(e, q, tau).to_bits(),
                    plain.point_query(e, q, tau).to_bits(),
                    "point_query({:?}, t={}) diverged", e, t
                );
                prop_assert_eq!(
                    sharded.cumulative_frequency(e, q).to_bits(),
                    plain.cumulative_frequency(e, q).to_bits(),
                    "cumulative_frequency({:?}, t={}) diverged", e, t
                );
                prop_assert_eq!(
                    sharded.burst_frequency(e, q, tau).to_bits(),
                    plain.burst_frequency(e, q, tau).to_bits(),
                    "burst_frequency({:?}, t={}) diverged", e, t
                );
                t += 31;
            }
        }
        prop_assert_eq!(sharded.arrivals(), plain.arrivals());
    }

    /// Bursty-time queries (and the top-k layered on them) are
    /// shard-invariant for every event.
    #[test]
    fn bursty_times_are_shard_invariant(
        els in arb_stream(200),
        shards in 2usize..8,
        tau in 1u64..80,
        theta in -5i32..20,
    ) {
        let (plain, sharded) = build_pair(&els, shards, 2.0, 0xBED);
        let tau = BurstSpan::new(tau).unwrap();
        let theta = theta as f64;
        let horizon = Timestamp(els.last().unwrap().1 + 40);
        for e in (0..UNIVERSE).step_by(7) {
            let e = EventId(e);
            let a = plain.bursty_times(e, theta, tau, horizon);
            let b = sharded.bursty_times(e, theta, tau, horizon);
            prop_assert_eq!(a.len(), b.len(), "hit counts differ for {:?}", e);
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.0, y.0);
                prop_assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
            let ta = plain.top_bursts(e, 3, tau, horizon);
            let tb = sharded.top_bursts(e, 3, tau, horizon);
            prop_assert_eq!(ta.len(), tb.len());
            for (x, y) in ta.iter().zip(&tb) {
                prop_assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
    }

    /// The exact (scan) bursty-event query returns the *same hit set*
    /// sharded and unsharded, and the pruned query is precise against it:
    /// every pruned hit, from either detector, appears in the scan set
    /// with the identical estimate and clears θ.
    #[test]
    fn bursty_event_sets_are_shard_invariant(
        els in arb_stream(200),
        shards in 2usize..8,
        tau in 1u64..80,
        theta_i in 1u32..12,
        q in 0u64..550,
    ) {
        let (plain, sharded) = build_pair(&els, shards, 2.0, 7);
        let tau = BurstSpan::new(tau).unwrap();
        let theta = theta_i as f64;
        let t = Timestamp(q);

        let (scan_p, _) = plain.bursty_events_with(t, theta, tau, QueryStrategy::ExactScan).unwrap();
        let (scan_s, _) =
            sharded.bursty_events_with(t, theta, tau, QueryStrategy::ExactScan).unwrap();
        prop_assert_eq!(hit_set(&scan_p), hit_set(&scan_s), "scan sets diverged");

        let scan_set = hit_set(&scan_p);
        for (name, det_hits) in [
            ("plain", plain.bursty_events_with(t, theta, tau, QueryStrategy::Pruned).unwrap().0),
            ("sharded", sharded.bursty_events_with(t, theta, tau, QueryStrategy::Pruned).unwrap().0),
        ] {
            for h in &det_hits {
                prop_assert!(h.burstiness >= theta, "{name}: sub-θ hit {h:?}");
                prop_assert_eq!(
                    h.burstiness.to_bits(),
                    plain.point_query(h.event, t, tau).to_bits(),
                    "{} pruned hit disagrees with the point query", name
                );
                prop_assert!(
                    scan_set.binary_search(&(h.event.0, h.burstiness.to_bits())).is_ok(),
                    "{name}: pruned hit {h:?} missing from the exact scan"
                );
            }
        }
    }

    /// Crossing the parallel threshold changes nothing: a big batch fanned
    /// over scoped threads answers identically to element-at-a-time ingest
    /// into the same sharded configuration.
    #[test]
    fn parallel_batch_equals_sequential_ingest(
        els in arb_stream(80),
        shards in 2usize..6,
    ) {
        // Tile the stream until it crosses PARALLEL_MIN_BATCH (1024) so the
        // batch path really spawns workers.
        let mut big: Vec<(EventId, Timestamp)> = Vec::new();
        let span = els.last().unwrap().1 + 1;
        let mut offset = 0u64;
        while big.len() < 1100 {
            big.extend(els.iter().map(|&(e, t)| (EventId(e), Timestamp(t + offset))));
            offset += span;
        }

        let mk = || {
            BurstDetector::builder()
                .universe(UNIVERSE)
                .variant(PbeVariant::pbe2(4.0))
                .seed(3)
                .shards(shards)
                .build()
                .unwrap()
        };
        let mut batched: ShardedDetector = mk();
        batched.ingest_batch(&big).unwrap();
        batched.finalize();

        let mut serial: ShardedDetector = mk();
        for &(e, t) in &big {
            serial.ingest(e, t).unwrap();
        }
        serial.finalize();

        let tau = BurstSpan::new(40).unwrap();
        let horizon = big.last().unwrap().1.ticks() + 10;
        for e in 0..UNIVERSE {
            let e = EventId(e);
            let mut t = 0u64;
            while t <= horizon {
                prop_assert_eq!(
                    batched.point_query(e, Timestamp(t), tau).to_bits(),
                    serial.point_query(e, Timestamp(t), tau).to_bits()
                );
                t += 97;
            }
        }
        prop_assert_eq!(batched.arrivals(), serial.arrivals());
    }
}

/// Out-of-order ingestion through [`bed_core::MessagePipeline`]: a sharded
/// sink behind the reorder buffer matches an unsharded detector fed the
/// same stream pre-sorted. Deterministic disorder, deterministic result —
/// plain #[test], no proptest needed.
#[test]
fn pipeline_disorder_is_shard_invariant() {
    use bed_core::MessagePipeline;
    use bed_stream::{HashtagMapper, Message};

    let tags = ["quake", "flood", "match", "vote"];
    let mut x = 0xD15C0u64;
    let mut messages = Vec::new();
    for i in 0..600u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let jitter = x % 16; // within the lateness window below
        let tag = tags[(x >> 8) as usize % tags.len()];
        messages.push((format!("#{tag}"), i * 2 + jitter));
    }

    let sharded_sink = BurstDetector::builder()
        .universe(UNIVERSE)
        .variant(PbeVariant::pbe2(2.0))
        .seed(11)
        .shards(4)
        .build()
        .unwrap();
    let mut pipe = MessagePipeline::new(sharded_sink, HashtagMapper::new(UNIVERSE), 20);
    for (text, t) in &messages {
        pipe.offer(Message::new(text.as_str(), *t)).unwrap();
    }
    let sharded = pipe.finish().unwrap();

    // Reference: same elements, globally sorted, into one plain detector.
    let mapper = HashtagMapper::new(UNIVERSE);
    let mut els: Vec<(EventId, Timestamp)> = messages
        .iter()
        .map(|(text, t)| (mapper.event_for_tag(&text[1..]), Timestamp(*t)))
        .collect();
    els.sort_by_key(|&(_, t)| t);
    let mut plain = BurstDetector::builder()
        .universe(UNIVERSE)
        .variant(PbeVariant::pbe2(2.0))
        .seed(11)
        .build()
        .unwrap();
    for &(e, t) in &els {
        plain.ingest(e, t).unwrap();
    }
    plain.finalize();

    assert_eq!(sharded.arrivals(), plain.arrivals());
    let tau = BurstSpan::new(30).unwrap();
    for tag in tags {
        let e = mapper.event_for_tag(tag);
        let mut t = 0u64;
        while t <= 1_300 {
            assert_eq!(
                sharded.point_query(e, Timestamp(t), tau).to_bits(),
                plain.point_query(e, Timestamp(t), tau).to_bits(),
                "pipeline divergence for #{tag} at t={t}"
            );
            t += 53;
        }
    }
}
