//! Tiered-retention integration: the Hokusai-style aging of PR 9 must be
//! (1) *invisible inside the window* — probes younger than `window` ticks
//! answer bit-for-bit like an unretained detector, (2) *one-sided and
//! bounded outside it* — older probes under-estimate by at most the mass
//! of a few grain buckets (the Theorem-1 envelope scaled by the tier's
//! halving factor), (3) *coherent* — tier stamps flip exactly at the
//! seam, `Series` straddling a seam agrees with its own point queries,
//! and epoch-snapshot readers see the identical stamped answers, and
//! (4) *deterministic* — a detector resumed from an encoded snapshot
//! compacts bit-for-bit like one that never stopped.
//!
//! The CI `retention` job runs this suite under three values of
//! `BED_RETENTION_SEED`; the deterministic tests fold that seed into
//! their stream generators so each run exercises a different history.

use bed_core::{
    BurstDetector, BurstQueries, DetectorEpochs, PbeVariant, QueryRequest, QueryResponse,
    RetentionPolicy, TimeRange,
};
use bed_stream::{BurstSpan, Codec as _, EventId, Timestamp};
use proptest::prelude::*;

fn seed() -> u64 {
    std::env::var("BED_RETENTION_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xBED)
}

/// Deterministic xorshift tick stream: `n` sorted arrival ticks in
/// `[0, span)`, shaped by the suite seed so each CI seed ingests a
/// different history.
fn ticks(n: usize, span: u64, salt: u64) -> Vec<u64> {
    let mut x = seed() ^ salt ^ 0x9E37_79B9_7F4A_7C15;
    let mut v: Vec<u64> = (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % span
        })
        .collect();
    v.sort_unstable();
    v
}

/// One retained and one unretained detector, identically configured and
/// fed the identical single-event stream.
fn single_event_pair(
    ticks: &[u64],
    variant: PbeVariant,
    policy: RetentionPolicy,
) -> (BurstDetector, BurstDetector) {
    let mk = |retention: Option<RetentionPolicy>| {
        let mut d = BurstDetector::builder()
            .single_event()
            .variant(variant)
            .seed(7)
            .retention(retention)
            .build()
            .unwrap();
        for &t in ticks {
            d.ingest_single(Timestamp(t)).unwrap();
        }
        d.finalize();
        d
    };
    (mk(Some(policy)), mk(None))
}

/// True cumulative count of a sorted single-event tick stream at `t`.
fn truth(ticks: &[u64], t: u64) -> f64 {
    ticks.partition_point(|&x| x <= t) as f64
}

proptest! {
    /// The headline envelope, against ground truth. A PBE-1 whose buffer
    /// never fills is exact, so the unretained curve *is* the true count
    /// and every deviation is attributable to decimation alone:
    /// inside the window the tiered estimate is bit-for-bit exact, and at
    /// any age it never over-estimates and trails the truth by at most
    /// the mass of the trailing few grain buckets of its serving tier
    /// (lag compounds only across tier transitions, each bounded by one
    /// grain — four buckets is a safe ceiling).
    #[test]
    fn pbe1_tier_error_stays_inside_scaled_envelope(
        n in 64usize..700,
        span in 256u64..4096,
        window in 16u64..256,
        budget in 2u32..16,
        every in 32u64..512,
        stream_seed in 0u64..1_000,
    ) {
        let ticks = {
            let mut x = stream_seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
            let mut v: Vec<u64> = (0..n).map(|_| {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                x % span
            }).collect();
            v.sort_unstable();
            v
        };
        let policy = RetentionPolicy::new(window, budget, every).unwrap();
        // n < n_buf (1500) and distinct ticks < η (1024): neither the
        // buffer overflow nor the finalize-time compression ever drops a
        // corner point, so the unretained staircase is the exact count.
        let (ret, unret) = single_event_pair(&ticks, PbeVariant::pbe1(1024), policy);
        prop_assert_eq!(ret.arrivals(), unret.arrivals());
        let now = *ticks.last().unwrap();
        prop_assert!(ret.compactions() >= (ticks.len() as u64) / every);

        let e = EventId(0);
        let mut t = 0u64;
        while t <= now {
            let exact = unret.cumulative_frequency(e, Timestamp(t));
            prop_assert_eq!(truth(&ticks, t), exact, "PBE-1 buffer filled; exactness lost");
            let got = ret.cumulative_frequency(e, Timestamp(t));
            let tier = policy.tier_of(t, now);
            if tier == 0 {
                prop_assert_eq!(got.to_bits(), exact.to_bits(),
                    "tier 0 must be bit-exact at t={} (now={})", t, now);
            } else {
                prop_assert!(got <= exact + 1e-9, "over-estimate at t={}", t);
                // Mass strictly older than the trailing lag window must
                // survive; arrivals inside it (t − lag inclusive through
                // t) are the decimation's legitimate loss.
                let lag = 4 * policy.grain(tier);
                let floor = ticks.partition_point(|&x| x < t.saturating_sub(lag)) as f64;
                prop_assert!(
                    got >= floor - 1e-9,
                    "t={} tier={} estimate {} below {} (mass older than {} ticks lost)",
                    t, tier, got, floor, lag
                );
            }
            t += 1 + span / 97;
        }
    }

    /// PBE-2 under retention: totals are preserved exactly (the fold
    /// always keeps the final knee), the cumulative curve stays monotone
    /// across every tier seam, and a `Series` response straddling the
    /// window seam agrees bit-for-bit with the same detector's point
    /// queries — the seam is a resolution change, never a discontinuity
    /// in the query plane.
    #[test]
    fn pbe2_seams_are_coherent(
        n in 128usize..600,
        span in 512u64..4096,
        window in 32u64..512,
        budget in 2u32..12,
        every in 32u64..256,
        stream_seed in 0u64..1_000,
    ) {
        let ticks = {
            let mut x = stream_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut v: Vec<u64> = (0..n).map(|_| {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                x % span
            }).collect();
            v.sort_unstable();
            v
        };
        let policy = RetentionPolicy::new(window, budget, every).unwrap();
        let gamma = 2.0;
        let (ret, unret) = single_event_pair(&ticks, PbeVariant::pbe2(gamma), policy);
        let now = *ticks.last().unwrap();
        let e = EventId(0);

        // Totals survive decimation to within the PLA budget: every fold
        // samples a γ-accurate live curve at its cut (errors compound per
        // compaction), the final live part and the unretained reference
        // add one γ each.
        let rt = ret.cumulative_frequency(e, Timestamp(now));
        let ut = unret.cumulative_frequency(e, Timestamp(now));
        let slack = 2.0 * (ret.compactions() as f64 + 2.0) * gamma + 1e-9;
        prop_assert!(
            (rt - ut).abs() <= slack,
            "totals drifted past the PLA budget: retained {} vs unretained {} (> {})",
            rt, ut, slack
        );

        // Near-monotone across all seams: a γ-accurate PLA curve may dip
        // up to 2γ at its own piece boundaries; the tier seams must not
        // add any regression beyond that inherent budget.
        let mut prev = 0.0f64;
        let mut t = 0u64;
        while t <= now {
            let v = ret.cumulative_frequency(e, Timestamp(t));
            prop_assert!(
                v >= prev - 2.0 * gamma - 1e-9,
                "cumulative regressed past the PLA dip budget at t={} ({} -> {})", t, prev, v
            );
            prev = prev.max(v);
            t += 1 + span / 211;
        }

        // Series through the seam == its own point queries, bit for bit
        let tau = BurstSpan::new((window / 2).max(1)).unwrap();
        let lo = now.saturating_sub(3 * window);
        let range = TimeRange { start: Timestamp(lo), end: Timestamp(now) };
        let step = ((now - lo) / 24).max(1);
        let resp = ret
            .query(&QueryRequest::Series { event: e, tau, range, step })
            .unwrap();
        let samples = resp.samples().unwrap();
        prop_assert!(!samples.is_empty());
        for &(st, sv) in samples {
            let QueryResponse::Point { burstiness, .. } =
                ret.query(&QueryRequest::Point { event: e, t: st, tau }).unwrap()
            else { unreachable!() };
            prop_assert_eq!(sv.to_bits(), burstiness.to_bits(),
                "series sample at t={} disagrees with the point query", st.ticks());
        }
    }
}

/// Tier stamps flip exactly at the seam: a probe aged `window − 1` is
/// served by (and stamped with) tier 0, age `window` by tier 1, age
/// `2·window` by tier 2 — and an unretained detector stamps nothing.
#[test]
fn point_responses_stamp_the_serving_tier_at_exact_seams() {
    let window = 128u64;
    let policy = RetentionPolicy::new(window, 8, 64).unwrap();
    let stream = ticks(1_000, 1 << 12, 0xA11);
    let (ret, unret) = single_event_pair(&stream, PbeVariant::pbe2(2.0), policy);
    let now = *stream.last().unwrap();
    let e = EventId(0);
    let tau = BurstSpan::new(16).unwrap();
    let stamp = |det: &BurstDetector, t: u64| -> Option<u32> {
        let QueryResponse::Point { tier, .. } =
            det.query(&QueryRequest::Point { event: e, t: Timestamp(t), tau }).unwrap()
        else {
            unreachable!()
        };
        tier
    };
    assert_eq!(stamp(&ret, now), Some(0));
    assert_eq!(stamp(&ret, now - (window - 1)), Some(0), "age window-1 is inside the window");
    assert_eq!(stamp(&ret, now - window), Some(1), "age == window crosses the seam");
    assert_eq!(stamp(&ret, now - 2 * window + 1), Some(1), "age 2w-1 is still tier 1");
    assert_eq!(stamp(&ret, now - 2 * window), Some(2), "age == 2·window is tier 2");
    assert_eq!(stamp(&ret, now - 4 * window), Some(3));
    // probes beyond the watermark are served at full resolution
    assert_eq!(stamp(&ret, now + 10), Some(0));
    // no policy -> no stamp
    assert_eq!(stamp(&unret, now - window), None);
}

/// Epoch-snapshot readers observe the identical tiered world: every
/// answer (tier stamp included) from a published view is bit-for-bit the
/// writer's answer, before and after a compaction falls between two
/// publishes.
#[test]
fn epoch_views_serve_stamped_tiers_coherently() {
    let policy = RetentionPolicy::new(64, 4, 256).unwrap();
    let stream = ticks(2_000, 1 << 11, 0xE90C);
    let mut det = BurstDetector::builder()
        .universe(8)
        .variant(PbeVariant::pbe2(2.0))
        .seed(seed())
        .retention(Some(policy))
        .build()
        .unwrap();
    let half = stream.len() / 2;
    for &t in &stream[..half] {
        det.ingest(EventId((t % 8) as u32), Timestamp(t)).unwrap();
    }
    let any = bed_core::AnyDetector::Plain(Box::new(det));
    let epochs = DetectorEpochs::new(&any); // publishes generation 1
    let view = epochs.view();
    let bed_core::AnyDetector::Plain(mut det) = any else { unreachable!() };

    let tau = BurstSpan::new(8).unwrap();
    let check = |view: &bed_core::EpochView<'_>, det: &BurstDetector, label: &str| {
        let now = stream[half - 1];
        for (i, age) in [0u64, 63, 64, 127, 128, 300, 700].iter().enumerate() {
            let req = QueryRequest::Point {
                event: EventId((i % 8) as u32),
                t: Timestamp(now.saturating_sub(*age)),
                tau,
            };
            let mut oracle = det.clone();
            oracle.finalize();
            let want = oracle.query(&req).unwrap();
            let got = view.query(&req).unwrap();
            assert_eq!(got, want, "{label}: view diverged at age {age}");
            let QueryResponse::Point { tier, .. } = got else { unreachable!() };
            assert!(tier.is_some(), "{label}: missing tier stamp at age {age}");
        }
    };
    check(&view, &det, "first epoch");
    let before = det.compactions();

    // Drive more stream through — cadence 256 guarantees compactions land
    // between the two publishes — then publish and re-check.
    for &t in &stream[half..] {
        det.ingest(EventId((t % 8) as u32), Timestamp(t)).unwrap();
    }
    assert!(det.compactions() > before, "second half must compact");
    let any = bed_core::AnyDetector::Plain(det);
    epochs.publish(&any);
    let bed_core::AnyDetector::Plain(det) = any else { unreachable!() };
    let view = epochs.view();
    check(&view, &det, "post-compaction epoch");
}

/// Replay determinism across a snapshot boundary: a detector decoded
/// from bytes mid-stream and driven with the tail must land on the
/// byte-identical state (frozen tiers, compaction counter, and all) as
/// one that ingested the whole stream uninterrupted — the property that
/// makes WAL replay of a tiered detector bit-for-bit reproducible.
#[test]
fn snapshot_resume_compacts_bit_for_bit() {
    let policy = RetentionPolicy::new(32, 4, 128).unwrap();
    let stream = ticks(3_000, 1 << 11, 0x5EED);
    let mk = || {
        BurstDetector::builder()
            .universe(4)
            .variant(PbeVariant::pbe2(1.0))
            .seed(3)
            .retention(Some(policy))
            .build()
            .unwrap()
    };
    let mut straight = mk();
    for &t in &stream {
        straight.ingest(EventId((t % 4) as u32), Timestamp(t)).unwrap();
    }

    let mut resumed = mk();
    // a cut that is NOT aligned to the cadence, so the resumed detector
    // must carry the mid-cycle arrival count through the codec
    let cut = 1_111;
    for &t in &stream[..cut] {
        resumed.ingest(EventId((t % 4) as u32), Timestamp(t)).unwrap();
    }
    let mut resumed = BurstDetector::from_bytes(&resumed.to_bytes()).unwrap();
    for &t in &stream[cut..] {
        resumed.ingest(EventId((t % 4) as u32), Timestamp(t)).unwrap();
    }

    assert!(straight.compactions() > 0);
    assert_eq!(straight.compactions(), resumed.compactions());
    assert_eq!(straight.to_bytes(), resumed.to_bytes(), "resumed state diverged");
}

/// Bounded memory at the summary level: under a retention policy the
/// sketch footprint plateaus (growth across the last half of a long
/// stream is marginal) while the unretained footprint keeps climbing —
/// the in-process miniature of the CI soak's RSS assertion.
#[test]
fn summary_footprint_plateaus_under_retention() {
    let policy = RetentionPolicy::new(256, 8, 1_024).unwrap();
    let mk = |retention| {
        BurstDetector::builder()
            .single_event()
            .variant(PbeVariant::pbe2(0.5))
            .seed(1)
            .retention(retention)
            .build()
            .unwrap()
    };
    let mut ret = mk(Some(policy));
    let mut unret = mk(None);
    // Bursty steps: every tick gets a distinct count so PLA pruning
    // cannot collapse the curve on its own.
    let rounds = 16u64;
    let per_round = 8_192u64;
    let mut ret_sizes = Vec::new();
    for r in 0..rounds {
        for i in 0..per_round {
            let t = Timestamp(r * per_round + i);
            // alternate 1 and 3 arrivals per tick: unsmoothable knees
            ret.ingest_single(t).unwrap();
            unret.ingest_single(t).unwrap();
            if i % 2 == 0 {
                for _ in 0..2 {
                    ret.ingest_single(t).unwrap();
                    unret.ingest_single(t).unwrap();
                }
            }
        }
        ret_sizes.push(ret.size_bytes());
    }
    let retained = *ret_sizes.last().unwrap();
    let unretained = unret.size_bytes();
    assert!(
        unretained > 8 * retained,
        "expected ≥8× separation, got unretained={unretained} retained={retained}"
    );
    // plateau: the second half of the stream grew the retained summary by
    // under 30% (log-shaped tail), while the stream itself doubled
    let mid = ret_sizes[ret_sizes.len() / 2 - 1];
    assert!(
        retained < mid + mid * 3 / 10,
        "retained summary still growing linearly: {mid} -> {retained}"
    );
}
