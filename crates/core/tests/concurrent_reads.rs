//! Concurrency harness: N reader threads hammer all five query kinds
//! against a writer ingesting realistic workloads, with every sampled
//! answer replayed against a freshly built oracle detector at that
//! answer's epoch watermark — bit-for-bit equality, no torn reads, no
//! stale-beyond-cadence reads.
//!
//! The invariants pinned per answer:
//!
//! 1. **Published-only**: the answering epoch's watermark is one the
//!    writer actually published (genesis included) — a torn read would
//!    surface as an arrivals count nobody published.
//! 2. **Monotonicity**: a reader never goes back in time — coherent
//!    (bursty-event) answers are globally non-decreasing per reader, and
//!    per-event answers are non-decreasing per event (shard cells publish
//!    in sequence, so cross-event ordering is deliberately unspecified).
//! 3. **Oracle equality**: a sampled `(request, response, arrivals)`
//!    triple equals the response of a same-layout detector freshly built
//!    from exactly the first `arrivals` stream elements and finalized.
//! 4. **Freshness**: once the writer is done (final publish included),
//!    `refresh_latest` observes the full stream — readers are never stale
//!    beyond the publish cadence.
//!
//! Seeds sweep via `BED_CONCURRENCY_SEED` (default 1), mirroring the
//! recovery suite's `BED_FAULT_SEED`; CI loops a few seeds. The proptest
//! half interleaves publish/read/checkpoint and pins `restored ==
//! published` across generations, down to byte equality of the encoded
//! detectors on the plain layout.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use bed_core::{
    recover, AnyDetector, BurstDetector, BurstQueries, DetectorEpochs, EpochReader, PbeVariant,
    QueryRequest, QueryResponse, QueryStrategy, ShardedDetector, SnapshotCell, SnapshotStore,
    TimeRange,
};
use bed_stream::{BurstSpan, Codec as _, EventId, Timestamp};
use bed_workload::{olympics, politics, OlympicsConfig, PoliticsConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const READERS: usize = 4;
const CADENCE: u64 = 2_048;
/// Sample every Nth answer for oracle verification, capped per reader so
/// the rebuild phase stays bounded.
const SAMPLE_EVERY: usize = 7;
const SAMPLE_CAP: usize = 24;

fn seed() -> u64 {
    std::env::var("BED_CONCURRENCY_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

/// Same-config detector in either layout (0 = plain, n ≥ 2 = sharded).
fn build(layout: usize, universe: u32, seed: u64) -> AnyDetector {
    if layout == 0 {
        AnyDetector::Plain(Box::new(
            BurstDetector::builder()
                .universe(universe)
                .variant(PbeVariant::pbe2(2.0))
                .accuracy(0.02, 0.1)
                .seed(seed)
                .build()
                .unwrap(),
        ))
    } else {
        AnyDetector::Sharded(
            ShardedDetector::builder(layout)
                .universe(universe)
                .variant(PbeVariant::pbe2(2.0))
                .accuracy(0.02, 0.1)
                .seed(seed)
                .build()
                .unwrap(),
        )
    }
}

/// One of the five canonical kinds with randomized-but-valid parameters.
fn random_request(rng: &mut SmallRng, universe: u32, horizon: u64) -> QueryRequest {
    let event = EventId(rng.gen_range(0..universe));
    let tau = BurstSpan::new(rng.gen_range(1..=(horizon / 4).max(1))).unwrap();
    let t = Timestamp(rng.gen_range(0..=horizon));
    match rng.gen_range(0..5) {
        0 => QueryRequest::Point { event, t, tau },
        1 => QueryRequest::BurstyTimes { event, theta: rng.gen_range(0.5..50.0), tau, horizon: t },
        2 => QueryRequest::BurstyEvents {
            t,
            theta: rng.gen_range(1.0..50.0),
            tau,
            strategy: if rng.gen_bool(0.5) {
                QueryStrategy::Pruned
            } else {
                QueryStrategy::ExactScan
            },
        },
        3 => {
            let (a, b) = (rng.gen_range(0..=horizon), rng.gen_range(0..=horizon));
            QueryRequest::Series {
                event,
                tau,
                range: TimeRange { start: Timestamp(a.min(b)), end: Timestamp(a.max(b)) },
                step: rng.gen_range(1..=(horizon / 8).max(1)),
            }
        }
        _ => QueryRequest::TopK { event, k: rng.gen_range(1..8), tau, horizon: t },
    }
}

/// One answer kept for post-hoc oracle verification.
struct Sampled {
    arrivals: u64,
    request: QueryRequest,
    response: QueryResponse,
}

/// The writer: ingest in chunks, record-then-publish at the cadence, one
/// final publish covering the whole stream, then raise `done`.
///
/// Recording the arrivals count *before* the publish keeps the
/// published-set membership check race-free: by the time any reader can
/// observe a generation, its watermark is already in the set.
fn writer(
    els: &[(EventId, Timestamp)],
    det: &mut AnyDetector,
    epochs: &DetectorEpochs,
    published: &Mutex<Vec<u64>>,
    done: &AtomicBool,
) {
    let mut last_pub = 0u64;
    for chunk in els.chunks(257) {
        for &(e, t) in chunk {
            det.ingest(e, t).unwrap();
        }
        let arrivals = det.arrivals();
        if arrivals - last_pub >= CADENCE {
            published.lock().unwrap().push(arrivals);
            epochs.publish(det);
            last_pub = arrivals;
        }
    }
    published.lock().unwrap().push(det.arrivals());
    epochs.publish(det);
    done.store(true, Ordering::Release);
}

/// One reader: hammer random queries, check the per-answer invariants,
/// sample a bounded subset for oracle verification, and exit once the
/// final epoch is visible.
fn reader(
    epochs: &DetectorEpochs,
    universe: u32,
    horizon: u64,
    total: u64,
    published: &Mutex<Vec<u64>>,
    done: &AtomicBool,
    seed: u64,
) -> Vec<Sampled> {
    let view = epochs.view();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut samples = Vec::new();
    let mut per_event: HashMap<u32, u64> = HashMap::new();
    let mut coherent_floor = 0u64;
    let mut answered = 0usize;
    loop {
        let request = random_request(&mut rng, universe, horizon);
        let response = view.query(&request).expect("randomized requests are always valid");
        let arrivals = view.answer_watermark().arrivals;
        assert!(
            published.lock().unwrap().contains(&arrivals),
            "answer from unpublished watermark {arrivals} — torn read"
        );
        match request {
            QueryRequest::BurstyEvents { .. } => {
                assert!(
                    arrivals >= coherent_floor,
                    "coherent answers went backwards: {arrivals} < {coherent_floor}"
                );
                coherent_floor = arrivals;
            }
            QueryRequest::Point { event, .. }
            | QueryRequest::BurstyTimes { event, .. }
            | QueryRequest::Series { event, .. }
            | QueryRequest::TopK { event, .. } => {
                let floor = per_event.entry(event.0).or_insert(0);
                assert!(
                    arrivals >= *floor,
                    "event {} answers went backwards: {arrivals} < {floor}",
                    event.0
                );
                *floor = arrivals;
            }
        }
        answered += 1;
        if answered.is_multiple_of(SAMPLE_EVERY) && samples.len() < SAMPLE_CAP {
            samples.push(Sampled { arrivals, request, response });
        }
        // Freshness: after the writer's final publish, one refresh must
        // observe the complete stream.
        if done.load(Ordering::Acquire) {
            let latest = view.refresh_latest().arrivals;
            assert_eq!(latest, total, "stale beyond the final publish");
            break;
        }
    }
    samples
}

/// Rebuilds an oracle per distinct sampled watermark (prefix ingest +
/// finalize) and replays every sampled request against it.
fn verify_against_oracles(
    els: &[(EventId, Timestamp)],
    layout: usize,
    universe: u32,
    seed: u64,
    samples: Vec<Sampled>,
) {
    let mut oracles: HashMap<u64, AnyDetector> = HashMap::new();
    let mut verified = 0usize;
    for s in samples {
        let oracle = oracles.entry(s.arrivals).or_insert_with(|| {
            let mut det = build(layout, universe, seed);
            for &(e, t) in &els[..s.arrivals as usize] {
                det.ingest(e, t).unwrap();
            }
            det.finalize();
            det
        });
        assert_eq!(
            s.response,
            oracle.queries().query(&s.request).expect("oracle accepts the same request"),
            "answer diverged from a fresh rebuild at arrivals={} for {:?}",
            s.arrivals,
            s.request
        );
        verified += 1;
    }
    assert!(verified > 0, "the readers sampled nothing — the harness is vacuous");
}

/// The full stress round for one workload and one layout.
fn stress(els: &[(EventId, Timestamp)], universe: u32, layout: usize, seed: u64) {
    let mut det = build(layout, universe, seed);
    let epochs = DetectorEpochs::new(&det);
    let total = els.len() as u64;
    let horizon = els.last().expect("non-empty workload").1 .0;
    let published = Mutex::new(vec![0u64]);
    let done = AtomicBool::new(false);

    let per_reader: Vec<Vec<Sampled>> = std::thread::scope(|scope| {
        scope.spawn(|| writer(els, &mut det, &epochs, &published, &done));
        let readers: Vec<_> = (0..READERS)
            .map(|i| {
                let (epochs, published, done) = (&epochs, &published, &done);
                let reader_seed = seed ^ ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                scope.spawn(move || {
                    reader(epochs, universe, horizon, total, published, done, reader_seed)
                })
            })
            .collect();
        readers.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for samples in per_reader {
        verify_against_oracles(els, layout, universe, seed, samples);
    }
}

fn elements(stream: &bed_stream::EventStream) -> Vec<(EventId, Timestamp)> {
    stream.elements().iter().map(|el| (el.event, el.ts)).collect()
}

#[test]
fn olympics_concurrent_reads_match_oracle_rebuilds() {
    let seed = seed();
    let s = olympics::generate(OlympicsConfig { total_elements: 40_000, seed });
    let els = elements(&s.stream);
    for layout in [0, 3] {
        stress(&els, s.universe, layout, seed);
    }
}

#[test]
fn politics_concurrent_reads_match_oracle_rebuilds() {
    let seed = seed();
    let s = politics::generate(PoliticsConfig { total_elements: 40_000, skew: 1.1, seed });
    let els = elements(&s.stream);
    for layout in [0, 3] {
        stress(&els, s.universe, layout, seed);
    }
}

// ---- publish / read / checkpoint interleavings ------------------------

/// Unique scratch directory per proptest case.
fn scratch() -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bed-concurrent-reads-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    /// At every cut of a random stream: publish an epoch, checkpoint the
    /// live detector, recover from the checkpoint, and pin `restored ==
    /// published` — watermark equality, query equality over a grid, and
    /// (on the plain layout) byte equality of the encoded detectors.
    #[test]
    fn restored_equals_published_across_generations(
        els in prop::collection::vec((0u32..16, 1u64..4), 20..200),
        cuts in prop::collection::vec(1usize..100, 1..4),
        layout_pick in 0usize..3,
        seed in 0u64..64,
    ) {
        let mut t = 0u64;
        let stream: Vec<(EventId, Timestamp)> = els
            .iter()
            .map(|&(e, dt)| {
                t += dt;
                (EventId(e), Timestamp(t))
            })
            .collect();
        let layout = [0usize, 2, 3][layout_pick];
        let len = stream.len();
        let mut cut_idx: Vec<usize> =
            cuts.iter().map(|&c| (c * len / 100).max(1)).collect();
        cut_idx.sort_unstable();
        cut_idx.dedup();

        let mut det = build(layout, 16, seed);
        let epochs = DetectorEpochs::new(&det);
        let view = epochs.view();
        // A raw cell alongside, for the byte-level check on plain layouts.
        let cell: SnapshotCell<BurstDetector> = SnapshotCell::new();
        let mut cell_reader: EpochReader<BurstDetector> = EpochReader::new();
        let dir = scratch();

        let mut pos = 0usize;
        for (generation, &cut) in cut_idx.iter().enumerate() {
            for &(e, ts) in &stream[pos..cut] {
                det.ingest(e, ts).unwrap();
            }
            pos = cut;

            let watermark = epochs.publish(&det);
            prop_assert_eq!(watermark.arrivals, cut as u64);
            if let AnyDetector::Plain(d) = &det {
                let mut clone = (**d).clone();
                clone.finalize();
                cell.publish(watermark, Arc::new(clone));
            }

            let store = SnapshotStore::new(dir.join(format!("gen{generation}.beds")));
            store.save(&det).unwrap();
            let outcome = recover(&store, None).unwrap();
            prop_assert_eq!(outcome.watermark.arrivals, cut as u64);
            let mut restored = outcome.detector;
            restored.finalize();

            // The published epoch and the restored checkpoint answer
            // identically at this generation.
            prop_assert_eq!(view.refresh_latest().arrivals, cut as u64);
            let tau = BurstSpan::new(5).unwrap();
            let last = stream[cut - 1].1 .0;
            for e in 0..16u32 {
                for qt in [0u64, last / 2, last] {
                    let req = QueryRequest::Point {
                        event: EventId(e),
                        t: Timestamp(qt),
                        tau,
                    };
                    prop_assert_eq!(
                        view.query(&req).unwrap(),
                        restored.queries().query(&req).unwrap(),
                        "generation {} event {} t {}", generation, e, qt
                    );
                }
            }
            let req = QueryRequest::BurstyEvents {
                t: Timestamp(last),
                theta: 1.0,
                tau,
                strategy: QueryStrategy::ExactScan,
            };
            prop_assert_eq!(
                view.query(&req).unwrap(),
                restored.queries().query(&req).unwrap()
            );

            if let AnyDetector::Plain(restored_plain) = &restored {
                cell_reader.refresh(&cell);
                let epoch = cell_reader.current().expect("published above");
                prop_assert_eq!(epoch.watermark.arrivals, cut as u64);
                prop_assert_eq!(
                    epoch.data.to_bytes(),
                    restored_plain.to_bytes(),
                    "published and restored states diverge at the byte level"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
