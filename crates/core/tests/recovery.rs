//! Crash-fault injection and kill-and-restore equivalence.
//!
//! The durability contract under test (see `bed_core::checkpoint`):
//!
//! 1. **Bit-for-bit recovery** — a detector killed at any point and
//!    recovered from its latest snapshot + WAL tail is indistinguishable
//!    from one that never died: identical `to_bytes()` encodings and
//!    identical answers (including errors) on all five `QueryRequest`
//!    kinds, across every summary configuration (PBE-1, PBE-2, flat
//!    CM-PBE, the dyadic hierarchy, sharded, single-event).
//! 2. **No panic, no silent corruption** — truncating, bit-flipping, or
//!    tearing any persisted artifact yields `Err` or a clean fallback to
//!    the previous snapshot generation; a recovery that reports `Ok` is
//!    always a true prefix of the original stream.
//!
//! Fault positions are drawn from a seeded RNG; CI sweeps seeds via the
//! `BED_FAULT_SEED` env var (default 1), so each run explores different
//! corruption sites while staying reproducible.

use std::fs;
use std::path::PathBuf;

use bed_core::checkpoint::{CrashPoint, SNAPSHOT_VERSION};
use bed_core::{
    recover, AnyDetector, BurstDetector, CheckpointPolicy, Checkpointer, DetectorConfig, EventSink,
    PbeVariant, QueryRequest, QueryStrategy, RecoveryError, ShardedDetector, Snapshot,
    SnapshotStore, WalSink,
};
use bed_sketch::SketchParams;
use bed_stream::{BurstSpan, Codec, EventId, TimeRange, Timestamp};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const UNIVERSE: u32 = 16;

fn fault_seed() -> u64 {
    std::env::var("BED_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

/// Fresh scratch directory, namespaced by fault seed so parallel CI jobs
/// never collide.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("bed-recovery-tests")
        .join(format!("seed-{}", fault_seed()))
        .join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The configuration matrix: every summary layer the snapshot format must
/// carry. `shards == 0` means an unsharded detector.
fn configs() -> Vec<(&'static str, DetectorConfig, u32)> {
    let sketch = SketchParams { epsilon: 0.01, delta: 0.05 };
    let base = DetectorConfig {
        variant: PbeVariant::pbe2(1.0),
        sketch,
        universe: Some(UNIVERSE),
        hierarchical: true,
        seed: 42,
        metrics: true,
        retention: None,
    };
    vec![
        (
            "single-pbe1",
            DetectorConfig {
                variant: PbeVariant::pbe1(8),
                universe: None,
                hierarchical: false,
                ..base
            },
            0,
        ),
        ("flat-cmpbe2", DetectorConfig { hierarchical: false, ..base }, 0),
        ("hier-cmpbe2", base, 0),
        ("hier-cmpbe1", DetectorConfig { variant: PbeVariant::pbe1(8), ..base }, 0),
        ("sharded", base, 3),
        // Tiered retention: compaction runs inside ingest on an arrivals
        // cadence, so recovery (snapshot + WAL replay through ingest) must
        // reproduce the frozen tiers bit-for-bit.
        (
            "hier-retention",
            DetectorConfig {
                retention: Some(bed_core::RetentionPolicy::new(64, 8, 512).unwrap()),
                ..base
            },
            0,
        ),
        (
            "sharded-retention",
            DetectorConfig {
                retention: Some(bed_core::RetentionPolicy::new(64, 8, 256).unwrap()),
                ..base
            },
            3,
        ),
    ]
}

fn build_empty(config: DetectorConfig, shards: u32) -> AnyDetector {
    if shards == 0 {
        AnyDetector::Plain(Box::new(BurstDetector::from_config(config).unwrap()))
    } else {
        AnyDetector::Sharded(ShardedDetector::from_config(config, shards as usize).unwrap())
    }
}

/// Seeded time-sorted stream over the small universe.
fn gen_stream(rng: &mut SmallRng, n: usize) -> Vec<(EventId, Timestamp)> {
    let mut els: Vec<(u32, u64)> =
        (0..n).map(|_| (rng.gen_range(0..UNIVERSE), rng.gen_range(0..500))).collect();
    els.sort_by_key(|&(_, t)| t);
    els.into_iter().map(|(e, t)| (EventId(e), Timestamp(t))).collect()
}

/// A never-killed detector over `els` (not finalized, like a recovery).
fn golden(config: DetectorConfig, shards: u32, els: &[(EventId, Timestamp)]) -> AnyDetector {
    let mut det = build_empty(config, shards);
    for &(e, t) in els {
        det.ingest(e, t).unwrap();
    }
    det
}

/// All five query kinds (both bursty-event strategies where applicable).
fn probes(single: bool, hierarchical: bool) -> Vec<QueryRequest> {
    let tau = BurstSpan::new(60).unwrap();
    let event = EventId(if single { 0 } else { 2 });
    let range = TimeRange { start: Timestamp(0), end: Timestamp(500) };
    let mut reqs = vec![
        QueryRequest::Point { event, t: Timestamp(300), tau },
        QueryRequest::BurstyTimes { event, theta: 3.0, tau, horizon: Timestamp(500) },
        QueryRequest::BurstyEvents {
            t: Timestamp(300),
            theta: 3.0,
            tau,
            strategy: QueryStrategy::ExactScan,
        },
        QueryRequest::Series { event, tau, range, step: 50 },
        QueryRequest::TopK { event, k: 4, tau, horizon: Timestamp(500) },
    ];
    if hierarchical {
        reqs.push(QueryRequest::BurstyEvents {
            t: Timestamp(300),
            theta: 3.0,
            tau,
            strategy: QueryStrategy::Pruned,
        });
    }
    reqs
}

/// Restored must equal live on the wire format AND on every query kind —
/// `Err` answers included (e.g. bursty-events on a single-event detector
/// must fail identically, not diverge).
fn assert_equivalent(label: &str, live: &mut AnyDetector, restored: &mut AnyDetector) {
    assert_eq!(
        live.to_bytes(),
        restored.to_bytes(),
        "{label}: restored state is not bit-for-bit the live state"
    );
    live.finalize();
    restored.finalize();
    assert_eq!(live.to_bytes(), restored.to_bytes(), "{label}: finalized states diverge");
    let config = *live.config();
    for req in probes(config.universe.is_none(), config.hierarchical) {
        assert_eq!(
            live.queries().query(&req),
            restored.queries().query(&req),
            "{label}: answers diverge on {req:?}"
        );
    }
}

/// Ingest `els` durably (WAL + periodic checkpoints), then "die" without a
/// final checkpoint. Returns the store + wal paths.
fn ingest_and_die(
    dir: &std::path::Path,
    config: DetectorConfig,
    shards: u32,
    els: &[(EventId, Timestamp)],
    every: u64,
) -> (SnapshotStore, PathBuf) {
    let snap = dir.join("snap.beds");
    let wal_path = dir.join("arrivals.wal");
    let det = build_empty(config, shards);
    let mut sink = WalSink::create(&wal_path, det).unwrap();
    let mut ckpt = Checkpointer::new(&snap, CheckpointPolicy { every_arrivals: every });
    for batch in els.chunks(37) {
        sink.ingest_batch(batch).unwrap();
        ckpt.maybe_checkpoint(&sink).unwrap();
    }
    // no final checkpoint, no finalize: the process just died
    drop(sink);
    (SnapshotStore::new(snap), wal_path)
}

#[test]
fn kill_and_restore_is_bit_for_bit_across_all_configs() {
    let mut rng = SmallRng::seed_from_u64(fault_seed());
    for (label, config, shards) in configs() {
        let dir = scratch(&format!("kill-{label}"));
        let els = gen_stream(&mut rng, 600);
        let (store, wal) = ingest_and_die(&dir, config, shards, &els, 97);
        let outcome = recover(&store, Some(&wal)).unwrap();
        assert_eq!(outcome.detector.arrivals(), els.len() as u64, "{label}");
        assert!(outcome.replayed > 0, "{label}: expected a tail past the last checkpoint");
        assert!(!outcome.fell_back && !outcome.torn_tail, "{label}");
        let mut live = golden(config, shards, &els);
        let mut restored = outcome.detector;
        assert_equivalent(label, &mut live, &mut restored);
    }
}

#[test]
fn torn_wal_tail_recovers_the_acknowledged_prefix() {
    let mut rng = SmallRng::seed_from_u64(fault_seed() ^ 0x70_72_6e);
    for (label, config, shards) in configs() {
        let dir = scratch(&format!("torn-{label}"));
        let els = gen_stream(&mut rng, 400);
        let (store, wal) = ingest_and_die(&dir, config, shards, &els, 83);
        // a torn final write: a random partial record fragment
        let frag = rng.gen_range(1..16usize);
        let mut bytes = fs::read(&wal).unwrap();
        bytes.extend(std::iter::repeat_n(0xA5u8, frag));
        fs::write(&wal, &bytes).unwrap();
        let outcome = recover(&store, Some(&wal)).unwrap();
        assert!(outcome.torn_tail, "{label}: fragment of {frag} bytes not flagged");
        assert_eq!(outcome.detector.arrivals(), els.len() as u64, "{label}");
        let mut live = golden(config, shards, &els);
        let mut restored = outcome.detector;
        assert_equivalent(label, &mut live, &mut restored);
    }
}

#[test]
fn snapshot_truncation_always_errors_never_panics() {
    let mut rng = SmallRng::seed_from_u64(fault_seed() ^ 0x74_72_75);
    let (label, config, shards) = &configs()[2];
    let dir = scratch("truncate");
    let els = gen_stream(&mut rng, 300);
    let (store, _) = ingest_and_die(&dir, *config, *shards, &els, 1_000_000);
    let bytes = fs::read(store.path()).unwrap();
    // exhaustive near the edges, seeded sampling in the middle
    let mut cuts: Vec<usize> = (0..32.min(bytes.len())).collect();
    cuts.extend(bytes.len().saturating_sub(16)..bytes.len());
    cuts.extend((0..64).map(|_| rng.gen_range(0..bytes.len())));
    for cut in cuts {
        assert!(
            Snapshot::from_bytes(&bytes[..cut]).is_err(),
            "{label}: truncation to {cut}/{} bytes decoded",
            bytes.len()
        );
    }
}

#[test]
fn bit_flips_fall_back_to_previous_generation() {
    let mut rng = SmallRng::seed_from_u64(fault_seed() ^ 0x66_6c_70);
    let (_, config, shards) = configs()[2];
    let dir = scratch("flip");
    let store = SnapshotStore::new(dir.join("snap.beds"));
    let els = gen_stream(&mut rng, 300);
    let old = golden(config, shards, &els[..200]);
    let new = golden(config, shards, &els);
    store.save(&old).unwrap();
    store.save(&new).unwrap();

    let pristine = fs::read(store.path()).unwrap();
    for _ in 0..40 {
        let mut bad = pristine.clone();
        let pos = rng.gen_range(0..bad.len());
        bad[pos] ^= 1 << rng.gen_range(0..8);
        fs::write(store.path(), &bad).unwrap();
        let (snap, fell_back) = store.load().unwrap();
        assert!(fell_back, "flip at {pos} was not detected");
        assert_eq!(snap.watermark.arrivals, 200, "fallback is the previous generation");
    }

    // both generations damaged → Err, never a half-decoded detector
    let prev = fs::read(store.prev_path()).unwrap();
    let mut bad_prev = prev.clone();
    let pos = rng.gen_range(0..bad_prev.len());
    bad_prev[pos] ^= 0x80;
    fs::write(store.prev_path(), &bad_prev).unwrap();
    assert!(store.load().is_err());
    // the WAL alone cannot rescue a *corrupt* (vs absent) snapshot pair
    fs::write(store.path(), &pristine).unwrap();
    fs::write(store.prev_path(), &prev).unwrap();
    let (snap, _) = store.load().unwrap();
    assert_eq!(snap.watermark.arrivals, els.len() as u64);
}

#[test]
fn mid_wal_corruption_is_an_error_not_data_loss() {
    let mut rng = SmallRng::seed_from_u64(fault_seed() ^ 0x6d6964);
    let (_, config, shards) = configs()[2];
    let dir = scratch("mid-wal");
    let els = gen_stream(&mut rng, 200);
    let (store, wal) = ingest_and_die(&dir, config, shards, &els, 59);
    let pristine = fs::read(&wal).unwrap();
    let header = pristine.len() - 200 * 16;
    // damage a record that is NOT the final one: corruption, not a torn tail
    for _ in 0..20 {
        let mut bad = pristine.clone();
        let rec = rng.gen_range(0..199usize);
        let pos = header + rec * 16 + rng.gen_range(0..16usize);
        bad[pos] ^= 1 << rng.gen_range(0..8);
        fs::write(&wal, &bad).unwrap();
        match recover(&store, Some(&wal)) {
            Err(RecoveryError::WalCorrupt { record }) => {
                assert_eq!(record, rec as u64, "flip at byte {pos}")
            }
            other => panic!("flip in record {rec}: expected WalCorrupt, got {other:?}"),
        }
    }
}

#[test]
fn kill_points_mid_checkpoint_leave_a_loadable_store() {
    let mut rng = SmallRng::seed_from_u64(fault_seed() ^ 0x6b_69_6c);
    let (_, config, shards) = configs()[2];
    for crash in [CrashPoint::MidTempWrite, CrashPoint::AfterTempWrite, CrashPoint::AfterRotate] {
        let dir = scratch(&format!("crash-{crash:?}"));
        let store = SnapshotStore::new(dir.join("snap.beds"));
        let els = gen_stream(&mut rng, 300);
        let gen1 = golden(config, shards, &els[..100]);
        let gen2 = golden(config, shards, &els[..200]);
        store.save(&gen1).unwrap();
        store.save(&gen2).unwrap();
        // the third checkpoint dies at `crash`
        let gen3 = golden(config, shards, &els);
        store.save_until(&gen3, Some(crash)).unwrap();
        let (snap, _) = store.load().unwrap();
        // Never the half-written generation. Mid/after-temp-write crashes
        // leave gen2 as `current`; AfterRotate leaves it as `.prev` — either
        // way the loadable state is the 200-arrival generation.
        assert_eq!(
            snap.watermark.arrivals, 200,
            "{crash:?}: loaded watermark {}",
            snap.watermark.arrivals
        );
        // and the store still accepts the retried checkpoint afterwards
        store.save(&gen3).unwrap();
        let (snap, fell_back) = store.load().unwrap();
        assert!(!fell_back);
        assert_eq!(snap.watermark.arrivals, 300);
    }
}

#[test]
fn wal_from_a_different_config_is_refused_with_a_diff() {
    let mut rng = SmallRng::seed_from_u64(fault_seed() ^ 0x63_66_67);
    let (_, config, shards) = configs()[2];
    let dir = scratch("mismatch");
    let els = gen_stream(&mut rng, 150);
    let (store, _) = ingest_and_die(&dir, config, shards, &els, 50);
    // a WAL whose header says: different seed, different universe
    let other = DetectorConfig { seed: 999, universe: Some(UNIVERSE * 2), ..config };
    let wal2 = dir.join("other.wal");
    let mut w = bed_core::WalWriter::create(&wal2, &other, 4).unwrap();
    w.append(EventId(0), Timestamp(1)).unwrap();
    w.sync().unwrap();
    match recover(&store, Some(&wal2)) {
        Err(RecoveryError::ConfigMismatch { diff }) => {
            assert!(diff.contains("seed"), "{diff}");
            assert!(diff.contains("universe"), "{diff}");
            assert!(diff.contains("shards"), "{diff}");
        }
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

#[test]
fn inconsistent_artifacts_and_absent_state_are_typed_errors() {
    let mut rng = SmallRng::seed_from_u64(fault_seed() ^ 0x6e_6f_73);
    let (_, config, shards) = configs()[2];
    let dir = scratch("inconsistent");
    // no snapshot, no wal
    let store = SnapshotStore::new(dir.join("absent.beds"));
    assert!(matches!(recover(&store, None), Err(RecoveryError::NoState)));

    // snapshot claims more coverage than the wal holds
    let els = gen_stream(&mut rng, 120);
    let (store, wal) = ingest_and_die(&dir, config, shards, &els, 40);
    let mut bytes = fs::read(&wal).unwrap();
    let keep = bytes.len() - 60 * 16; // drop 60 acknowledged records
    bytes.truncate(keep);
    fs::write(&wal, &bytes).unwrap();
    assert!(matches!(recover(&store, Some(&wal)), Err(RecoveryError::Corrupt { .. })));

    // wal alone (snapshot genuinely absent) cold-starts from its header
    fs::remove_file(store.path()).unwrap();
    let _ = fs::remove_file(store.prev_path());
    let outcome = recover(&store, Some(&wal)).unwrap();
    assert_eq!(outcome.detector.arrivals(), 60);
    assert_eq!(outcome.watermark.arrivals, 0);
    let mut live = golden(config, shards, &els[..60]);
    let mut restored = outcome.detector;
    assert_equivalent("cold-start", &mut live, &mut restored);
}

proptest! {
    /// Random stream, random kill point, random checkpoint period: the
    /// recovered detector is bit-for-bit the live one, on every config.
    #[test]
    fn recovery_equivalence_holds_for_arbitrary_kill_points(
        stream_seed in 0u64..1_000,
        kill in 1usize..300,
        every in 13u64..211,
        which in 0usize..5,
    ) {
        let (label, config, shards) = configs()[which];
        let dir = scratch(&format!("prop-{label}-{stream_seed}-{kill}-{every}"));
        let mut rng = SmallRng::seed_from_u64(fault_seed().wrapping_mul(1_000_003) ^ stream_seed);
        let els = gen_stream(&mut rng, 300);
        let seen = &els[..kill.min(els.len())];
        let (store, wal) = ingest_and_die(&dir, config, shards, seen, every);
        let outcome = recover(&store, Some(&wal)).unwrap();
        prop_assert_eq!(outcome.detector.arrivals(), seen.len() as u64);
        let mut live = golden(config, shards, seen);
        let mut restored = outcome.detector;
        assert_equivalent(label, &mut live, &mut restored);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Arbitrary single-byte corruption of the snapshot or WAL: recovery
    /// never panics, and when it reports `Ok` the result is a true prefix
    /// of the stream — never a silently wrong summary.
    #[test]
    fn random_corruption_never_yields_a_wrong_summary(
        stream_seed in 0u64..1_000,
        flip_snapshot in any::<bool>(),
        flip_site in 0usize..100_000,
        bit in 0u8..8,
    ) {
        let (_, config, shards) = configs()[2];
        let dir = scratch(&format!("prop-corrupt-{stream_seed}-{flip_snapshot}-{flip_site}-{bit}"));
        let mut rng = SmallRng::seed_from_u64(fault_seed().wrapping_mul(7_777_777) ^ stream_seed);
        let els = gen_stream(&mut rng, 200);
        let (store, wal) = ingest_and_die(&dir, config, shards, &els, 71);
        let victim = if flip_snapshot { store.path().to_path_buf() } else { wal.clone() };
        let mut bytes = fs::read(&victim).unwrap();
        let pos = flip_site % bytes.len();
        bytes[pos] ^= 1 << bit;
        fs::write(&victim, &bytes).unwrap();

        if let Ok(outcome) = recover(&store, Some(&wal)) {
            let n = outcome.detector.arrivals() as usize;
            prop_assert!(n <= els.len());
            let mut live = golden(config, shards, &els[..n]);
            let mut restored = outcome.detector;
            assert_equivalent("corrupted-prefix", &mut live, &mut restored);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

/// The snapshot format self-identifies: its version constant is what the
/// envelope writes, and v1-tagged data is refused by the envelope decoder.
#[test]
fn snapshot_version_is_pinned() {
    assert_eq!(SNAPSHOT_VERSION, 2);
    let (_, config, shards) = configs()[2];
    let det = golden(config, shards, &[(EventId(1), Timestamp(5))]);
    let bytes = Snapshot::of(&det).to_bytes();
    assert_eq!(&bytes[..4], b"BEDS");
    assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 2);
}
