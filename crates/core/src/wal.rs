//! Append-only write-ahead log of arrivals (format `BEDW` v1).
//!
//! The WAL makes the gap between two checkpoints durable: every arrival is
//! appended (and synced) *before* it reaches the detector, so after a
//! crash the log is a superset of any snapshot's state and recovery is
//! "load snapshot, replay the tail" (see [`crate::checkpoint::recover`]).
//!
//! On-disk layout:
//!
//! ```text
//! header  := "BEDW" · u16 version=1 · DetectorConfig · u32 shards · u32 crc
//! record  := u32 event · u64 ts · u32 crc          (fixed 16 bytes)
//! ```
//!
//! The header CRC covers every preceding header byte. Each record's CRC
//! covers its zero-based sequence number concatenated with the event and
//! timestamp bytes — binding records to their *position*, so a duplicated,
//! reordered, or relocated record fails validation, not just a damaged
//! one. `shards` records the physical layout the log feeds (0 =
//! unsharded), letting recovery rebuild the right detector from the log
//! alone and refuse a replay into a mismatched one.
//!
//! Because records are fixed-size and appended tail-only, a crash can
//! damage at most the end of the file. [`read_wal`] therefore treats a
//! trailing partial record — or a CRC failure on the *final* complete
//! record — as a torn tail: the write was never acknowledged, dropping it
//! is correct. A CRC failure anywhere earlier is real corruption and
//! surfaces as [`RecoveryError::WalCorrupt`].

use std::fs;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};

use bed_stream::codec::{Reader, Writer};
use bed_stream::{crc32, Codec, CodecError, EventId, Timestamp};

use crate::checkpoint::{Checkpointable, RecoveryError, Watermark};
use crate::config::DetectorConfig;
use crate::error::BedError;
use crate::metrics::WalMetrics;
use crate::observe::Traceable;
use crate::pipeline::EventSink;

/// Magic tag of the WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"BEDW";
/// WAL format version.
pub const WAL_VERSION: u16 = 1;
/// On-disk size of one arrival record.
pub const WAL_RECORD_BYTES: usize = 16;

/// CRC input of record `seq`: position, event, timestamp.
fn record_crc(seq: u64, event: EventId, ts: Timestamp) -> u32 {
    let mut buf = [0u8; 20];
    buf[..8].copy_from_slice(&seq.to_le_bytes());
    buf[8..12].copy_from_slice(&event.0.to_le_bytes());
    buf[12..].copy_from_slice(&ts.ticks().to_le_bytes());
    crc32(&buf)
}

fn encode_header(config: &DetectorConfig, shards: u32) -> Vec<u8> {
    let mut w = Writer::new();
    w.magic(WAL_MAGIC);
    w.version(WAL_VERSION);
    config.encode(&mut w);
    w.u32(shards);
    let crc = crc32(w.written());
    w.u32(crc);
    w.into_bytes()
}

/// Appends arrivals to a `BEDW` log with explicit durability points.
///
/// [`Self::append`] only buffers; [`Self::sync`] flushes and fsyncs. The
/// WAL-before-ingest contract is: append the batch, sync, *then* ingest it
/// — which is exactly what [`WalSink`] does.
#[derive(Debug)]
pub struct WalWriter {
    file: BufWriter<fs::File>,
    path: PathBuf,
    seq: u64,
    pending: bool,
    metrics: WalMetrics,
}

impl WalWriter {
    /// Creates (truncating) a WAL at `path` for a detector of `config` and
    /// `shards` physical layout (0 = unsharded); the header is synced
    /// before returning.
    pub fn create(
        path: impl Into<PathBuf>,
        config: &DetectorConfig,
        shards: u32,
    ) -> Result<Self, RecoveryError> {
        let path = path.into();
        let file = fs::File::create(&path)?;
        let mut file = BufWriter::new(file);
        file.write_all(&encode_header(config, shards))?;
        file.flush()?;
        file.get_ref().sync_all()?;
        Ok(WalWriter { file, path, seq: 0, pending: false, metrics: WalMetrics::new() })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended so far (acknowledged or not).
    pub fn appended(&self) -> u64 {
        self.seq
    }

    /// Buffers one arrival record. Not durable until [`Self::sync`].
    pub fn append(&mut self, event: EventId, ts: Timestamp) -> Result<(), RecoveryError> {
        let mut rec = [0u8; WAL_RECORD_BYTES];
        rec[..4].copy_from_slice(&event.0.to_le_bytes());
        rec[4..12].copy_from_slice(&ts.ticks().to_le_bytes());
        rec[12..].copy_from_slice(&record_crc(self.seq, event, ts).to_le_bytes());
        self.file.write_all(&rec)?;
        self.seq += 1;
        self.pending = true;
        self.metrics.appended(1, WAL_RECORD_BYTES as u64);
        Ok(())
    }

    /// Flushes buffered records and fsyncs the file. No-op when nothing is
    /// pending.
    pub fn sync(&mut self) -> Result<(), RecoveryError> {
        if !self.pending {
            return Ok(());
        }
        let started = self.metrics.sync_begin();
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        self.pending = false;
        self.metrics.sync_end(started);
        Ok(())
    }

    /// Snapshot of the `wal.*` metrics.
    pub fn metrics(&self) -> bed_obs::MetricsSnapshot {
        self.metrics.snapshot()
    }
}

/// Everything an intact (or cleanly torn) WAL contains.
#[derive(Debug, Clone)]
pub struct WalContents {
    /// Detector configuration from the header.
    pub config: DetectorConfig,
    /// Physical layout from the header (0 = unsharded).
    pub shards: u32,
    /// The validated arrival records, in append order.
    pub records: Vec<(EventId, Timestamp)>,
    /// Whether the file ended in a torn (unacknowledged) write that was
    /// discarded.
    pub torn_tail: bool,
}

/// Reads and validates a `BEDW` log. See the module docs for the
/// torn-tail-vs-corruption distinction.
pub fn read_wal(path: impl AsRef<Path>) -> Result<WalContents, RecoveryError> {
    let bytes = fs::read(path.as_ref())?;
    let mut r = Reader::new(&bytes);
    r.magic(WAL_MAGIC)?;
    r.version(WAL_VERSION)?;
    let config = DetectorConfig::decode(&mut r)?;
    let shards = r.u32("wal shards")?;
    let header_end = r.pos();
    let stored = r.u32("wal header crc")?;
    let computed = crc32(&bytes[..header_end]);
    if stored != computed {
        return Err(RecoveryError::Codec(CodecError::ChecksumMismatch {
            context: "wal header",
            expected: stored,
            found: computed,
        }));
    }

    let body = &bytes[r.pos()..];
    let whole = body.len() / WAL_RECORD_BYTES;
    let mut torn_tail = body.len() % WAL_RECORD_BYTES != 0;
    let mut records = Vec::with_capacity(whole);
    for i in 0..whole {
        let rec = &body[i * WAL_RECORD_BYTES..(i + 1) * WAL_RECORD_BYTES];
        let event = EventId(u32::from_le_bytes(rec[..4].try_into().expect("4 bytes")));
        let ts = Timestamp(u64::from_le_bytes(rec[4..12].try_into().expect("8 bytes")));
        let stored = u32::from_le_bytes(rec[12..].try_into().expect("4 bytes"));
        if stored != record_crc(i as u64, event, ts) {
            if i + 1 == whole {
                // Damage confined to the very end of the file: a torn
                // final write, dropped as unacknowledged.
                torn_tail = true;
                break;
            }
            return Err(RecoveryError::WalCorrupt { record: i as u64 });
        }
        records.push((event, ts));
    }
    Ok(WalContents { config, shards, records, torn_tail })
}

/// An [`EventSink`] that logs every arrival before handing it to the
/// wrapped detector — the WAL-before-ingest ordering invariant, packaged.
///
/// Works with any sink that is also [`Checkpointable`] (both detector
/// layouts and [`crate::checkpoint::AnyDetector`]), so a
/// [`crate::MessagePipeline`] or an ingest loop can be made durable by
/// wrapping its detector:
///
/// ```no_run
/// use bed_core::wal::WalSink;
/// use bed_core::BurstDetector;
/// use bed_core::pipeline::EventSink;
/// use bed_stream::{EventId, Timestamp};
///
/// let det = BurstDetector::builder().universe(16).build().unwrap();
/// let mut durable = WalSink::create("arrivals.wal", det).unwrap();
/// durable.ingest(EventId(3), Timestamp(7)).unwrap(); // logged, synced, then ingested
/// ```
#[derive(Debug)]
pub struct WalSink<D> {
    wal: WalWriter,
    inner: D,
    tracer: std::sync::Arc<bed_obs::Tracer>,
}

impl<D: EventSink + Checkpointable> WalSink<D> {
    /// Creates the WAL at `path` (header from the detector's own config
    /// and layout) and wraps `inner`.
    pub fn create(path: impl Into<PathBuf>, inner: D) -> Result<Self, RecoveryError> {
        let wal = WalWriter::create(path, Checkpointable::config(&inner), inner.layout_shards())?;
        Ok(WalSink { wal, inner, tracer: std::sync::Arc::new(bed_obs::Tracer::disabled()) })
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Unwraps, returning the detector (the WAL file stays on disk).
    pub fn into_inner(mut self) -> Result<D, RecoveryError> {
        self.wal.sync()?;
        Ok(self.inner)
    }

    /// The underlying log writer.
    pub fn wal(&self) -> &WalWriter {
        &self.wal
    }

    fn log_and_sync(&mut self, batch: &[(EventId, Timestamp)]) -> Result<(), BedError> {
        let trace = self.tracer.start_sampled(bed_obs::SpanName::WAL_APPEND);
        let log = |e: RecoveryError| BedError::Wal(e.to_string());
        let result = (|| {
            for &(event, ts) in batch {
                self.wal.append(event, ts).map_err(log)?;
            }
            self.wal.sync().map_err(log)
        })();
        if let Some(trace) = trace {
            let n = batch.len();
            trace.finish(|| format!("wal records={n}"));
        }
        result
    }
}

impl<D: EventSink + Checkpointable + Traceable> Traceable for WalSink<D> {
    /// Installs the tracer on the append/sync path **and** the wrapped
    /// detector.
    fn set_tracer(&mut self, tracer: std::sync::Arc<bed_obs::Tracer>) {
        self.tracer = std::sync::Arc::clone(&tracer);
        self.inner.set_tracer(tracer);
    }

    fn tracer(&self) -> &std::sync::Arc<bed_obs::Tracer> {
        &self.tracer
    }
}

impl<D: EventSink + Checkpointable> EventSink for WalSink<D> {
    fn ingest(&mut self, event: EventId, ts: Timestamp) -> Result<(), BedError> {
        self.log_and_sync(&[(event, ts)])?;
        self.inner.ingest(event, ts)
    }

    fn ingest_batch(&mut self, batch: &[(EventId, Timestamp)]) -> Result<(), BedError> {
        self.log_and_sync(batch)?;
        self.inner.ingest_batch(batch)
    }

    fn finalize(&mut self) {
        let _ = self.wal.sync();
        self.inner.finalize();
    }

    fn arrivals(&self) -> u64 {
        self.inner.arrivals()
    }
}

impl<D: EventSink + Checkpointable> Checkpointable for WalSink<D> {
    fn encode_state(&self, w: &mut Writer) {
        self.inner.encode_state(w);
    }
    fn watermark(&self) -> Watermark {
        Checkpointable::watermark(&self.inner)
    }
    fn config(&self) -> &DetectorConfig {
        Checkpointable::config(&self.inner)
    }
    fn layout_shards(&self) -> u32 {
        self.inner.layout_shards()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("bed-wal-unit");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_sample(path: &Path, n: u64) -> DetectorConfig {
        let config = DetectorConfig::default();
        let mut w = WalWriter::create(path, &config, 0).unwrap();
        for i in 0..n {
            w.append(EventId(i as u32), Timestamp(i * 2)).unwrap();
        }
        w.sync().unwrap();
        config
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip.wal");
        write_sample(&path, 10);
        let wal = read_wal(&path).unwrap();
        assert_eq!(wal.shards, 0);
        assert_eq!(wal.records.len(), 10);
        assert!(!wal.torn_tail);
        assert_eq!(wal.records[3], (EventId(3), Timestamp(6)));
        assert!(wal.config.same_shape(&DetectorConfig::default()));
    }

    #[test]
    fn torn_partial_tail_is_dropped() {
        let path = tmp("torn.wal");
        write_sample(&path, 5);
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 7); // mid-record
        fs::write(&path, &bytes).unwrap();
        let wal = read_wal(&path).unwrap();
        assert_eq!(wal.records.len(), 4);
        assert!(wal.torn_tail);
    }

    #[test]
    fn damaged_final_record_is_a_torn_tail() {
        let path = tmp("torn-final.wal");
        write_sample(&path, 5);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0xFF; // inside the last record's crc
        fs::write(&path, &bytes).unwrap();
        let wal = read_wal(&path).unwrap();
        assert_eq!(wal.records.len(), 4);
        assert!(wal.torn_tail);
    }

    #[test]
    fn damaged_middle_record_is_corruption() {
        let path = tmp("corrupt.wal");
        write_sample(&path, 5);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2 * WAL_RECORD_BYTES + 1] ^= 0x10; // record 3 of 0..=4
        fs::write(&path, &bytes).unwrap();
        match read_wal(&path) {
            Err(RecoveryError::WalCorrupt { record: 3 }) => {}
            other => panic!("expected WalCorrupt at record 3, got {other:?}"),
        }
    }

    #[test]
    fn damaged_header_is_detected() {
        let path = tmp("header.wal");
        write_sample(&path, 2);
        let mut bytes = fs::read(&path).unwrap();
        bytes[10] ^= 0x01; // inside the config bytes
        fs::write(&path, &bytes).unwrap();
        assert!(read_wal(&path).is_err());
    }

    #[test]
    fn records_are_position_bound() {
        let path = tmp("swap.wal");
        write_sample(&path, 4);
        let mut bytes = fs::read(&path).unwrap();
        let body_start = bytes.len() - 4 * WAL_RECORD_BYTES;
        // swap records 0 and 1 — both individually intact
        let (a, b) = (body_start, body_start + WAL_RECORD_BYTES);
        for i in 0..WAL_RECORD_BYTES {
            bytes.swap(a + i, b + i);
        }
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_wal(&path), Err(RecoveryError::WalCorrupt { record: 0 })));
    }
}
