//! Durable checkpoints and crash recovery.
//!
//! A production detector serving historical burst queries cannot afford to
//! lose hours of summary state on a crash and re-ingest the entire
//! history. This module provides the durability layer:
//!
//! * **BEDS v2 snapshots** — a versioned, CRC-validated envelope around a
//!   full detector record ([`Snapshot`]). The payload is the existing
//!   `BEDD`/`BEDS v1` encoding, so every summary layer (PBE-1 buffers and
//!   knees, PBE-2 segment lists, CM-PBE cell tables, the dyadic hierarchy,
//!   per-shard state) rides along unchanged; the envelope adds an ingest
//!   [`Watermark`] and a whole-file CRC-32 so damage is *detected*, never
//!   silently decoded.
//! * **Atomic persistence with rotation** — [`SnapshotStore`] writes
//!   snapshots via write-to-temp + fsync + rename and keeps the previous
//!   snapshot as `<path>.prev`; a crash at any point leaves a loadable
//!   snapshot on disk, and [`SnapshotStore::load`] falls back to the
//!   previous generation when the latest is damaged.
//! * **Periodic checkpoint policy** — [`Checkpointer`] wraps a store with
//!   an every-N-arrivals policy and `bed-obs` metrics
//!   (`checkpoint.{count,errors,bytes,latency_ns}`,
//!   `recovery.{count,fallbacks,replayed,torn_tails}`).
//! * **Recovery** — [`recover`] loads the newest intact snapshot and
//!   replays the write-ahead-log tail past the watermark (see
//!   [`crate::wal`]), reconstructing a detector that is bit-for-bit the
//!   one that crashed.
//!
//! Recovery invariants:
//!
//! 1. WAL append (+ sync) happens *before* the arrival is ingested, so the
//!    log is always a superset of any snapshot's state.
//! 2. A snapshot's watermark counts arrivals, which equals the number of
//!    WAL records its state covers; replay resumes at that record index.
//! 3. Every corruption — truncated snapshot, torn or bit-flipped WAL
//!    record, interrupted checkpoint — ends in a typed [`RecoveryError`]
//!    or a clean fallback to the previous snapshot. Never a panic, never a
//!    silently wrong estimate.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use bed_stream::codec::{Reader, Writer};
use bed_stream::{crc32, Codec, CodecError, EventId, Timestamp};

use crate::config::DetectorConfig;
use crate::detector::BurstDetector;
use crate::error::BedError;
use crate::metrics::CheckpointMetrics;
use crate::observe::Traceable;
use crate::query::BurstQueries;
use crate::shard::ShardedDetector;
use crate::wal::{read_wal, WalContents};

/// How far the stream had been consumed when a snapshot was taken.
///
/// `arrivals` doubles as the WAL replay cursor: with the WAL written
/// strictly in ingest order, the snapshot covers exactly the first
/// `arrivals` records, and recovery replays everything after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Watermark {
    /// Elements ingested (equivalently: WAL records covered).
    pub arrivals: u64,
    /// Timestamp of the newest ingested element.
    pub last_ts: Option<Timestamp>,
}

impl Codec for Watermark {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.arrivals);
        match self.last_ts {
            Some(t) => {
                w.u8(1);
                t.encode(w);
            }
            None => w.u8(0),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let arrivals = r.u64("watermark arrivals")?;
        let last_ts = match r.u8("watermark last_ts flag")? {
            0 => None,
            1 => Some(Timestamp::decode(r)?),
            _ => return Err(CodecError::Invalid { context: "watermark last_ts flag" }),
        };
        Ok(Watermark { arrivals, last_ts })
    }
}

/// A detector of either physical layout — the unit of persistence. Query
/// commands, snapshots, and recovery are all agnostic of whether the state
/// is one [`BurstDetector`] or a [`ShardedDetector`].
#[derive(Debug, Clone)]
pub enum AnyDetector {
    /// Unsharded detector (boxed: it embeds its metric handles and dwarfs
    /// the sharded facade variant).
    Plain(Box<BurstDetector>),
    /// Hash-sharded detector.
    Sharded(ShardedDetector),
}

impl AnyDetector {
    /// The unified query surface.
    pub fn queries(&self) -> &dyn BurstQueries {
        match self {
            AnyDetector::Plain(d) => d.as_ref(),
            AnyDetector::Sharded(d) => d,
        }
    }

    /// The configuration in force (per-shard config when sharded).
    pub fn config(&self) -> &DetectorConfig {
        match self {
            AnyDetector::Plain(d) => d.config(),
            AnyDetector::Sharded(d) => d.config(),
        }
    }

    /// Shard count of the physical layout: 0 for an unsharded detector,
    /// `n ≥ 1` for a sharded one (the distinction matters — a 1-sharded
    /// detector is still a `BEDS v1` record).
    pub fn layout_shards(&self) -> u32 {
        match self {
            AnyDetector::Plain(_) => 0,
            AnyDetector::Sharded(d) => d.num_shards() as u32,
        }
    }

    /// Records one arrival, routing to the layout's ingest entry point
    /// (single-event detectors ignore `event`, which the WAL stores as 0).
    pub fn ingest(&mut self, event: EventId, ts: Timestamp) -> Result<(), BedError> {
        match self {
            AnyDetector::Plain(d) if d.config().universe.is_none() => d.ingest_single(ts),
            AnyDetector::Plain(d) => d.ingest(event, ts),
            AnyDetector::Sharded(d) => d.ingest(event, ts),
        }
    }

    /// Flushes internal buffering on every layer.
    pub fn finalize(&mut self) {
        match self {
            AnyDetector::Plain(d) => d.finalize(),
            AnyDetector::Sharded(d) => d.finalize(),
        }
    }

    /// Elements ingested so far.
    pub fn arrivals(&self) -> u64 {
        match self {
            AnyDetector::Plain(d) => d.arrivals(),
            AnyDetector::Sharded(d) => d.arrivals(),
        }
    }

    /// Current summary size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            AnyDetector::Plain(d) => d.size_bytes(),
            AnyDetector::Sharded(d) => d.size_bytes(),
        }
    }

    /// The recovery watermark of the current state.
    pub fn watermark(&self) -> Watermark {
        match self {
            AnyDetector::Plain(d) => d.watermark(),
            AnyDetector::Sharded(d) => d.watermark(),
        }
    }

    /// Resident bytes of the struct-of-arrays probe banks (0 until
    /// finalized — names which probe path queries take).
    pub fn soa_bank_bytes(&self) -> usize {
        match self {
            AnyDetector::Plain(d) => d.soa_bank_bytes(),
            AnyDetector::Sharded(d) => d.soa_bank_bytes(),
        }
    }
}

/// An [`AnyDetector`] feeds anywhere a detector does — pipelines,
/// [`crate::wal::WalSink`] — with ingest routed per its layout and mode.
impl crate::pipeline::EventSink for AnyDetector {
    fn ingest(&mut self, event: EventId, ts: Timestamp) -> Result<(), BedError> {
        AnyDetector::ingest(self, event, ts)
    }

    fn ingest_batch(&mut self, batch: &[(EventId, Timestamp)]) -> Result<(), BedError> {
        match self {
            AnyDetector::Sharded(d) => d.ingest_batch(batch),
            AnyDetector::Plain(_) => {
                for &(event, ts) in batch {
                    AnyDetector::ingest(self, event, ts)?;
                }
                Ok(())
            }
        }
    }

    fn finalize(&mut self) {
        AnyDetector::finalize(self)
    }

    fn arrivals(&self) -> u64 {
        AnyDetector::arrivals(self)
    }
}

/// Dispatches on the `BEDD` / `BEDS v1` magic+version prefix. A `BEDS v2`
/// snapshot envelope is *not* a detector record; decode it via
/// [`Snapshot`] instead (the error says so).
impl Codec for AnyDetector {
    fn encode(&self, w: &mut Writer) {
        match self {
            AnyDetector::Plain(d) => d.encode(w),
            AnyDetector::Sharded(d) => d.encode(w),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let head = r.peek(6, "detector record prefix")?;
        match &head[..4] {
            b"BEDD" => Ok(AnyDetector::Plain(Box::new(BurstDetector::decode(r)?))),
            b"BEDS" => {
                if u16::from_le_bytes([head[4], head[5]]) == SNAPSHOT_VERSION {
                    return Err(CodecError::Invalid {
                        context: "detector record (found a BEDS v2 snapshot envelope; \
                                  decode it as a Snapshot)",
                    });
                }
                Ok(AnyDetector::Sharded(ShardedDetector::decode(r)?))
            }
            other => Err(CodecError::BadMagic {
                expected: *b"BEDD",
                found: [other[0], other[1], other[2], other[3]],
            }),
        }
    }
}

/// Magic tag of the snapshot envelope (shared with the sharded-detector
/// record; the version field disambiguates).
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"BEDS";
/// Envelope format version.
pub const SNAPSHOT_VERSION: u16 = 2;

/// A CRC-validated, versioned checkpoint of a detector (format `BEDS` v2).
///
/// Layout: magic `BEDS` · `u16` version 2 · [`Watermark`] · `u64` payload
/// length · payload (a `BEDD`/`BEDS v1` record) · `u32` CRC-32 over every
/// preceding byte, magic included. The trailing whole-file CRC means *any*
/// bit flip — header, watermark, payload, or length field — surfaces as
/// [`CodecError::ChecksumMismatch`] (or a framing error) on load.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Stream position the state covers.
    pub watermark: Watermark,
    /// The checkpointed detector.
    pub detector: AnyDetector,
}

impl Snapshot {
    /// Captures a snapshot of `detector` (clones the state; prefer
    /// [`Checkpointer::checkpoint`] to persist without cloning).
    pub fn of(detector: &AnyDetector) -> Self {
        Snapshot { watermark: detector.watermark(), detector: detector.clone() }
    }
}

/// Encodes the envelope around an already-encoded detector payload.
fn encode_envelope(watermark: Watermark, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.magic(SNAPSHOT_MAGIC);
    w.version(SNAPSHOT_VERSION);
    watermark.encode(&mut w);
    w.len(payload.len());
    w.bytes(payload);
    let crc = crc32(w.written());
    w.u32(crc);
    w.into_bytes()
}

impl Codec for Snapshot {
    fn encode(&self, w: &mut Writer) {
        let mut payload = Writer::new();
        self.detector.encode(&mut payload);
        w.bytes(&encode_envelope(self.watermark, &payload.into_bytes()));
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let start = r.pos();
        r.magic(SNAPSHOT_MAGIC)?;
        let version = r.u16("snapshot version")?;
        if version == 0 || version > SNAPSHOT_VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        if version != SNAPSHOT_VERSION {
            // v1 with this magic is a bare sharded-detector record, not an
            // envelope; refusing here keeps the two formats unambiguous.
            return Err(CodecError::Invalid {
                context: "snapshot version (BEDS v1 is a sharded detector record)",
            });
        }
        let watermark = Watermark::decode(r)?;
        let n = r.len("snapshot payload length", 1)?;
        let payload = r.bytes(n, "snapshot payload")?;
        let body_end = r.pos();
        let stored = r.u32("snapshot crc")?;
        let computed = crc32(&r.source()[start..body_end]);
        if stored != computed {
            return Err(CodecError::ChecksumMismatch {
                context: "snapshot envelope",
                expected: stored,
                found: computed,
            });
        }
        let detector = AnyDetector::from_bytes(payload)?;
        if detector.arrivals() != watermark.arrivals {
            return Err(CodecError::Invalid {
                context: "snapshot watermark (does not match payload arrivals)",
            });
        }
        Ok(Snapshot { watermark, detector })
    }
}

/// Errors surfaced by checkpointing and recovery.
#[derive(Debug)]
pub enum RecoveryError {
    /// Filesystem failure.
    Io(io::Error),
    /// A persisted artifact failed to decode (framing, version, CRC).
    Codec(CodecError),
    /// The artifacts are mutually inconsistent (e.g. the WAL ends before
    /// the snapshot's watermark).
    Corrupt {
        /// What is inconsistent.
        context: &'static str,
    },
    /// A WAL record failed its CRC before the tail — damage, not a torn
    /// final write.
    WalCorrupt {
        /// Zero-based record index.
        record: u64,
    },
    /// The WAL/snapshot/target configurations describe different
    /// detectors; restoring would produce a mixed-state summary.
    ConfigMismatch {
        /// `field: ours vs theirs` clauses.
        diff: String,
    },
    /// Replay was rejected by the detector (e.g. non-monotone WAL).
    Detector(BedError),
    /// Neither a snapshot nor a WAL exists to recover from.
    NoState,
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "i/o failure during recovery: {e}"),
            RecoveryError::Codec(e) => write!(f, "corrupt persisted state: {e}"),
            RecoveryError::Corrupt { context } => write!(f, "inconsistent state: {context}"),
            RecoveryError::WalCorrupt { record } => {
                write!(f, "wal record {record} failed its checksum before the tail")
            }
            RecoveryError::ConfigMismatch { diff } => {
                write!(f, "configuration mismatch, refusing a mixed-state restore: {diff}")
            }
            RecoveryError::Detector(e) => write!(f, "replay rejected: {e}"),
            RecoveryError::NoState => write!(f, "nothing to recover: no snapshot and no wal"),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Io(e) => Some(e),
            RecoveryError::Codec(e) => Some(e),
            RecoveryError::Detector(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> Self {
        RecoveryError::Io(e)
    }
}
impl From<CodecError> for RecoveryError {
    fn from(e: CodecError) -> Self {
        RecoveryError::Codec(e)
    }
}
impl From<BedError> for RecoveryError {
    fn from(e: BedError) -> Self {
        RecoveryError::Detector(e)
    }
}

/// State that can be checkpointed without cloning: the persisted payload
/// plus the watermark it covers. Implemented by [`BurstDetector`],
/// [`ShardedDetector`], [`AnyDetector`], and [`crate::wal::WalSink`].
pub trait Checkpointable {
    /// Appends the detector record (`BEDD`/`BEDS v1`) to `w`.
    fn encode_state(&self, w: &mut Writer);

    /// The watermark of the current state.
    fn watermark(&self) -> Watermark;

    /// The summary-shaping configuration.
    fn config(&self) -> &DetectorConfig;

    /// Physical layout (0 = unsharded; see [`AnyDetector::layout_shards`]).
    fn layout_shards(&self) -> u32;
}

impl Checkpointable for BurstDetector {
    fn encode_state(&self, w: &mut Writer) {
        self.encode(w);
    }
    fn watermark(&self) -> Watermark {
        BurstDetector::watermark(self)
    }
    fn config(&self) -> &DetectorConfig {
        BurstDetector::config(self)
    }
    fn layout_shards(&self) -> u32 {
        0
    }
}

impl Checkpointable for ShardedDetector {
    fn encode_state(&self, w: &mut Writer) {
        self.encode(w);
    }
    fn watermark(&self) -> Watermark {
        ShardedDetector::watermark(self)
    }
    fn config(&self) -> &DetectorConfig {
        ShardedDetector::config(self)
    }
    fn layout_shards(&self) -> u32 {
        self.num_shards() as u32
    }
}

impl Checkpointable for AnyDetector {
    fn encode_state(&self, w: &mut Writer) {
        self.encode(w);
    }
    fn watermark(&self) -> Watermark {
        AnyDetector::watermark(self)
    }
    fn config(&self) -> &DetectorConfig {
        AnyDetector::config(self)
    }
    fn layout_shards(&self) -> u32 {
        AnyDetector::layout_shards(self)
    }
}

/// Interrupt point for crash-fault injection: [`SnapshotStore::save_until`]
/// runs the *real* save sequence and stops dead at the chosen boundary,
/// leaving on disk exactly what a `SIGKILL` at that syscall would.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Killed while writing the temp file: a partial `.tmp` exists.
    MidTempWrite,
    /// Killed after the temp write, before any rename.
    AfterTempWrite,
    /// Killed between rotating `path → path.prev` and publishing the new
    /// snapshot: only `.prev` and `.tmp` exist.
    AfterRotate,
}

/// Atomic snapshot persistence with one-generation rotation.
///
/// For a base `path`, the store manages three files: `path` (current),
/// `path.prev` (previous generation, the fallback), and `path.tmp`
/// (in-flight write, never read back). See the module docs for the crash
/// matrix this layout survives.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    path: PathBuf,
}

impl SnapshotStore {
    /// A store rooted at `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        SnapshotStore { path: path.into() }
    }

    /// The current-snapshot path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The previous-generation path.
    pub fn prev_path(&self) -> PathBuf {
        append_ext(&self.path, "prev")
    }

    /// The in-flight temp path.
    pub fn temp_path(&self) -> PathBuf {
        append_ext(&self.path, "tmp")
    }

    /// Persists `state` atomically: encode → write `path.tmp` → fsync →
    /// rotate `path` to `path.prev` → rename `path.tmp` to `path` → fsync
    /// the directory. Returns the envelope size in bytes.
    pub fn save(&self, state: &impl Checkpointable) -> Result<u64, RecoveryError> {
        self.save_until(state, None)
    }

    /// [`Self::save`] that aborts at `crash` (fault injection; see
    /// [`CrashPoint`]). Returns 0 when aborted early.
    #[doc(hidden)]
    pub fn save_until(
        &self,
        state: &impl Checkpointable,
        crash: Option<CrashPoint>,
    ) -> Result<u64, RecoveryError> {
        let mut payload = Writer::new();
        state.encode_state(&mut payload);
        let bytes = encode_envelope(Checkpointable::watermark(state), payload.written());

        let tmp = self.temp_path();
        if crash == Some(CrashPoint::MidTempWrite) {
            // A torn temp write: half the envelope, no fsync, no rename.
            fs::write(&tmp, &bytes[..bytes.len() / 2])?;
            return Ok(0);
        }
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        if crash == Some(CrashPoint::AfterTempWrite) {
            return Ok(0);
        }
        if self.path.exists() {
            fs::rename(&self.path, self.prev_path())?;
        }
        if crash == Some(CrashPoint::AfterRotate) {
            return Ok(0);
        }
        fs::rename(&tmp, &self.path)?;
        sync_parent_dir(&self.path)?;
        Ok(bytes.len() as u64)
    }

    /// Loads the newest intact snapshot: the current file, or — when that
    /// is missing or damaged in any way — the previous generation. The
    /// flag reports whether the fallback was taken. Fails only when no
    /// generation decodes.
    pub fn load(&self) -> Result<(Snapshot, bool), RecoveryError> {
        match load_snapshot_file(&self.path) {
            Ok(snap) => Ok((snap, false)),
            Err(primary) => match load_snapshot_file(&self.prev_path()) {
                Ok(snap) => Ok((snap, true)),
                // The current generation's failure is the actionable one.
                Err(_) => Err(primary),
            },
        }
    }

    /// Whether any snapshot generation exists on disk (the in-flight temp
    /// file does not count — it is never read back).
    pub fn any_generation_exists(&self) -> bool {
        self.path.exists() || self.prev_path().exists()
    }
}

fn load_snapshot_file(path: &Path) -> Result<Snapshot, RecoveryError> {
    let bytes = fs::read(path)?;
    Ok(Snapshot::from_bytes(&bytes)?)
}

/// `path` with `ext` appended to the full file name (`snap.beds` →
/// `snap.beds.prev`).
fn append_ext(path: &Path, ext: &str) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".");
    name.push(ext);
    path.with_file_name(name)
}

/// Fsyncs the directory containing `path` so the renames themselves are
/// durable (no-op where directories cannot be opened, e.g. some CI
/// filesystems).
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// When to take a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint once at least this many new arrivals have accumulated
    /// since the last one (0 = every poll).
    pub every_arrivals: u64,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        // Roughly every few hundred ms of single-core ingest; recovery
        // then replays at most this many WAL records.
        CheckpointPolicy { every_arrivals: 65_536 }
    }
}

impl Traceable for AnyDetector {
    fn set_tracer(&mut self, tracer: std::sync::Arc<bed_obs::Tracer>) {
        match self {
            AnyDetector::Plain(d) => d.set_tracer(tracer),
            AnyDetector::Sharded(d) => d.set_tracer(tracer),
        }
    }

    fn tracer(&self) -> &std::sync::Arc<bed_obs::Tracer> {
        match self {
            AnyDetector::Plain(d) => d.tracer(),
            AnyDetector::Sharded(d) => d.tracer(),
        }
    }
}

/// A [`SnapshotStore`] plus a periodic policy and metrics — the handle an
/// ingest loop polls after every batch.
#[derive(Debug)]
pub struct Checkpointer {
    store: SnapshotStore,
    policy: CheckpointPolicy,
    last_arrivals: Option<u64>,
    checkpoints: u64,
    metrics: CheckpointMetrics,
    tracer: std::sync::Arc<bed_obs::Tracer>,
}

impl Checkpointer {
    /// A checkpointer writing to `path` under `policy`.
    pub fn new(path: impl Into<PathBuf>, policy: CheckpointPolicy) -> Self {
        Checkpointer {
            store: SnapshotStore::new(path),
            policy,
            last_arrivals: None,
            checkpoints: 0,
            metrics: CheckpointMetrics::new(),
            tracer: std::sync::Arc::new(bed_obs::Tracer::disabled()),
        }
    }

    /// Installs a tracer; checkpoint and recovery spans bypass the sampler
    /// (`start_always`) because both are rare and heavyweight.
    pub fn set_tracer(&mut self, tracer: std::sync::Arc<bed_obs::Tracer>) {
        self.tracer = tracer;
    }

    /// The underlying store.
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// Checkpoints taken through this handle.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints
    }

    /// Takes a checkpoint now, unconditionally.
    pub fn checkpoint(&mut self, state: &impl Checkpointable) -> Result<(), RecoveryError> {
        let trace = self.tracer.start_always(bed_obs::SpanName::CHECKPOINT_SAVE);
        let started = std::time::Instant::now();
        let result = self.store.save(state);
        match &result {
            Ok(bytes) => {
                self.metrics.checkpoint_ok(*bytes, started.elapsed());
                self.last_arrivals = Some(Checkpointable::watermark(state).arrivals);
                self.checkpoints += 1;
            }
            Err(_) => self.metrics.checkpoint_err(),
        }
        if let Some(trace) = trace {
            let arrivals = Checkpointable::watermark(state).arrivals;
            let bytes = *result.as_ref().unwrap_or(&0);
            trace.finish(move || format!("checkpoint arrivals={arrivals} bytes={bytes}"));
        }
        result.map(|_| ())
    }

    /// Takes a checkpoint iff the policy says it is due; returns whether
    /// one was taken. This is the hook ingest loops call per batch — cheap
    /// when not due (one counter read).
    pub fn maybe_checkpoint(&mut self, state: &impl Checkpointable) -> Result<bool, RecoveryError> {
        let arrivals = Checkpointable::watermark(state).arrivals;
        let due = match self.last_arrivals {
            None => arrivals > 0,
            Some(last) => arrivals.saturating_sub(last) >= self.policy.every_arrivals.max(1),
        };
        if !due {
            return Ok(false);
        }
        self.checkpoint(state)?;
        Ok(true)
    }

    /// Recovers through this handle's store, recording recovery metrics.
    pub fn recover(&mut self, wal: Option<&Path>) -> Result<RecoveryOutcome, RecoveryError> {
        let trace = self.tracer.start_always(bed_obs::SpanName::CHECKPOINT_RECOVER);
        let started = std::time::Instant::now();
        let result = recover(&self.store, wal);
        if let Some(trace) = trace {
            let replayed = result.as_ref().map(|o| o.replayed).unwrap_or(0);
            trace.finish(move || format!("recover replayed={replayed}"));
        }
        let outcome = result?;
        self.metrics.recovery_ok(&outcome, started.elapsed());
        self.last_arrivals = Some(outcome.detector.arrivals());
        Ok(outcome)
    }

    /// Snapshot of `checkpoint.*` / `recovery.*` metrics.
    pub fn metrics(&self) -> bed_obs::MetricsSnapshot {
        self.metrics.snapshot()
    }
}

/// What [`recover`] reconstructed and how.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// The reconstructed detector (not finalized — callers that are done
    /// ingesting should call [`AnyDetector::finalize`]).
    pub detector: AnyDetector,
    /// Watermark of the snapshot the recovery started from (zero when
    /// cold-starting from a WAL alone).
    pub watermark: Watermark,
    /// WAL records replayed past the watermark.
    pub replayed: u64,
    /// Total intact WAL records seen.
    pub wal_records: u64,
    /// Whether the previous-generation snapshot had to be used.
    pub fell_back: bool,
    /// Whether the WAL ended in a torn (partially written) record, which
    /// was discarded as an unacknowledged write.
    pub torn_tail: bool,
}

/// Restores a detector from `store`'s newest intact snapshot plus the WAL
/// tail past its watermark.
///
/// With no snapshot on disk but a WAL present, cold-starts an empty
/// detector from the WAL header's configuration and replays everything.
/// With a snapshot but no WAL, restores the snapshot alone. See
/// [`RecoveryError`] for every refusal; none of them panic.
pub fn recover(
    store: &SnapshotStore,
    wal: Option<&Path>,
) -> Result<RecoveryOutcome, RecoveryError> {
    let snapshot = if store.any_generation_exists() {
        let (snap, fell_back) = store.load()?;
        Some((snap, fell_back))
    } else {
        None
    };
    let wal = match wal {
        Some(path) if path.exists() => Some(read_wal(path)?),
        _ => None,
    };
    match (snapshot, wal) {
        (None, None) => Err(RecoveryError::NoState),
        (Some((snap, fell_back)), None) => Ok(RecoveryOutcome {
            watermark: snap.watermark,
            replayed: 0,
            wal_records: 0,
            fell_back,
            torn_tail: false,
            detector: snap.detector,
        }),
        (snapshot, Some(wal)) => {
            let (mut detector, watermark, fell_back) = match snapshot {
                Some((snap, fell_back)) => {
                    check_wal_matches(&wal, snap.detector.config(), snap.detector.layout_shards())?;
                    (snap.detector, snap.watermark, fell_back)
                }
                None => (build_empty(&wal)?, Watermark::default(), false),
            };
            let replayed = replay_tail(&mut detector, &wal, watermark.arrivals)?;
            Ok(RecoveryOutcome {
                watermark,
                replayed,
                wal_records: wal.records.len() as u64,
                fell_back,
                torn_tail: wal.torn_tail,
                detector,
            })
        }
    }
}

/// Verifies the WAL header describes the same detector as `config` +
/// `shards`; a mismatch means the files belong to different builds and a
/// replay would mix states.
pub(crate) fn check_wal_matches(
    wal: &WalContents,
    config: &DetectorConfig,
    shards: u32,
) -> Result<(), RecoveryError> {
    let mut diff = config.diff(&wal.config).unwrap_or_default();
    if shards != wal.shards {
        if !diff.is_empty() {
            diff.push_str("; ");
        }
        diff.push_str(&format!("shards: {} vs {} (0 = unsharded)", shards, wal.shards));
    }
    if diff.is_empty() {
        Ok(())
    } else {
        Err(RecoveryError::ConfigMismatch { diff })
    }
}

/// An empty detector matching the WAL header (cold start).
fn build_empty(wal: &WalContents) -> Result<AnyDetector, RecoveryError> {
    Ok(if wal.shards == 0 {
        AnyDetector::Plain(Box::new(BurstDetector::from_config(wal.config)?))
    } else {
        AnyDetector::Sharded(ShardedDetector::from_config(wal.config, wal.shards as usize)?)
    })
}

/// Replays every WAL record past `from` into `detector`.
fn replay_tail(
    detector: &mut AnyDetector,
    wal: &WalContents,
    from: u64,
) -> Result<u64, RecoveryError> {
    let total = wal.records.len() as u64;
    if total < from {
        // The snapshot claims coverage the log does not have — one of the
        // two is not from this stream (or the log was truncated *before*
        // the watermark, which rotation never does).
        return Err(RecoveryError::Corrupt { context: "wal ends before the snapshot watermark" });
    }
    for &(event, ts) in &wal.records[from as usize..] {
        detector.ingest(event, ts)?;
    }
    Ok(total - from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PbeVariant;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("bed-checkpoint-unit").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_detector(n: u64) -> BurstDetector {
        let mut det = BurstDetector::builder()
            .universe(8)
            .variant(PbeVariant::pbe2(1.0))
            .seed(7)
            .build()
            .unwrap();
        for t in 0..n {
            det.ingest(EventId((t % 8) as u32), Timestamp(t)).unwrap();
        }
        det
    }

    #[test]
    fn snapshot_roundtrip_all_layouts() {
        let plain = AnyDetector::Plain(Box::new(small_detector(100)));
        let sharded = {
            let mut d = ShardedDetector::builder(3).universe(8).seed(7).build().unwrap();
            d.ingest_batch(&[(EventId(1), Timestamp(0)), (EventId(2), Timestamp(5))]).unwrap();
            AnyDetector::Sharded(d)
        };
        for det in [plain, sharded] {
            let snap = Snapshot::of(&det);
            let bytes = snap.to_bytes();
            let back = Snapshot::from_bytes(&bytes).unwrap();
            assert_eq!(back.watermark, det.watermark());
            assert_eq!(back.detector.to_bytes(), det.to_bytes());
        }
    }

    #[test]
    fn envelope_rejects_damage_everywhere() {
        let det = AnyDetector::Plain(Box::new(small_detector(200)));
        let bytes = Snapshot::of(&det).to_bytes();
        // every truncation fails
        for cut in 0..bytes.len() {
            assert!(Snapshot::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // every single-byte flip fails (whole-file CRC)
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            assert!(Snapshot::from_bytes(&bad).is_err(), "flip at {pos}");
        }
        // version from the future
        let mut bad = bytes.clone();
        bad[4] = 9;
        bad[5] = 0;
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(CodecError::UnsupportedVersion { found: 9, .. })
        ));
    }

    #[test]
    fn store_rotates_and_falls_back() {
        let dir = tmp_dir("rotate");
        let store = SnapshotStore::new(dir.join("snap.beds"));
        let a = AnyDetector::Plain(Box::new(small_detector(50)));
        let b = AnyDetector::Plain(Box::new(small_detector(80)));
        store.save(&a).unwrap();
        store.save(&b).unwrap();
        assert!(store.prev_path().exists());
        let (snap, fell_back) = store.load().unwrap();
        assert!(!fell_back);
        assert_eq!(snap.watermark.arrivals, 80);
        // damage the current generation → previous one answers
        let mut cur = fs::read(store.path()).unwrap();
        let mid = cur.len() / 2;
        cur[mid] ^= 0xFF;
        fs::write(store.path(), &cur).unwrap();
        let (snap, fell_back) = store.load().unwrap();
        assert!(fell_back);
        assert_eq!(snap.watermark.arrivals, 50);
    }

    #[test]
    fn policy_spacing() {
        let dir = tmp_dir("policy");
        let mut ckpt =
            Checkpointer::new(dir.join("snap.beds"), CheckpointPolicy { every_arrivals: 100 });
        let mut det = small_detector(0);
        assert!(!ckpt.maybe_checkpoint(&det).unwrap(), "nothing ingested yet");
        for t in 0..99u64 {
            det.ingest(EventId(0), Timestamp(t)).unwrap();
        }
        assert!(ckpt.maybe_checkpoint(&det).unwrap(), "first checkpoint captures any progress");
        assert!(!ckpt.maybe_checkpoint(&det).unwrap(), "not due again yet");
        for t in 99..200u64 {
            det.ingest(EventId(0), Timestamp(t)).unwrap();
        }
        assert!(ckpt.maybe_checkpoint(&det).unwrap());
        assert_eq!(ckpt.checkpoints_taken(), 2);
        let m = ckpt.metrics();
        assert_eq!(m.counter("checkpoint.count"), Some(2));
        assert!(m.counter("checkpoint.bytes").unwrap() > 0);
    }
}
