//! Epoch-snapshot publishing: wait-free concurrent reads against a live
//! ingest.
//!
//! The detectors are single-writer structures — every query method takes
//! `&self` but answers from state a concurrent `ingest` would be mutating,
//! so a serving front-end previously had to route *both* sides through one
//! `Mutex`, stalling queries behind ingest and vice versa. This module
//! decouples them with a seqlock/RCU-style generation scheme:
//!
//! * A writer periodically **publishes** an immutable, finalized clone of
//!   its detector into a [`SnapshotCell`] (one per shard), at a cadence
//!   borrowed from the checkpoint machinery ([`EpochPublisher`] wraps a
//!   [`CheckpointPolicy`]). Publishing clones the detector *outside* any
//!   reader-visible critical section, bumps the cell's generation counter
//!   with `Release` ordering, and never waits for readers.
//! * A reader holds an [`EpochReader`] caching the last loaded epoch. Its
//!   hot path is one `Acquire` load of the generation counter: if nothing
//!   new was published, the cached [`Epoch`] answers — **zero locks, zero
//!   allocation**. Only when the generation moved does the reader copy the
//!   new epoch handle (an `Arc` clone — still allocation-free) out of a
//!   slot ring.
//! * [`DetectorEpochs`] owns the cells for a whole [`AnyDetector`] layout
//!   and [`EpochView`] implements [`BurstQueries`] on top, so the serving
//!   layer can answer all five canonical query kinds from the latest
//!   published epoch while ingest continues.
//!
//! ## Why readers never block ingest (and effectively never wait)
//!
//! The cell keeps a ring of [`EPOCH_SLOTS`] mutex-guarded slots; the
//! writer stores generation `g` into slot `g % EPOCH_SLOTS` *before* the
//! `Release` store of `g`. A reader that observed generation `g` via the
//! `Acquire` load therefore finds slot `g % EPOCH_SLOTS` fully written
//! (release/acquire ordering), and the writer publishing `g + 1` locks a
//! *different* slot — the same slot is only relocked once the writer has
//! lapped the reader by `EPOCH_SLOTS` whole generations. If that happens,
//! the slot's embedded generation no longer matches, and the reader
//! retries against the newest generation (counted in
//! `epoch.reader_retries`) — the classic seqlock validate-and-retry, built
//! from `Mutex` slots instead of raw pointer flips because `bed-core`
//! forbids `unsafe`. The writer never blocks either way: it locks a slot
//! no reader can be parked on unless that reader is already
//! `EPOCH_SLOTS` generations stale.
//!
//! Bit-for-bit answer stability: ingest is deterministic and `Clone` is a
//! deep copy, so a published epoch at watermark `A` is byte-identical to a
//! freshly built detector fed the first `A` stream elements and finalized
//! — the property the concurrency harness (`tests/concurrent_reads.rs`)
//! pins for every sampled answer.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bed_obs::{MetricsSnapshot, SpanName, Tracer};
use bed_sketch::QueryScratch;

use crate::checkpoint::{AnyDetector, CheckpointPolicy, Watermark};
use crate::config::DetectorConfig;
use crate::detector::BurstDetector;
use crate::error::BedError;
use crate::metrics::EpochMetrics;
use crate::query::{BurstQueries, QueryRequest, QueryResponse};
use crate::shard::{merge_hits, route};

/// Slots in a [`SnapshotCell`]'s ring. A reader only retries once the
/// writer laps it by this many generations inside one (tiny) read-side
/// critical section.
pub const EPOCH_SLOTS: usize = 4;

/// One published snapshot: an immutable, finalized detector state plus
/// the stream position it captures.
#[derive(Debug)]
pub struct Epoch<D> {
    /// Publish sequence number (1-based; cells start at generation 0 =
    /// nothing published).
    pub generation: u64,
    /// How far the stream had been consumed when this state was cloned.
    pub watermark: Watermark,
    /// The finalized snapshot, shared by every reader of this generation.
    pub data: Arc<D>,
}

/// Cloning an epoch clones the `Arc` handle (no `D: Clone` needed, no
/// allocation) — the read path depends on this.
impl<D> Clone for Epoch<D> {
    fn clone(&self) -> Self {
        Epoch {
            generation: self.generation,
            watermark: self.watermark,
            data: Arc::clone(&self.data),
        }
    }
}

#[derive(Debug)]
struct Slot<D> {
    /// Generation whose epoch this slot currently holds (0 = empty).
    generation: u64,
    epoch: Option<Epoch<D>>,
}

/// A single-writer, many-reader publication point for [`Epoch`]s.
///
/// See the [module docs](crate::epoch) for the protocol and its ordering
/// argument. The cell is generic so the scheduler-driven protocol tests
/// can publish trivial payloads; detectors use
/// [`DetectorEpochs`], which manages one cell per shard.
#[derive(Debug)]
pub struct SnapshotCell<D> {
    /// Latest published generation; the `Release` store here is what makes
    /// a fully written slot visible to `Acquire` readers.
    generation: AtomicU64,
    slots: [Mutex<Slot<D>>; EPOCH_SLOTS],
    /// Reader retries caused by the writer lapping a slot (seqlock
    /// validate failure). Relaxed: a diagnostic counter, not an ordering
    /// participant.
    retries: AtomicU64,
}

impl<D> SnapshotCell<D> {
    /// An empty cell (generation 0, no epoch).
    pub fn new() -> Self {
        SnapshotCell {
            generation: AtomicU64::new(0),
            slots: std::array::from_fn(|_| Mutex::new(Slot { generation: 0, epoch: None })),
            retries: AtomicU64::new(0),
        }
    }

    /// The latest published generation (0 until the first publish).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Publishes the next generation. Single writer assumed (the cell is
    /// owned by one [`DetectorEpochs`], whose publisher is `&mut`-gated);
    /// readers are never blocked and never see a half-written epoch.
    pub fn publish(&self, watermark: Watermark, data: Arc<D>) -> u64 {
        let next = self.generation.load(Ordering::Relaxed) + 1;
        {
            let mut slot = self.slots[next as usize % EPOCH_SLOTS].lock().expect("slot lock");
            slot.generation = next;
            slot.epoch = Some(Epoch { generation: next, watermark, data });
        }
        self.generation.store(next, Ordering::Release);
        next
    }

    /// Cumulative reader retries on this cell (writer lapped a slot).
    pub fn reader_retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }
}

impl<D> Default for SnapshotCell<D> {
    fn default() -> Self {
        SnapshotCell::new()
    }
}

/// A protocol step of [`EpochReader::refresh_with`], exposed so a
/// deterministic scheduler (the `schedule` compat crate) can interleave
/// publishes at every read-side yield point.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStep {
    /// About to `Acquire`-load the published generation counter.
    LoadGeneration,
    /// About to lock the slot holding generation `.0`.
    LockSlot(u64),
    /// Locked the slot expecting `expected` but found `found` (the writer
    /// lapped); the reader will retry.
    Validate {
        /// Generation the reader was chasing.
        expected: u64,
        /// Generation actually resident in the slot.
        found: u64,
    },
}

/// Read-side cursor over one [`SnapshotCell`]: caches the last loaded
/// epoch so repeated reads of an unchanged cell are one atomic load.
#[derive(Debug)]
pub struct EpochReader<D> {
    generation: u64,
    epoch: Option<Epoch<D>>,
}

impl<D> EpochReader<D> {
    /// A cursor that has seen nothing yet.
    pub fn new() -> Self {
        EpochReader { generation: 0, epoch: None }
    }

    /// Loads the latest epoch from `cell` if it moved; returns whether the
    /// cached epoch changed. Fast path (unchanged generation) is a single
    /// `Acquire` load — no lock, no allocation. The slow path is also
    /// allocation-free: it copies an `Arc` handle out of a locked slot.
    #[inline]
    pub fn refresh(&mut self, cell: &SnapshotCell<D>) -> bool {
        self.refresh_with(cell, &mut |_| {})
    }

    /// [`Self::refresh`] with a hook invoked before every protocol step —
    /// the seam the schedule-permuter tests drive to force (and count)
    /// the seqlock retry path deterministically. `refresh` is this with a
    /// no-op hook, so the tested protocol *is* the production protocol.
    #[doc(hidden)]
    pub fn refresh_with(
        &mut self,
        cell: &SnapshotCell<D>,
        hook: &mut impl FnMut(ReadStep),
    ) -> bool {
        hook(ReadStep::LoadGeneration);
        let mut g = cell.generation.load(Ordering::Acquire);
        if g == self.generation {
            return false;
        }
        loop {
            hook(ReadStep::LockSlot(g));
            let found = {
                let slot = cell.slots[g as usize % EPOCH_SLOTS].lock().expect("slot lock");
                if slot.generation == g {
                    // Cloning an `Epoch` clones an `Arc` + copies two
                    // words — the read path never allocates.
                    self.epoch.clone_from(&slot.epoch);
                    self.generation = g;
                    return true;
                }
                slot.generation
            };
            hook(ReadStep::Validate { expected: g, found });
            cell.retries.fetch_add(1, Ordering::Relaxed);
            hook(ReadStep::LoadGeneration);
            g = cell.generation.load(Ordering::Acquire);
        }
    }

    /// The cached epoch (`None` until the first refresh of a published
    /// cell).
    pub fn current(&self) -> Option<&Epoch<D>> {
        self.epoch.as_ref()
    }
}

impl<D> Default for EpochReader<D> {
    fn default() -> Self {
        EpochReader::new()
    }
}

/// The epoch publication surface of one [`AnyDetector`]: one
/// [`SnapshotCell`] per shard (a single cell for the plain layout), all
/// published together under one global watermark so fan-out readers can
/// assemble a coherent generation vector.
#[derive(Debug)]
pub struct DetectorEpochs {
    config: DetectorConfig,
    /// 0 for the plain layout, `n ≥ 1` for a sharded one (mirrors
    /// [`AnyDetector::layout_shards`]).
    layout_shards: u32,
    cells: Vec<SnapshotCell<BurstDetector>>,
    metrics: EpochMetrics,
    tracer: Arc<Tracer>,
}

impl DetectorEpochs {
    /// Cells matching `det`'s layout, with `det`'s current state published
    /// as generation 1 — views always find an epoch to answer from.
    pub fn new(det: &AnyDetector) -> Self {
        let epochs = Self::new_unpublished(det);
        epochs.publish(det);
        epochs
    }

    /// Cells matching `det`'s layout with **nothing published yet**
    /// (generation 0). Lets a server expose readiness truthfully: views
    /// must not be queried until the first (genesis) publish — gate on
    /// [`DetectorEpochs::generation`]` > 0`.
    pub fn new_unpublished(det: &AnyDetector) -> Self {
        let n = match det {
            AnyDetector::Plain(_) => 1,
            AnyDetector::Sharded(d) => d.num_shards(),
        };
        DetectorEpochs {
            config: *det.config(),
            layout_shards: det.layout_shards(),
            cells: (0..n).map(|_| SnapshotCell::new()).collect(),
            metrics: EpochMetrics::new(),
            tracer: Arc::new(Tracer::disabled()),
        }
    }

    /// Installs a tracer; publish spans bypass the sampler
    /// (`start_always`) because publishing is rare and heavyweight.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = tracer;
    }

    /// Publishes finalized clones of `det`'s current state — one per
    /// shard, all under one global watermark — and returns that watermark.
    ///
    /// The caller must hold `det` stable for the duration (it is the
    /// single writer); readers are never blocked. The live detector is
    /// *not* finalized: only the clones are, so ingest continues
    /// untouched.
    pub fn publish(&self, det: &AnyDetector) -> Watermark {
        let trace = self.tracer.start_always(SpanName::EPOCH_PUBLISH);
        let started = std::time::Instant::now();
        let watermark = det.watermark();
        match det {
            AnyDetector::Plain(d) => {
                let mut clone = (**d).clone();
                clone.finalize();
                self.cells[0].publish(watermark, Arc::new(clone));
            }
            AnyDetector::Sharded(d) => {
                for (i, cell) in self.cells.iter().enumerate() {
                    let mut clone = d.shard(i).clone();
                    clone.finalize();
                    cell.publish(watermark, Arc::new(clone));
                }
            }
        }
        self.metrics.published(started.elapsed());
        if let Some(trace) = trace {
            let generation = self.cells[0].generation();
            trace.finish(move || {
                format!("epoch publish generation={generation} arrivals={}", watermark.arrivals)
            });
        }
        watermark
    }

    /// The latest published generation (cells move in lockstep; mid-
    /// publish, this is the first cell's — the freshest — generation).
    pub fn generation(&self) -> u64 {
        self.cells[0].generation()
    }

    /// Watermark of the latest published epoch (`None` before genesis).
    pub fn published_watermark(&self) -> Option<Watermark> {
        if self.generation() == 0 {
            return None;
        }
        let mut r = EpochReader::new();
        r.refresh(&self.cells[0]);
        r.current().map(|e| e.watermark)
    }

    /// Refreshes the ingest-side staleness gauges from the live detector's
    /// watermark: `epoch.age_ticks` (ticks the live stream has advanced
    /// past the published epoch) and `epoch.lag_arrivals` (arrivals not
    /// yet visible to readers). Cold path — call at scrape time.
    pub fn record_staleness(&self, live: Watermark) {
        let Some(published) = self.published_watermark() else {
            self.metrics.set_gauge("epoch.lag_arrivals", live.arrivals as f64);
            return;
        };
        let age_ticks = match (live.last_ts, published.last_ts) {
            (Some(l), Some(p)) => l.ticks().saturating_sub(p.ticks()),
            _ => 0,
        };
        self.metrics.set_gauge("epoch.age_ticks", age_ticks as f64);
        self.metrics.set_gauge(
            "epoch.lag_arrivals",
            live.arrivals.saturating_sub(published.arrivals) as f64,
        );
    }

    /// Shard count of the published layout: 0 = plain (one cell).
    pub fn layout_shards(&self) -> u32 {
        self.layout_shards
    }

    /// Total resident bytes of the published epochs' struct-of-arrays
    /// probe banks. Publishing finalizes each clone, which builds its
    /// bank, so this is non-zero for every grid layout — readers answer
    /// through the vectorized kernels, and operators can see the mirror's
    /// memory cost here.
    pub fn bank_bytes(&self) -> usize {
        self.cells
            .iter()
            .map(|cell| {
                let mut r = EpochReader::new();
                r.refresh(cell);
                r.current().map_or(0, |e| e.data.soa_bank_bytes())
            })
            .sum()
    }

    /// The configuration the published detectors were built with.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// A fresh query view over the latest published epochs. Views are
    /// cheap (`EPOCH_SLOTS`-independent, one cursor per cell) and intended
    /// to be per-thread: each owns its [`QueryScratch`], preserving the
    /// zero-allocation kernel guarantees per reader.
    pub fn view(&self) -> EpochView<'_> {
        EpochView {
            epochs: self,
            readers: RefCell::new((0..self.cells.len()).map(|_| EpochReader::new()).collect()),
            scratch: RefCell::new(QueryScratch::new()),
            answered: Cell::new((0, Watermark::default())),
        }
    }

    /// Snapshot of `epoch.*` metrics: the `epoch.published` /
    /// `epoch.reader_retries` counters, publish latency, and an
    /// `epoch.generation` gauge.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.sync_reader_retries(self.cells.iter().map(SnapshotCell::reader_retries).sum());
        self.metrics.set_gauge("epoch.generation", self.generation() as f64);
        self.metrics.snapshot()
    }
}

/// Cadence gate for [`DetectorEpochs::publish`], reusing the
/// [`CheckpointPolicy`] arrival-count machinery: publish once at least
/// `every_arrivals` new arrivals accumulated since the last publish.
#[derive(Debug)]
pub struct EpochPublisher {
    policy: CheckpointPolicy,
    last_arrivals: Option<u64>,
    published: u64,
}

impl EpochPublisher {
    /// A publisher gated by `policy`.
    pub fn new(policy: CheckpointPolicy) -> Self {
        EpochPublisher { policy, last_arrivals: None, published: 0 }
    }

    /// Publishes iff the policy says an epoch is due; returns whether one
    /// was published. Cheap when not due (one watermark read) — the hook
    /// ingest loops call per batch, mirroring
    /// [`Checkpointer::maybe_checkpoint`](crate::Checkpointer::maybe_checkpoint).
    pub fn maybe_publish(&mut self, det: &AnyDetector, epochs: &DetectorEpochs) -> bool {
        let arrivals = det.arrivals();
        let due = match self.last_arrivals {
            None => arrivals > 0,
            Some(last) => arrivals.saturating_sub(last) >= self.policy.every_arrivals.max(1),
        };
        if !due {
            return false;
        }
        epochs.publish(det);
        self.last_arrivals = Some(arrivals);
        self.published += 1;
        true
    }

    /// Epochs published through this gate (the genesis publish of
    /// [`DetectorEpochs::new`] is not counted).
    pub fn published(&self) -> u64 {
        self.published
    }
}

/// A per-reader [`BurstQueries`] implementation answering from the latest
/// published epochs of a [`DetectorEpochs`].
///
/// Per-event query kinds refresh only the owning shard's cursor (same
/// routing as the writer); bursty-event kinds refresh every cursor and
/// retry until the generation vector is coherent (all cells on the same
/// publish), then fan out and merge exactly like
/// [`crate::ShardedDetector`]. Every answer records the epoch it came from
/// — [`Self::answer_watermark`] is what the concurrency harness checks
/// against its oracle rebuilds.
#[derive(Debug)]
pub struct EpochView<'a> {
    epochs: &'a DetectorEpochs,
    readers: RefCell<Vec<EpochReader<BurstDetector>>>,
    /// Per-view working memory — one warm scratch per reader thread keeps
    /// the fused kernels allocation-free (interior mutability keeps the
    /// query surface `&self`, like [`crate::BurstMonitor`]).
    scratch: RefCell<QueryScratch>,
    /// `(generation, watermark)` of the epoch that answered last.
    answered: Cell<(u64, Watermark)>,
}

impl EpochView<'_> {
    /// Generation of the epoch that answered the last query (0 before the
    /// first answer).
    pub fn answer_generation(&self) -> u64 {
        self.answered.get().0
    }

    /// Watermark of the epoch that answered the last query.
    pub fn answer_watermark(&self) -> Watermark {
        self.answered.get().1
    }

    /// Refreshes every cursor to the latest coherent generation and
    /// returns its watermark (also recorded as the answer epoch). This is
    /// the "am I stale?" probe: after it returns, the view answers from a
    /// publish no older than the newest one completed before the call.
    pub fn refresh_latest(&self) -> Watermark {
        let readers = &mut *self.readers.borrow_mut();
        let epoch = Self::refresh_coherent(readers, self.epochs);
        self.answered.set((epoch.0, epoch.1));
        epoch.1
    }

    /// Refreshes all cursors until they agree on one generation, returning
    /// `(generation, watermark)`. Publishes complete in microseconds, so
    /// the retry loop is bounded in practice; each iteration re-reads only
    /// the cells that moved.
    fn refresh_coherent(
        readers: &mut [EpochReader<BurstDetector>],
        epochs: &DetectorEpochs,
    ) -> (u64, Watermark) {
        loop {
            for (reader, cell) in readers.iter_mut().zip(&epochs.cells) {
                reader.refresh(cell);
            }
            let first = readers[0].current().expect("genesis epoch always published");
            let (generation, watermark) = (first.generation, first.watermark);
            if readers.iter().all(|r| r.current().is_some_and(|e| e.generation == generation)) {
                return (generation, watermark);
            }
            std::hint::spin_loop();
        }
    }

    fn dispatch(
        &self,
        request: &QueryRequest,
        scratch: &mut QueryScratch,
    ) -> Result<QueryResponse, BedError> {
        let readers = &mut *self.readers.borrow_mut();
        match *request {
            QueryRequest::Point { event, .. }
            | QueryRequest::BurstyTimes { event, .. }
            | QueryRequest::Series { event, .. }
            | QueryRequest::TopK { event, .. } => {
                // The owning shard's universe check covers the full K, so
                // routing first is safe even for out-of-range ids.
                let i = if readers.len() == 1 { 0 } else { route(event, readers.len()) };
                readers[i].refresh(&self.epochs.cells[i]);
                let epoch = readers[i].current().expect("genesis epoch always published");
                let response = epoch.data.query_reusing(request, scratch)?;
                self.answered.set((epoch.generation, epoch.watermark));
                Ok(response)
            }
            QueryRequest::BurstyEvents { t, theta, tau, strategy } => {
                let (generation, watermark) = Self::refresh_coherent(readers, self.epochs);
                let mut merged = Vec::new();
                let mut stats = crate::QueryStats::default();
                let n = readers.len();
                for (i, reader) in readers.iter().enumerate() {
                    let epoch = reader.current().expect("coherent vector");
                    let (hits, s) =
                        epoch.data.bursty_events_with_reusing(t, theta, tau, strategy, scratch)?;
                    stats.point_queries += s.point_queries;
                    stats.pruned_subtrees += s.pruned_subtrees;
                    stats.leaves_probed += s.leaves_probed;
                    // Keep each shard's hits on the events it owns, like
                    // the live fan-out (a shard's sketch can only
                    // over-count foreign ids). A single plain cell owns
                    // everything.
                    merged.extend(hits.into_iter().filter(|h| n == 1 || route(h.event, n) == i));
                }
                merge_hits(&mut merged);
                self.answered.set((generation, watermark));
                Ok(QueryResponse::BurstyEvents { hits: merged, stats })
            }
        }
    }
}

impl BurstQueries for EpochView<'_> {
    /// Answers from the latest published epoch, reusing the view-owned
    /// scratch (per-thread views keep the hot path allocation-free).
    fn query(&self, request: &QueryRequest) -> Result<QueryResponse, BedError> {
        self.dispatch(request, &mut self.scratch.borrow_mut())
    }

    fn query_reusing(
        &self,
        request: &QueryRequest,
        scratch: &mut QueryScratch,
    ) -> Result<QueryResponse, BedError> {
        self.dispatch(request, scratch)
    }

    /// Arrivals covered by the latest published epoch (not the live
    /// writer's count).
    fn arrivals(&self) -> u64 {
        self.refresh_latest().arrivals
    }

    fn size_bytes(&self) -> usize {
        let readers = &mut *self.readers.borrow_mut();
        Self::refresh_coherent(readers, self.epochs);
        readers.iter().map(|r| r.current().map_or(0, |e| e.data.size_bytes())).sum()
    }

    fn config(&self) -> &DetectorConfig {
        &self.epochs.config
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.epochs.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PbeVariant;
    use bed_stream::{BurstSpan, EventId, Timestamp};
    use schedule::{exhaustive, Schedule, ScheduleGen};

    fn plain() -> AnyDetector {
        AnyDetector::Plain(Box::new(
            BurstDetector::builder()
                .universe(8)
                .variant(PbeVariant::pbe2(1.0))
                .accuracy(0.01, 0.05)
                .seed(7)
                .build()
                .unwrap(),
        ))
    }

    fn sharded(n: usize) -> AnyDetector {
        AnyDetector::Sharded(
            crate::ShardedDetector::builder(n)
                .universe(8)
                .variant(PbeVariant::pbe2(1.0))
                .accuracy(0.01, 0.05)
                .seed(7)
                .build()
                .unwrap(),
        )
    }

    fn ingest_fixture(det: &mut AnyDetector, upto: u64) {
        for t in 0..upto {
            det.ingest(EventId((t % 8) as u32), Timestamp(t)).unwrap();
            if t >= upto.saturating_sub(10) {
                for _ in 0..6 {
                    det.ingest(EventId(2), Timestamp(t)).unwrap();
                }
            }
        }
    }

    #[test]
    fn genesis_epoch_is_published_and_answers() {
        for det in [plain(), sharded(3)] {
            let epochs = DetectorEpochs::new(&det);
            assert_eq!(epochs.generation(), 1);
            let view = epochs.view();
            let tau = BurstSpan::new(10).unwrap();
            let resp = view
                .query(&QueryRequest::Point { event: EventId(1), t: Timestamp(5), tau })
                .unwrap();
            assert_eq!(resp.burstiness(), Some(0.0), "empty detector");
            assert_eq!(view.answer_generation(), 1);
            assert_eq!(view.answer_watermark(), Watermark::default());
        }
    }

    #[test]
    fn published_epoch_equals_oracle_rebuild() {
        for (mut det, mut oracle) in [(plain(), plain()), (sharded(3), sharded(3))] {
            ingest_fixture(&mut det, 100);
            let epochs = DetectorEpochs::new(&det);
            // The live detector keeps ingesting past the publish; the
            // epoch must keep answering from the published state.
            for t in 100..400u64 {
                det.ingest(EventId((t % 8) as u32), Timestamp(t)).unwrap();
            }

            ingest_fixture(&mut oracle, 100);
            oracle.finalize();

            let view = epochs.view();
            let tau = BurstSpan::new(10).unwrap();
            for e in 0..8u32 {
                for t in [0u64, 50, 95, 99] {
                    let req = QueryRequest::Point { event: EventId(e), t: Timestamp(t), tau };
                    assert_eq!(
                        view.query(&req).unwrap(),
                        oracle.queries().query(&req).unwrap(),
                        "e={e} t={t}"
                    );
                }
            }
            let req = QueryRequest::BurstyEvents {
                t: Timestamp(99),
                theta: 20.0,
                tau,
                strategy: crate::QueryStrategy::Pruned,
            };
            assert_eq!(view.query(&req).unwrap(), oracle.queries().query(&req).unwrap());
            assert_eq!(view.answer_watermark(), oracle.watermark());
        }
    }

    #[test]
    fn readers_track_publishes_and_cadence_gate_works() {
        let mut det = plain();
        let epochs = DetectorEpochs::new(&det);
        let mut publisher = EpochPublisher::new(CheckpointPolicy { every_arrivals: 50 });
        let view = epochs.view();
        assert_eq!(view.refresh_latest().arrivals, 0);

        for t in 0..120u64 {
            det.ingest(EventId((t % 8) as u32), Timestamp(t)).unwrap();
            publisher.maybe_publish(&det, &epochs);
        }
        assert_eq!(publisher.published(), 3, "arrivals 1 (first due), 51, 101");
        assert_eq!(view.refresh_latest().arrivals, 101);
        // Nothing new published → refresh is a no-op at the same epoch.
        assert_eq!(view.refresh_latest().arrivals, 101);
        epochs.publish(&det);
        assert_eq!(view.refresh_latest().arrivals, 120);
    }

    #[test]
    fn epoch_metrics_surface_published_and_retries() {
        let det = plain();
        let epochs = DetectorEpochs::new(&det);
        epochs.publish(&det);
        let snap = epochs.metrics();
        assert_eq!(snap.get("epoch.published"), Some(&bed_obs::MetricValue::Counter(2)));
        assert_eq!(snap.get("epoch.reader_retries"), Some(&bed_obs::MetricValue::Counter(0)));
        assert!(
            matches!(snap.get("epoch.generation"), Some(bed_obs::MetricValue::Gauge(g)) if *g == 2.0)
        );
        assert!(matches!(
            snap.get("epoch.publish.latency_ns"),
            Some(bed_obs::MetricValue::Histogram(_))
        ));
    }

    // ---- schedule-permuter coverage of the seqlock protocol ----------

    /// Drives one instrumented refresh under `schedule`, injecting
    /// `schedule.next()` publishes at every protocol yield point. Returns
    /// whether the retry path fired. `published` tracks the single
    /// writer's count so payloads can encode their own generation.
    fn run_schedule(
        cell: &SnapshotCell<u64>,
        reader: &mut EpochReader<u64>,
        published: &mut u64,
        schedule: &mut Schedule,
    ) -> bool {
        let retries_before = cell.reader_retries();
        let publish_n = |n: usize, published: &mut u64| {
            for _ in 0..n {
                *published += 1;
                let wm = Watermark { arrivals: *published, last_ts: None };
                assert_eq!(cell.publish(wm, Arc::new(*published)), *published);
            }
        };
        publish_n(schedule.next(), published);
        reader.refresh_with(cell, &mut |_step| {
            publish_n(schedule.next(), published);
        });
        // Protocol invariants, checked after *every* interleaving:
        // the loaded epoch is internally consistent (never torn) ...
        if let Some(epoch) = reader.current() {
            assert_eq!(*epoch.data, epoch.generation, "torn epoch payload");
            assert_eq!(epoch.watermark.arrivals, epoch.generation, "torn watermark");
            assert!(epoch.generation <= *published, "read an unpublished generation");
        } else {
            assert_eq!(*published, 0, "published epochs must be visible");
        }
        cell.reader_retries() > retries_before
    }

    #[test]
    fn exhaustive_small_schedules_cover_the_retry_path() {
        // Yield points per refresh: LoadGeneration, then per loop
        // iteration LockSlot (+ Validate, LoadGeneration on retry). Up to
        // 5 injected publishes per step forces multi-lap retries
        // (EPOCH_SLOTS = 4, so ≥4 publishes between load and lock lap the
        // slot). 6^4 = 1296 schedules, exhaustively enumerated.
        let mut retried = 0u32;
        let mut total = 0u32;
        for mut schedule in exhaustive(5, 4) {
            let cell = SnapshotCell::new();
            let mut reader = EpochReader::new();
            let mut published = 0u64;
            // Refresh twice per schedule so cached-generation fast paths
            // get interleaved publishes too.
            let a = run_schedule(&cell, &mut reader, &mut published, &mut schedule);
            let b = run_schedule(&cell, &mut reader, &mut published, &mut schedule);
            retried += u32::from(a | b);
            total += 1;
        }
        assert_eq!(total, 6u32.pow(4));
        assert!(retried > 0, "no schedule exercised the seqlock retry path");
    }

    #[test]
    fn seeded_random_schedules_agree_with_the_invariants() {
        let mut retried = false;
        for seed in 0..64u64 {
            let mut gen = ScheduleGen::new(seed);
            let cell = SnapshotCell::new();
            let mut reader = EpochReader::new();
            let mut published = 0u64;
            for _ in 0..8 {
                let mut schedule = gen.schedule(8, 6);
                retried |= run_schedule(&cell, &mut reader, &mut published, &mut schedule);
            }
        }
        assert!(retried, "64 seeds × 8 refreshes never lapped a slot");
    }

    #[test]
    fn schedule_generator_is_deterministic() {
        let a: Vec<usize> = ScheduleGen::new(9).schedule(8, 6).remaining().to_vec();
        let b: Vec<usize> = ScheduleGen::new(9).schedule(8, 6).remaining().to_vec();
        assert_eq!(a, b);
    }
}
