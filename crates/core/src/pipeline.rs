//! End-to-end ingestion pipeline: raw text messages → event mapping →
//! out-of-order tolerance → the detector.
//!
//! The paper's system view starts from an information stream `M` of text
//! messages, mapped by a black-box `h` into the event stream `S`
//! (Section II-A). [`MessagePipeline`] wires those stages to a
//! [`BurstDetector`], so an application can feed raw messages (with mild
//! timestamp disorder) and ask historical burstiness questions on the other
//! side.

use bed_obs::{MetricsSnapshot, SpanName, Tracer};
use bed_stream::element::{EventMapper, Message, StreamElement};
use bed_stream::reorder::{LatePolicy, ReorderBuffer};
use bed_stream::{EventId, Timestamp};

use crate::detector::BurstDetector;
use crate::error::BedError;
use crate::metrics::PipelineMetrics;
use crate::observe::Traceable;
use crate::query::BurstQueries;
use crate::shard::ShardedDetector;

/// Anything that can consume a (locally ordered) event stream — the
/// contract the pipeline needs from its back end, satisfied by both
/// [`BurstDetector`] and [`ShardedDetector`].
pub trait EventSink {
    /// Records one arrival.
    fn ingest(&mut self, event: EventId, ts: Timestamp) -> Result<(), BedError>;

    /// Records a non-decreasing batch. The default loops [`Self::ingest`];
    /// implementations with a parallel fast path override it.
    fn ingest_batch(&mut self, batch: &[(EventId, Timestamp)]) -> Result<(), BedError> {
        for &(event, ts) in batch {
            self.ingest(event, ts)?;
        }
        Ok(())
    }

    /// Flushes internal buffering.
    fn finalize(&mut self);

    /// Elements ingested so far.
    fn arrivals(&self) -> u64;
}

impl EventSink for BurstDetector {
    fn ingest(&mut self, event: EventId, ts: Timestamp) -> Result<(), BedError> {
        BurstDetector::ingest(self, event, ts)
    }

    fn finalize(&mut self) {
        BurstDetector::finalize(self)
    }

    fn arrivals(&self) -> u64 {
        BurstDetector::arrivals(self)
    }
}

impl EventSink for ShardedDetector {
    fn ingest(&mut self, event: EventId, ts: Timestamp) -> Result<(), BedError> {
        ShardedDetector::ingest(self, event, ts)
    }

    fn ingest_batch(&mut self, batch: &[(EventId, Timestamp)]) -> Result<(), BedError> {
        ShardedDetector::ingest_batch(self, batch)
    }

    fn finalize(&mut self) {
        ShardedDetector::finalize(self)
    }

    fn arrivals(&self) -> u64 {
        ShardedDetector::arrivals(self)
    }
}

/// Raw-message front end for a [`BurstDetector`] (or any [`EventSink`],
/// e.g. a [`ShardedDetector`] for parallel ingestion).
///
/// ```
/// use bed_core::pipeline::MessagePipeline;
/// use bed_core::{BurstDetector, PbeVariant};
/// use bed_stream::{HashtagMapper, Message};
///
/// let universe = 64;
/// let detector = BurstDetector::builder()
///     .universe(universe)
///     .variant(PbeVariant::pbe2(1.0))
///     .build()
///     .unwrap();
/// let mut pipe = MessagePipeline::new(detector, HashtagMapper::new(universe), 30);
///
/// pipe.offer(Message::new("kickoff! #soccer", 100u64)).unwrap();
/// pipe.offer(Message::new("GOL #soccer #brasil", 95u64)).unwrap(); // slightly late: fine
/// pipe.offer(Message::new("no tags, no events", 101u64)).unwrap();
/// let det = pipe.finish().unwrap();
/// assert_eq!(det.arrivals(), 3); // two tags + one tag
/// ```
#[derive(Debug)]
pub struct MessagePipeline<M, D = BurstDetector> {
    detector: D,
    mapper: M,
    reorder: ReorderBuffer,
    scratch: Vec<StreamElement>,
    ready: Vec<StreamElement>,
    batch: Vec<(EventId, Timestamp)>,
    messages: u64,
    unmapped: u64,
    metrics: PipelineMetrics,
    tracer: std::sync::Arc<Tracer>,
}

impl<M: EventMapper, D: EventSink> MessagePipeline<M, D> {
    /// Wraps a detector with a mapper and a lateness window (in ticks).
    /// Late messages beyond the window are clamped forward (counts are
    /// preserved; a historical summary should not silently lose mentions).
    pub fn new(detector: D, mapper: M, lateness: u64) -> Self {
        MessagePipeline {
            detector,
            mapper,
            reorder: ReorderBuffer::new(lateness, LatePolicy::ClampForward),
            scratch: Vec::new(),
            ready: Vec::new(),
            batch: Vec::new(),
            messages: 0,
            unmapped: 0,
            metrics: PipelineMetrics::new(),
            tracer: std::sync::Arc::new(Tracer::disabled()),
        }
    }

    /// Offers one raw message; mapped elements flow into the detector once
    /// their timestamps are final.
    pub fn offer(&mut self, message: Message) -> Result<(), BedError> {
        self.messages += 1;
        self.scratch.clear();
        self.mapper.map_into(&message, &mut self.scratch);
        if self.scratch.is_empty() {
            self.unmapped += 1;
            return Ok(());
        }
        for el in self.scratch.drain(..) {
            self.reorder.offer(el, &mut self.ready)?;
        }
        self.flush_ready()
    }

    /// Hands everything the reorder buffer released to the sink as one
    /// batch — the fast path that lets a [`ShardedDetector`] fan the
    /// drained window out across its shards instead of element-at-a-time.
    fn flush_ready(&mut self) -> Result<(), BedError> {
        if self.ready.is_empty() {
            return Ok(());
        }
        self.batch.clear();
        self.batch.extend(self.ready.drain(..).map(|el| (el.event, el.ts)));
        let trace = self.tracer.start_sampled(SpanName::PIPELINE_FLUSH);
        let started = self.metrics.flush_begin(self.batch.len());
        let result = self.detector.ingest_batch(&self.batch);
        self.metrics.flush_end(started);
        if let Some(trace) = trace {
            let n = self.batch.len();
            trace.finish(|| format!("flush elements={n}"));
        }
        result
    }

    /// Messages offered so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Messages that mapped to no event (dropped by `h`).
    pub fn unmapped(&self) -> u64 {
        self.unmapped
    }

    /// Elements still held in the reorder window.
    pub fn pending(&self) -> usize {
        self.reorder.pending()
    }

    /// Read-only access to the detector mid-stream (queries lag by the
    /// lateness window: elements still pending are not yet visible).
    pub fn detector(&self) -> &D {
        &self.detector
    }

    /// Drains the reorder window, finalizes, and returns the detector.
    pub fn finish(mut self) -> Result<D, BedError> {
        self.reorder.drain(&mut self.ready);
        self.flush_ready()?;
        self.detector.finalize();
        Ok(self.detector)
    }
}

impl<M, D: Traceable> Traceable for MessagePipeline<M, D> {
    /// Installs the tracer on the pipeline's flush path **and** the wrapped
    /// detector's query path.
    fn set_tracer(&mut self, tracer: std::sync::Arc<Tracer>) {
        self.tracer = std::sync::Arc::clone(&tracer);
        self.detector.set_tracer(tracer);
    }

    fn tracer(&self) -> &std::sync::Arc<Tracer> {
        &self.tracer
    }
}

impl<M, D: crate::checkpoint::Checkpointable> MessagePipeline<M, D> {
    /// Periodic-checkpoint hook: takes a snapshot of the wrapped detector
    /// iff `ckpt`'s policy says one is due (call after a batch of
    /// `offer`s; cheap when not due). Elements still in the reorder window
    /// are not yet in the detector, so they are covered by the *next*
    /// checkpoint — or by the WAL when the sink is a
    /// [`crate::wal::WalSink`].
    pub fn maybe_checkpoint(
        &mut self,
        ckpt: &mut crate::checkpoint::Checkpointer,
    ) -> Result<bool, crate::checkpoint::RecoveryError> {
        ckpt.maybe_checkpoint(&self.detector)
    }
}

impl<M, D: BurstQueries> MessagePipeline<M, D> {
    /// Captures flush counters/latency plus the
    /// `pipeline.{messages,unmapped,pending}` gauges, merged with the
    /// wrapped detector's own [`MetricsSnapshot`].
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.set_gauge("pipeline.messages", self.messages as f64);
        self.metrics.set_gauge("pipeline.unmapped", self.unmapped as f64);
        self.metrics.set_gauge("pipeline.pending", self.reorder.pending() as f64);
        self.metrics.snapshot().merge(&self.detector.metrics())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PbeVariant;
    use bed_stream::{BurstSpan, EventId, HashtagMapper};

    fn pipeline(lateness: u64) -> MessagePipeline<HashtagMapper> {
        let detector = BurstDetector::builder()
            .universe(1 << 16)
            .variant(PbeVariant::pbe2(1.0))
            .accuracy(0.002, 0.05)
            .build()
            .unwrap();
        MessagePipeline::new(detector, HashtagMapper::new(1 << 16), lateness)
    }

    #[test]
    fn maps_and_detects_a_hashtag_burst() {
        let mut pipe = pipeline(10);
        // background chatter + an #earthquake burst at t=500..520
        for t in 0..1_000u64 {
            pipe.offer(Message::new("#weather looking fine", t)).unwrap();
            if (500..520).contains(&t) {
                for _ in 0..10 {
                    pipe.offer(Message::new("shaking!! #earthquake", t)).unwrap();
                }
            }
        }
        assert_eq!(pipe.unmapped(), 0);
        let det = pipe.finish().unwrap();
        let mapper = HashtagMapper::new(1 << 16);
        let quake = mapper.event_for_tag("earthquake");
        let weather = mapper.event_for_tag("weather");
        let tau = BurstSpan::new(50).unwrap();
        let b_quake = det.point_query(quake, bed_stream::Timestamp(519), tau);
        let b_weather = det.point_query(weather, bed_stream::Timestamp(519), tau);
        assert!(b_quake > 50.0, "{b_quake}");
        assert!(b_weather.abs() < 10.0, "{b_weather}");
    }

    #[test]
    fn tolerates_disorder_within_window() {
        let mut pipe = pipeline(20);
        let mut x = 777u64;
        for i in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = i * 3 + x % 20;
            pipe.offer(Message::new("#topic", t)).unwrap();
        }
        let det = pipe.finish().unwrap();
        assert_eq!(det.arrivals(), 500);
    }

    #[test]
    fn untagged_messages_are_counted_not_ingested() {
        let mut pipe = pipeline(5);
        pipe.offer(Message::new("nothing to see", 1u64)).unwrap();
        pipe.offer(Message::new("#x", 2u64)).unwrap();
        assert_eq!(pipe.messages(), 2);
        assert_eq!(pipe.unmapped(), 1);
        let det = pipe.finish().unwrap();
        assert_eq!(det.arrivals(), 1);
    }

    #[test]
    fn very_late_messages_are_clamped_not_lost() {
        let mut pipe = pipeline(5);
        pipe.offer(Message::new("#a", 1_000u64)).unwrap();
        pipe.offer(Message::new("#a", 10u64)).unwrap(); // far too late
        let det = pipe.finish().unwrap();
        assert_eq!(det.arrivals(), 2, "clamped forward, not dropped");
        let mapper = HashtagMapper::new(1 << 16);
        let a = mapper.event_for_tag("a");
        let f = det.cumulative_frequency(a, bed_stream::Timestamp(1_000));
        assert!((f - 2.0).abs() <= 1.0 + 1e-9);
        let _ = EventId(0);
    }
}
