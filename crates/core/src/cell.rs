//! Runtime-selectable PBE cell: PBE-1 or PBE-2 behind one type.
//!
//! The sketch and hierarchy layers are generic over
//! [`bed_pbe::CurveSketch`]; the facade needs to pick the variant at runtime
//! from configuration, so it routes through this small enum rather than
//! monomorphising the whole stack twice behind a trait object.

use bed_pbe::kernel::CumHint;
use bed_pbe::{CurveSketch, Pbe1, Pbe2};
use bed_stream::{BurstSpan, Timestamp};

/// A PBE of either variant.
#[derive(Debug, Clone)]
pub enum PbeCell {
    /// Buffered optimal staircase (Section III-A).
    One(Pbe1),
    /// Online piecewise-linear approximation (Section III-B).
    Two(Pbe2),
}

impl CurveSketch for PbeCell {
    fn update(&mut self, ts: Timestamp) {
        match self {
            PbeCell::One(p) => p.update(ts),
            PbeCell::Two(p) => p.update(ts),
        }
    }

    fn estimate_cum(&self, t: Timestamp) -> f64 {
        match self {
            PbeCell::One(p) => p.estimate_cum(t),
            PbeCell::Two(p) => p.estimate_cum(t),
        }
    }

    // The query-kernel fast paths must be forwarded explicitly — the trait
    // defaults would silently fall back to unhinted searches.

    fn estimate_cum_hinted(&self, t: Timestamp, hint: &mut CumHint) -> f64 {
        match self {
            PbeCell::One(p) => p.estimate_cum_hinted(t, hint),
            PbeCell::Two(p) => p.estimate_cum_hinted(t, hint),
        }
    }

    fn probe3(&self, t: Timestamp, tau: BurstSpan) -> [f64; 3] {
        match self {
            PbeCell::One(p) => p.probe3(t, tau),
            PbeCell::Two(p) => p.probe3(t, tau),
        }
    }

    fn for_each_segment_start(&self, f: &mut dyn FnMut(Timestamp)) {
        match self {
            PbeCell::One(p) => p.for_each_segment_start(f),
            PbeCell::Two(p) => p.for_each_segment_start(f),
        }
    }

    fn for_each_piece(&self, f: &mut dyn FnMut(bed_pbe::CurvePiece)) {
        match self {
            PbeCell::One(p) => p.for_each_piece(f),
            PbeCell::Two(p) => p.for_each_piece(f),
        }
    }

    fn finalize(&mut self) {
        match self {
            PbeCell::One(p) => p.finalize(),
            PbeCell::Two(p) => p.finalize(),
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            PbeCell::One(p) => p.size_bytes(),
            PbeCell::Two(p) => p.size_bytes(),
        }
    }

    fn segment_starts(&self) -> Vec<Timestamp> {
        match self {
            PbeCell::One(p) => p.segment_starts(),
            PbeCell::Two(p) => p.segment_starts(),
        }
    }

    fn piece_boundaries(&self) -> Vec<Timestamp> {
        match self {
            PbeCell::One(p) => p.piece_boundaries(),
            PbeCell::Two(p) => p.piece_boundaries(),
        }
    }

    fn interpolation(&self) -> bed_pbe::traits::Interpolation {
        match self {
            PbeCell::One(p) => p.interpolation(),
            PbeCell::Two(p) => p.interpolation(),
        }
    }

    fn arrivals(&self) -> u64 {
        match self {
            PbeCell::One(p) => p.arrivals(),
            PbeCell::Two(p) => p.arrivals(),
        }
    }

    fn summary_stats(&self) -> bed_pbe::SummaryStats {
        match self {
            PbeCell::One(p) => p.summary_stats(),
            PbeCell::Two(p) => p.summary_stats(),
        }
    }
}

/// Persistence: a one-byte variant tag followed by the inner sketch's own
/// self-identifying encoding.
impl bed_stream::Codec for PbeCell {
    fn encode(&self, w: &mut bed_stream::codec::Writer) {
        match self {
            PbeCell::One(p) => {
                w.u8(1);
                p.encode(w);
            }
            PbeCell::Two(p) => {
                w.u8(2);
                p.encode(w);
            }
        }
    }

    fn decode(r: &mut bed_stream::codec::Reader<'_>) -> Result<Self, bed_stream::CodecError> {
        match r.u8("pbe cell variant")? {
            1 => Ok(PbeCell::One(Pbe1::decode(r)?)),
            2 => Ok(PbeCell::Two(Pbe2::decode(r)?)),
            _ => Err(bed_stream::CodecError::Invalid { context: "pbe cell variant" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bed_pbe::{Pbe1Config, Pbe2Config};

    #[test]
    fn both_variants_delegate() {
        let mut one = PbeCell::One(Pbe1::new(Pbe1Config { n_buf: 10, eta: 3 }).unwrap());
        let mut two = PbeCell::Two(Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 16 }).unwrap());
        for t in 0..20u64 {
            one.update(Timestamp(t));
            two.update(Timestamp(t));
        }
        one.finalize();
        two.finalize();
        assert_eq!(one.arrivals(), 20);
        assert_eq!(two.arrivals(), 20);
        assert!(one.estimate_cum(Timestamp(19)) > 0.0);
        assert!((two.estimate_cum(Timestamp(19)) - 20.0).abs() <= 2.0 + 1e-9);
        assert!(one.size_bytes() > 0 && two.size_bytes() > 0);
        assert!(!one.segment_starts().is_empty());
        assert!(!two.segment_starts().is_empty());
    }
}
