//! Runtime-selectable PBE cell: PBE-1, PBE-2, or a tier-compacted
//! composite of either, behind one type.
//!
//! The sketch and hierarchy layers are generic over
//! [`bed_pbe::CurveSketch`]; the facade needs to pick the variant at runtime
//! from configuration, so it routes through this small enum rather than
//! monomorphising the whole stack twice behind a trait object.
//!
//! The [`PbeCell::Tiered`] variant is what a cell becomes after its first
//! retention compaction (ROADMAP item 3 / Hokusai aging): a
//! [`FrozenCurve`] staircase prefix holding the decimated old history plus
//! a fresh live PBE accumulating everything since the last fold. The
//! combined estimate is simply `frozen.eval(t) + live(t)` — live curves
//! restart from zero at each fold, so the two parts never double-count.

use bed_pbe::kernel::CumHint;
use bed_pbe::{CurveSketch, Pbe1, Pbe2};
use bed_sketch::{FrozenCurve, RetentionPolicy};
use bed_stream::{BurstSpan, Timestamp};

/// A PBE of either variant, optionally carrying a frozen tiered prefix.
#[derive(Debug, Clone)]
pub enum PbeCell {
    /// Buffered optimal staircase (Section III-A).
    One(Pbe1),
    /// Online piecewise-linear approximation (Section III-B).
    Two(Pbe2),
    /// Tier-compacted composite: frozen decimated prefix + live PBE.
    Tiered(Box<TieredCell>),
}

/// The state of a cell that has been compacted at least once.
#[derive(Debug, Clone)]
pub struct TieredCell {
    /// Decimated staircase of everything folded so far.
    frozen: FrozenCurve,
    /// Live PBE for arrivals since the last fold. Invariant: never
    /// `Tiered` itself (enforced by construction and the codec).
    live: PbeCell,
}

impl TieredCell {
    /// Frozen prefix (observability + tier accounting).
    pub fn frozen(&self) -> &FrozenCurve {
        &self.frozen
    }

    /// Live PBE accumulating since the last fold.
    pub fn live(&self) -> &PbeCell {
        &self.live
    }

    /// Folds the live curve into the frozen prefix and re-decimates
    /// everything against the watermark `now`.
    ///
    /// The live curve is sampled at its own piece boundaries plus `now`;
    /// staircasing those samples under-estimates a PBE-2 PLA segment but
    /// never overestimates it, preserving the one-sided error direction
    /// the median combiner needs. The live PBE is then rebuilt empty from
    /// its own config, so subsequent arrivals start a fresh curve.
    fn compact(&mut self, policy: &RetentionPolicy, now: Timestamp) {
        let live_arrivals = self.live.arrivals();
        if live_arrivals == 0 {
            // Nothing new to fold; still re-decimate so old knees keep
            // migrating into coarser tiers as the watermark advances.
            self.frozen.fold(std::iter::empty(), 0, now.ticks(), policy);
            return;
        }
        let mut ts: Vec<u64> = self.live.piece_boundaries().iter().map(|t| t.ticks()).collect();
        ts.push(now.ticks());
        ts.sort_unstable();
        ts.dedup();
        let live = &self.live;
        let samples = ts.iter().map(|&t| (t, live.estimate_cum(Timestamp(t))));
        self.frozen.fold(samples, live_arrivals, now.ticks(), policy);
        self.live.reset();
    }
}

impl PbeCell {
    /// A fresh, empty cell with the same configuration (variant, η/γ,
    /// buffer/vertex limits) as `self`.
    fn fresh(&self) -> PbeCell {
        match self {
            PbeCell::One(p) => PbeCell::One(Pbe1::new(p.config()).expect("config was valid")),
            PbeCell::Two(p) => PbeCell::Two(Pbe2::new(p.config()).expect("config was valid")),
            PbeCell::Tiered(tc) => tc.live.fresh(),
        }
    }

    /// Replaces `self` with an empty cell of the same configuration.
    fn reset(&mut self) {
        *self = self.fresh();
    }

    /// Retention compaction: fold live state into the frozen tiered
    /// prefix (wrapping the cell into [`PbeCell::Tiered`] on first use)
    /// and re-decimate against the watermark `now`.
    ///
    /// Deterministic given the arrival history, so WAL replay through the
    /// same ingest path reproduces the compacted state bit-for-bit.
    pub fn compact(&mut self, policy: &RetentionPolicy, now: Timestamp) {
        if !matches!(self, PbeCell::Tiered(_)) {
            if self.arrivals() == 0 {
                // Untouched cell: wrapping it would only add overhead.
                return;
            }
            let placeholder = self.fresh();
            let live = std::mem::replace(self, placeholder);
            *self = PbeCell::Tiered(Box::new(TieredCell { frozen: FrozenCurve::new(), live }));
        }
        let PbeCell::Tiered(tc) = self else { unreachable!("wrapped above") };
        tc.compact(policy, now);
    }

    /// The frozen tiered prefix, if this cell has been compacted.
    pub fn frozen(&self) -> Option<&FrozenCurve> {
        match self {
            PbeCell::Tiered(tc) => Some(&tc.frozen),
            _ => None,
        }
    }
}

impl CurveSketch for PbeCell {
    fn update(&mut self, ts: Timestamp) {
        match self {
            PbeCell::One(p) => p.update(ts),
            PbeCell::Two(p) => p.update(ts),
            PbeCell::Tiered(tc) => tc.live.update(ts),
        }
    }

    fn estimate_cum(&self, t: Timestamp) -> f64 {
        match self {
            PbeCell::One(p) => p.estimate_cum(t),
            PbeCell::Two(p) => p.estimate_cum(t),
            PbeCell::Tiered(tc) => tc.frozen.eval(t.ticks()) + tc.live.estimate_cum(t),
        }
    }

    // The query-kernel fast paths must be forwarded explicitly — the trait
    // defaults would silently fall back to unhinted searches.

    fn estimate_cum_hinted(&self, t: Timestamp, hint: &mut CumHint) -> f64 {
        match self {
            PbeCell::One(p) => p.estimate_cum_hinted(t, hint),
            PbeCell::Two(p) => p.estimate_cum_hinted(t, hint),
            // The live part honours the hint; the frozen part is a plain
            // binary search. hinted == unhinted bit-for-bit on the live
            // side, so the sum matches estimate_cum exactly.
            PbeCell::Tiered(tc) => tc.frozen.eval(t.ticks()) + tc.live.estimate_cum_hinted(t, hint),
        }
    }

    fn probe3(&self, t: Timestamp, tau: BurstSpan) -> [f64; 3] {
        match self {
            PbeCell::One(p) => p.probe3(t, tau),
            PbeCell::Two(p) => p.probe3(t, tau),
            // Composed exactly like the trait default, so the bit-for-bit
            // probe3 == 3×estimate_cum contract holds trivially.
            PbeCell::Tiered(_) => [
                self.estimate_cum(t),
                self.estimate_cum_offset(t, tau.ticks()),
                self.estimate_cum_offset(t, tau.ticks().saturating_mul(2)),
            ],
        }
    }

    fn for_each_segment_start(&self, f: &mut dyn FnMut(Timestamp)) {
        match self {
            PbeCell::One(p) => p.for_each_segment_start(f),
            PbeCell::Two(p) => p.for_each_segment_start(f),
            PbeCell::Tiered(tc) => {
                tc.frozen.for_each_knee(|t, _| f(Timestamp(t)));
                tc.live.for_each_segment_start(f);
            }
        }
    }

    fn for_each_piece(&self, f: &mut dyn FnMut(bed_pbe::CurvePiece)) {
        match self {
            PbeCell::One(p) => p.for_each_piece(f),
            PbeCell::Two(p) => p.for_each_piece(f),
            // A staircase sampling of the composite at its boundaries.
            // Exact for Step live curves; for Linear live curves it holds
            // the boundary value between knees. Tiered cells report
            // `bankable() == false`, so the PieceBank (the one consumer
            // that requires bit-exactness) never sees this export.
            PbeCell::Tiered(_) => {
                for t in self.piece_boundaries() {
                    f(bed_pbe::CurvePiece::staircase(t.ticks(), self.estimate_cum(t)));
                }
            }
        }
    }

    fn finalize(&mut self) {
        match self {
            PbeCell::One(p) => p.finalize(),
            PbeCell::Two(p) => p.finalize(),
            PbeCell::Tiered(tc) => tc.live.finalize(),
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            PbeCell::One(p) => p.size_bytes(),
            PbeCell::Two(p) => p.size_bytes(),
            PbeCell::Tiered(tc) => tc.frozen.size_bytes() + tc.live.size_bytes(),
        }
    }

    fn segment_starts(&self) -> Vec<Timestamp> {
        match self {
            PbeCell::One(p) => p.segment_starts(),
            PbeCell::Two(p) => p.segment_starts(),
            PbeCell::Tiered(tc) => {
                let mut out: Vec<Timestamp> = Vec::with_capacity(tc.frozen.len());
                tc.frozen.for_each_knee(|t, _| out.push(Timestamp(t)));
                out.extend(tc.live.segment_starts());
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }

    fn piece_boundaries(&self) -> Vec<Timestamp> {
        match self {
            PbeCell::One(p) => p.piece_boundaries(),
            PbeCell::Two(p) => p.piece_boundaries(),
            PbeCell::Tiered(tc) => {
                let mut out: Vec<Timestamp> = Vec::with_capacity(tc.frozen.len());
                tc.frozen.for_each_knee(|t, _| out.push(Timestamp(t)));
                out.extend(tc.live.piece_boundaries());
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }

    fn interpolation(&self) -> bed_pbe::traits::Interpolation {
        match self {
            PbeCell::One(p) => p.interpolation(),
            PbeCell::Two(p) => p.interpolation(),
            // The frozen prefix is Step, so the composite is Linear only
            // when the live curve is.
            PbeCell::Tiered(tc) => tc.live.interpolation(),
        }
    }

    fn bankable(&self) -> bool {
        // A compacted cell's estimate is frozen + live; the flat piece
        // export can't reproduce that sum bit-for-bit, so the grid must
        // stay on the AoS path.
        !matches!(self, PbeCell::Tiered(_))
    }

    fn arrivals(&self) -> u64 {
        match self {
            PbeCell::One(p) => p.arrivals(),
            PbeCell::Two(p) => p.arrivals(),
            PbeCell::Tiered(tc) => tc.frozen.arrivals() + tc.live.arrivals(),
        }
    }

    fn summary_stats(&self) -> bed_pbe::SummaryStats {
        match self {
            PbeCell::One(p) => p.summary_stats(),
            PbeCell::Two(p) => p.summary_stats(),
            PbeCell::Tiered(tc) => {
                let live = tc.live.summary_stats();
                bed_pbe::SummaryStats {
                    pieces: live.pieces + tc.frozen.len(),
                    buffered: live.buffered,
                    bytes: live.bytes + tc.frozen.size_bytes(),
                }
            }
        }
    }
}

/// Persistence: a one-byte variant tag followed by the inner sketch's own
/// self-identifying encoding. Tag 3 (tiered) adds the frozen prefix before
/// the (non-tiered) live cell, so detectors built without retention keep
/// their exact historical byte layout.
impl bed_stream::Codec for PbeCell {
    fn encode(&self, w: &mut bed_stream::codec::Writer) {
        match self {
            PbeCell::One(p) => {
                w.u8(1);
                p.encode(w);
            }
            PbeCell::Two(p) => {
                w.u8(2);
                p.encode(w);
            }
            PbeCell::Tiered(tc) => {
                w.u8(3);
                tc.frozen.encode(w);
                tc.live.encode(w);
            }
        }
    }

    fn decode(r: &mut bed_stream::codec::Reader<'_>) -> Result<Self, bed_stream::CodecError> {
        match r.u8("pbe cell variant")? {
            1 => Ok(PbeCell::One(Pbe1::decode(r)?)),
            2 => Ok(PbeCell::Two(Pbe2::decode(r)?)),
            3 => {
                let frozen = FrozenCurve::decode(r)?;
                let live = PbeCell::decode(r)?;
                if matches!(live, PbeCell::Tiered(_)) {
                    return Err(bed_stream::CodecError::Invalid { context: "nested tiered cell" });
                }
                Ok(PbeCell::Tiered(Box::new(TieredCell { frozen, live })))
            }
            _ => Err(bed_stream::CodecError::Invalid { context: "pbe cell variant" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bed_pbe::{Pbe1Config, Pbe2Config};
    use bed_stream::Codec;

    #[test]
    fn both_variants_delegate() {
        let mut one = PbeCell::One(Pbe1::new(Pbe1Config { n_buf: 10, eta: 3 }).unwrap());
        let mut two = PbeCell::Two(Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 16 }).unwrap());
        for t in 0..20u64 {
            one.update(Timestamp(t));
            two.update(Timestamp(t));
        }
        one.finalize();
        two.finalize();
        assert_eq!(one.arrivals(), 20);
        assert_eq!(two.arrivals(), 20);
        assert!(one.estimate_cum(Timestamp(19)) > 0.0);
        assert!((two.estimate_cum(Timestamp(19)) - 20.0).abs() <= 2.0 + 1e-9);
        assert!(one.size_bytes() > 0 && two.size_bytes() > 0);
        assert!(!one.segment_starts().is_empty());
        assert!(!two.segment_starts().is_empty());
    }

    #[test]
    fn compaction_preserves_recent_and_never_overestimates() {
        let policy = RetentionPolicy::new(32, 4, 1).unwrap();
        // A PBE-1 whose buffer never fills keeps every corner exactly,
        // isolating pure decimation error.
        let mut cell = PbeCell::One(Pbe1::new(Pbe1Config { n_buf: 1024, eta: 512 }).unwrap());
        let mut oracle = PbeCell::One(Pbe1::new(Pbe1Config { n_buf: 1024, eta: 512 }).unwrap());
        for t in 0..256u64 {
            cell.update(Timestamp(t));
            oracle.update(Timestamp(t));
        }
        cell.compact(&policy, Timestamp(255));
        assert!(matches!(cell, PbeCell::Tiered(_)));
        assert!(!cell.bankable());
        assert_eq!(cell.arrivals(), oracle.arrivals());
        for t in 0..=255u64 {
            let est = cell.estimate_cum(Timestamp(t));
            let truth = oracle.estimate_cum(Timestamp(t));
            assert!(est <= truth + 1e-9, "overestimate at {t}: {est} > {truth}");
            let tier = policy.tier_of(t, 255);
            if tier == 0 {
                assert_eq!(est, truth, "tier-0 must stay verbatim at {t}");
            } else {
                // one grain bucket of mass (1 arrival/tick here)
                let slack = policy.grain(tier) as f64;
                assert!(truth - est <= slack, "tier {tier} gap {} at {t}", truth - est);
            }
        }
        // arrivals after the fold land in the fresh live curve
        cell.update(Timestamp(300));
        oracle.update(Timestamp(300));
        assert_eq!(cell.estimate_cum(Timestamp(300)), oracle.estimate_cum(Timestamp(300)));
    }

    #[test]
    fn compaction_probe3_matches_composed_and_hinted() {
        let policy = RetentionPolicy::new(16, 2, 1).unwrap();
        let mut cell =
            PbeCell::Two(Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 64 }).unwrap());
        for t in 0..200u64 {
            cell.update(Timestamp(t / 2));
        }
        cell.compact(&policy, Timestamp(99));
        for t in 0..150u64 {
            cell.update(Timestamp(100 + t));
        }
        cell.finalize();
        let tau = BurstSpan::new(13).unwrap();
        for t in (0..250u64).step_by(7) {
            let probes = cell.probe3(Timestamp(t), tau);
            let composed = [
                cell.estimate_cum(Timestamp(t)),
                cell.estimate_cum_offset(Timestamp(t), 13),
                cell.estimate_cum_offset(Timestamp(t), 26),
            ];
            assert_eq!(probes, composed);
            let mut hint = CumHint::default();
            assert_eq!(
                cell.estimate_cum_hinted(Timestamp(t), &mut hint),
                cell.estimate_cum(Timestamp(t))
            );
        }
    }

    #[test]
    fn tiered_codec_roundtrip() {
        let policy = RetentionPolicy::new(8, 2, 1).unwrap();
        let mut cell = PbeCell::One(Pbe1::new(Pbe1Config { n_buf: 64, eta: 16 }).unwrap());
        for t in 0..100u64 {
            cell.update(Timestamp(t));
        }
        cell.compact(&policy, Timestamp(99));
        for t in 100..120u64 {
            cell.update(Timestamp(t));
        }
        let mut w = bed_stream::codec::Writer::new();
        cell.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = bed_stream::codec::Reader::new(&bytes);
        let back = PbeCell::decode(&mut r).unwrap();
        r.finish().unwrap();
        let mut w2 = bed_stream::codec::Writer::new();
        back.encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "re-encode must be byte-identical");
        for t in (0..130u64).step_by(3) {
            assert_eq!(back.estimate_cum(Timestamp(t)), cell.estimate_cum(Timestamp(t)));
        }
    }
}
