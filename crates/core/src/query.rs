//! The unified query surface: [`BurstQueries`], one trait both
//! [`crate::BurstDetector`] and [`crate::ShardedDetector`] implement.
//!
//! The paper defines three historical query types (point, bursty-time,
//! bursty-event); the detectors grew two derived ones (series, top-k) plus a
//! pruned/exact split — enough surface that every front-end (CLI, monitor,
//! pipeline, a future server) was special-casing the two detector types.
//! [`QueryRequest`] names the five canonical kinds once, [`BurstQueries`]
//! routes them, and [`QueryStrategy`] makes the hierarchy trade-off an
//! explicit argument instead of three differently-named methods.
//!
//! Uniform fallibility: `query` validates up front and returns
//! `Err(BedError)` for out-of-universe events, non-finite or non-positive
//! thresholds (where positivity is required), inverted ranges, and a zero
//! step — cases where the legacy inherent methods variously panicked,
//! saturated, or silently answered. The legacy methods remain (documented
//! saturation semantics, no panics) for callers that want raw `f64`s.
//!
//! ```
//! use bed_core::{BurstDetector, BurstQueries, PbeVariant, QueryRequest, QueryResponse};
//! use bed_stream::{BurstSpan, EventId, Timestamp};
//!
//! let mut det = BurstDetector::builder()
//!     .universe(8)
//!     .variant(PbeVariant::pbe2(1.0))
//!     .build()
//!     .unwrap();
//! for t in 0..100u64 {
//!     det.ingest(EventId(1), Timestamp(t)).unwrap();
//! }
//! det.finalize();
//!
//! let tau = BurstSpan::new(10).unwrap();
//! let resp = det
//!     .query(&QueryRequest::Point { event: EventId(1), t: Timestamp(99), tau })
//!     .unwrap();
//! let QueryResponse::Point { burstiness, .. } = resp else { unreachable!() };
//! assert!(burstiness.abs() < 5.0, "steady stream");
//!
//! // Validation is uniform: out-of-universe events fail, not saturate.
//! assert!(det
//!     .query(&QueryRequest::Point { event: EventId(99), t: Timestamp(0), tau })
//!     .is_err());
//! ```

use bed_hierarchy::{BurstyEventHit, QueryStats};
use bed_obs::MetricsSnapshot;
use bed_stream::{BurstSpan, EventId, StreamError, TimeRange, Timestamp};

use crate::config::DetectorConfig;
use crate::error::BedError;

/// How a bursty-event query walks the universe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QueryStrategy {
    /// Prune dyadic subtrees via the Eq. 6 bound — `O(log K)`-ish probes,
    /// but sign cancellation between siblings can mask a hit (the reported
    /// set is a subset of the exact scan's). Falls back to a scan on
    /// detectors built without the hierarchy.
    #[default]
    Pruned,
    /// Probe every event id — exact with respect to point queries, cost
    /// linear in the universe. Works with or without the hierarchy.
    ExactScan,
}

/// One of the five canonical historical queries. All variants are answered
/// by every [`BurstQueries`] implementor; per-event variants route to the
/// owning shard on a sharded detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryRequest {
    /// POINT QUERY `q(e, t, τ)`: how bursty was `event` at `t`?
    Point {
        /// Event id (must be inside the universe; `0` on single-event
        /// detectors).
        event: EventId,
        /// Query instant.
        t: Timestamp,
        /// Burst span τ.
        tau: BurstSpan,
    },
    /// BURSTY TIME QUERY `q(e, θ, τ)`: when did `event` burst beyond θ?
    BurstyTimes {
        /// Event id.
        event: EventId,
        /// Burstiness threshold (any finite value; negative thresholds
        /// report every candidate knee).
        theta: f64,
        /// Burst span τ.
        tau: BurstSpan,
        /// Inclusive upper bound of the probed time range.
        horizon: Timestamp,
    },
    /// BURSTY EVENT QUERY `q(t, θ, τ)`: which events burst at `t`?
    BurstyEvents {
        /// Query instant.
        t: Timestamp,
        /// Burstiness threshold (must be finite and positive).
        theta: f64,
        /// Burst span τ.
        tau: BurstSpan,
        /// Pruned search or exact scan.
        strategy: QueryStrategy,
    },
    /// Burstiness sampled every `step` ticks over `range` — dashboard data.
    Series {
        /// Event id.
        event: EventId,
        /// Burst span τ.
        tau: BurstSpan,
        /// Sampled time range (inclusive; `start` must not exceed `end`).
        range: TimeRange,
        /// Sampling stride in ticks (must be positive).
        step: u64,
    },
    /// The `k` most bursty instants of one event within `[0, horizon]`.
    TopK {
        /// Event id.
        event: EventId,
        /// Maximum number of instants returned.
        k: usize,
        /// Burst span τ.
        tau: BurstSpan,
        /// Inclusive upper bound of the probed time range.
        horizon: Timestamp,
    },
}

impl QueryRequest {
    /// The kind of this request (drives per-kind metrics).
    pub(crate) fn kind(&self) -> QueryKind {
        match self {
            QueryRequest::Point { .. } => QueryKind::Point,
            QueryRequest::BurstyTimes { .. } => QueryKind::BurstyTimes,
            QueryRequest::BurstyEvents { .. } => QueryKind::BurstyEvents,
            QueryRequest::Series { .. } => QueryKind::Series,
            QueryRequest::TopK { .. } => QueryKind::TopK,
        }
    }
}

/// Internal query-kind tag, used to index per-kind metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueryKind {
    Point,
    BurstyTimes,
    BurstyEvents,
    Series,
    TopK,
}

impl QueryKind {
    pub(crate) const ALL: [QueryKind; 5] = [
        QueryKind::Point,
        QueryKind::BurstyTimes,
        QueryKind::BurstyEvents,
        QueryKind::Series,
        QueryKind::TopK,
    ];

    pub(crate) fn index(self) -> usize {
        self as usize
    }

    pub(crate) fn count_metric(self) -> &'static str {
        match self {
            QueryKind::Point => "query.point.count",
            QueryKind::BurstyTimes => "query.bursty_times.count",
            QueryKind::BurstyEvents => "query.bursty_events.count",
            QueryKind::Series => "query.series.count",
            QueryKind::TopK => "query.top_k.count",
        }
    }

    pub(crate) fn latency_metric(self) -> &'static str {
        match self {
            QueryKind::Point => "query.point.latency_ns",
            QueryKind::BurstyTimes => "query.bursty_times.latency_ns",
            QueryKind::BurstyEvents => "query.bursty_events.latency_ns",
            QueryKind::Series => "query.series.latency_ns",
            QueryKind::TopK => "query.top_k.latency_ns",
        }
    }
}

/// The answer to a [`QueryRequest`], variant-matched to the request.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// Answer to [`QueryRequest::Point`].
    Point {
        /// Estimated burstiness `b̃_e(t)`.
        burstiness: f64,
        /// Estimated incoming rate `b̃f_e(t)`.
        burst_frequency: f64,
        /// Estimated cumulative frequency `F̃_e(t)`.
        cumulative: f64,
        /// Retention tier that served the probe: `Some(0)` for the
        /// full-resolution window, `Some(k)` for a probe whose age falls
        /// in the `k`-th halved tier, `None` when the detector has no
        /// retention policy (unbounded full-resolution history).
        tier: Option<u32>,
    },
    /// Answer to [`QueryRequest::BurstyTimes`]: instants with estimates.
    BurstyTimes(Vec<(Timestamp, f64)>),
    /// Answer to [`QueryRequest::BurstyEvents`]: hits sorted by descending
    /// burstiness (ties by event id), plus probe statistics. The statistics
    /// depend on the physical layout (a sharded detector probes every
    /// shard), so equivalence checks should compare `hits` only.
    BurstyEvents {
        /// Events whose estimated burstiness reaches θ.
        hits: Vec<BurstyEventHit>,
        /// Probe counts of the search.
        stats: QueryStats,
    },
    /// Answer to [`QueryRequest::Series`]: `(t, b̃(t))` samples.
    Series(Vec<(Timestamp, f64)>),
    /// Answer to [`QueryRequest::TopK`]: instants by descending burstiness.
    TopK(Vec<(Timestamp, f64)>),
}

impl QueryResponse {
    /// The bursty-event hits, if this is a [`QueryResponse::BurstyEvents`].
    pub fn hits(&self) -> Option<&[BurstyEventHit]> {
        match self {
            QueryResponse::BurstyEvents { hits, .. } => Some(hits),
            _ => None,
        }
    }

    /// The `(t, value)` samples of a time-valued response
    /// ([`QueryResponse::BurstyTimes`], [`QueryResponse::Series`], or
    /// [`QueryResponse::TopK`]).
    pub fn samples(&self) -> Option<&[(Timestamp, f64)]> {
        match self {
            QueryResponse::BurstyTimes(v) | QueryResponse::Series(v) | QueryResponse::TopK(v) => {
                Some(v)
            }
            _ => None,
        }
    }

    /// The point burstiness, if this is a [`QueryResponse::Point`].
    pub fn burstiness(&self) -> Option<f64> {
        match self {
            QueryResponse::Point { burstiness, .. } => Some(*burstiness),
            _ => None,
        }
    }
}

/// The canonical query interface shared by [`crate::BurstDetector`] and
/// [`crate::ShardedDetector`] (object-safe: front-ends can hold a
/// `&dyn BurstQueries`).
///
/// Contract:
/// * `query` returns the [`QueryResponse`] variant matching the request, or
///   an error — it never panics on any input.
/// * Validation is uniform across implementors: an event id outside the
///   universe is [`StreamError::EventOutOfUniverse`] (single-event detectors
///   expose their stream as event `0` in a universe of 1), a non-finite θ —
///   or a non-positive one where positivity is required — is
///   [`StreamError::InvalidProbability`], an inverted series range is
///   [`StreamError::InvertedRange`], and a zero series step is
///   [`StreamError::BudgetTooSmall`].
/// * Answers to per-event requests are identical between a sharded detector
///   and an equally-configured unsharded one (bit-for-bit in the
///   direct-indexed regime); `BurstyEvents` answers are set-equal under
///   [`QueryStrategy::ExactScan`] (see the pruning caveat in
///   [`crate::shard`]).
pub trait BurstQueries {
    /// Answers one canonical query.
    fn query(&self, request: &QueryRequest) -> Result<QueryResponse, BedError>;

    /// Answers one canonical query, reusing the caller's
    /// [`QueryScratch`](bed_sketch::QueryScratch) for the kernels' working
    /// memory. Identical results to [`query`](BurstQueries::query) — a warm
    /// scratch only removes the per-query allocations on the batched
    /// bursty-event and bursty-time paths. The default ignores the scratch.
    fn query_reusing(
        &self,
        request: &QueryRequest,
        scratch: &mut bed_sketch::QueryScratch,
    ) -> Result<QueryResponse, BedError> {
        let _ = scratch;
        self.query(request)
    }

    /// Elements ingested so far.
    fn arrivals(&self) -> u64;

    /// Current summary size in bytes.
    fn size_bytes(&self) -> usize;

    /// The configuration in force (per shard, on a sharded detector).
    fn config(&self) -> &DetectorConfig;

    /// Captures runtime counters, latency histograms, and structural gauges
    /// (see the crate docs for the metric name schema).
    fn metrics(&self) -> MetricsSnapshot;
}

/// θ must be finite (NaN/∞ poison comparisons silently).
pub(crate) fn check_theta_finite(theta: f64) -> Result<(), BedError> {
    if theta.is_finite() {
        Ok(())
    } else {
        Err(StreamError::InvalidProbability { parameter: "theta", got: theta }.into())
    }
}

/// θ must be finite and positive (the dyadic pruning bound compares squares,
/// so a non-positive threshold is meaningless).
pub(crate) fn check_theta_positive(theta: f64) -> Result<(), BedError> {
    // NaN must fail too, so the negated comparison is deliberate.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(theta > 0.0) || theta.is_infinite() {
        return Err(StreamError::InvalidProbability { parameter: "theta", got: theta }.into());
    }
    Ok(())
}

/// A series step of zero would loop forever.
pub(crate) fn check_step(step: u64) -> Result<(), BedError> {
    if step == 0 {
        return Err(StreamError::BudgetTooSmall { parameter: "step", got: 0, min: 1 }.into());
    }
    Ok(())
}

/// A series range must not be inverted.
pub(crate) fn check_range(range: TimeRange) -> Result<(), BedError> {
    if range.start > range.end {
        return Err(StreamError::InvertedRange { start: range.start, end: range.end }.into());
    }
    Ok(())
}

/// Canonical hit order: descending burstiness, ties by ascending event id —
/// the same order a sharded fan-out merge produces, so responses compare
/// equal across layouts.
pub(crate) fn sort_hits(hits: &mut [BurstyEventHit]) {
    hits.sort_by(|a, b| {
        b.burstiness
            .partial_cmp(&a.burstiness)
            .expect("estimates are finite")
            .then(a.event.cmp(&b.event))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_validation() {
        assert!(check_theta_finite(-5.0).is_ok());
        assert!(check_theta_finite(f64::NAN).is_err());
        assert!(check_theta_finite(f64::INFINITY).is_err());
        assert!(check_theta_positive(1e-9).is_ok());
        assert!(check_theta_positive(0.0).is_err());
        assert!(check_theta_positive(-1.0).is_err());
        assert!(check_theta_positive(f64::NAN).is_err());
        assert!(check_theta_positive(f64::INFINITY).is_err());
    }

    #[test]
    fn step_and_range_validation() {
        assert!(check_step(1).is_ok());
        assert!(check_step(0).is_err());
        assert!(check_range(TimeRange { start: Timestamp(1), end: Timestamp(1) }).is_ok());
        assert!(check_range(TimeRange { start: Timestamp(2), end: Timestamp(1) }).is_err());
    }

    #[test]
    fn sort_hits_is_canonical() {
        let mut hits = vec![
            BurstyEventHit { event: EventId(3), burstiness: 1.0 },
            BurstyEventHit { event: EventId(1), burstiness: 2.0 },
            BurstyEventHit { event: EventId(2), burstiness: 2.0 },
        ];
        sort_hits(&mut hits);
        let order: Vec<u32> = hits.iter().map(|h| h.event.value()).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn response_accessors() {
        let r = QueryResponse::Point {
            burstiness: 1.0,
            burst_frequency: 2.0,
            cumulative: 3.0,
            tier: None,
        };
        assert_eq!(r.burstiness(), Some(1.0));
        assert!(r.hits().is_none());
        assert!(r.samples().is_none());
        let r = QueryResponse::Series(vec![(Timestamp(0), 0.5)]);
        assert_eq!(r.samples().map(<[_]>::len), Some(1));
        let r = QueryResponse::BurstyEvents { hits: Vec::new(), stats: QueryStats::default() };
        assert_eq!(r.hits().map(<[_]>::len), Some(0));
    }
}
