//! Current-burst monitoring on top of the historical detector.
//!
//! The paper positions historical queries against the prior art's
//! *real-time* burst detection (\[6\], \[7\], \[3\] in its related work) and
//! notes both are wanted in practice. Since the persistent sketch always
//! knows `F̃_e` up to the latest ingested instant, "what is bursting right
//! now?" is just a bursty-event query at the stream head — this module
//! packages that as a [`BurstMonitor`] with top-k reporting, so one
//! structure serves both the live dashboard and the historian.

use std::cell::RefCell;

use bed_hierarchy::BurstyEventHit;
use bed_sketch::QueryScratch;
use bed_stream::{BurstSpan, Timestamp};

use crate::detector::BurstDetector;
use crate::error::BedError;
use crate::observe::Traceable;
use crate::pipeline::EventSink;
use crate::query::{BurstQueries, QueryRequest, QueryResponse, QueryStrategy};

/// Live view over a [`BurstDetector`] — or any backend implementing
/// [`BurstQueries`] + [`EventSink`], e.g. a [`crate::ShardedDetector`] —
/// tracking the stream head and answering "now" queries.
///
/// ```
/// use bed_core::monitor::BurstMonitor;
/// use bed_core::{BurstDetector, PbeVariant};
/// use bed_stream::{BurstSpan, EventId, Timestamp};
///
/// let detector = BurstDetector::builder()
///     .universe(16)
///     .variant(PbeVariant::pbe2(1.0))
///     .build()
///     .unwrap();
/// let mut mon = BurstMonitor::new(detector, BurstSpan::new(20).unwrap());
///
/// for t in 0..100u64 {
///     mon.ingest(EventId(1), Timestamp(t)).unwrap();
///     if t >= 80 {
///         for _ in 0..5 {
///             mon.ingest(EventId(9), Timestamp(t)).unwrap();
///         }
///     }
/// }
/// let top = mon.top_k_now(3, 1.0).unwrap();
/// assert_eq!(top[0].event, EventId(9));
/// ```
#[derive(Debug, Clone)]
pub struct BurstMonitor<D = BurstDetector> {
    detector: D,
    tau: BurstSpan,
    now: Option<Timestamp>,
    /// Working memory for the repeated "now" queries — a monitor issues the
    /// same bursty-event scan every refresh, so one warm scratch keeps the
    /// steady state allocation-free. Interior mutability keeps the query
    /// surface `&self`.
    scratch: RefCell<QueryScratch>,
}

impl<D: Traceable> Traceable for BurstMonitor<D> {
    fn set_tracer(&mut self, tracer: std::sync::Arc<bed_obs::Tracer>) {
        self.detector.set_tracer(tracer);
    }

    fn tracer(&self) -> &std::sync::Arc<bed_obs::Tracer> {
        self.detector.tracer()
    }
}

impl<D: BurstQueries + EventSink> BurstMonitor<D> {
    /// Wraps a (mixed-stream) detector with a monitoring burst span.
    pub fn new(detector: D, tau: BurstSpan) -> Self {
        BurstMonitor { detector, tau, now: None, scratch: RefCell::new(QueryScratch::new()) }
    }

    /// Ingests one arrival and advances the stream head.
    pub fn ingest(&mut self, event: bed_stream::EventId, ts: Timestamp) -> Result<(), BedError> {
        self.detector.ingest(event, ts)?;
        self.now = Some(self.now.map_or(ts, |n| n.max(ts)));
        Ok(())
    }

    /// The latest ingested instant.
    pub fn now(&self) -> Option<Timestamp> {
        self.now
    }

    /// The wrapped detector (all historical queries remain available).
    pub fn detector(&self) -> &D {
        &self.detector
    }

    /// Consumes the monitor, returning the detector.
    pub fn into_detector(mut self) -> D {
        self.detector.finalize();
        self.detector
    }

    /// Currently bursting events (estimated `b̃_e(now) ≥ θ`), most bursty
    /// first — a [`QueryRequest::BurstyEvents`] at the stream head.
    pub fn bursting_now(&self, theta: f64) -> Result<Vec<BurstyEventHit>, BedError> {
        let Some(now) = self.now else {
            return Ok(Vec::new());
        };
        let request = QueryRequest::BurstyEvents {
            t: now,
            theta,
            tau: self.tau,
            strategy: QueryStrategy::Pruned,
        };
        let response = self.detector.query_reusing(&request, &mut self.scratch.borrow_mut())?;
        // Hits arrive in the canonical descending-burstiness order.
        let QueryResponse::BurstyEvents { hits, .. } = response else {
            return Ok(Vec::new());
        };
        Ok(hits)
    }

    /// The k most bursty events right now (θ filters the candidate set; use
    /// a small positive θ to let the pruned search skip quiet subtrees).
    pub fn top_k_now(&self, k: usize, theta: f64) -> Result<Vec<BurstyEventHit>, BedError> {
        let mut hits = self.bursting_now(theta)?;
        hits.truncate(k);
        Ok(hits)
    }
}

impl<D: BurstQueries + EventSink + Clone> BurstMonitor<D> {
    /// Publishes a finalized clone of the wrapped detector into `cell`, so
    /// dashboard readers answer "now" queries from an immutable snapshot
    /// without ever blocking the monitor's ingest (see [`crate::epoch`]).
    /// Returns the published generation.
    pub fn publish_epoch(&self, cell: &crate::epoch::SnapshotCell<D>) -> u64 {
        let mut clone = self.detector.clone();
        clone.finalize();
        let watermark =
            crate::Watermark { arrivals: BurstQueries::arrivals(&clone), last_ts: self.now };
        cell.publish(watermark, std::sync::Arc::new(clone))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PbeVariant;
    use bed_stream::EventId;

    #[test]
    fn sharded_backend_behind_the_same_monitor() {
        let det = crate::ShardedDetector::builder(3)
            .universe(32)
            .variant(PbeVariant::pbe2(1.0))
            .accuracy(0.005, 0.05)
            .seed(3)
            .build()
            .unwrap();
        let mut mon = BurstMonitor::new(det, BurstSpan::new(25).unwrap());
        for t in 0..200u64 {
            mon.ingest(EventId(0), Timestamp(t)).unwrap();
            if t >= 175 {
                for _ in 0..8 {
                    mon.ingest(EventId(6), Timestamp(t)).unwrap();
                }
            }
        }
        let top = mon.top_k_now(1, 5.0).unwrap();
        assert_eq!(top[0].event, EventId(6));
    }

    fn monitor() -> BurstMonitor {
        let det = BurstDetector::builder()
            .universe(32)
            .variant(PbeVariant::pbe2(1.0))
            .accuracy(0.005, 0.05)
            .seed(3)
            .build()
            .unwrap();
        BurstMonitor::new(det, BurstSpan::new(25).unwrap())
    }

    #[test]
    fn empty_monitor_reports_nothing() {
        let mon = monitor();
        assert_eq!(mon.now(), None);
        assert!(mon.bursting_now(1.0).unwrap().is_empty());
    }

    #[test]
    fn ranks_simultaneous_bursts() {
        let mut mon = monitor();
        for t in 0..200u64 {
            mon.ingest(EventId(0), Timestamp(t)).unwrap();
            if t >= 175 {
                for _ in 0..3 {
                    mon.ingest(EventId(5), Timestamp(t)).unwrap();
                }
                for _ in 0..8 {
                    mon.ingest(EventId(6), Timestamp(t)).unwrap();
                }
            }
        }
        assert_eq!(mon.now(), Some(Timestamp(199)));
        let top = mon.top_k_now(2, 5.0).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].event, EventId(6), "{top:?}");
        assert_eq!(top[1].event, EventId(5));
        assert!(top[0].burstiness > top[1].burstiness);
    }

    #[test]
    fn monitor_publishes_epochs_for_wait_free_readers() {
        let mut mon = monitor();
        let cell = crate::epoch::SnapshotCell::new();
        let mut reader = crate::epoch::EpochReader::new();
        assert_eq!(mon.publish_epoch(&cell), 1);
        for t in 0..200u64 {
            mon.ingest(EventId(0), Timestamp(t)).unwrap();
            if t >= 175 {
                for _ in 0..8 {
                    mon.ingest(EventId(6), Timestamp(t)).unwrap();
                }
            }
        }
        assert_eq!(mon.publish_epoch(&cell), 2);
        assert!(reader.refresh(&cell));
        let epoch = reader.current().unwrap();
        assert_eq!(epoch.watermark.arrivals, 400);
        assert_eq!(epoch.watermark.last_ts, Some(Timestamp(199)));
        // The published snapshot answers the same "now" question without
        // touching the (still-live) monitor.
        let tau = BurstSpan::new(25).unwrap();
        assert!(epoch.data.point_query(EventId(6), Timestamp(199), tau) > 5.0);
        // Publishing never finalized the live detector: ingest continues.
        mon.ingest(EventId(0), Timestamp(200)).unwrap();
    }

    #[test]
    fn history_remains_queryable_alongside_now() {
        let mut mon = monitor();
        // burst early, quiet later
        for t in 0..300u64 {
            mon.ingest(EventId(1), Timestamp(t)).unwrap();
            if (50..70).contains(&t) {
                for _ in 0..6 {
                    mon.ingest(EventId(2), Timestamp(t)).unwrap();
                }
            }
        }
        // now: nothing bursts
        assert!(mon.bursting_now(30.0).unwrap().is_empty());
        // history: the old burst is still there
        let tau = BurstSpan::new(25).unwrap();
        let det = mon.detector();
        assert!(det.point_query(EventId(2), Timestamp(69), tau) > 30.0);
    }
}
