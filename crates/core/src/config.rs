//! Detector configuration.

use bed_pbe::{Pbe1, Pbe1Config, Pbe2, Pbe2Config};
use bed_sketch::{RetentionPolicy, SketchParams};
use bed_stream::StreamError;

use crate::cell::PbeCell;

/// Which persistent burstiness estimator backs each cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PbeVariant {
    /// PBE-1: buffered optimal staircase; `η` points kept per `n_buf`-point
    /// buffer (Fig. 8's knobs).
    Pbe1 {
        /// Buffer capacity in staircase corner points.
        n_buf: usize,
        /// Points retained per buffer.
        eta: usize,
    },
    /// PBE-2: online PLA with pointwise error `γ` (Fig. 9's knob).
    Pbe2 {
        /// Maximum deviation at constraint points.
        gamma: f64,
        /// Vertex cap of the live polygon.
        max_vertices: usize,
    },
}

impl PbeVariant {
    /// PBE-1 with the paper's default buffer size (n = 1,500).
    pub fn pbe1(eta: usize) -> Self {
        PbeVariant::Pbe1 { n_buf: 1_500, eta }
    }

    /// PBE-2 with the default vertex cap.
    pub fn pbe2(gamma: f64) -> Self {
        PbeVariant::Pbe2 { gamma, max_vertices: 64 }
    }

    /// Validates the variant parameters.
    pub fn validate(&self) -> Result<(), StreamError> {
        match *self {
            PbeVariant::Pbe1 { n_buf, eta } => Pbe1Config { n_buf, eta }.validate(),
            PbeVariant::Pbe2 { gamma, max_vertices } => {
                Pbe2Config { gamma, max_vertices }.validate()
            }
        }
    }

    /// Builds one cell of this variant (panics on invalid config; the
    /// builder validates first).
    pub(crate) fn make_cell(&self) -> PbeCell {
        match *self {
            PbeVariant::Pbe1 { n_buf, eta } => {
                PbeCell::One(Pbe1::new(Pbe1Config { n_buf, eta }).expect("validated"))
            }
            PbeVariant::Pbe2 { gamma, max_vertices } => {
                PbeCell::Two(Pbe2::new(Pbe2Config { gamma, max_vertices }).expect("validated"))
            }
        }
    }
}

/// Full configuration of a [`crate::BurstDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Cell variant.
    pub variant: PbeVariant,
    /// Count-Min accuracy (ignored in single-event mode).
    pub sketch: SketchParams,
    /// Event universe size K for mixed streams; `None` = single-event mode
    /// (one PBE, no hashing).
    pub universe: Option<u32>,
    /// Maintain the dyadic hierarchy for bursty event queries. Costs
    /// `O(log K)` extra CM-PBEs; required by
    /// [`crate::BurstDetector::bursty_events_with`] under
    /// [`crate::QueryStrategy::Pruned`].
    pub hierarchical: bool,
    /// Seed for all hash functions.
    pub seed: u64,
    /// Collect runtime metrics (counters, latency histograms; see
    /// [`crate::BurstDetector::metrics`]). On by default — the hot-path cost
    /// is one relaxed atomic add per ingest plus a sampled timer — and
    /// runtime-only: the flag is not persisted by the codec, so a decoded
    /// detector always starts with metrics on.
    pub metrics: bool,
    /// Tiered retention policy (`None` = unbounded full-resolution
    /// history). When set, the detector folds live PBE state into frozen
    /// Hokusai-style tiers every `compact_every` arrivals, bounding memory
    /// to `O(budget · log₂ horizon)` knees per cell. Shapes the summary,
    /// so it is persisted, diffed, and checked on restore.
    pub retention: Option<RetentionPolicy>,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            variant: PbeVariant::pbe2(8.0),
            sketch: SketchParams::PAPER,
            universe: None,
            hierarchical: true,
            seed: 0xBED,
            metrics: true,
            retention: None,
        }
    }
}

/// Maps the sketch-layer policy invariants onto [`StreamError`] for the
/// builder/`from_config` validation path.
pub(crate) fn validate_retention(p: &RetentionPolicy) -> Result<(), StreamError> {
    for (parameter, got) in [
        ("retention window", p.window),
        ("retention budget", u64::from(p.budget)),
        ("retention compact cadence", p.compact_every),
    ] {
        if got == 0 {
            return Err(StreamError::BudgetTooSmall { parameter, got: 0, min: 1 });
        }
    }
    Ok(())
}

impl DetectorConfig {
    /// Structural equality for persistence purposes: every field that
    /// shapes the summary (the runtime-only `metrics` flag is ignored).
    pub fn same_shape(&self, other: &DetectorConfig) -> bool {
        self.variant == other.variant
            && self.sketch == other.sketch
            && self.universe == other.universe
            && self.hierarchical == other.hierarchical
            && self.seed == other.seed
            && self.retention == other.retention
    }

    /// Human-readable diff of the persistence-relevant fields, one
    /// `field: self vs other` clause per mismatch; `None` when the shapes
    /// match. Powers the `bed restore` config-mismatch error, so a user
    /// sees *which* knob diverged instead of a mixed-state detector.
    pub fn diff(&self, other: &DetectorConfig) -> Option<String> {
        let mut clauses = Vec::new();
        if self.variant != other.variant {
            clauses.push(format!("variant: {:?} vs {:?}", self.variant, other.variant));
        }
        if self.sketch.epsilon != other.sketch.epsilon {
            clauses.push(format!("epsilon: {} vs {}", self.sketch.epsilon, other.sketch.epsilon));
        }
        if self.sketch.delta != other.sketch.delta {
            clauses.push(format!("delta: {} vs {}", self.sketch.delta, other.sketch.delta));
        }
        if self.universe != other.universe {
            clauses.push(format!("universe: {:?} vs {:?}", self.universe, other.universe));
        }
        if self.hierarchical != other.hierarchical {
            clauses.push(format!("hierarchical: {} vs {}", self.hierarchical, other.hierarchical));
        }
        if self.seed != other.seed {
            clauses.push(format!("seed: {} vs {}", self.seed, other.seed));
        }
        if self.retention != other.retention {
            let fmt = |r: &Option<RetentionPolicy>| match r {
                Some(p) => p.to_string(),
                None => "none".to_string(),
            };
            clauses.push(format!(
                "retention: {} vs {}",
                fmt(&self.retention),
                fmt(&other.retention)
            ));
        }
        if clauses.is_empty() {
            None
        } else {
            Some(clauses.join("; "))
        }
    }
}

/// Persistence of the summary-shaping configuration. The field order is
/// exactly the `BEDD` v1 header layout (variant, ε, δ, universe,
/// hierarchy, seed, retention), so [`crate::BurstDetector`]'s codec and
/// the WAL header share one definition and stay byte-compatible. The
/// runtime-only `metrics` flag is not persisted; decoded configs default
/// it on.
impl bed_stream::Codec for DetectorConfig {
    fn encode(&self, w: &mut bed_stream::codec::Writer) {
        self.variant.encode(w);
        w.f64(self.sketch.epsilon);
        w.f64(self.sketch.delta);
        match self.universe {
            Some(k) => {
                w.u8(1);
                w.u32(k);
            }
            None => w.u8(0),
        }
        w.u8(u8::from(self.hierarchical));
        w.u64(self.seed);
        match &self.retention {
            Some(p) => {
                w.u8(1);
                p.encode(w);
            }
            None => w.u8(0),
        }
    }

    fn decode(r: &mut bed_stream::codec::Reader<'_>) -> Result<Self, bed_stream::CodecError> {
        use bed_stream::CodecError;
        let variant = PbeVariant::decode(r)?;
        let sketch =
            SketchParams { epsilon: r.f64("config epsilon")?, delta: r.f64("config delta")? };
        sketch.validate().map_err(|_| CodecError::Invalid { context: "sketch params" })?;
        let universe = match r.u8("config universe flag")? {
            0 => None,
            1 => Some(r.u32("config universe")?),
            _ => return Err(CodecError::Invalid { context: "config universe flag" }),
        };
        let hierarchical = match r.u8("config hierarchy flag")? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::Invalid { context: "config hierarchy flag" }),
        };
        let seed = r.u64("config seed")?;
        let retention = match r.u8("config retention flag")? {
            0 => None,
            1 => Some(RetentionPolicy::decode(r)?),
            _ => return Err(CodecError::Invalid { context: "config retention flag" }),
        };
        Ok(DetectorConfig {
            variant,
            sketch,
            universe,
            hierarchical,
            seed,
            metrics: true,
            retention,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_validation() {
        assert!(PbeVariant::pbe1(2).validate().is_ok());
        assert!(PbeVariant::Pbe1 { n_buf: 4, eta: 8 }.validate().is_err());
        assert!(PbeVariant::pbe2(1.0).validate().is_ok());
        assert!(PbeVariant::pbe2(0.0).validate().is_err());
    }

    #[test]
    fn make_cell_matches_variant() {
        assert!(matches!(PbeVariant::pbe1(8).make_cell(), PbeCell::One(_)));
        assert!(matches!(PbeVariant::pbe2(2.0).make_cell(), PbeCell::Two(_)));
    }

    #[test]
    fn default_config_is_valid() {
        let c = DetectorConfig::default();
        assert!(c.variant.validate().is_ok());
        assert!(c.sketch.validate().is_ok());
        assert!(c.hierarchical);
    }
}
