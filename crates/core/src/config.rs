//! Detector configuration.

use bed_pbe::{Pbe1, Pbe1Config, Pbe2, Pbe2Config};
use bed_sketch::SketchParams;
use bed_stream::StreamError;

use crate::cell::PbeCell;

/// Which persistent burstiness estimator backs each cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PbeVariant {
    /// PBE-1: buffered optimal staircase; `η` points kept per `n_buf`-point
    /// buffer (Fig. 8's knobs).
    Pbe1 {
        /// Buffer capacity in staircase corner points.
        n_buf: usize,
        /// Points retained per buffer.
        eta: usize,
    },
    /// PBE-2: online PLA with pointwise error `γ` (Fig. 9's knob).
    Pbe2 {
        /// Maximum deviation at constraint points.
        gamma: f64,
        /// Vertex cap of the live polygon.
        max_vertices: usize,
    },
}

impl PbeVariant {
    /// PBE-1 with the paper's default buffer size (n = 1,500).
    pub fn pbe1(eta: usize) -> Self {
        PbeVariant::Pbe1 { n_buf: 1_500, eta }
    }

    /// PBE-2 with the default vertex cap.
    pub fn pbe2(gamma: f64) -> Self {
        PbeVariant::Pbe2 { gamma, max_vertices: 64 }
    }

    /// Validates the variant parameters.
    pub fn validate(&self) -> Result<(), StreamError> {
        match *self {
            PbeVariant::Pbe1 { n_buf, eta } => Pbe1Config { n_buf, eta }.validate(),
            PbeVariant::Pbe2 { gamma, max_vertices } => {
                Pbe2Config { gamma, max_vertices }.validate()
            }
        }
    }

    /// Builds one cell of this variant (panics on invalid config; the
    /// builder validates first).
    pub(crate) fn make_cell(&self) -> PbeCell {
        match *self {
            PbeVariant::Pbe1 { n_buf, eta } => {
                PbeCell::One(Pbe1::new(Pbe1Config { n_buf, eta }).expect("validated"))
            }
            PbeVariant::Pbe2 { gamma, max_vertices } => {
                PbeCell::Two(Pbe2::new(Pbe2Config { gamma, max_vertices }).expect("validated"))
            }
        }
    }
}

/// Full configuration of a [`crate::BurstDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Cell variant.
    pub variant: PbeVariant,
    /// Count-Min accuracy (ignored in single-event mode).
    pub sketch: SketchParams,
    /// Event universe size K for mixed streams; `None` = single-event mode
    /// (one PBE, no hashing).
    pub universe: Option<u32>,
    /// Maintain the dyadic hierarchy for bursty event queries. Costs
    /// `O(log K)` extra CM-PBEs; required by
    /// [`crate::BurstDetector::bursty_events_with`] under
    /// [`crate::QueryStrategy::Pruned`].
    pub hierarchical: bool,
    /// Seed for all hash functions.
    pub seed: u64,
    /// Collect runtime metrics (counters, latency histograms; see
    /// [`crate::BurstDetector::metrics`]). On by default — the hot-path cost
    /// is one relaxed atomic add per ingest plus a sampled timer — and
    /// runtime-only: the flag is not persisted by the codec, so a decoded
    /// detector always starts with metrics on.
    pub metrics: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            variant: PbeVariant::pbe2(8.0),
            sketch: SketchParams::PAPER,
            universe: None,
            hierarchical: true,
            seed: 0xBED,
            metrics: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_validation() {
        assert!(PbeVariant::pbe1(2).validate().is_ok());
        assert!(PbeVariant::Pbe1 { n_buf: 4, eta: 8 }.validate().is_err());
        assert!(PbeVariant::pbe2(1.0).validate().is_ok());
        assert!(PbeVariant::pbe2(0.0).validate().is_err());
    }

    #[test]
    fn make_cell_matches_variant() {
        assert!(matches!(PbeVariant::pbe1(8).make_cell(), PbeCell::One(_)));
        assert!(matches!(PbeVariant::pbe2(2.0).make_cell(), PbeCell::Two(_)));
    }

    #[test]
    fn default_config_is_valid() {
        let c = DetectorConfig::default();
        assert!(c.variant.validate().is_ok());
        assert!(c.sketch.validate().is_ok());
        assert!(c.hierarchical);
    }
}
