//! Tracer wiring across the detector stack.
//!
//! Every component on the request path — detectors, the sharded facade,
//! the monitor, the pipeline, the WAL sink, the checkpointer — holds an
//! `Arc<Tracer>` that defaults to [`Tracer::disabled`] (one relaxed load
//! per would-be span, zero allocation). [`Traceable`] is the uniform
//! installation surface: hand one enabled tracer to the outermost
//! component and it propagates to whatever it wraps.
//!
//! Span taxonomy (names live in `bed-obs`'s closed table):
//!
//! - roots `query.{point,bursty_times,bursty_events,series,top_k}` with
//!   children `stage.cell_probe`, `stage.median_combine`,
//!   `stage.hierarchy_prune`, and (sharded) `shard.fan_out`;
//! - sampled roots `pipeline.flush` and `wal.append`;
//! - unsampled roots `checkpoint.save` / `checkpoint.recover` (rare and
//!   heavyweight, so the sampler is bypassed).
//!
//! On a sharded detector the tracer is installed at the **facade only**:
//! shard-local detectors keep disabled tracers so one request never starts
//! competing root spans. The facade arms the `QueryScratch` stage clocks
//! and harvests them into child spans regardless of which shard ran the
//! kernels.

use std::fmt::Write as _;
use std::sync::Arc;

use bed_obs::{SpanName, Tracer};

use crate::query::{QueryKind, QueryRequest};

/// A component that carries a [`Tracer`] and can have one installed.
///
/// Installation is by `Arc`, so one tracer can serve a whole stack and a
/// scrape endpoint can read its ring/slow-log while requests run.
pub trait Traceable {
    /// Installs `tracer`; replaces the (initially disabled) current one.
    fn set_tracer(&mut self, tracer: Arc<Tracer>);
    /// The currently installed tracer.
    fn tracer(&self) -> &Arc<Tracer>;
}

/// Root span name for a query of `kind`.
pub(crate) fn span_for(kind: QueryKind) -> SpanName {
    match kind {
        QueryKind::Point => SpanName::QUERY_POINT,
        QueryKind::BurstyTimes => SpanName::QUERY_BURSTY_TIMES,
        QueryKind::BurstyEvents => SpanName::QUERY_BURSTY_EVENTS,
        QueryKind::Series => SpanName::QUERY_SERIES,
        QueryKind::TopK => SpanName::QUERY_TOP_K,
    }
}

/// Renders a request's parameters for the slow-query log. Only called when
/// a traced query crosses the slow threshold — never on the fast path.
pub(crate) fn request_params(request: &QueryRequest) -> String {
    let mut s = String::with_capacity(96);
    match request {
        QueryRequest::Point { event, t, tau } => {
            let _ = write!(s, "point event={} t={} tau={}", event.0, t.ticks(), tau.ticks());
        }
        QueryRequest::BurstyTimes { event, theta, tau, horizon } => {
            let _ = write!(
                s,
                "bursty_times event={} theta={theta} tau={} horizon={}",
                event.0,
                tau.ticks(),
                horizon.ticks()
            );
        }
        QueryRequest::BurstyEvents { t, theta, tau, strategy } => {
            let _ = write!(
                s,
                "bursty_events t={} theta={theta} tau={} strategy={strategy:?}",
                t.ticks(),
                tau.ticks()
            );
        }
        QueryRequest::Series { event, tau, range, step } => {
            let _ = write!(
                s,
                "series event={} tau={} range=[{},{}] step={step}",
                event.0,
                tau.ticks(),
                range.start.ticks(),
                range.end.ticks()
            );
        }
        QueryRequest::TopK { event, k, tau, horizon } => {
            let _ = write!(
                s,
                "top_k event={} k={k} tau={} horizon={}",
                event.0,
                tau.ticks(),
                horizon.ticks()
            );
        }
    }
    s
}

/// Harvests the stage clocks accumulated in `scratch` into child spans of
/// `trace`, then finishes the root. Shared by the plain and sharded query
/// paths.
pub(crate) fn finish_query_trace(
    trace: bed_obs::ActiveTrace<'_>,
    scratch: &bed_sketch::QueryScratch,
    request: &QueryRequest,
) {
    let mut trace = trace;
    let stages = &scratch.stages;
    if stages.cell_probe_ns > 0 {
        trace.child_ns(SpanName::STAGE_CELL_PROBE, stages.cell_probe_ns);
    }
    if stages.median_combine_ns > 0 {
        trace.child_ns(SpanName::STAGE_MEDIAN_COMBINE, stages.median_combine_ns);
    }
    if stages.hierarchy_prune_ns > 0 {
        trace.child_ns(SpanName::STAGE_HIERARCHY_PRUNE, stages.hierarchy_prune_ns);
    }
    trace.finish(|| request_params(request));
}

#[cfg(test)]
mod tests {
    use super::*;
    use bed_stream::{BurstSpan, EventId, Timestamp};

    #[test]
    fn params_render_every_kind() {
        let tau = BurstSpan::new(10).unwrap();
        let reqs = [
            QueryRequest::Point { event: EventId(1), t: Timestamp(5), tau },
            QueryRequest::BurstyTimes {
                event: EventId(2),
                theta: 1.5,
                tau,
                horizon: Timestamp(99),
            },
            QueryRequest::BurstyEvents {
                t: Timestamp(5),
                theta: 2.0,
                tau,
                strategy: crate::QueryStrategy::Pruned,
            },
        ];
        let rendered: Vec<String> = reqs.iter().map(request_params).collect();
        assert!(rendered[0].starts_with("point event=1 t=5 tau=10"));
        assert!(rendered[1].contains("theta=1.5"));
        assert!(rendered[2].contains("strategy=Pruned"));
    }
}
