//! Hash-sharded parallel ingestion: N independent [`BurstDetector`]s
//! behind one facade.
//!
//! The single-detector ingest path (`BurstDetector::ingest` →
//! `CmPbe::update` → d row cells) is inherently serial, so throughput is
//! capped at one core no matter how wide the sketch is. Because every
//! query the paper defines is *per event* (point, bursty-time) or a union
//! of per-event answers (bursty-event), the event-id universe can be
//! partitioned across detectors without touching any estimate: each
//! `EventId` is owned by exactly one shard, that shard sees exactly the
//! owned events' substream, and a substream restricted to one event is
//! identical whether or not the rest of the stream was split away.
//! Collisions inside a shard's Count-Min rows can only *decrease*
//! (fewer distinct ids hash into the same width), so the per-event error
//! guarantees of Lemmas 3–5 are preserved shard-locally and therefore
//! globally.
//!
//! One caveat is inherited rather than introduced: the pruned dyadic
//! bursty-event search ([`QueryStrategy::Pruned`]) skips a subtree when
//! the Eq. 6 bound says no descendant can reach θ, and sign cancellation
//! between siblings can mask a bursting event. Each shard prunes over
//! *its own* forest, so the pruned hit set of a sharded detector may
//! differ from the unsharded one's (both are subsets of the exact scan
//! answer, and every reported hit is a true point-query hit).
//! [`QueryStrategy::ExactScan`] is exact with respect to point queries
//! and matches the unsharded scan set for set.

use bed_hierarchy::{BurstyEventHit, QueryStats};
use bed_obs::{MetricsSnapshot, SpanName, Tracer};
use bed_stream::{BurstSpan, EventId, StreamError, TimeRange, Timestamp};

use crate::config::DetectorConfig;
use crate::detector::BurstDetector;
use crate::error::BedError;
use crate::metrics::ShardMetrics;
use crate::observe::Traceable;
use crate::query::{BurstQueries, QueryRequest, QueryResponse, QueryStrategy};

/// Batches below this size are ingested inline: spawning scoped threads
/// costs more than a few thousand sketch updates.
const PARALLEL_MIN_BATCH: usize = 1024;

/// SplitMix64 finaliser — a full-avalanche mix so consecutive event ids
/// spread evenly across shards regardless of the shard count.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard owning `event` among `n` shards. Shared with the epoch read
/// path ([`crate::epoch`]), which must route per-event queries to the same
/// cell the writer publishes that shard into.
#[inline]
pub(crate) fn route(event: EventId, n: usize) -> usize {
    (mix(event.value() as u64) % n as u64) as usize
}

/// Canonical cross-shard hit merge: dedup by event (keeping the larger
/// estimate), then order by descending burstiness with event id as the
/// tiebreak. Shared by the live fan-out below and the epoch fan-out in
/// [`crate::epoch`] so both layouts produce identical answer ordering.
pub(crate) fn merge_hits(merged: &mut Vec<BurstyEventHit>) {
    merged.sort_by(|a, b| {
        a.event
            .cmp(&b.event)
            .then(b.burstiness.partial_cmp(&a.burstiness).expect("finite estimates"))
    });
    merged.dedup_by_key(|h| h.event);
    merged.sort_by(|a, b| {
        b.burstiness
            .partial_cmp(&a.burstiness)
            .expect("finite estimates")
            .then(a.event.cmp(&b.event))
    });
}

/// N hash-partitioned [`BurstDetector`]s that ingest in parallel and
/// answer every query a single detector does, with identical per-event
/// semantics.
///
/// ```
/// use bed_core::{BurstDetector, PbeVariant, ShardedDetector};
/// use bed_stream::{BurstSpan, EventId, Timestamp};
///
/// // Same configuration as the unsharded crate example, split 4 ways.
/// let mut det = BurstDetector::builder()
///     .universe(3)
///     .variant(PbeVariant::pbe2(2.0))
///     .accuracy(0.01, 0.05)
///     .seed(42)
///     .shards(4)
///     .build()
///     .unwrap();
///
/// let mut batch = Vec::new();
/// for t in 0..50u64 {
///     batch.push((EventId(0), Timestamp(t)));                  // steady
///     if t >= 40 {
///         for _ in 0..8 { batch.push((EventId(1), Timestamp(t))); } // burst
///     }
/// }
/// det.ingest_batch(&batch).unwrap();
/// det.finalize();
///
/// let tau = BurstSpan::new(10).unwrap();
/// let b1 = det.point_query(EventId(1), Timestamp(49), tau);
/// let b0 = det.point_query(EventId(0), Timestamp(49), tau);
/// assert!(b1 > 40.0 && b0.abs() < 5.0);
///
/// let (hits, _) = det
///     .bursty_events_with(Timestamp(49), 40.0, tau, bed_core::QueryStrategy::Pruned)
///     .unwrap();
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].event, EventId(1));
/// ```
#[derive(Debug, Clone)]
pub struct ShardedDetector {
    shards: Vec<BurstDetector>,
    last_ts: Option<Timestamp>,
    metrics: ShardMetrics,
}

/// Builder for [`ShardedDetector`]; usually reached via
/// [`crate::BurstDetectorBuilder::shards`].
#[derive(Debug, Clone)]
pub struct ShardedDetectorBuilder {
    pub(crate) config: DetectorConfig,
    pub(crate) shards: usize,
}

impl ShardedDetector {
    /// Starts a builder with default configuration and `n` shards.
    pub fn builder(n: usize) -> ShardedDetectorBuilder {
        ShardedDetectorBuilder { config: DetectorConfig::default(), shards: n }
    }

    /// Builds `n` identically-configured shards from one configuration.
    pub fn from_config(config: DetectorConfig, n: usize) -> Result<Self, BedError> {
        if n == 0 {
            return Err(BedError::InvalidShardCount { got: 0 });
        }
        if config.universe.is_none() {
            return Err(BedError::WrongMode {
                operation: "ShardedDetector::build",
                built_for: "a single event stream (sharding partitions a universe; \
                            set .universe(k))",
            });
        }
        let shards =
            (0..n).map(|_| BurstDetector::from_config(config)).collect::<Result<Vec<_>, _>>()?;
        let metrics = ShardMetrics::new(config.metrics);
        Ok(ShardedDetector { shards, last_ts: None, metrics })
    }

    /// The per-shard configuration (identical across shards).
    pub fn config(&self) -> &DetectorConfig {
        self.shards[0].config()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index owning `event`.
    pub fn owner(&self, event: EventId) -> usize {
        route(event, self.shards.len())
    }

    /// Read-only access to one shard (diagnostics and tests).
    pub fn shard(&self, index: usize) -> &BurstDetector {
        &self.shards[index]
    }

    fn universe(&self) -> u32 {
        self.config().universe.expect("sharded detectors always have a universe")
    }

    /// Validates a batch against the universe and global timestamp order,
    /// returning the batch's last timestamp. Nothing is ingested on error,
    /// so a failed batch leaves the detector untouched.
    fn validate_batch(
        &self,
        batch: &[(EventId, Timestamp)],
    ) -> Result<Option<Timestamp>, BedError> {
        let k = self.universe();
        let mut prev = self.last_ts;
        for &(event, ts) in batch {
            if event.value() >= k {
                return Err(
                    StreamError::EventOutOfUniverse { event: event.value(), universe: k }.into()
                );
            }
            if let Some(p) = prev {
                if ts < p {
                    return Err(
                        StreamError::NonMonotonicTimestamp { previous: p, offered: ts }.into()
                    );
                }
            }
            prev = Some(ts);
        }
        Ok(prev)
    }

    /// Records one arrival of `event` at `ts` on its owning shard.
    pub fn ingest(&mut self, event: EventId, ts: Timestamp) -> Result<(), BedError> {
        self.validate_batch(std::slice::from_ref(&(event, ts)))?;
        let owner = self.owner(event);
        self.shards[owner].ingest(event, ts)?;
        self.last_ts = Some(ts);
        Ok(())
    }

    /// Records a whole batch, fanning shards out over scoped threads.
    ///
    /// The batch must be non-decreasing in time and continue from where
    /// the last ingest left off, exactly like repeated [`Self::ingest`]
    /// calls; validation happens up front so a failed batch is ingested
    /// either fully or not at all. Per-shard order equals arrival order
    /// because partitioning is a stable single pass.
    pub fn ingest_batch(&mut self, batch: &[(EventId, Timestamp)]) -> Result<(), BedError> {
        let started = self.metrics.batch_begin(batch.len());
        let result = self.ingest_batch_inner(batch);
        self.metrics.batch_end(started);
        result
    }

    fn ingest_batch_inner(&mut self, batch: &[(EventId, Timestamp)]) -> Result<(), BedError> {
        let last = self.validate_batch(batch)?;
        let n = self.shards.len();
        if n == 1 || batch.len() < PARALLEL_MIN_BATCH {
            for &(event, ts) in batch {
                let owner = route(event, n);
                self.shards[owner].ingest(event, ts)?;
            }
        } else {
            let mut parts: Vec<Vec<(EventId, Timestamp)>> =
                (0..n).map(|_| Vec::with_capacity(batch.len() / n + 1)).collect();
            for &(event, ts) in batch {
                parts[route(event, n)].push((event, ts));
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(&parts)
                    .map(|(shard, part)| {
                        scope.spawn(move || -> Result<(), BedError> {
                            for &(event, ts) in part {
                                shard.ingest(event, ts)?;
                            }
                            Ok(())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .try_for_each(|h| h.join().expect("shard ingest worker panicked"))
            })?;
        }
        if last.is_some() {
            self.last_ts = last;
        }
        Ok(())
    }

    /// Flushes internal buffering on every shard (in parallel).
    pub fn finalize(&mut self) {
        if self.shards.len() == 1 {
            self.shards[0].finalize();
            return;
        }
        std::thread::scope(|scope| {
            for shard in self.shards.iter_mut() {
                scope.spawn(|| shard.finalize());
            }
        });
    }

    /// POINT QUERY `q(e, t, τ)`: routed to the owning shard.
    pub fn point_query(&self, event: EventId, t: Timestamp, tau: BurstSpan) -> f64 {
        self.shards[self.owner(event)].point_query(event, t, tau)
    }

    /// Estimated cumulative frequency `F̃_e(t)`: routed to the owning shard.
    pub fn cumulative_frequency(&self, event: EventId, t: Timestamp) -> f64 {
        self.shards[self.owner(event)].cumulative_frequency(event, t)
    }

    /// Estimated incoming rate `b̃f_e(t)`: routed to the owning shard.
    pub fn burst_frequency(&self, event: EventId, t: Timestamp, tau: BurstSpan) -> f64 {
        self.shards[self.owner(event)].burst_frequency(event, t, tau)
    }

    /// BURSTY TIME QUERY `q(e, θ, τ)`: routed to the owning shard.
    pub fn bursty_times(
        &self,
        event: EventId,
        theta: f64,
        tau: BurstSpan,
        horizon: Timestamp,
    ) -> Vec<(Timestamp, f64)> {
        self.shards[self.owner(event)].bursty_times(event, theta, tau, horizon)
    }

    /// Burstiness time series of one event: routed to the owning shard.
    pub fn burstiness_series(
        &self,
        event: EventId,
        tau: BurstSpan,
        range: TimeRange,
        step: u64,
    ) -> Vec<(Timestamp, f64)> {
        self.shards[self.owner(event)].burstiness_series(event, tau, range, step)
    }

    /// The `k` most bursty instants of one event: routed to the owner.
    pub fn top_bursts(
        &self,
        event: EventId,
        k: usize,
        tau: BurstSpan,
        horizon: Timestamp,
    ) -> Vec<(Timestamp, f64)> {
        self.shards[self.owner(event)].top_bursts(event, k, tau, horizon)
    }

    /// BURSTY EVENT QUERY `q(t, θ, τ)`: each shard searches with the given
    /// `strategy`, hits are merged across shards (see the module docs for
    /// the [`QueryStrategy::Pruned`] caveat).
    ///
    /// Hits are sorted by descending burstiness, ties by event id; stats
    /// are summed over shards.
    pub fn bursty_events_with(
        &self,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
        strategy: QueryStrategy,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        self.fan_out(|shard| shard.bursty_events_with(t, theta, tau, strategy))
    }

    /// [`Self::bursty_events_with`] with caller-provided scratch: the
    /// fan-out visits shards sequentially, so one scratch serves every
    /// shard's batched scan kernel in turn (identical results).
    pub fn bursty_events_with_reusing(
        &self,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
        strategy: QueryStrategy,
        scratch: &mut bed_sketch::QueryScratch,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        self.fan_out(|shard| shard.bursty_events_with_reusing(t, theta, tau, strategy, scratch))
    }

    /// BURSTY EVENT QUERY restricted to event ids `[lo, hi)`, merged
    /// across shards.
    pub fn bursty_events_in_range_with(
        &self,
        lo: u32,
        hi: u32,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
        strategy: QueryStrategy,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        self.fan_out(|shard| shard.bursty_events_in_range_with(lo, hi, t, theta, tau, strategy))
    }

    /// BURSTY EVENT QUERY with the default pruned strategy.
    #[deprecated(since = "0.1.0", note = "use bursty_events_with(t, θ, τ, QueryStrategy::Pruned)")]
    pub fn bursty_events(
        &self,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        self.bursty_events_with(t, theta, tau, QueryStrategy::Pruned)
    }

    /// BURSTY EVENT QUERY via exhaustive scan.
    #[deprecated(
        since = "0.1.0",
        note = "use bursty_events_with(t, θ, τ, QueryStrategy::ExactScan)"
    )]
    pub fn bursty_events_scan(
        &self,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        self.bursty_events_with(t, theta, tau, QueryStrategy::ExactScan)
    }

    /// Range-restricted BURSTY EVENT QUERY with the pruned strategy.
    #[deprecated(
        since = "0.1.0",
        note = "use bursty_events_in_range_with(lo, hi, t, θ, τ, QueryStrategy::Pruned)"
    )]
    pub fn bursty_events_in_range(
        &self,
        lo: u32,
        hi: u32,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        self.bursty_events_in_range_with(lo, hi, t, theta, tau, QueryStrategy::Pruned)
    }

    /// Runs an event-set query on every shard, keeps each shard's hits on
    /// the events it owns (a shard's sketch can only over-count, so it may
    /// report collision ghosts for ids it never saw), dedups, and merges.
    fn fan_out(
        &self,
        query: impl FnMut(&BurstDetector) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError>,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        let started = self.metrics.fan_out_begin();
        let result = self.fan_out_inner(query);
        self.metrics.fan_out_end(started);
        result
    }

    fn fan_out_inner(
        &self,
        mut query: impl FnMut(&BurstDetector) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError>,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        let mut merged: Vec<BurstyEventHit> = Vec::new();
        let mut stats = QueryStats::default();
        for (i, shard) in self.shards.iter().enumerate() {
            let (hits, s) = query(shard)?;
            stats.point_queries += s.point_queries;
            stats.pruned_subtrees += s.pruned_subtrees;
            stats.leaves_probed += s.leaves_probed;
            merged.extend(hits.into_iter().filter(|h| self.owner(h.event) == i));
        }
        merge_hits(&mut merged);
        Ok((merged, stats))
    }

    /// Elements ingested so far, across all shards.
    pub fn arrivals(&self) -> u64 {
        self.shards.iter().map(BurstDetector::arrivals).sum()
    }

    /// Timestamp of the most recent arrival on any shard (`None` before
    /// the first).
    pub fn last_timestamp(&self) -> Option<Timestamp> {
        self.last_ts
    }

    /// The recovery watermark: how far the stream had been consumed when
    /// this state was captured (see [`crate::checkpoint`]).
    pub fn watermark(&self) -> crate::checkpoint::Watermark {
        crate::checkpoint::Watermark { arrivals: self.arrivals(), last_ts: self.last_ts }
    }

    /// Current summary size in bytes, across all shards.
    pub fn size_bytes(&self) -> usize {
        self.shards.iter().map(BurstDetector::size_bytes).sum()
    }

    /// Resident bytes of the struct-of-arrays probe banks across all
    /// shards (see [`BurstDetector::soa_bank_bytes`]).
    pub fn soa_bank_bytes(&self) -> usize {
        self.shards.iter().map(BurstDetector::soa_bank_bytes).sum()
    }

    /// Captures a [`MetricsSnapshot`] rolling every shard up: counters and
    /// histograms are summed across shards, facade-level batch/fan-out
    /// timings are kept as-is, and per-shard `shard.<i>.{arrivals,bytes}`
    /// gauges plus `shard.count` are refreshed first.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.set_gauge("shard.count", self.shards.len() as f64);
        for (i, shard) in self.shards.iter().enumerate() {
            self.metrics.set_gauge(&format!("shard.{i}.arrivals"), shard.arrivals() as f64);
            self.metrics.set_gauge(&format!("shard.{i}.bytes"), shard.size_bytes() as f64);
        }
        let mut merged = self.metrics.snapshot();
        for shard in &self.shards {
            merged = merged.merge(&shard.metrics());
        }
        merged
    }

    /// Routes one [`QueryRequest`]: per-event kinds go to the owning shard's
    /// [`BurstQueries::query_reusing`] (whose universe check covers the full
    /// `K`), bursty-event kinds fan out and merge with the scratch shared
    /// across the sequential shard visits.
    fn dispatch(
        &self,
        request: &QueryRequest,
        scratch: &mut bed_sketch::QueryScratch,
    ) -> Result<QueryResponse, BedError> {
        match *request {
            QueryRequest::Point { event, .. }
            | QueryRequest::BurstyTimes { event, .. }
            | QueryRequest::Series { event, .. }
            | QueryRequest::TopK { event, .. } => {
                self.shards[self.owner(event)].query_reusing(request, scratch)
            }
            QueryRequest::BurstyEvents { t, theta, tau, strategy } => {
                let (hits, stats) =
                    self.bursty_events_with_reusing(t, theta, tau, strategy, scratch)?;
                Ok(QueryResponse::BurstyEvents { hits, stats })
            }
        }
    }
}

impl BurstQueries for ShardedDetector {
    fn query(&self, request: &QueryRequest) -> Result<QueryResponse, BedError> {
        let mut scratch = bed_sketch::QueryScratch::new();
        self.query_reusing(request, &mut scratch)
    }

    fn query_reusing(
        &self,
        request: &QueryRequest,
        scratch: &mut bed_sketch::QueryScratch,
    ) -> Result<QueryResponse, BedError> {
        let kind = request.kind();
        // The facade owns the root span; shard-local tracers stay disabled
        // (see `set_tracer`), so arming the scratch here lets the shards'
        // kernels accumulate stage timings that we harvest below.
        let mut trace = self.metrics.trace_query(kind, scratch.trace_id);
        if trace.is_some() || scratch.explain {
            scratch.stages.reset(true);
        } else if !scratch.stages.enabled {
            scratch.stages.reset(false);
        }
        let fan_out_t0 = match (&trace, request) {
            (Some(_), QueryRequest::BurstyEvents { .. }) => Some(std::time::Instant::now()),
            _ => None,
        };
        let result = self.dispatch(request, scratch);
        if let Some(mut tr) = trace.take() {
            if let Some(t0) = fan_out_t0 {
                tr.child(SpanName::SHARD_FAN_OUT, t0);
            }
            crate::observe::finish_query_trace(tr, scratch, request);
            if !scratch.explain {
                scratch.stages.reset(false);
            }
        }
        result
    }

    fn arrivals(&self) -> u64 {
        ShardedDetector::arrivals(self)
    }

    fn size_bytes(&self) -> usize {
        ShardedDetector::size_bytes(self)
    }

    fn config(&self) -> &DetectorConfig {
        ShardedDetector::config(self)
    }

    fn metrics(&self) -> MetricsSnapshot {
        ShardedDetector::metrics(self)
    }
}

impl Traceable for ShardedDetector {
    /// Installs the tracer on the **facade only**. Shard-local detectors
    /// keep their disabled tracers, so one request produces exactly one
    /// root span (with shard kernels contributing stage children via the
    /// armed scratch) instead of a competing root per shard.
    fn set_tracer(&mut self, tracer: std::sync::Arc<Tracer>) {
        self.metrics.set_tracer(tracer);
    }

    fn tracer(&self) -> &std::sync::Arc<Tracer> {
        self.metrics.tracer()
    }
}

impl ShardedDetectorBuilder {
    /// Selects the PBE variant for every cell of every shard.
    pub fn variant(mut self, variant: crate::config::PbeVariant) -> Self {
        self.config.variant = variant;
        self
    }

    /// Sets Count-Min accuracy (ε, δ) for every shard.
    pub fn accuracy(mut self, epsilon: f64, delta: f64) -> Self {
        self.config.sketch = bed_sketch::SketchParams { epsilon, delta };
        self
    }

    /// Declares the shared event universe `[0, k)`.
    pub fn universe(mut self, k: u32) -> Self {
        self.config.universe = Some(k);
        self
    }

    /// Enables/disables the dyadic hierarchy in every shard.
    pub fn hierarchical(mut self, on: bool) -> Self {
        self.config.hierarchical = on;
        self
    }

    /// Sets the hash seed (shared, so equal-config shards stay equal).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Enables/disables runtime metric collection in the facade and every
    /// shard (default on; see [`ShardedDetector::metrics`]).
    pub fn metrics(mut self, on: bool) -> Self {
        self.config.metrics = on;
        self
    }

    /// Sets the tiered retention policy for every shard (`None` =
    /// unbounded history). Each shard compacts on its own arrival count,
    /// which depends only on the hash partition — so the sharded state
    /// stays deterministic and WAL replay reproduces it bit-for-bit.
    pub fn retention(mut self, policy: Option<bed_sketch::RetentionPolicy>) -> Self {
        self.config.retention = policy;
        self
    }

    /// Sets the shard count.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Builds the sharded detector.
    pub fn build(self) -> Result<ShardedDetector, BedError> {
        ShardedDetector::from_config(self.config, self.shards)
    }
}

/// Persistence (format `BEDS` v1): shard count, global clock, then each
/// shard's full `BEDD` record. A decoded detector keeps ingesting and
/// routes queries identically because the hash partition depends only on
/// the shard count.
impl bed_stream::Codec for ShardedDetector {
    fn encode(&self, w: &mut bed_stream::codec::Writer) {
        w.magic(*b"BEDS");
        w.version(1);
        w.u32(self.shards.len() as u32);
        match self.last_ts {
            Some(t) => {
                w.u8(1);
                t.encode(w);
            }
            None => w.u8(0),
        }
        for shard in &self.shards {
            shard.encode(w);
        }
    }

    fn decode(r: &mut bed_stream::codec::Reader<'_>) -> Result<Self, bed_stream::CodecError> {
        use bed_stream::CodecError;
        r.magic(*b"BEDS")?;
        r.version(1)?;
        let n = r.u32("shard count")? as usize;
        if n == 0 {
            return Err(CodecError::Invalid { context: "shard count" });
        }
        let last_ts = match r.u8("sharded last_ts flag")? {
            0 => None,
            1 => Some(Timestamp::decode(r)?),
            _ => return Err(CodecError::Invalid { context: "sharded last_ts flag" }),
        };
        let shards = (0..n).map(|_| BurstDetector::decode(r)).collect::<Result<Vec<_>, _>>()?;
        if shards.iter().any(|s| s.config().universe.is_none()) {
            return Err(CodecError::Invalid { context: "sharded shard mode" });
        }
        // Like BEDD, metric collection restarts on decode (runtime-only).
        Ok(ShardedDetector { shards, last_ts, metrics: ShardMetrics::new(true) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PbeVariant;
    use bed_stream::Codec;

    fn fixture_batch() -> Vec<(EventId, Timestamp)> {
        let mut batch = Vec::new();
        for t in 0..100u64 {
            batch.push((EventId(0), Timestamp(t)));
            batch.push((EventId(3), Timestamp(t)));
            if t >= 90 {
                for _ in 0..10 {
                    batch.push((EventId(5), Timestamp(t)));
                }
            }
        }
        batch
    }

    fn sharded(n: usize) -> ShardedDetector {
        ShardedDetector::builder(n)
            .universe(8)
            .variant(PbeVariant::pbe2(1.0))
            .seed(3)
            .build()
            .unwrap()
    }

    #[test]
    fn build_rejects_zero_shards_and_single_event_mode() {
        assert!(matches!(
            ShardedDetector::builder(0).universe(4).build(),
            Err(BedError::InvalidShardCount { got: 0 })
        ));
        assert!(matches!(ShardedDetector::builder(2).build(), Err(BedError::WrongMode { .. })));
    }

    #[test]
    fn routing_is_total_and_stable() {
        let det = sharded(3);
        for e in 0..8u32 {
            let owner = det.owner(EventId(e));
            assert!(owner < 3);
            assert_eq!(owner, det.owner(EventId(e)), "stable routing");
        }
    }

    #[test]
    fn batch_and_single_ingest_agree() {
        let batch = fixture_batch();
        let mut a = sharded(4);
        a.ingest_batch(&batch).unwrap();
        a.finalize();
        let mut b = sharded(4);
        for &(e, t) in &batch {
            b.ingest(e, t).unwrap();
        }
        b.finalize();
        let tau = BurstSpan::new(10).unwrap();
        for e in 0..8u32 {
            for t in [0u64, 50, 95, 99, 150] {
                assert_eq!(
                    a.point_query(EventId(e), Timestamp(t), tau).to_bits(),
                    b.point_query(EventId(e), Timestamp(t), tau).to_bits(),
                    "e={e} t={t}"
                );
            }
        }
        assert_eq!(a.arrivals(), b.arrivals());
    }

    #[test]
    fn finds_the_bursting_event() {
        let mut det = sharded(4);
        det.ingest_batch(&fixture_batch()).unwrap();
        det.finalize();
        let tau = BurstSpan::new(10).unwrap();
        let (hits, stats) =
            det.bursty_events_with(Timestamp(99), 50.0, tau, QueryStrategy::Pruned).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].event, EventId(5));
        assert!(stats.point_queries > 0);
        let (scan_hits, _) =
            det.bursty_events_with(Timestamp(99), 50.0, tau, QueryStrategy::ExactScan).unwrap();
        assert_eq!(scan_hits.len(), 1);
        assert_eq!(scan_hits[0].event, EventId(5));
    }

    #[test]
    fn failed_batch_is_all_or_nothing() {
        let mut det = sharded(2);
        det.ingest_batch(&[(EventId(0), Timestamp(10))]).unwrap();
        // second element violates monotonicity → nothing lands
        let err = det.ingest_batch(&[(EventId(1), Timestamp(11)), (EventId(2), Timestamp(5))]);
        assert!(err.is_err());
        assert_eq!(det.arrivals(), 1);
        // out-of-universe is caught up front too
        assert!(det.ingest_batch(&[(EventId(99), Timestamp(12))]).is_err());
        assert_eq!(det.arrivals(), 1);
        // and the clock did not advance past the failed batch
        det.ingest_batch(&[(EventId(1), Timestamp(10))]).unwrap();
    }

    #[test]
    fn codec_roundtrip_preserves_answers() {
        let mut det = sharded(3);
        det.ingest_batch(&fixture_batch()).unwrap();
        det.finalize();
        let bytes = det.to_bytes();
        let back = ShardedDetector::from_bytes(&bytes).unwrap();
        assert_eq!(back.num_shards(), 3);
        assert_eq!(back.arrivals(), det.arrivals());
        let tau = BurstSpan::new(10).unwrap();
        for e in 0..8u32 {
            assert_eq!(
                back.point_query(EventId(e), Timestamp(99), tau).to_bits(),
                det.point_query(EventId(e), Timestamp(99), tau).to_bits()
            );
        }
        // decoded detectors keep ingesting with the clock intact
        let mut back = back;
        assert!(back.ingest(EventId(0), Timestamp(0)).is_err(), "clock survives decode");
        back.ingest(EventId(0), Timestamp(200)).unwrap();
    }

    #[test]
    fn large_batches_cross_the_parallel_threshold() {
        let mut det = sharded(4);
        let mut batch = Vec::new();
        for t in 0..2_000u64 {
            batch.push((EventId((t % 8) as u32), Timestamp(t)));
        }
        assert!(batch.len() >= super::PARALLEL_MIN_BATCH);
        det.ingest_batch(&batch).unwrap();
        det.finalize();
        assert_eq!(det.arrivals(), 2_000);
    }
}
