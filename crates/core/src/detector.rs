//! The [`BurstDetector`] facade.

use bed_hierarchy::query::{bursty_times_over, bursty_times_single};
use bed_hierarchy::{BurstyEventHit, DyadicCmPbe, QueryStats};
use bed_obs::{MetricsSnapshot, Tracer};
use bed_pbe::CurveSketch;
use bed_sketch::{CmPbe, QueryScratch};
use bed_stream::{BurstSpan, EventId, StreamError, Timestamp};

use crate::cell::PbeCell;
use crate::config::{DetectorConfig, PbeVariant};
use crate::error::BedError;
use crate::metrics::DetectorMetrics;
use crate::observe::Traceable;
use crate::query::{
    check_range, check_step, check_theta_finite, check_theta_positive, sort_hits, BurstQueries,
    QueryRequest, QueryResponse, QueryStrategy,
};

/// Storage backend selected by the configuration.
#[derive(Debug, Clone)]
enum Backend {
    /// One PBE over a single event stream (Section III).
    Single(PbeCell),
    /// One CM-PBE over a mixed stream (Section IV).
    Flat(CmPbe<PbeCell>),
    /// Per-level CM-PBEs over the dyadic decomposition (Section V).
    Hierarchical(DyadicCmPbe<PbeCell>),
}

/// Historical burstiness detector: ingest a stream once, then ask *point*,
/// *bursty time*, and *bursty event* queries about any moment of the past.
///
/// Construct via [`BurstDetector::builder`]; see the crate-level example.
#[derive(Debug, Clone)]
pub struct BurstDetector {
    config: DetectorConfig,
    backend: Backend,
    last_ts: Option<Timestamp>,
    metrics: DetectorMetrics,
    /// Retention compaction runs completed (runtime gauge; not persisted —
    /// the compacted *state* is, via the cell codec).
    compactions: u64,
}

/// Builder for [`BurstDetector`].
#[derive(Debug, Clone)]
pub struct BurstDetectorBuilder {
    config: DetectorConfig,
}

impl BurstDetector {
    /// Starts a builder with default configuration (single-event PBE-2).
    pub fn builder() -> BurstDetectorBuilder {
        BurstDetectorBuilder { config: DetectorConfig::default() }
    }

    /// Builds directly from a configuration.
    pub fn from_config(config: DetectorConfig) -> Result<Self, BedError> {
        config.variant.validate()?;
        config.sketch.validate()?;
        if let Some(policy) = &config.retention {
            crate::config::validate_retention(policy)?;
        }
        let backend = match (config.universe, config.hierarchical) {
            (None, _) => Backend::Single(config.variant.make_cell()),
            (Some(k), true) => {
                Backend::Hierarchical(DyadicCmPbe::new(k, config.sketch, config.seed, |_| {
                    config.variant.make_cell()
                })?)
            }
            (Some(_), false) => Backend::Flat(CmPbe::new(config.sketch, config.seed, || {
                config.variant.make_cell()
            })?),
        };
        let metrics = DetectorMetrics::new(config.metrics);
        Ok(BurstDetector { config, backend, last_ts: None, metrics, compactions: 0 })
    }

    /// The configuration in force.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    fn check_monotone(&mut self, ts: Timestamp) -> Result<(), BedError> {
        if let Some(last) = self.last_ts {
            if ts < last {
                return Err(
                    StreamError::NonMonotonicTimestamp { previous: last, offered: ts }.into()
                );
            }
        }
        self.last_ts = Some(ts);
        Ok(())
    }

    /// Records one arrival of `event` at `ts` (mixed-stream modes).
    pub fn ingest(&mut self, event: EventId, ts: Timestamp) -> Result<(), BedError> {
        let started = self.metrics.ingest_begin();
        let result = self.ingest_inner(event, ts);
        self.metrics.ingest_end(started, result.is_ok());
        result
    }

    fn ingest_inner(&mut self, event: EventId, ts: Timestamp) -> Result<(), BedError> {
        self.check_monotone(ts)?;
        match &mut self.backend {
            Backend::Single(_) => Err(BedError::WrongMode {
                operation: "ingest(event, ts)",
                built_for: "a single event stream (use ingest_single)",
            }),
            Backend::Flat(grid) => {
                if let Some(k) = self.config.universe {
                    if event.value() >= k {
                        return Err(StreamError::EventOutOfUniverse {
                            event: event.value(),
                            universe: k,
                        }
                        .into());
                    }
                }
                grid.update(event, ts);
                self.maybe_compact();
                Ok(())
            }
            Backend::Hierarchical(forest) => {
                forest.update(event, ts)?;
                self.maybe_compact();
                Ok(())
            }
        }
    }

    /// Retention trigger: folds live cell state into the frozen tiers once
    /// per `compact_every` arrivals. Runs *inside* the ingest path on the
    /// arrivals counter — a pure function of the arrival history — so WAL
    /// replay through [`Self::ingest`] reproduces the compacted summary
    /// bit-for-bit (checkpoints capture the same determinism for free).
    fn maybe_compact(&mut self) {
        let Some(policy) = self.config.retention else { return };
        let arrivals = self.arrivals();
        if arrivals == 0 || !arrivals.is_multiple_of(policy.compact_every) {
            return;
        }
        let now = self.last_ts.expect("compaction follows an ingest");
        let t0 = std::time::Instant::now();
        match &mut self.backend {
            Backend::Single(cell) => cell.compact(&policy, now),
            Backend::Flat(grid) => grid.for_each_cell_mut(|c| c.compact(&policy, now)),
            Backend::Hierarchical(forest) => forest.for_each_grid_mut(|_, grid| {
                grid.for_each_cell_mut(|c| c.compact(&policy, now));
            }),
        }
        self.metrics.compact_observe(t0.elapsed());
        self.compactions += 1;
    }

    /// Retention compaction runs completed since construction.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Records one arrival on a single-event detector.
    pub fn ingest_single(&mut self, ts: Timestamp) -> Result<(), BedError> {
        let started = self.metrics.ingest_begin();
        let result = self.ingest_single_inner(ts);
        self.metrics.ingest_end(started, result.is_ok());
        result
    }

    fn ingest_single_inner(&mut self, ts: Timestamp) -> Result<(), BedError> {
        self.check_monotone(ts)?;
        match &mut self.backend {
            Backend::Single(pbe) => {
                pbe.update(ts);
                self.maybe_compact();
                Ok(())
            }
            _ => Err(BedError::WrongMode {
                operation: "ingest_single(ts)",
                built_for: "mixed event streams (use ingest)",
            }),
        }
    }

    /// Flushes internal buffering; queries are valid before and after, but
    /// `size_bytes` reflects the final summary only afterwards.
    pub fn finalize(&mut self) {
        let started = self.metrics.finalize_begin();
        match &mut self.backend {
            Backend::Single(pbe) => pbe.finalize(),
            Backend::Flat(grid) => grid.finalize(),
            Backend::Hierarchical(forest) => forest.finalize(),
        }
        self.metrics.finalize_end(started);
    }

    /// POINT QUERY `q(e, t, τ)`: estimated burstiness `b̃_e(t)`.
    pub fn point_query(&self, event: EventId, t: Timestamp, tau: BurstSpan) -> f64 {
        match &self.backend {
            Backend::Single(pbe) => pbe.estimate_burstiness(t, tau),
            Backend::Flat(grid) => grid.estimate_burstiness(event, t, tau),
            Backend::Hierarchical(forest) => forest.estimate_burstiness(event, t, tau),
        }
    }

    /// Estimated cumulative frequency `F̃_e(t)`.
    pub fn cumulative_frequency(&self, event: EventId, t: Timestamp) -> f64 {
        match &self.backend {
            Backend::Single(pbe) => pbe.estimate_cum(t),
            Backend::Flat(grid) => grid.estimate_cum(event, t),
            Backend::Hierarchical(forest) => forest.estimate_cum(event, t),
        }
    }

    /// Estimated incoming rate `b̃f_e(t)`.
    pub fn burst_frequency(&self, event: EventId, t: Timestamp, tau: BurstSpan) -> f64 {
        match &self.backend {
            Backend::Single(pbe) => pbe.estimate_burst_frequency(t, tau),
            Backend::Flat(grid) => grid.estimate_burst_frequency(event, t, tau),
            Backend::Hierarchical(forest) => forest.grid(0).estimate_burst_frequency(event, t, tau),
        }
    }

    /// BURSTY TIME QUERY `q(e, θ, τ)`: instants within `[0, horizon]` where
    /// the estimated burstiness reaches θ, with the estimates.
    pub fn bursty_times(
        &self,
        event: EventId,
        theta: f64,
        tau: BurstSpan,
        horizon: Timestamp,
    ) -> Vec<(Timestamp, f64)> {
        match &self.backend {
            Backend::Single(pbe) => bursty_times_single(pbe, theta, tau, horizon),
            Backend::Flat(grid) => bursty_times_over(grid, event, theta, tau, horizon),
            Backend::Hierarchical(forest) => forest.bursty_times(event, theta, tau, horizon),
        }
    }

    /// [`Self::bursty_times`] with caller-provided scratch for the fused
    /// hinted-cursor sweep's working memory (identical results; a warm
    /// scratch removes the per-query allocations on the CM-PBE paths).
    pub fn bursty_times_reusing(
        &self,
        event: EventId,
        theta: f64,
        tau: BurstSpan,
        horizon: Timestamp,
        scratch: &mut QueryScratch,
    ) -> Vec<(Timestamp, f64)> {
        match &self.backend {
            Backend::Single(pbe) => bursty_times_single(pbe, theta, tau, horizon),
            Backend::Flat(grid) => {
                let mut out = Vec::new();
                grid.bursty_times_into(event, theta, tau, horizon, scratch, &mut out);
                out
            }
            Backend::Hierarchical(forest) => {
                let mut out = Vec::new();
                forest.grid(0).bursty_times_into(event, theta, tau, horizon, scratch, &mut out);
                out
            }
        }
    }

    /// BURSTY TIME QUERY with **interval semantics** (single-event mode
    /// only): the maximal time ranges within `[0, horizon]` where the
    /// estimated burstiness reaches θ — exact with respect to the sketch,
    /// including mid-segment threshold crossings of PLA summaries.
    pub fn bursty_time_ranges(
        &self,
        theta: f64,
        tau: BurstSpan,
        horizon: Timestamp,
    ) -> Result<Vec<bed_stream::TimeRange>, BedError> {
        match &self.backend {
            Backend::Single(pbe) => Ok(bed_pbe::bursty_time_ranges(pbe, theta, tau, horizon)),
            _ => Err(BedError::WrongMode {
                operation: "bursty_time_ranges",
                built_for: "mixed event streams (use bursty_times)",
            }),
        }
    }

    /// BURSTY EVENT QUERY `q(t, θ, τ)`: events whose estimated burstiness at
    /// `t` reaches θ (θ finite and positive), plus probe statistics.
    ///
    /// The `strategy` picks the hierarchy trade-off explicitly:
    /// [`QueryStrategy::Pruned`] runs the Eq. 6 dyadic search (falling back
    /// to a scan on detectors built without the hierarchy);
    /// [`QueryStrategy::ExactScan`] probes every event id and is exact with
    /// respect to point queries. Hits are returned in the canonical order —
    /// descending burstiness, ties by event id — matching
    /// [`crate::ShardedDetector`]'s merged answers.
    pub fn bursty_events_with(
        &self,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
        strategy: QueryStrategy,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        let mut scratch = QueryScratch::new();
        self.bursty_events_with_reusing(t, theta, tau, strategy, &mut scratch)
    }

    /// [`Self::bursty_events_with`] with caller-provided scratch for the
    /// batched scan kernel's working memory (identical results).
    pub fn bursty_events_with_reusing(
        &self,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
        strategy: QueryStrategy,
        scratch: &mut QueryScratch,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        check_theta_positive(theta)?;
        let (mut hits, stats) = match (&self.backend, strategy) {
            (Backend::Single(_), _) => {
                return Err(BedError::WrongMode {
                    operation: "bursty_events",
                    built_for: "a single event stream",
                })
            }
            // A flat detector has no hierarchy to prune: both strategies
            // scan, keeping Pruned usable as the universal default.
            (Backend::Flat(_), _) => self.scan_range(0, u32::MAX, t, theta, tau, scratch),
            (Backend::Hierarchical(forest), QueryStrategy::Pruned) => {
                let t0 = scratch.stages.enabled.then(std::time::Instant::now);
                let r = forest.bursty_events(t, theta, tau);
                if let Some(t0) = t0 {
                    scratch.stages.hierarchy_prune_ns += t0.elapsed().as_nanos() as u64;
                }
                r
            }
            (Backend::Hierarchical(forest), QueryStrategy::ExactScan) => {
                forest.bursty_events_scan_reusing(t, theta, tau, scratch)
            }
        };
        sort_hits(&mut hits);
        self.metrics.record_query_stats(&stats);
        Ok((hits, stats))
    }

    /// BURSTY EVENT QUERY restricted to event ids `[lo, hi)`.
    ///
    /// [`QueryStrategy::Pruned`] exploits the dyadic structure to skip
    /// disjoint subtrees and needs the hierarchy
    /// ([`BedError::HierarchyDisabled`] otherwise);
    /// [`QueryStrategy::ExactScan`] probes every id in the range and works
    /// in flat mode too. Hits are in the canonical descending-burstiness
    /// order.
    pub fn bursty_events_in_range_with(
        &self,
        lo: u32,
        hi: u32,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
        strategy: QueryStrategy,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        let mut scratch = QueryScratch::new();
        self.bursty_events_in_range_with_reusing(lo, hi, t, theta, tau, strategy, &mut scratch)
    }

    /// [`Self::bursty_events_in_range_with`] with caller-provided scratch
    /// for the batched scan kernel's working memory (identical results).
    #[allow(clippy::too_many_arguments)]
    pub fn bursty_events_in_range_with_reusing(
        &self,
        lo: u32,
        hi: u32,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
        strategy: QueryStrategy,
        scratch: &mut QueryScratch,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        check_theta_positive(theta)?;
        if lo >= hi {
            return Err(StreamError::InvertedRange {
                start: Timestamp(lo as u64),
                end: Timestamp(hi as u64),
            }
            .into());
        }
        let (mut hits, stats) = match (&self.backend, strategy) {
            (Backend::Single(_), _) => {
                return Err(BedError::WrongMode {
                    operation: "bursty_events_in_range",
                    built_for: "a single event stream",
                })
            }
            (Backend::Hierarchical(forest), QueryStrategy::Pruned) => {
                let t0 = scratch.stages.enabled.then(std::time::Instant::now);
                let r = forest.bursty_events_in_range(lo, hi, t, theta, tau);
                if let Some(t0) = t0 {
                    scratch.stages.hierarchy_prune_ns += t0.elapsed().as_nanos() as u64;
                }
                r
            }
            (_, QueryStrategy::ExactScan) => self.scan_range(lo, hi, t, theta, tau, scratch),
            (Backend::Flat(_), QueryStrategy::Pruned) => return Err(BedError::HierarchyDisabled),
        };
        sort_hits(&mut hits);
        self.metrics.record_query_stats(&stats);
        Ok((hits, stats))
    }

    /// Evaluates every event id in `[lo, min(hi, K))` through the leaf
    /// grid's batched row-major kernel
    /// ([`CmPbe::burstiness_scan_into`]) — bit-for-bit the same hits and
    /// stats as a [`Self::point_query`] loop, without its per-event
    /// scattered searches and allocations.
    fn scan_range(
        &self,
        lo: u32,
        hi: u32,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
        scratch: &mut QueryScratch,
    ) -> (Vec<BurstyEventHit>, QueryStats) {
        let k = self.config.universe.expect("mixed mode implies a universe");
        let mut hits = Vec::new();
        let mut stats = QueryStats::default();
        let grid = match &self.backend {
            Backend::Flat(grid) => grid,
            // The forest's per-event estimate IS the leaf grid's estimate
            // (levels above only serve the pruned search), so scanning the
            // leaf grid directly is bit-identical.
            Backend::Hierarchical(forest) => forest.grid(0),
            Backend::Single(_) => unreachable!("scan_range requires a universe"),
        };
        grid.burstiness_scan_into(lo, hi.min(k), t, tau, scratch, |event, b| {
            stats.point_queries += 1;
            stats.leaves_probed += 1;
            if b >= theta {
                hits.push(BurstyEventHit { event, burstiness: b });
            }
        });
        (hits, stats)
    }

    /// BURSTY EVENT QUERY with the default pruned strategy.
    #[deprecated(since = "0.1.0", note = "use bursty_events_with(t, θ, τ, QueryStrategy::Pruned)")]
    pub fn bursty_events(
        &self,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        self.bursty_events_with(t, theta, tau, QueryStrategy::Pruned)
    }

    /// BURSTY EVENT QUERY via exhaustive scan.
    #[deprecated(
        since = "0.1.0",
        note = "use bursty_events_with(t, θ, τ, QueryStrategy::ExactScan)"
    )]
    pub fn bursty_events_scan(
        &self,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        self.bursty_events_with(t, theta, tau, QueryStrategy::ExactScan)
    }

    /// Range-restricted BURSTY EVENT QUERY with the pruned strategy.
    #[deprecated(
        since = "0.1.0",
        note = "use bursty_events_in_range_with(lo, hi, t, θ, τ, QueryStrategy::Pruned)"
    )]
    pub fn bursty_events_in_range(
        &self,
        lo: u32,
        hi: u32,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        self.bursty_events_in_range_with(lo, hi, t, theta, tau, QueryStrategy::Pruned)
    }

    /// Estimated burstiness time series of one event, sampled every `step`
    /// ticks over `[range.start, range.end]` — the data behind dashboards
    /// and the paper's Fig. 7b / Fig. 13 plots.
    ///
    /// A `step` of zero saturates to 1; use [`BurstQueries::query`] with
    /// [`QueryRequest::Series`] for strict (`Err`-returning) validation.
    pub fn burstiness_series(
        &self,
        event: EventId,
        tau: BurstSpan,
        range: bed_stream::TimeRange,
        step: u64,
    ) -> Vec<(Timestamp, f64)> {
        let step = step.max(1);
        let mut out = Vec::new();
        let mut t = range.start.ticks();
        while t <= range.end.ticks() {
            out.push((Timestamp(t), self.point_query(event, Timestamp(t), tau)));
            t += step;
        }
        out
    }

    /// The `k` most bursty instants of an event within `[0, horizon]`,
    /// ordered by descending estimated burstiness. Probes the sketch's knee
    /// echoes (like [`Self::bursty_times`]) so the cost is linear in the
    /// summary size, not the horizon.
    pub fn top_bursts(
        &self,
        event: EventId,
        k: usize,
        tau: BurstSpan,
        horizon: Timestamp,
    ) -> Vec<(Timestamp, f64)> {
        let mut scratch = QueryScratch::new();
        self.top_bursts_reusing(event, k, tau, horizon, &mut scratch)
    }

    /// [`Self::top_bursts`] with caller-provided scratch (identical
    /// results).
    pub fn top_bursts_reusing(
        &self,
        event: EventId,
        k: usize,
        tau: BurstSpan,
        horizon: Timestamp,
        scratch: &mut QueryScratch,
    ) -> Vec<(Timestamp, f64)> {
        let mut hits = self.bursty_times_reusing(event, f64::MIN, tau, horizon, scratch);
        hits.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite estimates"));
        hits.truncate(k);
        hits
    }

    /// Elements ingested so far.
    pub fn arrivals(&self) -> u64 {
        match &self.backend {
            Backend::Single(pbe) => pbe.arrivals(),
            Backend::Flat(grid) => grid.arrivals(),
            Backend::Hierarchical(forest) => forest.arrivals(),
        }
    }

    /// Timestamp of the most recent arrival (`None` before the first).
    pub fn last_timestamp(&self) -> Option<Timestamp> {
        self.last_ts
    }

    /// The recovery watermark: how far the stream had been consumed when
    /// this state was captured (see [`crate::checkpoint`]).
    pub fn watermark(&self) -> crate::checkpoint::Watermark {
        crate::checkpoint::Watermark { arrivals: self.arrivals(), last_ts: self.last_ts }
    }

    /// Current summary size in bytes.
    pub fn size_bytes(&self) -> usize {
        match &self.backend {
            Backend::Single(pbe) => pbe.size_bytes(),
            Backend::Flat(grid) => grid.size_bytes(),
            Backend::Hierarchical(forest) => forest.size_bytes(),
        }
    }

    /// Resident bytes of the struct-of-arrays probe banks, `0` when none
    /// are built. [`finalize`](Self::finalize) builds them; any ingest
    /// drops them, so a non-zero value means queries ride the vectorized
    /// [`bed_sketch::CellBank`] kernels instead of the per-cell path.
    /// Deliberately *not* part of [`size_bytes`](Self::size_bytes), which
    /// keeps the paper's summary-only accounting.
    pub fn soa_bank_bytes(&self) -> usize {
        match &self.backend {
            Backend::Single(_) => 0,
            Backend::Flat(grid) => grid.bank_size_bytes(),
            Backend::Hierarchical(forest) => {
                (0..forest.levels()).map(|l| forest.grid(l).bank_size_bytes()).sum()
            }
        }
    }

    /// Captures a [`MetricsSnapshot`] of runtime counters and latency
    /// histograms, refreshing the structural gauges (summary sizes, sketch
    /// fill, forest occupancy) from the backend first. See the crate docs
    /// for the metric name schema. With metrics disabled
    /// ([`BurstDetectorBuilder::metrics`]) the snapshot still exists but
    /// every counter is frozen at zero.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.set_gauge("detector.arrivals", self.arrivals() as f64);
        self.metrics.set_gauge("structure.bytes", self.size_bytes() as f64);
        match &self.backend {
            Backend::Single(pbe) => {
                let s = pbe.summary_stats();
                self.metrics.set_gauge("structure.pbe.pieces", s.pieces as f64);
                self.metrics.set_gauge("structure.pbe.buffered", s.buffered as f64);
            }
            Backend::Flat(grid) => self.set_cm_gauges(&grid.structure()),
            Backend::Hierarchical(forest) => {
                let s = forest.structure();
                self.metrics.set_gauge("structure.forest.levels", f64::from(s.levels));
                self.metrics.set_gauge("structure.forest.nodes", s.nodes as f64);
                self.metrics.set_gauge("structure.forest.occupied_nodes", s.occupied_nodes as f64);
                self.metrics.set_gauge("structure.forest.pieces", s.pieces as f64);
                self.metrics.set_gauge("structure.forest.buffered", s.buffered as f64);
                self.set_cm_gauges(&s.leaf);
            }
        }
        self.refresh_retention_gauges();
        self.metrics.refresh_prune_ratio();
        self.metrics.snapshot()
    }

    /// Visits the frozen prefix of every compacted cell across the backend
    /// (all hierarchy levels included).
    fn for_each_frozen(&self, mut f: impl FnMut(&bed_sketch::FrozenCurve)) {
        fn visit(cell: &PbeCell, f: &mut dyn FnMut(&bed_sketch::FrozenCurve)) {
            if let Some(frozen) = cell.frozen() {
                f(frozen);
            }
        }
        match &self.backend {
            Backend::Single(cell) => visit(cell, &mut f),
            Backend::Flat(grid) => grid.for_each_cell(|c| visit(c, &mut f)),
            Backend::Hierarchical(forest) => {
                for level in 0..forest.levels() {
                    forest.grid(level).for_each_cell(|c| visit(c, &mut f));
                }
            }
        }
    }

    /// Refreshes the `retention.*` gauges: compaction count, tiers in
    /// play, and per-tier byte/knee/span accounting (tier 0 carries the
    /// live full-resolution summaries; tiers ≥ 1 the frozen knees that
    /// currently age into them).
    fn refresh_retention_gauges(&self) {
        let Some(policy) = self.config.retention else { return };
        let now = self.last_ts.map_or(0, Timestamp::ticks);
        let mut tier_bytes: Vec<u64> = vec![0];
        let mut tier_knees: Vec<u64> = vec![0];
        let mut frozen_bytes = 0u64;
        self.for_each_frozen(|frozen| {
            frozen_bytes += frozen.size_bytes() as u64;
            frozen.for_each_knee(|t, _| {
                let k = policy.tier_of(t, now) as usize;
                if tier_bytes.len() <= k {
                    tier_bytes.resize(k + 1, 0);
                    tier_knees.resize(k + 1, 0);
                }
                tier_bytes[k] += std::mem::size_of::<(u64, f64)>() as u64;
                tier_knees[k] += 1;
            });
        });
        // Everything not frozen is the live tier-0 working set.
        tier_bytes[0] += (self.size_bytes() as u64).saturating_sub(frozen_bytes);
        self.metrics.set_gauge("retention.compactions", self.compactions as f64);
        self.metrics.set_gauge("retention.tiers", tier_bytes.len() as f64);
        self.metrics.set_gauge("retention.window_ticks", policy.window as f64);
        for (k, (bytes, knees)) in tier_bytes.iter().zip(&tier_knees).enumerate() {
            let span = if k == 0 {
                policy.window
            } else {
                policy.window.saturating_mul(1u64.checked_shl(k as u32 - 1).unwrap_or(u64::MAX))
            };
            self.metrics.set_gauge(&format!("retention.tier{k}.bytes"), *bytes as f64);
            self.metrics.set_gauge(&format!("retention.tier{k}.knees"), *knees as f64);
            self.metrics.set_gauge(&format!("retention.tier{k}.span_ticks"), span as f64);
        }
    }

    /// Refreshes the leaf-grid gauges (`structure.cmpbe.*`).
    fn set_cm_gauges(&self, s: &bed_sketch::CmStructure) {
        self.metrics.set_gauge("structure.cmpbe.depth", s.depth as f64);
        self.metrics.set_gauge("structure.cmpbe.width", s.width as f64);
        self.metrics.set_gauge("structure.cmpbe.occupied_cells", s.occupied_cells as f64);
        if s.cells > 0 {
            let fill = s.occupied_cells as f64 / s.cells as f64;
            self.metrics.set_gauge("structure.cmpbe.fill_ratio", fill);
        }
        self.metrics
            .set_gauge("structure.cmpbe.heaviest_cell_arrivals", s.heaviest_cell_arrivals as f64);
        self.metrics.set_gauge("structure.cmpbe.pieces", s.pieces as f64);
        self.metrics.set_gauge("structure.cmpbe.buffered", s.buffered as f64);
    }

    /// Validates an event id against the universe. Single-event detectors
    /// expose their stream as event `0` in a universe of 1, so the unified
    /// query API stays total across modes.
    fn check_event(&self, event: EventId) -> Result<(), BedError> {
        let k = self.config.universe.unwrap_or(1);
        if event.value() >= k {
            return Err(
                StreamError::EventOutOfUniverse { event: event.value(), universe: k }.into()
            );
        }
        Ok(())
    }

    /// Routes one [`QueryRequest`] (validation already uniform per the
    /// [`BurstQueries`] contract), threading `scratch` through the fused
    /// kernels.
    fn dispatch(
        &self,
        request: &QueryRequest,
        scratch: &mut QueryScratch,
    ) -> Result<QueryResponse, BedError> {
        match *request {
            QueryRequest::Point { event, t, tau } => {
                self.check_event(event)?;
                // Under retention the probe is served by the finest tier
                // covering `t` relative to the ingest watermark; stamp it
                // so callers can judge the answer's resolution.
                let tier = self.config.retention.map(|p| {
                    let tier = p.tier_of(t.ticks(), self.last_ts.map_or(0, Timestamp::ticks));
                    self.metrics.count_tier_query(tier);
                    tier
                });
                // With the stage clocks armed (traced or EXPLAIN), the
                // burstiness estimate runs through the stage-aware probe
                // kernel — same value, with per-phase timings recorded.
                let burstiness =
                    if scratch.stages.enabled {
                        match &self.backend {
                            Backend::Single(pbe) => pbe.estimate_burstiness(t, tau),
                            Backend::Flat(grid) => {
                                grid.estimate_burstiness_stages(event, t, tau, &mut scratch.stages)
                            }
                            Backend::Hierarchical(forest) => forest
                                .grid(0)
                                .estimate_burstiness_stages(event, t, tau, &mut scratch.stages),
                        }
                    } else {
                        self.point_query(event, t, tau)
                    };
                Ok(QueryResponse::Point {
                    burstiness,
                    burst_frequency: self.burst_frequency(event, t, tau),
                    cumulative: self.cumulative_frequency(event, t),
                    tier,
                })
            }
            QueryRequest::BurstyTimes { event, theta, tau, horizon } => {
                self.check_event(event)?;
                check_theta_finite(theta)?;
                Ok(QueryResponse::BurstyTimes(
                    self.bursty_times_reusing(event, theta, tau, horizon, scratch),
                ))
            }
            QueryRequest::BurstyEvents { t, theta, tau, strategy } => {
                let (hits, stats) =
                    self.bursty_events_with_reusing(t, theta, tau, strategy, scratch)?;
                Ok(QueryResponse::BurstyEvents { hits, stats })
            }
            QueryRequest::Series { event, tau, range, step } => {
                self.check_event(event)?;
                check_range(range)?;
                check_step(step)?;
                Ok(QueryResponse::Series(self.burstiness_series(event, tau, range, step)))
            }
            QueryRequest::TopK { event, k, tau, horizon } => {
                self.check_event(event)?;
                Ok(QueryResponse::TopK(self.top_bursts_reusing(event, k, tau, horizon, scratch)))
            }
        }
    }
}

impl BurstQueries for BurstDetector {
    fn query(&self, request: &QueryRequest) -> Result<QueryResponse, BedError> {
        let mut scratch = QueryScratch::new();
        self.query_reusing(request, &mut scratch)
    }

    fn query_reusing(
        &self,
        request: &QueryRequest,
        scratch: &mut QueryScratch,
    ) -> Result<QueryResponse, BedError> {
        let kind = request.kind();
        let started = self.metrics.query_begin(kind);
        let trace = self.metrics.trace_query(kind, scratch.trace_id);
        // Arm the scratch stage clocks when this call owns the root span or
        // the caller asked for EXPLAIN; leave them alone when an outer
        // facade (sharded fan-out) armed them, so the facade can harvest
        // our kernels' timings.
        if trace.is_some() || scratch.explain {
            scratch.stages.reset(true);
        } else if !scratch.stages.enabled {
            scratch.stages.reset(false);
        }
        let result = self.dispatch(request, scratch);
        if let Some(trace) = trace {
            crate::observe::finish_query_trace(trace, scratch, request);
            // In EXPLAIN mode the serving layer harvests the populated
            // timings after we return; only disarm when it will not.
            if !scratch.explain {
                scratch.stages.reset(false);
            }
        }
        self.metrics.query_end(kind, started, result.is_ok(), scratch.trace_id);
        result
    }

    fn arrivals(&self) -> u64 {
        BurstDetector::arrivals(self)
    }

    fn size_bytes(&self) -> usize {
        BurstDetector::size_bytes(self)
    }

    fn config(&self) -> &DetectorConfig {
        BurstDetector::config(self)
    }

    fn metrics(&self) -> MetricsSnapshot {
        BurstDetector::metrics(self)
    }
}

impl Traceable for BurstDetector {
    fn set_tracer(&mut self, tracer: std::sync::Arc<Tracer>) {
        self.metrics.set_tracer(tracer);
    }

    fn tracer(&self) -> &std::sync::Arc<Tracer> {
        self.metrics.tracer()
    }
}

impl BurstDetectorBuilder {
    /// Selects the PBE variant for every cell.
    pub fn variant(mut self, variant: PbeVariant) -> Self {
        self.config.variant = variant;
        self
    }

    /// Sets Count-Min accuracy (ε, δ).
    pub fn accuracy(mut self, epsilon: f64, delta: f64) -> Self {
        self.config.sketch = bed_sketch::SketchParams { epsilon, delta };
        self
    }

    /// Declares a mixed stream over `[0, k)` event ids.
    pub fn universe(mut self, k: u32) -> Self {
        self.config.universe = Some(k);
        self
    }

    /// Declares a single-event stream (the default).
    pub fn single_event(mut self) -> Self {
        self.config.universe = None;
        self
    }

    /// Enables/disables the dyadic hierarchy (default on; only meaningful
    /// with a universe).
    pub fn hierarchical(mut self, on: bool) -> Self {
        self.config.hierarchical = on;
        self
    }

    /// Sets the hash seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Enables/disables runtime metric collection (default on; see
    /// [`BurstDetector::metrics`]).
    pub fn metrics(mut self, on: bool) -> Self {
        self.config.metrics = on;
        self
    }

    /// Sets the tiered retention policy (`None` = unbounded history, the
    /// default). With a policy, live PBE state folds into frozen
    /// Hokusai-style tiers every `compact_every` arrivals, bounding
    /// memory; probes older than the window are answered at the coarser
    /// tier resolution and stamped with the serving tier.
    pub fn retention(mut self, policy: Option<bed_sketch::RetentionPolicy>) -> Self {
        self.config.retention = policy;
        self
    }

    /// Splits the configured universe across `n` hash-partitioned shards,
    /// switching to a [`crate::ShardedDetector`] builder for parallel
    /// ingestion (requires `.universe(k)`).
    pub fn shards(self, n: usize) -> crate::shard::ShardedDetectorBuilder {
        crate::shard::ShardedDetectorBuilder { config: self.config, shards: n }
    }

    /// Builds the detector.
    pub fn build(self) -> Result<BurstDetector, BedError> {
        BurstDetector::from_config(self.config)
    }
}

impl bed_stream::Codec for PbeVariant {
    fn encode(&self, w: &mut bed_stream::codec::Writer) {
        match *self {
            PbeVariant::Pbe1 { n_buf, eta } => {
                w.u8(1);
                w.u64(n_buf as u64);
                w.u64(eta as u64);
            }
            PbeVariant::Pbe2 { gamma, max_vertices } => {
                w.u8(2);
                w.f64(gamma);
                w.u64(max_vertices as u64);
            }
        }
    }

    fn decode(r: &mut bed_stream::codec::Reader<'_>) -> Result<Self, bed_stream::CodecError> {
        let variant = match r.u8("variant tag")? {
            1 => PbeVariant::Pbe1 {
                n_buf: r.u64("variant n_buf")? as usize,
                eta: r.u64("variant eta")? as usize,
            },
            2 => PbeVariant::Pbe2 {
                gamma: r.f64("variant gamma")?,
                max_vertices: r.u64("variant max_vertices")? as usize,
            },
            _ => return Err(bed_stream::CodecError::Invalid { context: "variant tag" }),
        };
        variant
            .validate()
            .map_err(|_| bed_stream::CodecError::Invalid { context: "variant parameters" })?;
        Ok(variant)
    }
}

/// Persistence (format `BEDD` v1): full configuration plus the backend —
/// a decoded detector answers the same queries and can keep ingesting.
impl bed_stream::Codec for BurstDetector {
    fn encode(&self, w: &mut bed_stream::codec::Writer) {
        w.magic(*b"BEDD");
        w.version(1);
        self.config.encode(w);
        match self.last_ts {
            Some(t) => {
                w.u8(1);
                t.encode(w);
            }
            None => w.u8(0),
        }
        w.u64(self.compactions);
        match &self.backend {
            Backend::Single(cell) => {
                w.u8(0);
                cell.encode(w);
            }
            Backend::Flat(grid) => {
                w.u8(1);
                grid.encode(w);
            }
            Backend::Hierarchical(forest) => {
                w.u8(2);
                forest.encode(w);
            }
        }
    }

    fn decode(r: &mut bed_stream::codec::Reader<'_>) -> Result<Self, bed_stream::CodecError> {
        use bed_stream::CodecError;
        r.magic(*b"BEDD")?;
        r.version(1)?;
        // `metrics` is runtime-only and deliberately not part of the BEDD
        // format; decoded detectors always start with collection on.
        let config = crate::config::DetectorConfig::decode(r)?;
        let (universe, hierarchical) = (config.universe, config.hierarchical);
        let last_ts = match r.u8("detector last_ts flag")? {
            0 => None,
            1 => Some(Timestamp::decode(r)?),
            _ => return Err(CodecError::Invalid { context: "detector last_ts flag" }),
        };
        let compactions = r.u64("detector compactions")?;
        let backend = match r.u8("backend tag")? {
            0 => Backend::Single(PbeCell::decode(r)?),
            1 => Backend::Flat(bed_sketch::CmPbe::decode(r)?),
            2 => Backend::Hierarchical(DyadicCmPbe::decode(r)?),
            _ => return Err(CodecError::Invalid { context: "backend tag" }),
        };
        // Backend must match the configuration's mode.
        let consistent = matches!(
            (&backend, universe, hierarchical),
            (Backend::Single(_), None, _)
                | (Backend::Flat(_), Some(_), false)
                | (Backend::Hierarchical(_), Some(_), true)
        );
        if !consistent {
            return Err(CodecError::Invalid { context: "backend/config mismatch" });
        }
        let metrics = DetectorMetrics::new(true);
        let det = BurstDetector { config, backend, last_ts, metrics, compactions };
        det.metrics.seed_ingests(det.arrivals());
        Ok(det)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst_fixture(det: &mut BurstDetector) {
        // event 0 steady, event 1 bursts at the end
        for t in 0..100u64 {
            det.ingest(EventId(0), Timestamp(t)).unwrap();
            if t >= 90 {
                for _ in 0..10 {
                    det.ingest(EventId(1), Timestamp(t)).unwrap();
                }
            }
        }
        det.finalize();
    }

    #[test]
    fn single_event_roundtrip() {
        let mut det = BurstDetector::builder().variant(PbeVariant::pbe2(1.0)).build().unwrap();
        for t in 0..50u64 {
            det.ingest_single(Timestamp(t)).unwrap();
        }
        det.finalize();
        assert_eq!(det.arrivals(), 50);
        let tau = BurstSpan::new(10).unwrap();
        let b = det.point_query(EventId(0), Timestamp(49), tau);
        assert!(b.abs() <= 4.0 + 1e-9, "steady stream burstiness {b}");
        assert!(det.size_bytes() > 0);
        // mixed-mode operations are rejected
        assert!(matches!(det.ingest(EventId(0), Timestamp(60)), Err(BedError::WrongMode { .. })));
        assert!(matches!(
            det.bursty_events_with(Timestamp(0), 1.0, tau, QueryStrategy::Pruned),
            Err(BedError::WrongMode { .. })
        ));
    }

    #[test]
    fn hierarchical_detector_finds_bursts() {
        let mut det = BurstDetector::builder()
            .universe(8)
            .variant(PbeVariant::pbe2(1.0))
            .accuracy(0.005, 0.05)
            .seed(3)
            .build()
            .unwrap();
        burst_fixture(&mut det);
        let tau = BurstSpan::new(10).unwrap();
        let (hits, stats) =
            det.bursty_events_with(Timestamp(99), 50.0, tau, QueryStrategy::Pruned).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].event, EventId(1));
        assert!(stats.point_queries > 0);
        // bursty times of the bursting event land near the burst
        let times = det.bursty_times(EventId(1), 50.0, tau, Timestamp(200));
        assert!(!times.is_empty());
        assert!(times.iter().all(|&(t, _)| (85..=130).contains(&t.ticks())));
    }

    #[test]
    fn flat_detector_scans() {
        let mut det = BurstDetector::builder()
            .universe(8)
            .hierarchical(false)
            .variant(PbeVariant::pbe1(16))
            .seed(3)
            .build()
            .unwrap();
        burst_fixture(&mut det);
        let tau = BurstSpan::new(10).unwrap();
        let (hits, stats) =
            det.bursty_events_with(Timestamp(99), 50.0, tau, QueryStrategy::Pruned).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].event, EventId(1));
        assert_eq!(stats.point_queries, 8); // full scan
    }

    #[test]
    fn rejects_non_monotone_and_out_of_universe() {
        let mut det =
            BurstDetector::builder().universe(4).variant(PbeVariant::pbe2(1.0)).build().unwrap();
        det.ingest(EventId(0), Timestamp(10)).unwrap();
        assert!(det.ingest(EventId(0), Timestamp(9)).is_err());
        assert!(det.ingest(EventId(4), Timestamp(11)).is_err());
    }

    #[test]
    fn invalid_configs_rejected_at_build() {
        assert!(BurstDetector::builder()
            .variant(PbeVariant::Pbe1 { n_buf: 2, eta: 5 })
            .build()
            .is_err());
        assert!(BurstDetector::builder().accuracy(0.0, 0.5).universe(4).build().is_err());
    }

    #[test]
    fn series_and_top_bursts() {
        let mut det = BurstDetector::builder()
            .universe(8)
            .variant(PbeVariant::pbe2(1.0))
            .seed(3)
            .build()
            .unwrap();
        burst_fixture(&mut det);
        let tau = BurstSpan::new(10).unwrap();
        let range = bed_stream::TimeRange::up_to(Timestamp(120))
            .merge(&bed_stream::TimeRange { start: Timestamp(0), end: Timestamp(120) });
        let series = det.burstiness_series(EventId(1), tau, range, 10);
        assert_eq!(series.len(), 13);
        // the series peaks inside the burst window (t ≈ 90..100)
        let (peak_t, peak_b) =
            series.iter().copied().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
        assert!((90..=110).contains(&peak_t.ticks()), "peak at {peak_t}");
        assert!(peak_b > 50.0);

        let top = det.top_bursts(EventId(1), 3, tau, Timestamp(200));
        assert!(!top.is_empty() && top.len() <= 3);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1), "descending order");
        assert!((85..=110).contains(&top[0].0.ticks()), "top burst at {}", top[0].0);
    }

    #[test]
    fn range_restricted_bursty_events() {
        let mut det = BurstDetector::builder()
            .universe(8)
            .variant(PbeVariant::pbe2(1.0))
            .seed(3)
            .build()
            .unwrap();
        burst_fixture(&mut det); // event 1 bursts
        let tau = BurstSpan::new(10).unwrap();
        let (hits, _) = det
            .bursty_events_in_range_with(0, 4, Timestamp(99), 50.0, tau, QueryStrategy::Pruned)
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].event, EventId(1));
        let (hits, _) = det
            .bursty_events_in_range_with(4, 8, Timestamp(99), 50.0, tau, QueryStrategy::Pruned)
            .unwrap();
        assert!(hits.is_empty());
        // flat detectors reject the pruned range query but can scan it
        let mut flat = BurstDetector::builder()
            .universe(8)
            .hierarchical(false)
            .variant(PbeVariant::pbe2(1.0))
            .build()
            .unwrap();
        flat.ingest(EventId(0), Timestamp(0)).unwrap();
        assert!(matches!(
            flat.bursty_events_in_range_with(0, 4, Timestamp(0), 1.0, tau, QueryStrategy::Pruned),
            Err(BedError::HierarchyDisabled)
        ));
        let (hits, stats) = flat
            .bursty_events_in_range_with(0, 4, Timestamp(0), 5.0, tau, QueryStrategy::ExactScan)
            .unwrap();
        assert!(hits.is_empty());
        assert_eq!(stats.point_queries, 4);
    }

    #[test]
    fn cumulative_and_rate_estimates() {
        let mut det =
            BurstDetector::builder().universe(4).variant(PbeVariant::pbe2(1.0)).build().unwrap();
        for t in 0..40u64 {
            det.ingest(EventId(2), Timestamp(t)).unwrap();
        }
        det.finalize();
        let tau = BurstSpan::new(10).unwrap();
        let f = det.cumulative_frequency(EventId(2), Timestamp(39));
        assert!((f - 40.0).abs() <= 2.0, "F̃={f}");
        let bf = det.burst_frequency(EventId(2), Timestamp(39), tau);
        assert!((bf - 10.0).abs() <= 3.0, "b̃f={bf}");
    }
}
