//! The [`BurstDetector`] facade.

use bed_hierarchy::query::{bursty_times_over, bursty_times_single};
use bed_hierarchy::{BurstyEventHit, DyadicCmPbe, QueryStats};
use bed_pbe::CurveSketch;
use bed_sketch::CmPbe;
use bed_stream::{BurstSpan, EventId, StreamError, Timestamp};

use crate::cell::PbeCell;
use crate::config::{DetectorConfig, PbeVariant};
use crate::error::BedError;

/// Storage backend selected by the configuration.
#[derive(Debug, Clone)]
enum Backend {
    /// One PBE over a single event stream (Section III).
    Single(PbeCell),
    /// One CM-PBE over a mixed stream (Section IV).
    Flat(CmPbe<PbeCell>),
    /// Per-level CM-PBEs over the dyadic decomposition (Section V).
    Hierarchical(DyadicCmPbe<PbeCell>),
}

/// Historical burstiness detector: ingest a stream once, then ask *point*,
/// *bursty time*, and *bursty event* queries about any moment of the past.
///
/// Construct via [`BurstDetector::builder`]; see the crate-level example.
#[derive(Debug, Clone)]
pub struct BurstDetector {
    config: DetectorConfig,
    backend: Backend,
    last_ts: Option<Timestamp>,
}

/// Builder for [`BurstDetector`].
#[derive(Debug, Clone)]
pub struct BurstDetectorBuilder {
    config: DetectorConfig,
}

impl BurstDetector {
    /// Starts a builder with default configuration (single-event PBE-2).
    pub fn builder() -> BurstDetectorBuilder {
        BurstDetectorBuilder { config: DetectorConfig::default() }
    }

    /// Builds directly from a configuration.
    pub fn from_config(config: DetectorConfig) -> Result<Self, BedError> {
        config.variant.validate()?;
        config.sketch.validate()?;
        let backend = match (config.universe, config.hierarchical) {
            (None, _) => Backend::Single(config.variant.make_cell()),
            (Some(k), true) => {
                Backend::Hierarchical(DyadicCmPbe::new(k, config.sketch, config.seed, |_| {
                    config.variant.make_cell()
                })?)
            }
            (Some(_), false) => Backend::Flat(CmPbe::new(config.sketch, config.seed, || {
                config.variant.make_cell()
            })?),
        };
        Ok(BurstDetector { config, backend, last_ts: None })
    }

    /// The configuration in force.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    fn check_monotone(&mut self, ts: Timestamp) -> Result<(), BedError> {
        if let Some(last) = self.last_ts {
            if ts < last {
                return Err(
                    StreamError::NonMonotonicTimestamp { previous: last, offered: ts }.into()
                );
            }
        }
        self.last_ts = Some(ts);
        Ok(())
    }

    /// Records one arrival of `event` at `ts` (mixed-stream modes).
    pub fn ingest(&mut self, event: EventId, ts: Timestamp) -> Result<(), BedError> {
        self.check_monotone(ts)?;
        match &mut self.backend {
            Backend::Single(_) => Err(BedError::WrongMode {
                operation: "ingest(event, ts)",
                built_for: "a single event stream (use ingest_single)",
            }),
            Backend::Flat(grid) => {
                if let Some(k) = self.config.universe {
                    if event.value() >= k {
                        return Err(StreamError::EventOutOfUniverse {
                            event: event.value(),
                            universe: k,
                        }
                        .into());
                    }
                }
                grid.update(event, ts);
                Ok(())
            }
            Backend::Hierarchical(forest) => Ok(forest.update(event, ts)?),
        }
    }

    /// Records one arrival on a single-event detector.
    pub fn ingest_single(&mut self, ts: Timestamp) -> Result<(), BedError> {
        self.check_monotone(ts)?;
        match &mut self.backend {
            Backend::Single(pbe) => {
                pbe.update(ts);
                Ok(())
            }
            _ => Err(BedError::WrongMode {
                operation: "ingest_single(ts)",
                built_for: "mixed event streams (use ingest)",
            }),
        }
    }

    /// Flushes internal buffering; queries are valid before and after, but
    /// `size_bytes` reflects the final summary only afterwards.
    pub fn finalize(&mut self) {
        match &mut self.backend {
            Backend::Single(pbe) => pbe.finalize(),
            Backend::Flat(grid) => grid.finalize(),
            Backend::Hierarchical(forest) => forest.finalize(),
        }
    }

    /// POINT QUERY `q(e, t, τ)`: estimated burstiness `b̃_e(t)`.
    pub fn point_query(&self, event: EventId, t: Timestamp, tau: BurstSpan) -> f64 {
        match &self.backend {
            Backend::Single(pbe) => pbe.estimate_burstiness(t, tau),
            Backend::Flat(grid) => grid.estimate_burstiness(event, t, tau),
            Backend::Hierarchical(forest) => forest.estimate_burstiness(event, t, tau),
        }
    }

    /// Estimated cumulative frequency `F̃_e(t)`.
    pub fn cumulative_frequency(&self, event: EventId, t: Timestamp) -> f64 {
        match &self.backend {
            Backend::Single(pbe) => pbe.estimate_cum(t),
            Backend::Flat(grid) => grid.estimate_cum(event, t),
            Backend::Hierarchical(forest) => forest.estimate_cum(event, t),
        }
    }

    /// Estimated incoming rate `b̃f_e(t)`.
    pub fn burst_frequency(&self, event: EventId, t: Timestamp, tau: BurstSpan) -> f64 {
        match &self.backend {
            Backend::Single(pbe) => pbe.estimate_burst_frequency(t, tau),
            Backend::Flat(grid) => grid.estimate_burst_frequency(event, t, tau),
            Backend::Hierarchical(forest) => forest.grid(0).estimate_burst_frequency(event, t, tau),
        }
    }

    /// BURSTY TIME QUERY `q(e, θ, τ)`: instants within `[0, horizon]` where
    /// the estimated burstiness reaches θ, with the estimates.
    pub fn bursty_times(
        &self,
        event: EventId,
        theta: f64,
        tau: BurstSpan,
        horizon: Timestamp,
    ) -> Vec<(Timestamp, f64)> {
        match &self.backend {
            Backend::Single(pbe) => bursty_times_single(pbe, theta, tau, horizon),
            Backend::Flat(grid) => bursty_times_over(grid, event, theta, tau, horizon),
            Backend::Hierarchical(forest) => forest.bursty_times(event, theta, tau, horizon),
        }
    }

    /// BURSTY TIME QUERY with **interval semantics** (single-event mode
    /// only): the maximal time ranges within `[0, horizon]` where the
    /// estimated burstiness reaches θ — exact with respect to the sketch,
    /// including mid-segment threshold crossings of PLA summaries.
    pub fn bursty_time_ranges(
        &self,
        theta: f64,
        tau: BurstSpan,
        horizon: Timestamp,
    ) -> Result<Vec<bed_stream::TimeRange>, BedError> {
        match &self.backend {
            Backend::Single(pbe) => Ok(bed_pbe::bursty_time_ranges(pbe, theta, tau, horizon)),
            _ => Err(BedError::WrongMode {
                operation: "bursty_time_ranges",
                built_for: "mixed event streams (use bursty_times)",
            }),
        }
    }

    /// BURSTY EVENT QUERY `q(t, θ, τ)`: events whose estimated burstiness at
    /// `t` reaches θ (θ > 0), plus probe statistics.
    ///
    /// Uses the pruned dyadic search when the hierarchy is enabled, else a
    /// full scan over the universe.
    pub fn bursty_events(
        &self,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        // NaN must fail too, so the negated comparison is deliberate: the
        // dyadic pruning bound compares squares and a non-positive threshold
        // is meaningless (and would assert in the hierarchy).
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(theta > 0.0) {
            return Err(StreamError::InvalidProbability { parameter: "theta", got: theta }.into());
        }
        match &self.backend {
            Backend::Single(_) => Err(BedError::WrongMode {
                operation: "bursty_events",
                built_for: "a single event stream",
            }),
            Backend::Flat(grid) => {
                let k = self.config.universe.expect("flat mode implies a universe");
                Ok(Self::scan_grid(grid, k, t, theta, tau))
            }
            Backend::Hierarchical(forest) => Ok(forest.bursty_events(t, theta, tau)),
        }
    }

    /// BURSTY EVENT QUERY via exhaustive scan over the universe — no
    /// dyadic pruning, so the hit set is exactly the events whose point
    /// query reaches θ. The reference answer for equivalence tests (the
    /// pruned search may skip events masked by sign cancellation).
    pub fn bursty_events_scan(
        &self,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail too
        if !(theta > 0.0) {
            return Err(StreamError::InvalidProbability { parameter: "theta", got: theta }.into());
        }
        match &self.backend {
            Backend::Single(_) => Err(BedError::WrongMode {
                operation: "bursty_events_scan",
                built_for: "a single event stream",
            }),
            Backend::Flat(grid) => {
                let k = self.config.universe.expect("flat mode implies a universe");
                Ok(Self::scan_grid(grid, k, t, theta, tau))
            }
            Backend::Hierarchical(forest) => Ok(forest.bursty_events_scan(t, theta, tau)),
        }
    }

    fn scan_grid(
        grid: &CmPbe<PbeCell>,
        k: u32,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
    ) -> (Vec<BurstyEventHit>, QueryStats) {
        let mut hits = Vec::new();
        let mut stats = QueryStats::default();
        for e in 0..k {
            stats.point_queries += 1;
            stats.leaves_probed += 1;
            let b = grid.estimate_burstiness(EventId(e), t, tau);
            if b >= theta {
                hits.push(BurstyEventHit { event: EventId(e), burstiness: b });
            }
        }
        (hits, stats)
    }

    /// BURSTY EVENT QUERY restricted to event ids `[lo, hi)` — exploits the
    /// dyadic structure to skip disjoint subtrees (hierarchical mode only).
    pub fn bursty_events_in_range(
        &self,
        lo: u32,
        hi: u32,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
    ) -> Result<(Vec<BurstyEventHit>, QueryStats), BedError> {
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must fail too
        if !(theta > 0.0) {
            return Err(StreamError::InvalidProbability { parameter: "theta", got: theta }.into());
        }
        if lo >= hi {
            return Err(StreamError::InvertedRange {
                start: Timestamp(lo as u64),
                end: Timestamp(hi as u64),
            }
            .into());
        }
        match &self.backend {
            Backend::Hierarchical(forest) => {
                Ok(forest.bursty_events_in_range(lo, hi, t, theta, tau))
            }
            _ => Err(BedError::HierarchyDisabled),
        }
    }

    /// Estimated burstiness time series of one event, sampled every `step`
    /// ticks over `[range.start, range.end]` — the data behind dashboards
    /// and the paper's Fig. 7b / Fig. 13 plots.
    pub fn burstiness_series(
        &self,
        event: EventId,
        tau: BurstSpan,
        range: bed_stream::TimeRange,
        step: u64,
    ) -> Vec<(Timestamp, f64)> {
        assert!(step > 0, "step must be positive");
        let mut out = Vec::new();
        let mut t = range.start.ticks();
        while t <= range.end.ticks() {
            out.push((Timestamp(t), self.point_query(event, Timestamp(t), tau)));
            t += step;
        }
        out
    }

    /// The `k` most bursty instants of an event within `[0, horizon]`,
    /// ordered by descending estimated burstiness. Probes the sketch's knee
    /// echoes (like [`Self::bursty_times`]) so the cost is linear in the
    /// summary size, not the horizon.
    pub fn top_bursts(
        &self,
        event: EventId,
        k: usize,
        tau: BurstSpan,
        horizon: Timestamp,
    ) -> Vec<(Timestamp, f64)> {
        let mut hits = self.bursty_times(event, f64::MIN, tau, horizon);
        hits.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite estimates"));
        hits.truncate(k);
        hits
    }

    /// Elements ingested so far.
    pub fn arrivals(&self) -> u64 {
        match &self.backend {
            Backend::Single(pbe) => pbe.arrivals(),
            Backend::Flat(grid) => grid.arrivals(),
            Backend::Hierarchical(forest) => forest.arrivals(),
        }
    }

    /// Current summary size in bytes.
    pub fn size_bytes(&self) -> usize {
        match &self.backend {
            Backend::Single(pbe) => pbe.size_bytes(),
            Backend::Flat(grid) => grid.size_bytes(),
            Backend::Hierarchical(forest) => forest.size_bytes(),
        }
    }
}

impl BurstDetectorBuilder {
    /// Selects the PBE variant for every cell.
    pub fn variant(mut self, variant: PbeVariant) -> Self {
        self.config.variant = variant;
        self
    }

    /// Sets Count-Min accuracy (ε, δ).
    pub fn accuracy(mut self, epsilon: f64, delta: f64) -> Self {
        self.config.sketch = bed_sketch::SketchParams { epsilon, delta };
        self
    }

    /// Declares a mixed stream over `[0, k)` event ids.
    pub fn universe(mut self, k: u32) -> Self {
        self.config.universe = Some(k);
        self
    }

    /// Declares a single-event stream (the default).
    pub fn single_event(mut self) -> Self {
        self.config.universe = None;
        self
    }

    /// Enables/disables the dyadic hierarchy (default on; only meaningful
    /// with a universe).
    pub fn hierarchical(mut self, on: bool) -> Self {
        self.config.hierarchical = on;
        self
    }

    /// Sets the hash seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Splits the configured universe across `n` hash-partitioned shards,
    /// switching to a [`crate::ShardedDetector`] builder for parallel
    /// ingestion (requires `.universe(k)`).
    pub fn shards(self, n: usize) -> crate::shard::ShardedDetectorBuilder {
        crate::shard::ShardedDetectorBuilder { config: self.config, shards: n }
    }

    /// Builds the detector.
    pub fn build(self) -> Result<BurstDetector, BedError> {
        BurstDetector::from_config(self.config)
    }
}

impl bed_stream::Codec for PbeVariant {
    fn encode(&self, w: &mut bed_stream::codec::Writer) {
        match *self {
            PbeVariant::Pbe1 { n_buf, eta } => {
                w.u8(1);
                w.u64(n_buf as u64);
                w.u64(eta as u64);
            }
            PbeVariant::Pbe2 { gamma, max_vertices } => {
                w.u8(2);
                w.f64(gamma);
                w.u64(max_vertices as u64);
            }
        }
    }

    fn decode(r: &mut bed_stream::codec::Reader<'_>) -> Result<Self, bed_stream::CodecError> {
        let variant = match r.u8("variant tag")? {
            1 => PbeVariant::Pbe1 {
                n_buf: r.u64("variant n_buf")? as usize,
                eta: r.u64("variant eta")? as usize,
            },
            2 => PbeVariant::Pbe2 {
                gamma: r.f64("variant gamma")?,
                max_vertices: r.u64("variant max_vertices")? as usize,
            },
            _ => return Err(bed_stream::CodecError::Invalid { context: "variant tag" }),
        };
        variant
            .validate()
            .map_err(|_| bed_stream::CodecError::Invalid { context: "variant parameters" })?;
        Ok(variant)
    }
}

/// Persistence (format `BEDD` v1): full configuration plus the backend —
/// a decoded detector answers the same queries and can keep ingesting.
impl bed_stream::Codec for BurstDetector {
    fn encode(&self, w: &mut bed_stream::codec::Writer) {
        w.magic(*b"BEDD");
        w.version(1);
        self.config.variant.encode(w);
        w.f64(self.config.sketch.epsilon);
        w.f64(self.config.sketch.delta);
        match self.config.universe {
            Some(k) => {
                w.u8(1);
                w.u32(k);
            }
            None => w.u8(0),
        }
        w.u8(u8::from(self.config.hierarchical));
        w.u64(self.config.seed);
        match self.last_ts {
            Some(t) => {
                w.u8(1);
                t.encode(w);
            }
            None => w.u8(0),
        }
        match &self.backend {
            Backend::Single(cell) => {
                w.u8(0);
                cell.encode(w);
            }
            Backend::Flat(grid) => {
                w.u8(1);
                grid.encode(w);
            }
            Backend::Hierarchical(forest) => {
                w.u8(2);
                forest.encode(w);
            }
        }
    }

    fn decode(r: &mut bed_stream::codec::Reader<'_>) -> Result<Self, bed_stream::CodecError> {
        use bed_stream::CodecError;
        r.magic(*b"BEDD")?;
        r.version(1)?;
        let variant = PbeVariant::decode(r)?;
        let sketch = bed_sketch::SketchParams {
            epsilon: r.f64("config epsilon")?,
            delta: r.f64("config delta")?,
        };
        sketch.validate().map_err(|_| CodecError::Invalid { context: "sketch params" })?;
        let universe = match r.u8("config universe flag")? {
            0 => None,
            1 => Some(r.u32("config universe")?),
            _ => return Err(CodecError::Invalid { context: "config universe flag" }),
        };
        let hierarchical = match r.u8("config hierarchy flag")? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::Invalid { context: "config hierarchy flag" }),
        };
        let seed = r.u64("config seed")?;
        let last_ts = match r.u8("detector last_ts flag")? {
            0 => None,
            1 => Some(Timestamp::decode(r)?),
            _ => return Err(CodecError::Invalid { context: "detector last_ts flag" }),
        };
        let config =
            crate::config::DetectorConfig { variant, sketch, universe, hierarchical, seed };
        let backend = match r.u8("backend tag")? {
            0 => Backend::Single(PbeCell::decode(r)?),
            1 => Backend::Flat(bed_sketch::CmPbe::decode(r)?),
            2 => Backend::Hierarchical(DyadicCmPbe::decode(r)?),
            _ => return Err(CodecError::Invalid { context: "backend tag" }),
        };
        // Backend must match the configuration's mode.
        let consistent = matches!(
            (&backend, universe, hierarchical),
            (Backend::Single(_), None, _)
                | (Backend::Flat(_), Some(_), false)
                | (Backend::Hierarchical(_), Some(_), true)
        );
        if !consistent {
            return Err(CodecError::Invalid { context: "backend/config mismatch" });
        }
        Ok(BurstDetector { config, backend, last_ts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst_fixture(det: &mut BurstDetector) {
        // event 0 steady, event 1 bursts at the end
        for t in 0..100u64 {
            det.ingest(EventId(0), Timestamp(t)).unwrap();
            if t >= 90 {
                for _ in 0..10 {
                    det.ingest(EventId(1), Timestamp(t)).unwrap();
                }
            }
        }
        det.finalize();
    }

    #[test]
    fn single_event_roundtrip() {
        let mut det = BurstDetector::builder().variant(PbeVariant::pbe2(1.0)).build().unwrap();
        for t in 0..50u64 {
            det.ingest_single(Timestamp(t)).unwrap();
        }
        det.finalize();
        assert_eq!(det.arrivals(), 50);
        let tau = BurstSpan::new(10).unwrap();
        let b = det.point_query(EventId(0), Timestamp(49), tau);
        assert!(b.abs() <= 4.0 + 1e-9, "steady stream burstiness {b}");
        assert!(det.size_bytes() > 0);
        // mixed-mode operations are rejected
        assert!(matches!(det.ingest(EventId(0), Timestamp(60)), Err(BedError::WrongMode { .. })));
        assert!(matches!(
            det.bursty_events(Timestamp(0), 1.0, tau),
            Err(BedError::WrongMode { .. })
        ));
    }

    #[test]
    fn hierarchical_detector_finds_bursts() {
        let mut det = BurstDetector::builder()
            .universe(8)
            .variant(PbeVariant::pbe2(1.0))
            .accuracy(0.005, 0.05)
            .seed(3)
            .build()
            .unwrap();
        burst_fixture(&mut det);
        let tau = BurstSpan::new(10).unwrap();
        let (hits, stats) = det.bursty_events(Timestamp(99), 50.0, tau).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].event, EventId(1));
        assert!(stats.point_queries > 0);
        // bursty times of the bursting event land near the burst
        let times = det.bursty_times(EventId(1), 50.0, tau, Timestamp(200));
        assert!(!times.is_empty());
        assert!(times.iter().all(|&(t, _)| (85..=130).contains(&t.ticks())));
    }

    #[test]
    fn flat_detector_scans() {
        let mut det = BurstDetector::builder()
            .universe(8)
            .hierarchical(false)
            .variant(PbeVariant::pbe1(16))
            .seed(3)
            .build()
            .unwrap();
        burst_fixture(&mut det);
        let tau = BurstSpan::new(10).unwrap();
        let (hits, stats) = det.bursty_events(Timestamp(99), 50.0, tau).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].event, EventId(1));
        assert_eq!(stats.point_queries, 8); // full scan
    }

    #[test]
    fn rejects_non_monotone_and_out_of_universe() {
        let mut det =
            BurstDetector::builder().universe(4).variant(PbeVariant::pbe2(1.0)).build().unwrap();
        det.ingest(EventId(0), Timestamp(10)).unwrap();
        assert!(det.ingest(EventId(0), Timestamp(9)).is_err());
        assert!(det.ingest(EventId(4), Timestamp(11)).is_err());
    }

    #[test]
    fn invalid_configs_rejected_at_build() {
        assert!(BurstDetector::builder()
            .variant(PbeVariant::Pbe1 { n_buf: 2, eta: 5 })
            .build()
            .is_err());
        assert!(BurstDetector::builder().accuracy(0.0, 0.5).universe(4).build().is_err());
    }

    #[test]
    fn series_and_top_bursts() {
        let mut det = BurstDetector::builder()
            .universe(8)
            .variant(PbeVariant::pbe2(1.0))
            .seed(3)
            .build()
            .unwrap();
        burst_fixture(&mut det);
        let tau = BurstSpan::new(10).unwrap();
        let range = bed_stream::TimeRange::up_to(Timestamp(120))
            .merge(&bed_stream::TimeRange { start: Timestamp(0), end: Timestamp(120) });
        let series = det.burstiness_series(EventId(1), tau, range, 10);
        assert_eq!(series.len(), 13);
        // the series peaks inside the burst window (t ≈ 90..100)
        let (peak_t, peak_b) =
            series.iter().copied().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
        assert!((90..=110).contains(&peak_t.ticks()), "peak at {peak_t}");
        assert!(peak_b > 50.0);

        let top = det.top_bursts(EventId(1), 3, tau, Timestamp(200));
        assert!(!top.is_empty() && top.len() <= 3);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1), "descending order");
        assert!((85..=110).contains(&top[0].0.ticks()), "top burst at {}", top[0].0);
    }

    #[test]
    fn range_restricted_bursty_events() {
        let mut det = BurstDetector::builder()
            .universe(8)
            .variant(PbeVariant::pbe2(1.0))
            .seed(3)
            .build()
            .unwrap();
        burst_fixture(&mut det); // event 1 bursts
        let tau = BurstSpan::new(10).unwrap();
        let (hits, _) = det.bursty_events_in_range(0, 4, Timestamp(99), 50.0, tau).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].event, EventId(1));
        let (hits, _) = det.bursty_events_in_range(4, 8, Timestamp(99), 50.0, tau).unwrap();
        assert!(hits.is_empty());
        // flat detectors reject the range query
        let mut flat = BurstDetector::builder()
            .universe(8)
            .hierarchical(false)
            .variant(PbeVariant::pbe2(1.0))
            .build()
            .unwrap();
        flat.ingest(EventId(0), Timestamp(0)).unwrap();
        assert!(matches!(
            flat.bursty_events_in_range(0, 4, Timestamp(0), 1.0, tau),
            Err(BedError::HierarchyDisabled)
        ));
    }

    #[test]
    fn cumulative_and_rate_estimates() {
        let mut det =
            BurstDetector::builder().universe(4).variant(PbeVariant::pbe2(1.0)).build().unwrap();
        for t in 0..40u64 {
            det.ingest(EventId(2), Timestamp(t)).unwrap();
        }
        det.finalize();
        let tau = BurstSpan::new(10).unwrap();
        let f = det.cumulative_frequency(EventId(2), Timestamp(39));
        assert!((f - 40.0).abs() <= 2.0, "F̃={f}");
        let bf = det.burst_frequency(EventId(2), Timestamp(39), tau);
        assert!((bf - 10.0).abs() <= 3.0, "b̃f={bf}");
    }
}
