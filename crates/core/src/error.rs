//! Error type of the facade.

use std::fmt;

use bed_stream::StreamError;

/// Errors surfaced by [`crate::BurstDetector`].
#[derive(Debug, Clone, PartialEq)]
pub enum BedError {
    /// An underlying stream/parameter error.
    Stream(StreamError),
    /// A multi-event operation was invoked on a detector built without a
    /// universe (single-event mode), or vice versa.
    WrongMode {
        /// The operation attempted.
        operation: &'static str,
        /// What the detector was built for.
        built_for: &'static str,
    },
    /// A bursty event query needs the dyadic hierarchy, which was disabled
    /// at build time.
    HierarchyDisabled,
    /// A sharded detector needs at least one shard.
    InvalidShardCount {
        /// The shard count requested.
        got: usize,
    },
    /// A write-ahead-log operation failed; the arrival was NOT ingested
    /// (durability before state — see [`crate::wal::WalSink`]).
    Wal(
        /// The rendered [`crate::checkpoint::RecoveryError`] (stringly so
        /// `BedError` stays `Clone + PartialEq`).
        String,
    ),
}

impl fmt::Display for BedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BedError::Stream(e) => write!(f, "{e}"),
            BedError::WrongMode { operation, built_for } => {
                write!(f, "{operation} is unavailable: detector was built for {built_for}")
            }
            BedError::HierarchyDisabled => {
                write!(f, "bursty event queries need .hierarchical(true) at build time")
            }
            BedError::InvalidShardCount { got } => {
                write!(f, "shard count must be at least 1, got {got}")
            }
            BedError::Wal(e) => write!(f, "write-ahead log failure (arrival not ingested): {e}"),
        }
    }
}

impl std::error::Error for BedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BedError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StreamError> for BedError {
    fn from(e: StreamError) -> Self {
        BedError::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: BedError = StreamError::ZeroBurstSpan.into();
        assert!(e.to_string().contains("τ"));
        assert!(std::error::Error::source(&e).is_some());
        let e = BedError::WrongMode { operation: "ingest", built_for: "single-event streams" };
        assert!(e.to_string().contains("ingest"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
