//! # bed-core — the public API for bursty event detection throughout histories
//!
//! [`BurstDetector`] ties the workspace together behind one builder-style
//! entry point:
//!
//! ```
//! use bed_core::{BurstDetector, PbeVariant};
//! use bed_stream::{BurstSpan, EventId, Timestamp};
//!
//! // Summarise a mixed stream of 3 events with CM-PBE-2 + the dyadic
//! // hierarchy for bursty event queries.
//! let mut det = BurstDetector::builder()
//!     .universe(3)
//!     .variant(PbeVariant::pbe2(2.0))
//!     .accuracy(0.01, 0.05)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//!
//! for t in 0..50u64 {
//!     det.ingest(EventId(0), Timestamp(t)).unwrap();      // steady
//!     if t >= 40 {
//!         for _ in 0..8 { det.ingest(EventId(1), Timestamp(t)).unwrap(); } // burst
//!     }
//! }
//! det.finalize();
//!
//! let tau = BurstSpan::new(10).unwrap();
//! let b1 = det.point_query(EventId(1), Timestamp(49), tau);
//! let b0 = det.point_query(EventId(0), Timestamp(49), tau);
//! assert!(b1 > 40.0 && b0.abs() < 5.0);
//!
//! let (hits, _) = det.bursty_events(Timestamp(49), 40.0, tau).unwrap();
//! assert_eq!(hits.len(), 1);
//! assert_eq!(hits[0].event, EventId(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod config;
pub mod detector;
pub mod error;
pub mod monitor;
pub mod pipeline;
pub mod shard;

pub use cell::PbeCell;
pub use config::{DetectorConfig, PbeVariant};
pub use detector::{BurstDetector, BurstDetectorBuilder};
pub use error::BedError;
pub use monitor::BurstMonitor;
pub use pipeline::{EventSink, MessagePipeline};
pub use shard::{ShardedDetector, ShardedDetectorBuilder};

// Re-export the vocabulary types users need alongside the detector.
pub use bed_hierarchy::{BurstyEventHit, QueryStats};
pub use bed_sketch::SketchParams;
pub use bed_stream::{BurstSpan, Burstiness, EventId, TimeRange, Timestamp};
