//! # bed-core — the public API for bursty event detection throughout histories
//!
//! [`BurstDetector`] ties the workspace together behind one builder-style
//! entry point:
//!
//! ```
//! use bed_core::{BurstDetector, PbeVariant};
//! use bed_stream::{BurstSpan, EventId, Timestamp};
//!
//! // Summarise a mixed stream of 3 events with CM-PBE-2 + the dyadic
//! // hierarchy for bursty event queries.
//! let mut det = BurstDetector::builder()
//!     .universe(3)
//!     .variant(PbeVariant::pbe2(2.0))
//!     .accuracy(0.01, 0.05)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//!
//! for t in 0..50u64 {
//!     det.ingest(EventId(0), Timestamp(t)).unwrap();      // steady
//!     if t >= 40 {
//!         for _ in 0..8 { det.ingest(EventId(1), Timestamp(t)).unwrap(); } // burst
//!     }
//! }
//! det.finalize();
//!
//! let tau = BurstSpan::new(10).unwrap();
//! let b1 = det.point_query(EventId(1), Timestamp(49), tau);
//! let b0 = det.point_query(EventId(0), Timestamp(49), tau);
//! assert!(b1 > 40.0 && b0.abs() < 5.0);
//!
//! let (hits, _) = det
//!     .bursty_events_with(Timestamp(49), 40.0, tau, bed_core::QueryStrategy::Pruned)
//!     .unwrap();
//! assert_eq!(hits.len(), 1);
//! assert_eq!(hits[0].event, EventId(1));
//! ```
//!
//! ## Unified query API
//!
//! Both [`BurstDetector`] and [`ShardedDetector`] implement [`BurstQueries`]
//! — one `query(&QueryRequest) -> Result<QueryResponse, BedError>` covering
//! the five canonical query kinds, so front-ends can hold a
//! `&dyn BurstQueries` and stay agnostic of the physical layout.
//!
//! ## Observability
//!
//! Every detector collects runtime metrics by default (disable with
//! `.metrics(false)`) through the zero-dependency `bed-obs` crate, exposed
//! as [`MetricsSnapshot`] via `detector.metrics()`. The name schema:
//!
//! * `ingest.count` / `ingest.errors` / `ingest.latency_ns` (sampled 1-in-64)
//! * `finalize.latency_ns`
//! * `query.<kind>.count` / `query.<kind>.latency_ns` for each of `point`,
//!   `bursty_times`, `bursty_events`, `series`, `top_k`, plus `query.errors`
//! * `query.stats.{point_queries,pruned_subtrees,leaves_probed}` counters and
//!   the derived `query.stats.prune_ratio` gauge
//! * `structure.*` gauges refreshed at snapshot time: `structure.bytes`,
//!   `detector.arrivals`, `structure.pbe.{pieces,buffered}` (single mode),
//!   `structure.cmpbe.{depth,width,occupied_cells,fill_ratio,`
//!   `heaviest_cell_arrivals,pieces,buffered}` (mixed modes), and
//!   `structure.forest.{levels,nodes,occupied_nodes,pieces,buffered}`
//!   (hierarchical mode)
//! * `shard.batch.{count,elements,latency_ns}`,
//!   `shard.fan_out.{count,latency_ns}`, `shard.count`, and per-shard
//!   `shard.<i>.{arrivals,bytes}` gauges on a [`ShardedDetector`]
//! * `pipeline.flush.{count,elements,latency_ns}` plus
//!   `pipeline.{messages,unmapped,pending}` gauges on a
//!   [`MessagePipeline`]
//! * `epoch.published` / `epoch.reader_retries` counters,
//!   `epoch.publish.latency_ns`, and the `epoch.generation` gauge on a
//!   [`DetectorEpochs`]
//! * `checkpoint.{count,errors,bytes,latency_ns}` and
//!   `recovery.{count,fallbacks,replayed,torn_tails,latency_ns}` on a
//!   [`Checkpointer`]; `wal.{appends,bytes}` and `wal.sync.latency_ns` on a
//!   [`WalWriter`]
//!
//! ## Durability
//!
//! The [`checkpoint`] and [`wal`] modules persist a detector across
//! crashes: CRC-validated `BEDS v2` snapshots written atomically with
//! one-generation rotation, plus a write-ahead log of arrivals so recovery
//! is "load the newest intact snapshot, replay the tail" — see
//! [`recover`] and the module docs for the exact invariants.
//!
//! ## Concurrent reads
//!
//! The [`epoch`] module decouples queries from a live ingest: a writer
//! publishes immutable epoch snapshots at a configurable cadence and any
//! number of readers answer from the latest one wait-free — zero locks
//! and zero allocation on the query hot path. See [`DetectorEpochs`] and
//! the protocol notes in the module docs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod checkpoint;
pub mod config;
pub mod detector;
pub mod epoch;
pub mod error;
mod metrics;
pub mod monitor;
pub mod observe;
pub mod pipeline;
pub mod query;
pub mod shard;
pub mod wal;

pub use cell::PbeCell;
pub use checkpoint::{
    recover, AnyDetector, CheckpointPolicy, Checkpointable, Checkpointer, RecoveryError,
    RecoveryOutcome, Snapshot, SnapshotStore, Watermark,
};
pub use config::{DetectorConfig, PbeVariant};
pub use detector::{BurstDetector, BurstDetectorBuilder};
pub use epoch::{DetectorEpochs, Epoch, EpochPublisher, EpochReader, EpochView, SnapshotCell};
pub use error::BedError;
pub use monitor::BurstMonitor;
pub use observe::Traceable;
pub use pipeline::{EventSink, MessagePipeline};
pub use query::{BurstQueries, QueryRequest, QueryResponse, QueryStrategy};
pub use shard::{ShardedDetector, ShardedDetectorBuilder};
pub use wal::{read_wal, WalContents, WalSink, WalWriter};

// Re-export the vocabulary types users need alongside the detector.
pub use bed_hierarchy::{BurstyEventHit, QueryStats};
pub use bed_obs::{
    assemble_trace_tree, default_stage_specs, MetricValue, MetricsRegistry, MetricsSnapshot,
    Profiler, SlowQuery, SpanName, StageSpec, TraceEvent, TraceId, Tracer, TracerConfig,
};
pub use bed_sketch::{QueryScratch, RetentionPolicy, SketchParams};
pub use bed_stream::{BurstSpan, Burstiness, EventId, TimeRange, Timestamp};
