//! Metric plumbing between the detectors and `bed-obs`.
//!
//! Each detector owns a [`DetectorMetrics`] (and a sharded facade
//! additionally a [`ShardMetrics`]) holding pre-registered handles so the
//! hot paths never touch the registry lock. Ingest latency is **sampled**
//! 1-in-[`INGEST_SAMPLE_EVERY`] — two `Instant::now()` calls per sketch
//! update would dominate the update itself — while query latency is timed
//! on every call (queries are orders of magnitude rarer).

use std::sync::Arc;
use std::time::Instant;

use bed_hierarchy::QueryStats;
use bed_obs::{ActiveTrace, Counter, Histogram, MetricsRegistry, MetricsSnapshot, TraceId, Tracer};

use crate::observe::span_for;
use crate::query::QueryKind;

/// Ingest latency is recorded on one ingest out of this many (power of two).
pub(crate) const INGEST_SAMPLE_EVERY: u64 = 64;

/// Runtime metrics of one [`crate::BurstDetector`].
///
/// Not `Copy`/auto-`Clone`: cloning deep-copies the registry so the clone's
/// counters continue from the same values on independent storage.
#[derive(Debug)]
pub(crate) struct DetectorMetrics {
    enabled: bool,
    registry: MetricsRegistry,
    ingest_count: Arc<Counter>,
    ingest_errors: Arc<Counter>,
    ingest_latency: Arc<Histogram>,
    finalize_latency: Arc<Histogram>,
    query_count: [Arc<Counter>; QueryKind::ALL.len()],
    query_errors: Arc<Counter>,
    query_latency: [Arc<Histogram>; QueryKind::ALL.len()],
    point_queries: Arc<Counter>,
    pruned_subtrees: Arc<Counter>,
    leaves_probed: Arc<Counter>,
    compact_latency: Arc<Histogram>,
    tracer: Arc<Tracer>,
}

impl DetectorMetrics {
    pub(crate) fn new(enabled: bool) -> Self {
        Self::from_registry(MetricsRegistry::new(), enabled)
    }

    /// Fetches (registering if absent) every handle from `registry` — the
    /// one constructor, so a deep clone re-binds to identical names.
    fn from_registry(registry: MetricsRegistry, enabled: bool) -> Self {
        let query_count = QueryKind::ALL.map(|k| registry.counter(k.count_metric()));
        let query_latency = QueryKind::ALL.map(|k| registry.histogram(k.latency_metric()));
        DetectorMetrics {
            enabled,
            ingest_count: registry.counter("ingest.count"),
            ingest_errors: registry.counter("ingest.errors"),
            ingest_latency: registry.histogram("ingest.latency_ns"),
            finalize_latency: registry.histogram("finalize.latency_ns"),
            query_count,
            query_errors: registry.counter("query.errors"),
            query_latency,
            point_queries: registry.counter("query.stats.point_queries"),
            pruned_subtrees: registry.counter("query.stats.pruned_subtrees"),
            leaves_probed: registry.counter("query.stats.leaves_probed"),
            compact_latency: registry.histogram("retention.compact.latency_ns"),
            tracer: Arc::new(Tracer::disabled()),
            registry,
        }
    }

    /// Installs a tracer (replacing the default disabled one).
    pub(crate) fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = tracer;
    }

    pub(crate) fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Starts a sampled root span for a query of `kind`, adopting
    /// `trace_id` when nonzero (a caller-assigned request id). `None` on
    /// the untraced path — a single relaxed load when tracing is off.
    #[inline]
    pub(crate) fn trace_query(&self, kind: QueryKind, trace_id: u64) -> Option<ActiveTrace<'_>> {
        self.tracer.start_sampled_with(span_for(kind), (trace_id != 0).then_some(TraceId(trace_id)))
    }

    /// Counts one ingest attempt; returns a start instant on the sampled
    /// ones. The unconditional cost is a single relaxed `fetch_add`.
    #[inline]
    pub(crate) fn ingest_begin(&self) -> Option<Instant> {
        if !self.enabled {
            return None;
        }
        let n = self.ingest_count.inc_fetch();
        n.is_multiple_of(INGEST_SAMPLE_EVERY).then(Instant::now)
    }

    /// Closes an ingest attempt opened by [`Self::ingest_begin`].
    #[inline]
    pub(crate) fn ingest_end(&self, started: Option<Instant>, ok: bool) {
        if !self.enabled {
            return;
        }
        if !ok {
            self.ingest_errors.inc();
        }
        if let Some(t0) = started {
            self.ingest_latency.observe(t0.elapsed());
        }
    }

    /// Starts timing a `finalize` (cold path, always timed).
    pub(crate) fn finalize_begin(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    pub(crate) fn finalize_end(&self, started: Option<Instant>) {
        if let Some(t0) = started {
            self.finalize_latency.observe(t0.elapsed());
        }
    }

    /// Counts one query of `kind` and starts its latency timer.
    pub(crate) fn query_begin(&self, kind: QueryKind) -> Option<Instant> {
        if !self.enabled {
            return None;
        }
        self.query_count[kind.index()].inc();
        Some(Instant::now())
    }

    /// Closes a query opened by [`Self::query_begin`]. A nonzero
    /// `trace_id` is pinned as the latency bucket's OpenMetrics exemplar,
    /// pointing the bucket at an inspectable trace.
    pub(crate) fn query_end(
        &self,
        kind: QueryKind,
        started: Option<Instant>,
        ok: bool,
        trace_id: u64,
    ) {
        if !self.enabled {
            return;
        }
        if !ok {
            self.query_errors.inc();
        }
        if let Some(t0) = started {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.query_latency[kind.index()].record_ns_exemplar(ns, trace_id);
        }
    }

    /// Times one retention compaction pass over the tiered cells.
    pub(crate) fn compact_observe(&self, elapsed: std::time::Duration) {
        if self.enabled {
            self.compact_latency.observe(elapsed);
        }
    }

    /// Accumulates probe statistics of a bursty-event search.
    pub(crate) fn record_query_stats(&self, stats: &QueryStats) {
        if !self.enabled {
            return;
        }
        self.point_queries.add(stats.point_queries as u64);
        self.pruned_subtrees.add(stats.pruned_subtrees as u64);
        self.leaves_probed.add(stats.leaves_probed as u64);
    }

    /// Seeds `ingest.count` from persisted state (a decoded sketch has
    /// ingested its arrivals, just not in this process).
    pub(crate) fn seed_ingests(&self, arrivals: u64) {
        self.ingest_count.set(arrivals);
    }

    /// Refreshes a structural gauge (cold path; registers on first use).
    pub(crate) fn set_gauge(&self, name: &str, value: f64) {
        if self.enabled {
            self.registry.gauge(name).set(value);
        }
    }

    /// Counts one point query served by retention tier `tier`. Registers
    /// on first use — point queries are orders of magnitude rarer than
    /// ingests, so the registry lookup is affordable, and detectors
    /// without a retention policy never reach this path.
    pub(crate) fn count_tier_query(&self, tier: u32) {
        if self.enabled {
            self.registry.counter(&format!("retention.tier{tier}.queries")).inc();
        }
    }

    /// Derived pruning effectiveness: subtrees skipped per subtree visited.
    pub(crate) fn refresh_prune_ratio(&self) {
        if !self.enabled {
            return;
        }
        let pruned = self.pruned_subtrees.get() as f64;
        let probed = self.leaves_probed.get() as f64;
        if pruned + probed > 0.0 {
            self.registry.gauge("query.stats.prune_ratio").set(pruned / (pruned + probed));
        }
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

impl Clone for DetectorMetrics {
    fn clone(&self) -> Self {
        let mut clone = Self::from_registry(self.registry.deep_clone(), self.enabled);
        // The tracer is deliberately shared, not deep-cloned: spans from a
        // clone belong to the same diagnostic surface.
        clone.tracer = Arc::clone(&self.tracer);
        clone
    }
}

/// Facade-level metrics of a [`crate::ShardedDetector`]: batch ingestion and
/// fan-out/merge timings that no single shard can observe.
#[derive(Debug)]
pub(crate) struct ShardMetrics {
    enabled: bool,
    registry: MetricsRegistry,
    batches: Arc<Counter>,
    batch_elements: Arc<Counter>,
    batch_latency: Arc<Histogram>,
    fan_outs: Arc<Counter>,
    fan_out_latency: Arc<Histogram>,
    tracer: Arc<Tracer>,
}

impl ShardMetrics {
    pub(crate) fn new(enabled: bool) -> Self {
        Self::from_registry(MetricsRegistry::new(), enabled)
    }

    fn from_registry(registry: MetricsRegistry, enabled: bool) -> Self {
        ShardMetrics {
            enabled,
            batches: registry.counter("shard.batch.count"),
            batch_elements: registry.counter("shard.batch.elements"),
            batch_latency: registry.histogram("shard.batch.latency_ns"),
            fan_outs: registry.counter("shard.fan_out.count"),
            fan_out_latency: registry.histogram("shard.fan_out.latency_ns"),
            tracer: Arc::new(Tracer::disabled()),
            registry,
        }
    }

    /// Installs a tracer on the facade (shards keep disabled tracers).
    pub(crate) fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        self.tracer = tracer;
    }

    pub(crate) fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Starts a sampled facade root span for a query of `kind`, adopting
    /// `trace_id` when nonzero.
    #[inline]
    pub(crate) fn trace_query(&self, kind: QueryKind, trace_id: u64) -> Option<ActiveTrace<'_>> {
        self.tracer.start_sampled_with(span_for(kind), (trace_id != 0).then_some(TraceId(trace_id)))
    }

    /// Starts timing one `ingest_batch` call of `len` elements.
    pub(crate) fn batch_begin(&self, len: usize) -> Option<Instant> {
        if !self.enabled {
            return None;
        }
        self.batches.inc();
        self.batch_elements.add(len as u64);
        Some(Instant::now())
    }

    pub(crate) fn batch_end(&self, started: Option<Instant>) {
        if let Some(t0) = started {
            self.batch_latency.observe(t0.elapsed());
        }
    }

    /// Starts timing one cross-shard fan-out/merge.
    pub(crate) fn fan_out_begin(&self) -> Option<Instant> {
        if !self.enabled {
            return None;
        }
        self.fan_outs.inc();
        Some(Instant::now())
    }

    pub(crate) fn fan_out_end(&self, started: Option<Instant>) {
        if let Some(t0) = started {
            self.fan_out_latency.observe(t0.elapsed());
        }
    }

    /// Refreshes a facade-level gauge (cold path).
    pub(crate) fn set_gauge(&self, name: &str, value: f64) {
        if self.enabled {
            self.registry.gauge(name).set(value);
        }
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

impl Clone for ShardMetrics {
    fn clone(&self) -> Self {
        let mut clone = Self::from_registry(self.registry.deep_clone(), self.enabled);
        clone.tracer = Arc::clone(&self.tracer);
        clone
    }
}

/// Metrics of a [`crate::checkpoint::Checkpointer`]: checkpoint cadence,
/// cost, and recovery outcomes.
#[derive(Debug)]
pub(crate) struct CheckpointMetrics {
    registry: MetricsRegistry,
    checkpoints: Arc<Counter>,
    checkpoint_errors: Arc<Counter>,
    checkpoint_bytes: Arc<Counter>,
    checkpoint_latency: Arc<Histogram>,
    recoveries: Arc<Counter>,
    recovery_fallbacks: Arc<Counter>,
    recovery_replayed: Arc<Counter>,
    recovery_torn_tails: Arc<Counter>,
    recovery_latency: Arc<Histogram>,
}

impl CheckpointMetrics {
    pub(crate) fn new() -> Self {
        let registry = MetricsRegistry::new();
        CheckpointMetrics {
            checkpoints: registry.counter("checkpoint.count"),
            checkpoint_errors: registry.counter("checkpoint.errors"),
            checkpoint_bytes: registry.counter("checkpoint.bytes"),
            checkpoint_latency: registry.histogram("checkpoint.latency_ns"),
            recoveries: registry.counter("recovery.count"),
            recovery_fallbacks: registry.counter("recovery.fallbacks"),
            recovery_replayed: registry.counter("recovery.replayed"),
            recovery_torn_tails: registry.counter("recovery.torn_tails"),
            recovery_latency: registry.histogram("recovery.latency_ns"),
            registry,
        }
    }

    /// Records one successful checkpoint of `bytes` envelope bytes.
    pub(crate) fn checkpoint_ok(&self, bytes: u64, elapsed: std::time::Duration) {
        self.checkpoints.inc();
        self.checkpoint_bytes.add(bytes);
        self.checkpoint_latency.observe(elapsed);
    }

    /// Records a failed checkpoint attempt.
    pub(crate) fn checkpoint_err(&self) {
        self.checkpoint_errors.inc();
    }

    /// Records one completed recovery and what it took.
    pub(crate) fn recovery_ok(
        &self,
        outcome: &crate::checkpoint::RecoveryOutcome,
        elapsed: std::time::Duration,
    ) {
        self.recoveries.inc();
        self.recovery_replayed.add(outcome.replayed);
        if outcome.fell_back {
            self.recovery_fallbacks.inc();
        }
        if outcome.torn_tail {
            self.recovery_torn_tails.inc();
        }
        self.recovery_latency.observe(elapsed);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// Metrics of a [`crate::epoch::DetectorEpochs`]: publish cadence and
/// reader-retry pressure on the snapshot cells.
#[derive(Debug)]
pub(crate) struct EpochMetrics {
    registry: MetricsRegistry,
    published: Arc<Counter>,
    reader_retries: Arc<Counter>,
    publish_latency: Arc<Histogram>,
}

impl EpochMetrics {
    pub(crate) fn new() -> Self {
        let registry = MetricsRegistry::new();
        EpochMetrics {
            published: registry.counter("epoch.published"),
            reader_retries: registry.counter("epoch.reader_retries"),
            publish_latency: registry.histogram("epoch.publish.latency_ns"),
            registry,
        }
    }

    /// Records one completed publish across every cell.
    pub(crate) fn published(&self, elapsed: std::time::Duration) {
        self.published.inc();
        self.publish_latency.observe(elapsed);
    }

    /// Syncs the cumulative reader-retry total (the cells own the live
    /// count so the retry path stays a single relaxed `fetch_add`).
    pub(crate) fn sync_reader_retries(&self, total: u64) {
        self.reader_retries.set(total);
    }

    /// Refreshes an epoch gauge (cold path; registers on first use).
    pub(crate) fn set_gauge(&self, name: &str, value: f64) {
        self.registry.gauge(name).set(value);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// Metrics of a [`crate::wal::WalWriter`]: append volume and sync latency.
#[derive(Debug)]
pub(crate) struct WalMetrics {
    registry: MetricsRegistry,
    appends: Arc<Counter>,
    bytes: Arc<Counter>,
    sync_latency: Arc<Histogram>,
}

impl WalMetrics {
    pub(crate) fn new() -> Self {
        let registry = MetricsRegistry::new();
        WalMetrics {
            appends: registry.counter("wal.appends"),
            bytes: registry.counter("wal.bytes"),
            sync_latency: registry.histogram("wal.sync.latency_ns"),
            registry,
        }
    }

    /// Records `n` appended records totalling `bytes` on-disk bytes.
    pub(crate) fn appended(&self, n: u64, bytes: u64) {
        self.appends.add(n);
        self.bytes.add(bytes);
    }

    /// Times one durable sync.
    pub(crate) fn sync_begin(&self) -> Instant {
        Instant::now()
    }

    pub(crate) fn sync_end(&self, started: Instant) {
        self.sync_latency.observe(started.elapsed());
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// Metrics of a [`crate::MessagePipeline`]: flush batching and latency.
#[derive(Debug)]
pub(crate) struct PipelineMetrics {
    registry: MetricsRegistry,
    flushes: Arc<Counter>,
    flushed_elements: Arc<Counter>,
    flush_latency: Arc<Histogram>,
}

impl PipelineMetrics {
    pub(crate) fn new() -> Self {
        let registry = MetricsRegistry::new();
        PipelineMetrics {
            flushes: registry.counter("pipeline.flush.count"),
            flushed_elements: registry.counter("pipeline.flush.elements"),
            flush_latency: registry.histogram("pipeline.flush.latency_ns"),
            registry,
        }
    }

    /// Starts timing one flush of `len` released elements.
    pub(crate) fn flush_begin(&self, len: usize) -> Instant {
        self.flushes.inc();
        self.flushed_elements.add(len as u64);
        Instant::now()
    }

    pub(crate) fn flush_end(&self, started: Instant) {
        self.flush_latency.observe(started.elapsed());
    }

    /// Refreshes a pipeline gauge (cold path).
    pub(crate) fn set_gauge(&self, name: &str, value: f64) {
        self.registry.gauge(name).set(value);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}
