//! Error-path tests for the `DYAD` v1 persistence format: malformed input
//! must surface as a typed `CodecError`, never a panic.

use bed_hierarchy::DyadicCmPbe;
use bed_pbe::ExactCurve;
use bed_sketch::SketchParams;
use bed_stream::{Codec, CodecError, EventId, Timestamp};

type Forest = DyadicCmPbe<ExactCurve>;

fn sample() -> Vec<u8> {
    let mut forest =
        Forest::new(16, SketchParams { epsilon: 0.01, delta: 0.05 }, 7, |_| ExactCurve::new())
            .unwrap();
    for i in 0..200u64 {
        forest.update(EventId((i % 16) as u32), Timestamp(i / 2)).unwrap();
    }
    forest.finalize();
    forest.to_bytes()
}

#[test]
fn roundtrip_is_exact() {
    let bytes = sample();
    let back = Forest::from_bytes(&bytes).unwrap();
    assert_eq!(back.to_bytes(), bytes);
}

#[test]
fn truncated_header() {
    let bytes = sample();
    for cut in [0, 2, 4, 5] {
        match Forest::from_bytes(&bytes[..cut]) {
            Err(CodecError::UnexpectedEof { .. }) => {}
            other => panic!("cut at {cut}: expected UnexpectedEof, got {other:?}"),
        }
    }
}

#[test]
fn wrong_magic() {
    let mut bytes = sample();
    bytes[..4].copy_from_slice(b"NOPE");
    assert!(matches!(
        Forest::from_bytes(&bytes),
        Err(CodecError::BadMagic { expected: [b'D', b'Y', b'A', b'D'], .. })
    ));
}

#[test]
fn version_from_the_future() {
    let mut bytes = sample();
    bytes[4..6].copy_from_slice(&7u16.to_le_bytes());
    assert!(matches!(
        Forest::from_bytes(&bytes),
        Err(CodecError::UnsupportedVersion { found: 7, supported: 1 })
    ));
}

#[test]
fn corrupt_padding_is_invalid() {
    let mut bytes = sample();
    // Field layout: magic(4) version(2) universe:u32(4) k_padded:u32(4).
    // 15 is not a power of two, so the padding invariant must trip.
    bytes[10..14].copy_from_slice(&15u32.to_le_bytes());
    assert!(matches!(
        Forest::from_bytes(&bytes),
        Err(CodecError::Invalid { context: "dyadic padding" })
    ));
}

#[test]
fn every_strict_prefix_is_rejected() {
    let bytes = sample();
    for cut in 0..bytes.len() {
        assert!(
            Forest::from_bytes(&bytes[..cut]).is_err(),
            "a {cut}-byte prefix of a {}-byte record decoded successfully",
            bytes.len()
        );
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut bytes = sample();
    bytes.extend_from_slice(&[0, 0]);
    assert!(matches!(Forest::from_bytes(&bytes), Err(CodecError::TrailingBytes { remaining: 2 })));
}
