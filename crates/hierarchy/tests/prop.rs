//! Property-based tests for the dyadic hierarchy.

use bed_hierarchy::dyadic::{level_count, padded_universe, DyadicRange};
use bed_hierarchy::DyadicCmPbe;
use bed_pbe::ExactCurve;
use bed_sketch::SketchParams;
use bed_stream::{BurstSpan, EventId, EventStream, ExactBaseline, Timestamp};
use proptest::prelude::*;

fn arb_stream(events: u32) -> impl Strategy<Value = Vec<(u32, u64)>> {
    prop::collection::vec((0..events, 0u64..500), 1..250).prop_map(|mut v| {
        v.sort_by_key(|&(_, t)| t);
        v
    })
}

/// Builds an exact-cell forest with effectively no collisions (wide grid).
fn exact_forest(universe: u32, els: &[(u32, u64)]) -> DyadicCmPbe<ExactCurve> {
    let mut f = DyadicCmPbe::new(universe, SketchParams { epsilon: 0.001, delta: 0.05 }, 3, |_| {
        ExactCurve::new()
    })
    .unwrap();
    for &(e, t) in els {
        f.update(EventId(e), Timestamp(t)).unwrap();
    }
    f
}

proptest! {
    /// Dyadic arithmetic: an event's block at every level contains it, and
    /// the child blocks partition the parent.
    #[test]
    fn dyadic_navigation(e in 0u32..4096, level in 0u32..12) {
        let r = DyadicRange::containing(EventId(e), level);
        prop_assert!(r.contains(EventId(e)));
        if level > 0 {
            let l = r.left_child().unwrap();
            let rt = r.right_child().unwrap();
            prop_assert!(l.contains(EventId(e)) ^ rt.contains(EventId(e)));
            prop_assert_eq!(l.parent(), r);
            prop_assert_eq!(rt.parent(), r);
        }
        prop_assert!(padded_universe(e + 1) > e);
        prop_assert!(level_count(padded_universe(e + 1)) >= 1);
    }

    /// With exact, collision-free cells: every reported event truly passes
    /// the threshold (perfect precision), and any true positive that is
    /// missed must be explained by sign cancellation in an ancestor block —
    /// the inherent recall gap of the paper's pruning bound. When no event
    /// decelerates (all burstiness ≥ 0), recall is perfect too.
    #[test]
    fn pruned_query_precision_and_cancellation_only_misses(
        els in arb_stream(16),
        t in 0u64..600,
        theta in 1i64..15,
        tau in 1u64..60,
    ) {
        let stream: EventStream = els.iter().copied().collect();
        let baseline = ExactBaseline::from_stream(&stream);
        let forest = exact_forest(16, &els);
        let tau = BurstSpan::new(tau).unwrap();
        let (hits, stats) = forest.bursty_events(Timestamp(t), theta as f64, tau);
        let expected = baseline.bursty_events(Timestamp(t), theta, tau);
        let want: Vec<u32> = expected.iter().map(|&(e, _)| e.value()).collect();

        // precision: every hit is a true positive with the exact burstiness
        for h in &hits {
            prop_assert!(want.contains(&h.event.value()));
            prop_assert_eq!(
                h.burstiness,
                baseline.point_query(h.event, Timestamp(t), tau) as f64
            );
        }
        // recall: perfect when no event has negative burstiness at t
        let any_negative = stream
            .distinct_events()
            .iter()
            .any(|&e| baseline.point_query(e, Timestamp(t), tau) < 0);
        if !any_negative {
            let got: Vec<u32> = hits.iter().map(|h| h.event.value()).collect();
            prop_assert_eq!(got, want, "t={} θ={}", t, theta);
        }
        // probes never exceed the scan cost plus internal overhead
        prop_assert!(stats.point_queries <= 2 * 16 + 1);
    }

    /// Pruned search reports a subset of the naive scan (same estimates
    /// underneath; pruning can only remove), with consistent burstiness
    /// values, and probes no more leaves.
    #[test]
    fn pruned_is_subset_of_scan(
        els in arb_stream(32),
        t in 0u64..600,
        theta in 1u32..30,
        tau in 1u64..60,
    ) {
        let forest = exact_forest(32, &els);
        let tau = BurstSpan::new(tau).unwrap();
        let theta = theta as f64;
        let (h1, s1) = forest.bursty_events(Timestamp(t), theta, tau);
        let (h2, s2) = forest.bursty_events_scan(Timestamp(t), theta, tau);
        for h in &h1 {
            let in_scan = h2.iter().find(|x| x.event == h.event);
            prop_assert!(in_scan.is_some(), "hit {:?} absent from scan", h.event);
            prop_assert_eq!(in_scan.unwrap().burstiness, h.burstiness);
        }
        prop_assert!(s1.leaves_probed <= s2.leaves_probed);
    }

    /// Every hit reported by bursty_times satisfies the threshold when
    /// re-queried, and hits are sorted and unique.
    #[test]
    fn bursty_times_hits_requery(
        els in arb_stream(8),
        theta in 1u32..10,
        tau in 1u64..40,
    ) {
        let forest = exact_forest(8, &els);
        let tau = BurstSpan::new(tau).unwrap();
        let theta = theta as f64;
        for e in 0..8u32 {
            let times = forest.bursty_times(EventId(e), theta, tau, Timestamp(700));
            for w in times.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
            for &(t, b) in &times {
                prop_assert!(b >= theta);
                let requery = forest.estimate_burstiness(EventId(e), t, tau);
                prop_assert!((requery - b).abs() < 1e-9);
            }
        }
    }
}
