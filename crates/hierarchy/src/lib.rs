//! # bed-hierarchy — dyadic decomposition for bursty event queries
//!
//! Section V of *"Bursty Event Detection Throughout Histories"*: answering
//! `q(t, θ, τ)` ("which events are bursty at t?") by point-querying every
//! event costs O(K) probes. Instead, build a binary tree over dyadic ranges
//! of the event-id space and keep one CM-PBE per level, where level `l`
//! aggregates events in blocks of `2^l` (Fig. 6). Because cumulative
//! frequencies — and therefore burstinesses — are *additive* over children
//! (`b_p = b_l + b_r`), the identity
//!
//! ```text
//! b_p² − 2·b_l·b_r = b_l² + b_r²
//! ```
//!
//! yields the pruning rule (Eq. 6): if `b̃_p² − 2·b̃_l·b̃_r < θ²` then both
//! children's burstiness magnitudes are below θ and the whole subtree can be
//! skipped. In the common case only O(log K) point queries run
//! (Algorithm 3); the worst case degrades gracefully to O(K).
//!
//! * [`dyadic`] — range/level arithmetic over a power-of-two-padded universe.
//! * [`forest`] — [`DyadicCmPbe`]: per-level CM-PBE grids and ingestion.
//! * [`query`] — Algorithm 3 with probe accounting, the naive scan
//!   baseline, and the bursty-time query over sketch knees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dyadic;
pub mod forest;
pub mod query;

pub use dyadic::DyadicRange;
pub use forest::{DyadicCmPbe, ForestStructure};
pub use query::{BurstyEventHit, QueryStats};
