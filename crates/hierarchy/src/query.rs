//! Bursty event and bursty time queries over the dyadic forest
//! (Section V, Algorithm 3).

use bed_pbe::kernel::CurveCursor;
use bed_pbe::traits::bursty_time_candidates;
use bed_pbe::CurveSketch;
use bed_sketch::{CmPbe, QueryScratch};
use bed_stream::{BurstSpan, EventId, Timestamp};

use crate::dyadic::DyadicRange;
use crate::forest::DyadicCmPbe;

/// One result of a bursty event query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyEventHit {
    /// The qualifying event.
    pub event: EventId,
    /// Its estimated burstiness at the query instant.
    pub burstiness: f64,
}

/// Probe accounting for a hierarchical query — the pruning-effectiveness
/// metric reported in Section VI-D ("in most cases we only need to issue
/// O(log K) point queries").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Point queries issued against any level's CM-PBE.
    pub point_queries: usize,
    /// Subtrees skipped by the Eq. 6 bound.
    pub pruned_subtrees: usize,
    /// Leaves actually evaluated.
    pub leaves_probed: usize,
}

impl<P: CurveSketch> DyadicCmPbe<P> {
    /// BURSTY EVENT QUERY `q(t, θ, τ)` via top-down pruned search
    /// (Algorithm 3). Returns qualifying events (estimated `b̃_e(t) ≥ θ`)
    /// and the probe statistics.
    ///
    /// `theta` must be positive: the pruning bound compares squares, so a
    /// non-positive threshold would qualify every event and any algorithm
    /// degenerates to the full scan (use [`Self::bursty_events_scan`] then).
    ///
    /// **Completeness caveat** (inherent to the paper's bound): burstiness is
    /// signed, and a block's burstiness is the *sum* over its events — a
    /// bursting event can be masked by a sibling that is decelerating just
    /// as hard, in which case the subtree is pruned and the event missed.
    /// This is one of the sources of the < 100% recall the paper reports in
    /// Fig. 12. [`Self::bursty_events_scan`] never prunes and is the
    /// recall-maximising (but O(K)) alternative.
    pub fn bursty_events(
        &self,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
    ) -> (Vec<BurstyEventHit>, QueryStats) {
        assert!(theta > 0.0, "bursty event queries require a positive threshold");
        let mut hits = Vec::new();
        let mut stats = QueryStats::default();
        let root = DyadicRange { level: self.levels() - 1, index: 0 };
        stats.point_queries += 1;
        let b_root = self.block_burstiness(root, t, tau);
        self.recurse(root, b_root, t, theta, tau, &mut hits, &mut stats);
        hits.sort_by_key(|h| h.event);
        (hits, stats)
    }

    /// `b_node` is the node's own estimate, computed once by the parent (so
    /// each visited internal node costs exactly two point queries — one per
    /// child — and leaves cost none).
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        &self,
        node: DyadicRange,
        b_node: f64,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
        hits: &mut Vec<BurstyEventHit>,
        stats: &mut QueryStats,
    ) {
        if node.start() >= self.universe() {
            // fully inside the padding: never updated
            stats.pruned_subtrees += 1;
            return;
        }
        if node.level == 0 {
            stats.leaves_probed += 1;
            if b_node >= theta {
                hits.push(BurstyEventHit { event: EventId(node.index), burstiness: b_node });
            }
            return;
        }
        let left = node.left_child().expect("non-leaf");
        let right = node.right_child().expect("non-leaf");
        let b_l = self.block_burstiness(left, t, tau);
        let b_r = self.block_burstiness(right, t, tau);
        stats.point_queries += 2;
        // Eq. 6: b_p² − 2·b_l·b_r = b_l² + b_r² (exactly, when estimates are
        // exact); below θ² implies both children are below θ in magnitude.
        if b_node * b_node - 2.0 * b_l * b_r < theta * theta {
            stats.pruned_subtrees += 1;
            return;
        }
        self.recurse(left, b_l, t, theta, tau, hits, stats);
        self.recurse(right, b_r, t, theta, tau, hits, stats);
    }

    /// BURSTY EVENT QUERY restricted to the event-id range `[lo, hi)` — the
    /// dyadic tree supports this for free: subtrees disjoint from the range
    /// are skipped outright, subtrees inside it prune exactly as in
    /// [`Self::bursty_events`], and the handful of *straddling* nodes on the
    /// range border are descended unconditionally (their block estimates mix
    /// in-range and out-of-range events, so the Eq. 6 bound does not apply
    /// to the in-range half).
    ///
    /// Useful when event ids encode a grouping (a category, a tenant, a
    /// paper-style party affiliation) and only one group is of interest.
    pub fn bursty_events_in_range(
        &self,
        lo: u32,
        hi: u32,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
    ) -> (Vec<BurstyEventHit>, QueryStats) {
        assert!(theta > 0.0, "bursty event queries require a positive threshold");
        assert!(lo < hi, "empty id range");
        let mut hits = Vec::new();
        let mut stats = QueryStats::default();
        let root = DyadicRange { level: self.levels() - 1, index: 0 };
        stats.point_queries += 1;
        let b_root = self.block_burstiness(root, t, tau);
        self.recurse_range(root, b_root, lo, hi, t, theta, tau, &mut hits, &mut stats);
        hits.sort_by_key(|h| h.event);
        (hits, stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn recurse_range(
        &self,
        node: DyadicRange,
        b_node: f64,
        lo: u32,
        hi: u32,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
        hits: &mut Vec<BurstyEventHit>,
        stats: &mut QueryStats,
    ) {
        if node.end() <= lo || node.start() >= hi || node.start() >= self.universe() {
            stats.pruned_subtrees += 1;
            return;
        }
        if node.level == 0 {
            stats.leaves_probed += 1;
            if b_node >= theta {
                hits.push(BurstyEventHit { event: EventId(node.index), burstiness: b_node });
            }
            return;
        }
        let fully_inside = lo <= node.start() && node.end() <= hi;
        let left = node.left_child().expect("non-leaf");
        let right = node.right_child().expect("non-leaf");
        let b_l = self.block_burstiness(left, t, tau);
        let b_r = self.block_burstiness(right, t, tau);
        stats.point_queries += 2;
        // The Eq. 6 bound is only sound when the node's estimate covers
        // exactly the ids under consideration.
        if fully_inside && b_node * b_node - 2.0 * b_l * b_r < theta * theta {
            stats.pruned_subtrees += 1;
            return;
        }
        self.recurse_range(left, b_l, lo, hi, t, theta, tau, hits, stats);
        self.recurse_range(right, b_r, lo, hi, t, theta, tau, hits, stats);
    }

    /// Naive baseline: point-query every event id in the universe
    /// ("query each event id e ∈ Σ using a POINT QUERY").
    pub fn bursty_events_scan(
        &self,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
    ) -> (Vec<BurstyEventHit>, QueryStats) {
        let mut scratch = QueryScratch::new();
        self.bursty_events_scan_reusing(t, theta, tau, &mut scratch)
    }

    /// [`Self::bursty_events_scan`] with caller-provided scratch: the whole
    /// universe is evaluated through the leaf grid's batched row-major
    /// kernel ([`CmPbe::burstiness_scan_into`]), which is bit-for-bit equal
    /// to the per-event loop ([`crate::forest::DyadicCmPbe::estimate_burstiness`]
    /// delegates to the leaf grid) but walks each grid row sequentially and
    /// probes each distinct cell once.
    pub fn bursty_events_scan_reusing(
        &self,
        t: Timestamp,
        theta: f64,
        tau: BurstSpan,
        scratch: &mut QueryScratch,
    ) -> (Vec<BurstyEventHit>, QueryStats) {
        let mut hits = Vec::new();
        let mut stats = QueryStats::default();
        self.grid(0).burstiness_scan_into(0, self.universe(), t, tau, scratch, |event, b| {
            stats.point_queries += 1;
            stats.leaves_probed += 1;
            if b >= theta {
                hits.push(BurstyEventHit { event, burstiness: b });
            }
        });
        (hits, stats)
    }

    /// BURSTY TIME QUERY `q(e, θ, τ)` against the leaf-level CM-PBE: probes
    /// the sketch's knee instants (plus their `+τ/+2τ` echoes) and returns
    /// those with `b̃_e(t) ≥ θ` (Section V's "point query at each time
    /// instance when a new line segment starts").
    pub fn bursty_times(
        &self,
        event: EventId,
        theta: f64,
        tau: BurstSpan,
        horizon: Timestamp,
    ) -> Vec<(Timestamp, f64)> {
        bursty_times_over(self.grid(0), event, theta, tau, horizon)
    }
}

/// Bursty-time query over a single CM-PBE (also usable without a
/// hierarchy). Candidate instants are the knees of every cell the event
/// maps to, plus their `+τ/+2τ` echoes (burstiness changes only when a term
/// of Eq. 2 crosses a knee); the sweep runs through the grid's fused
/// hinted-cursor kernel ([`CmPbe::bursty_times_into`]), which is bit-for-bit
/// equal to filtering the candidates through
/// [`CmPbe::estimate_burstiness`].
pub fn bursty_times_over<P: CurveSketch>(
    grid: &CmPbe<P>,
    event: EventId,
    theta: f64,
    tau: BurstSpan,
    horizon: Timestamp,
) -> Vec<(Timestamp, f64)> {
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    grid.bursty_times_into(event, theta, tau, horizon, &mut scratch, &mut out);
    out
}

/// Bursty-time query over a bare single-stream sketch (no CM layout) — used
/// by the single-event fast path in `bed-core`. The candidate sweep is
/// monotone, so probes go through a [`CurveCursor`] that resumes each
/// Eq. 2 offset stream's piece search instead of re-searching per instant.
pub fn bursty_times_single<S: CurveSketch>(
    sketch: &S,
    theta: f64,
    tau: BurstSpan,
    horizon: Timestamp,
) -> Vec<(Timestamp, f64)> {
    let mut cursor = CurveCursor::new(sketch);
    bursty_time_candidates(sketch, tau, horizon)
        .into_iter()
        .filter_map(|t| {
            let b = cursor.burstiness(t, tau);
            (b >= theta).then_some((t, b))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bed_pbe::{ExactCurve, Pbe2, Pbe2Config};
    use bed_sketch::SketchParams;

    /// 64-event universe where events 3 and 40 burst at t≈100 and everything
    /// else ticks along at a constant rate.
    fn bursty_fixture<P: CurveSketch>(make: impl FnMut(u32) -> P) -> DyadicCmPbe<P> {
        let mut f =
            DyadicCmPbe::new(64, SketchParams { epsilon: 0.002, delta: 0.05 }, 11, make).unwrap();
        let mut els: Vec<(u32, u64)> = Vec::new();
        for e in 0..64u32 {
            for i in 0..20u64 {
                els.push((e, i * 10));
            }
        }
        for burst_e in [3u32, 40] {
            for t in 95..110u64 {
                for _ in 0..6 {
                    els.push((burst_e, t));
                }
            }
        }
        els.sort_by_key(|&(_, t)| t);
        for (e, t) in els {
            f.update(EventId(e), Timestamp(t)).unwrap();
        }
        f.finalize();
        f
    }

    #[test]
    fn finds_bursting_events_with_exact_cells() {
        let f = bursty_fixture(|_| ExactCurve::new());
        let tau = BurstSpan::new(20).unwrap();
        let (hits, stats) = f.bursty_events(Timestamp(110), 40.0, tau);
        let ids: Vec<u32> = hits.iter().map(|h| h.event.value()).collect();
        assert_eq!(ids, vec![3, 40]);
        // pruning must beat the full scan
        let (scan_hits, scan_stats) = f.bursty_events_scan(Timestamp(110), 40.0, tau);
        assert_eq!(scan_hits.len(), 2);
        assert!(
            stats.point_queries < scan_stats.point_queries,
            "pruned {} vs scan {}",
            stats.point_queries,
            scan_stats.point_queries
        );
        assert!(stats.pruned_subtrees > 0);
        assert!(stats.leaves_probed < 64);
    }

    #[test]
    fn agrees_with_scan_baseline() {
        let f = bursty_fixture(|_| ExactCurve::new());
        let tau = BurstSpan::new(20).unwrap();
        for theta in [5.0, 20.0, 40.0, 100.0] {
            let (h1, _) = f.bursty_events(Timestamp(110), theta, tau);
            let (h2, _) = f.bursty_events_scan(Timestamp(110), theta, tau);
            let a: Vec<u32> = h1.iter().map(|h| h.event.value()).collect();
            let b: Vec<u32> = h2.iter().map(|h| h.event.value()).collect();
            assert_eq!(a, b, "θ={theta}");
        }
    }

    #[test]
    fn quiet_instant_prunes_to_root() {
        let f = bursty_fixture(|_| ExactCurve::new());
        let tau = BurstSpan::new(20).unwrap();
        // long after the stream: burstiness ~0 everywhere
        let (hits, stats) = f.bursty_events(Timestamp(10_000), 10.0, tau);
        assert!(hits.is_empty());
        assert!(stats.point_queries <= 3, "{stats:?}");
    }

    #[test]
    fn works_with_pbe2_cells() {
        let f = bursty_fixture(|_| Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 32 }).unwrap());
        let tau = BurstSpan::new(20).unwrap();
        let (hits, _) = f.bursty_events(Timestamp(110), 40.0, tau);
        let ids: Vec<u32> = hits.iter().map(|h| h.event.value()).collect();
        assert!(ids.contains(&3) && ids.contains(&40), "ids={ids:?}");
        assert!(ids.len() <= 6, "too many false positives: {ids:?}");
    }

    #[test]
    #[should_panic(expected = "positive threshold")]
    fn nonpositive_threshold_panics() {
        let f = bursty_fixture(|_| ExactCurve::new());
        f.bursty_events(Timestamp(0), 0.0, BurstSpan::new(5).unwrap());
    }

    #[test]
    fn range_query_restricts_and_agrees() {
        let f = bursty_fixture(|_| ExactCurve::new());
        let tau = BurstSpan::new(20).unwrap();
        let t = Timestamp(110);
        // full range = plain query
        let (all, _) = f.bursty_events(t, 40.0, tau);
        let (ranged, _) = f.bursty_events_in_range(0, 64, t, 40.0, tau);
        assert_eq!(all, ranged);
        // bursting events are 3 and 40: query each half
        let (low, stats_low) = f.bursty_events_in_range(0, 32, t, 40.0, tau);
        assert_eq!(low.len(), 1);
        assert_eq!(low[0].event.value(), 3);
        let (high, _) = f.bursty_events_in_range(32, 64, t, 40.0, tau);
        assert_eq!(high.len(), 1);
        assert_eq!(high[0].event.value(), 40);
        // a range containing neither burster
        let (none, _) = f.bursty_events_in_range(8, 32, t, 40.0, tau);
        assert!(none.is_empty());
        // restricting the range must not cost more probes than the full query
        let (_, stats_full) = f.bursty_events(t, 40.0, tau);
        assert!(stats_low.point_queries <= stats_full.point_queries);
    }

    #[test]
    fn range_query_straddling_borders_is_exact() {
        let f = bursty_fixture(|_| ExactCurve::new());
        let tau = BurstSpan::new(20).unwrap();
        let t = Timestamp(110);
        // an awkward unaligned range that straddles several dyadic nodes and
        // contains exactly one burster
        let (hits, _) = f.bursty_events_in_range(3, 40, t, 40.0, tau);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].event.value(), 3);
        let (hits, _) = f.bursty_events_in_range(4, 41, t, 40.0, tau);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].event.value(), 40);
    }

    #[test]
    fn bursty_times_finds_the_burst_window() {
        let f = bursty_fixture(|_| ExactCurve::new());
        let tau = BurstSpan::new(20).unwrap();
        let times = f.bursty_times(EventId(3), 40.0, tau, Timestamp(400));
        assert!(!times.is_empty());
        for (t, b) in &times {
            assert!(*b >= 40.0);
            assert!((95..=150).contains(&t.ticks()), "burst reported at unexpected instant {t}");
        }
    }

    #[test]
    fn bursty_times_empty_for_quiet_event() {
        let f = bursty_fixture(|_| ExactCurve::new());
        let tau = BurstSpan::new(20).unwrap();
        let times = f.bursty_times(EventId(17), 40.0, tau, Timestamp(400));
        assert!(times.is_empty(), "{times:?}");
    }
}
