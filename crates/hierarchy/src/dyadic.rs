//! Dyadic ranges over the event-id space.
//!
//! The universe `[0, K)` is padded to the next power of two `K'`; level `l`
//! partitions it into `K'/2^l` blocks of size `2^l`. An event id `e` belongs
//! to block `e >> l` at level `l`; the root (level `log2 K'`) is the single
//! block covering everything.

use bed_stream::EventId;

/// A dyadic block: `level` and `index` identify `[index·2^level, (index+1)·2^level)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DyadicRange {
    /// Tree level; 0 = leaves (single events).
    pub level: u32,
    /// Block index within the level.
    pub index: u32,
}

impl DyadicRange {
    /// The block containing `event` at `level`.
    pub fn containing(event: EventId, level: u32) -> Self {
        DyadicRange { level, index: event.value() >> level }
    }

    /// First event id covered (inclusive).
    pub fn start(&self) -> u32 {
        self.index << self.level
    }

    /// One past the last event id covered.
    pub fn end(&self) -> u32 {
        (self.index + 1) << self.level
    }

    /// Number of leaf events covered.
    pub fn width(&self) -> u32 {
        1 << self.level
    }

    /// Whether the block covers `event`.
    pub fn contains(&self, event: EventId) -> bool {
        let v = event.value();
        self.start() <= v && v < self.end()
    }

    /// Left child (covers the lower half). Leaves have no children.
    pub fn left_child(&self) -> Option<DyadicRange> {
        (self.level > 0).then(|| DyadicRange { level: self.level - 1, index: self.index << 1 })
    }

    /// Right child (covers the upper half).
    pub fn right_child(&self) -> Option<DyadicRange> {
        (self.level > 0)
            .then(|| DyadicRange { level: self.level - 1, index: (self.index << 1) | 1 })
    }

    /// Parent block.
    pub fn parent(&self) -> DyadicRange {
        DyadicRange { level: self.level + 1, index: self.index >> 1 }
    }
}

/// Smallest power of two ≥ `k`, as the padded universe size (min 1).
pub fn padded_universe(k: u32) -> u32 {
    debug_assert!(k <= 1 << 31, "universe too large for a u32 dyadic tree");
    k.max(1).next_power_of_two()
}

/// Number of levels for a padded universe of size `k_padded`
/// (= `log2(k_padded) + 1`, counting leaves and root).
pub fn level_count(k_padded: u32) -> u32 {
    debug_assert!(k_padded.is_power_of_two());
    k_padded.trailing_zeros() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding() {
        assert_eq!(padded_universe(0), 1);
        assert_eq!(padded_universe(1), 1);
        assert_eq!(padded_universe(2), 2);
        assert_eq!(padded_universe(3), 4);
        assert_eq!(padded_universe(864), 1024);
        assert_eq!(padded_universe(1689), 2048);
    }

    #[test]
    fn level_counts() {
        assert_eq!(level_count(1), 1);
        assert_eq!(level_count(2), 2);
        assert_eq!(level_count(1024), 11);
    }

    #[test]
    fn containment_and_navigation() {
        let r = DyadicRange::containing(EventId(13), 2); // block [12, 16)
        assert_eq!(r.index, 3);
        assert_eq!(r.start(), 12);
        assert_eq!(r.end(), 16);
        assert_eq!(r.width(), 4);
        assert!(r.contains(EventId(12)));
        assert!(r.contains(EventId(15)));
        assert!(!r.contains(EventId(16)));

        let l = r.left_child().unwrap();
        let rt = r.right_child().unwrap();
        assert_eq!((l.start(), l.end()), (12, 14));
        assert_eq!((rt.start(), rt.end()), (14, 16));
        assert_eq!(l.parent(), r);
        assert_eq!(rt.parent(), r);
    }

    #[test]
    fn leaves_have_no_children() {
        let leaf = DyadicRange::containing(EventId(5), 0);
        assert_eq!(leaf.left_child(), None);
        assert_eq!(leaf.right_child(), None);
        assert_eq!(leaf.width(), 1);
        assert!(leaf.contains(EventId(5)));
        assert!(!leaf.contains(EventId(6)));
    }

    #[test]
    fn children_partition_parent() {
        for level in 1..6u32 {
            for index in 0..4u32 {
                let r = DyadicRange { level, index };
                let l = r.left_child().unwrap();
                let rt = r.right_child().unwrap();
                assert_eq!(l.start(), r.start());
                assert_eq!(l.end(), rt.start());
                assert_eq!(rt.end(), r.end());
            }
        }
    }
}
