//! The per-level CM-PBE forest (Fig. 6).

use bed_pbe::CurveSketch;
use bed_sketch::{CmPbe, SketchParams};
use bed_stream::{EventId, StreamError, Timestamp};

use crate::dyadic::{level_count, padded_universe, DyadicRange};

/// One CM-PBE per level of the dyadic decomposition of `[0, K)`.
///
/// Ingesting `(e, t)` updates every level with the block id `e >> level`
/// ("any `(e1, t) ∈ S` or `(e2, t) ∈ S` adds an element `(e_{1,2}, t)` to
/// `S'`" — realised implicitly by hashing the block id instead of
/// materialising the aggregated streams).
///
/// ```
/// use bed_hierarchy::DyadicCmPbe;
/// use bed_pbe::Pbe2;
/// use bed_sketch::SketchParams;
/// use bed_stream::{BurstSpan, EventId, Timestamp};
///
/// let params = SketchParams::new(0.01, 0.05).unwrap();
/// let mut forest =
///     DyadicCmPbe::new(128, params, 7, |_level| Pbe2::with_gamma(1.0).unwrap()).unwrap();
///
/// for t in 0..500u64 {
///     forest.update(EventId((t % 128) as u32), Timestamp(t)).unwrap();
///     if t >= 480 {
///         for _ in 0..10 {
///             forest.update(EventId(99), Timestamp(t)).unwrap();
///         }
///     }
/// }
/// forest.finalize();
///
/// let tau = BurstSpan::new(50).unwrap();
/// let (hits, stats) = forest.bursty_events(Timestamp(499), 100.0, tau);
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].event, EventId(99));
/// // pruned search probes far fewer than the 128-event universe
/// assert!(stats.point_queries < 60, "{stats:?}");
/// ```
///
/// Space: each level's grid width is capped at the number of distinct block
/// ids on that level, so the upper levels cost almost nothing and the total
/// stays `O(log K · |CM-PBE|)`.
#[derive(Debug, Clone)]
pub struct DyadicCmPbe<P> {
    universe: u32,
    k_padded: u32,
    grids: Vec<CmPbe<P>>,
}

impl<P: CurveSketch> DyadicCmPbe<P> {
    /// Builds the forest for a universe of `universe` events.
    ///
    /// `make_cell` constructs each grid cell; it receives the level so cell
    /// budgets can differ per level if desired (pass a closure ignoring it
    /// for uniform cells).
    pub fn new(
        universe: u32,
        params: SketchParams,
        seed: u64,
        mut make_cell: impl FnMut(u32) -> P,
    ) -> Result<Self, StreamError> {
        params.validate()?;
        if universe > (1 << 31) {
            // next_power_of_two would overflow u32; an id space this large
            // should be hashed down before reaching the dyadic tree.
            return Err(StreamError::BudgetTooSmall {
                parameter: "universe (max 2^31)",
                got: universe as usize,
                min: 1,
            });
        }
        let k_padded = padded_universe(universe);
        let levels = level_count(k_padded);
        let mut grids = Vec::with_capacity(levels as usize);
        for level in 0..levels {
            let distinct = (k_padded >> level).max(1) as usize;
            // When the level's id space fits within the hashed width, a
            // direct-indexed (perfect-hash) row is strictly better: zero
            // collision error and `distinct` cells instead of `d × w`.
            let grid = if distinct <= params.width() {
                CmPbe::direct_indexed(distinct, || make_cell(level))
            } else {
                CmPbe::with_dimensions(
                    params.depth(),
                    params.width(),
                    // decorrelate rows across levels
                    seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(level as u64 + 1)),
                    || make_cell(level),
                )
            };
            grids.push(grid);
        }
        Ok(DyadicCmPbe { universe, k_padded, grids })
    }

    /// Number of levels (leaves through root).
    pub fn levels(&self) -> u32 {
        self.grids.len() as u32
    }

    /// Universe size K as configured.
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// Padded universe size K′.
    pub fn padded_universe(&self) -> u32 {
        self.k_padded
    }

    /// The grid summarising `level`.
    pub fn grid(&self, level: u32) -> &CmPbe<P> {
        &self.grids[level as usize]
    }

    /// Visits every level's grid mutably, leaf (level 0) first — retention
    /// compaction folds the cells of every level on one cadence so the
    /// whole forest ages coherently.
    pub fn for_each_grid_mut(&mut self, mut f: impl FnMut(u32, &mut CmPbe<P>)) {
        for (level, grid) in self.grids.iter_mut().enumerate() {
            f(level as u32, grid);
        }
    }

    /// Records one arrival of `event` at `ts` in every level.
    pub fn update(&mut self, event: EventId, ts: Timestamp) -> Result<(), StreamError> {
        if event.value() >= self.universe {
            return Err(StreamError::EventOutOfUniverse {
                event: event.value(),
                universe: self.universe,
            });
        }
        for (level, grid) in self.grids.iter_mut().enumerate() {
            grid.update(EventId(event.value() >> level), ts);
        }
        Ok(())
    }

    /// Ingests a batch with **one thread per level**: each level's grid is
    /// an independent structure fed the batch under its own block ids, so
    /// levels parallelise with no synchronisation (the hierarchy's analogue
    /// of the paper's parallel-construction remark). Within a level the
    /// grid may further parallelise across rows.
    ///
    /// The batch must be timestamp-sorted and within the universe.
    pub fn update_batch_parallel(
        &mut self,
        batch: &[(EventId, Timestamp)],
    ) -> Result<(), StreamError>
    where
        P: Send,
    {
        for &(e, _) in batch {
            if e.value() >= self.universe {
                return Err(StreamError::EventOutOfUniverse {
                    event: e.value(),
                    universe: self.universe,
                });
            }
        }
        std::thread::scope(|scope| {
            for (level, grid) in self.grids.iter_mut().enumerate() {
                scope.spawn(move || {
                    // Translate ids to this level's blocks, then reuse the
                    // grid's own (possibly row-parallel) batch path.
                    let translated: Vec<(EventId, Timestamp)> =
                        batch.iter().map(|&(e, t)| (EventId(e.value() >> level), t)).collect();
                    grid.update_batch(&translated);
                });
            }
        });
        Ok(())
    }

    /// Flushes buffering in every grid.
    pub fn finalize(&mut self) {
        for grid in &mut self.grids {
            grid.finalize();
        }
    }

    /// Elements ingested (N).
    pub fn arrivals(&self) -> u64 {
        self.grids.first().map_or(0, |g| g.arrivals())
    }

    /// Estimated burstiness of a dyadic block at `t`.
    pub fn block_burstiness(
        &self,
        range: DyadicRange,
        t: Timestamp,
        tau: bed_stream::BurstSpan,
    ) -> f64 {
        self.grids[range.level as usize].estimate_burstiness(EventId(range.index), t, tau)
    }

    /// Estimated cumulative frequency of a single event (leaf level).
    pub fn estimate_cum(&self, event: EventId, t: Timestamp) -> f64 {
        self.grids[0].estimate_cum(event, t)
    }

    /// Estimated burstiness of a single event (leaf level).
    pub fn estimate_burstiness(
        &self,
        event: EventId,
        t: Timestamp,
        tau: bed_stream::BurstSpan,
    ) -> f64 {
        self.grids[0].estimate_burstiness(event, t, tau)
    }

    /// Total size across all levels in bytes.
    pub fn size_bytes(&self) -> usize {
        self.grids.iter().map(|g| g.size_bytes()).sum()
    }

    /// Structural readings for observability: level count, the leaf grid's
    /// shape, and node/cell fill totals over the whole forest.
    pub fn structure(&self) -> ForestStructure {
        let mut total = bed_sketch::CmStructure::default();
        for grid in &self.grids {
            total.accumulate(&grid.structure());
        }
        ForestStructure {
            levels: self.levels(),
            universe: self.universe(),
            padded_universe: self.padded_universe(),
            leaf: self.grids[0].structure(),
            nodes: total.cells,
            occupied_nodes: total.occupied_cells,
            pieces: total.pieces,
            buffered: total.buffered,
            bytes: total.bytes,
        }
    }
}

/// Structural readings of one dyadic forest (see [`DyadicCmPbe::structure`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForestStructure {
    /// Levels in the hierarchy (`log₂ K + 1`).
    pub levels: u32,
    /// Declared event-id universe `K`.
    pub universe: u32,
    /// Universe padded to the next power of two.
    pub padded_universe: u32,
    /// Structure of the leaf grid (level 0), which answers point queries.
    pub leaf: bed_sketch::CmStructure,
    /// Total sketch cells across every level.
    pub nodes: usize,
    /// Cells that have ingested at least one arrival, across every level.
    pub occupied_nodes: usize,
    /// Summary pieces across every level.
    pub pieces: usize,
    /// Buffered exact state across every level awaiting compression.
    pub buffered: usize,
    /// Total byte footprint of the forest.
    pub bytes: usize,
}

/// Persistence (format `DYAD` v1): universe sizes plus one CM-PBE per level.
impl<P: bed_stream::Codec> bed_stream::Codec for DyadicCmPbe<P> {
    fn encode(&self, w: &mut bed_stream::codec::Writer) {
        w.magic(*b"DYAD");
        w.version(1);
        w.u32(self.universe);
        w.u32(self.k_padded);
        w.len(self.grids.len());
        for g in &self.grids {
            g.encode(w);
        }
    }

    fn decode(r: &mut bed_stream::codec::Reader<'_>) -> Result<Self, bed_stream::CodecError> {
        use bed_stream::CodecError;
        r.magic(*b"DYAD")?;
        r.version(1)?;
        let universe = r.u32("dyadic universe")?;
        let k_padded = r.u32("dyadic padded universe")?;
        if !k_padded.is_power_of_two() || k_padded < universe.max(1) {
            return Err(CodecError::Invalid { context: "dyadic padding" });
        }
        let n = r.len("dyadic level count", 1)?;
        if n as u32 != level_count(k_padded) {
            return Err(CodecError::Invalid { context: "dyadic level count" });
        }
        let mut grids = Vec::with_capacity(n);
        for _ in 0..n {
            grids.push(CmPbe::<P>::decode(r)?);
        }
        Ok(DyadicCmPbe { universe, k_padded, grids })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bed_pbe::ExactCurve;
    use bed_stream::BurstSpan;

    fn forest(universe: u32) -> DyadicCmPbe<ExactCurve> {
        DyadicCmPbe::new(universe, SketchParams { epsilon: 0.01, delta: 0.05 }, 7, |_| {
            ExactCurve::new()
        })
        .unwrap()
    }

    #[test]
    fn level_structure() {
        let f = forest(864);
        assert_eq!(f.padded_universe(), 1024);
        assert_eq!(f.levels(), 11);
        // root grid width capped at 1 block
        assert_eq!(f.grid(10).width(), 1);
        assert!(f.grid(0).width() > 100);
    }

    #[test]
    fn rejects_out_of_universe() {
        let mut f = forest(8);
        assert!(f.update(EventId(8), Timestamp(0)).is_err());
        assert!(f.update(EventId(7), Timestamp(0)).is_ok());
        assert_eq!(f.arrivals(), 1);
    }

    #[test]
    fn parent_aggregates_children() {
        // With exact cells and a wide grid, level-1 block burstiness equals
        // the sum of its two leaves' burstiness.
        let mut f = forest(16);
        let tau = BurstSpan::new(10).unwrap();
        // event 4 bursts at 95..100, event 5 at 97..102
        let mut els: Vec<(u32, u64)> = (95..100).map(|t| (4u32, t)).collect();
        els.extend((97..102).map(|t| (5u32, t)));
        els.sort_by_key(|&(_, t)| t);
        for (e, t) in els {
            f.update(EventId(e), Timestamp(t)).unwrap();
        }
        let t = Timestamp(101);
        let b4 = f.estimate_burstiness(EventId(4), t, tau);
        let b5 = f.estimate_burstiness(EventId(5), t, tau);
        let parent = DyadicRange { level: 1, index: 2 }; // covers {4, 5}
        let bp = f.block_burstiness(parent, t, tau);
        assert!((bp - (b4 + b5)).abs() < 1e-9, "bp={bp} b4={b4} b5={b5}");
    }

    #[test]
    fn parallel_batch_matches_sequential_updates() {
        let batch: Vec<(EventId, Timestamp)> =
            (0..6_000u64).map(|i| (EventId((i * 13 % 64) as u32), Timestamp(i / 3))).collect();
        let mut seq = forest(64);
        let mut par = forest(64);
        for &(e, t) in &batch {
            seq.update(e, t).unwrap();
        }
        par.update_batch_parallel(&batch).unwrap();
        assert_eq!(seq.arrivals(), par.arrivals());
        let tau = BurstSpan::new(100).unwrap();
        for e in (0..64u32).step_by(7) {
            assert_eq!(
                seq.estimate_burstiness(EventId(e), Timestamp(1_999), tau),
                par.estimate_burstiness(EventId(e), Timestamp(1_999), tau)
            );
        }
        // out-of-universe batches are rejected atomically
        let bad = vec![(EventId(64), Timestamp(5_000))];
        assert!(par.update_batch_parallel(&bad).is_err());
    }

    #[test]
    fn size_grows_with_levels_but_sublinearly() {
        use bed_pbe::{Pbe2, Pbe2Config};
        // With bounded PBE cells (the real configuration — exact cells would
        // store every timestamp at every level), upper levels compress well:
        // a root cell sees a near-constant aggregate rate and needs only a
        // handful of PLA segments.
        let mut f = DyadicCmPbe::new(256, SketchParams { epsilon: 0.01, delta: 0.05 }, 7, |_| {
            Pbe2::new(Pbe2Config { gamma: 4.0, max_vertices: 32 }).unwrap()
        })
        .unwrap();
        // Uniformly random event per tick-quarter: every dyadic block sees a
        // constant-rate stream, so each PBE-2 cell needs very few segments.
        // (A round-robin id order would make mid-level blocks burst
        // periodically and legitimately cost many segments.)
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for i in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            f.update(EventId((x % 256) as u32), Timestamp(i / 4)).unwrap();
        }
        f.finalize();
        let leaf_size = f.grid(0).size_bytes();
        let total = f.size_bytes();
        // the whole forest costs less than `levels` copies of the leaf grid
        // (upper levels have fewer, larger cells whose Poisson noise — the
        // driver of PLA segment count — grows only as √rate)
        let levels = f.levels() as usize;
        assert!(total < leaf_size * levels, "total={total} leaf={leaf_size} levels={levels}");
        assert!(total > leaf_size);
    }
}
