//! Struct-of-arrays piece bank: the vectorizable query-side layout.
//!
//! The array-of-structs layout the sketches ingest into (`Vec<CornerPoint>`,
//! `Vec<Segment>`) is ideal for appends but hostile to the d-row probe loop
//! of CM-PBE: every row chases a separate heap pointer and every rank search
//! strides over 16–24-byte structs, pulling slope/intercept bytes through the
//! cache just to compare timestamps. This module is the read-optimised
//! mirror: at `finalize` time every cell's pieces are re-laid out into four
//! parallel arrays (`starts`, `ends`, `slopes`, `intercepts`) shared by all
//! lanes, each lane padded to a cache-line boundary, so
//!
//! * a rank search touches **keys only** — eight `u64`s per cache line
//!   instead of 2–4 embedded struct keys;
//! * the per-lane evaluation `(a·dt + b).max(0)` becomes a fixed-width loop
//!   over plain `f64` arrays that the autovectorizer turns into packed
//!   `mulpd`/`addpd`/`maxpd` (checked by `scripts/check_vectorization.sh`);
//! * the next row's key line can be warmed while the current row resolves.
//!
//! Every piece is the same canonical form, so one kernel serves staircase
//! (PBE-1, exact) and PLA (PBE-2) cells alike; see [`CurvePiece`]. The bank
//! is a pure acceleration structure: all kernels return values bit-for-bit
//! identical to the AoS paths they mirror (pinned by proptests in
//! `crates/sketch/tests/prop.rs` and `tests/api_contract.rs`).

use bed_stream::{BurstSpan, Timestamp};

use crate::kernel::{rank_resume, CumHint};
use crate::traits::CurveSketch;

/// One piece of a frequency-curve estimate in canonical linear form: for
/// `t ≥ start` the estimate is `(a·dt + b).max(0)` with
/// `dt = min(t, end) − start` — the exact arithmetic of
/// `Segment::eval_clamped` in PBE-2. Staircase corners are the degenerate
/// `a = 0, start = end` case, where the expression collapses bit-for-bit to
/// `b` (`0·0 = +0`, `+0 + b = b`, and `b.max(0) = b` for the non-negative
/// counts a staircase stores).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePiece {
    /// First timestamp covered; pieces of one lane have strictly ascending
    /// starts and the piece owns `[start, next piece's start)`.
    pub start: u64,
    /// Last constraint timestamp covered; beyond it the end value holds.
    pub end: u64,
    /// Slope per tick.
    pub a: f64,
    /// Value at `start`.
    pub b: f64,
}

impl CurvePiece {
    /// A staircase corner: the estimate holds `cum` from `t` onward.
    #[inline]
    pub fn staircase(t: u64, cum: f64) -> Self {
        CurvePiece { start: t, end: t, a: 0.0, b: cum }
    }
}

/// Widest grid the stack-resident batched kernels cover: one lane per
/// Count-Min row, matching `bed_sketch::MEDIAN_STACK` (d = 8 ⇒ δ ≈ 3e−4,
/// past any configuration the paper evaluates). Kept tight deliberately:
/// the batched kernels zero-initialise `O(MAX_LANES)` stack arrays per
/// probe, so headroom nobody uses is pure per-query cost.
pub const MAX_LANES: usize = 8;

/// Elements per 64-byte cache line for the 8-byte lane element types; lane
/// offsets and padded lengths are multiples of this so every lane begins on
/// a line boundary.
const LINE_ELEMS: usize = 8;

/// A 64-byte-aligned, immutable array of 8-byte elements, built without
/// `unsafe`: the backing `Vec` over-allocates by one cache line and the
/// accessor skips to the first aligned element. The skew is computed once at
/// construction and the buffer is never pushed to afterwards, so the
/// alignment holds for the structure's lifetime.
#[derive(Debug)]
struct Aligned64<T> {
    buf: Vec<T>,
    skew: usize,
    len: usize,
}

impl<T: Copy + Default> Aligned64<T> {
    /// Allocates `len` elements, aligns, and lets `fill` write them.
    fn build(len: usize, fill: impl FnOnce(&mut [T])) -> Self {
        debug_assert_eq!(std::mem::size_of::<T>(), 8);
        let mut buf = vec![T::default(); len + LINE_ELEMS];
        let skew = buf.as_ptr().align_offset(64);
        assert!(skew < LINE_ELEMS, "64-byte alignment unreachable from an 8-byte-aligned Vec");
        fill(&mut buf[skew..skew + len]);
        Aligned64 { buf, skew, len }
    }

    #[inline]
    fn as_slice(&self) -> &[T] {
        &self.buf[self.skew..self.skew + self.len]
    }
}

/// Cloning re-aligns: the fresh allocation lands at its own address, so the
/// skew must be recomputed rather than copied.
impl<T: Copy + Default> Clone for Aligned64<T> {
    fn clone(&self) -> Self {
        Aligned64::build(self.len, |dst| dst.copy_from_slice(self.as_slice()))
    }
}

/// Where one lane's pieces live inside the shared arrays.
#[derive(Debug, Clone, Copy)]
struct LaneSpan {
    /// Element offset of the lane's first piece (a multiple of
    /// [`LINE_ELEMS`], so the lane starts on a cache-line boundary).
    off: u32,
    /// Piece count including the sentinel (padding excluded).
    len: u32,
}

/// The struct-of-arrays piece bank: every lane's pieces laid out
/// contiguously in four parallel arrays, 64-byte aligned and padded.
///
/// Each lane is prefixed with a sentinel piece `{start: 0, end: 0, a: 0,
/// b: 0}` so a rank search always returns ≥ 1 and "before any piece reads
/// 0" needs no branch: the sentinel simply evaluates to `+0.0`, the same
/// bits the AoS paths return for pre-first-piece probes.
#[derive(Debug, Clone)]
pub struct PieceBank {
    starts: Aligned64<u64>,
    ends: Aligned64<u64>,
    slopes: Aligned64<f64>,
    intercepts: Aligned64<f64>,
    spans: Vec<LaneSpan>,
}

/// Incremental [`PieceBank`] constructor: declare a lane, stream its pieces
/// in ascending start order, repeat, then [`finish`](Self::finish).
#[derive(Debug, Default)]
pub struct PieceBankBuilder {
    pieces: Vec<CurvePiece>,
    /// Index into `pieces` where each lane begins (its sentinel).
    lane_starts: Vec<u32>,
}

impl PieceBankBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens the next lane (lanes are numbered in call order).
    pub fn begin_lane(&mut self) {
        self.lane_starts.push(self.pieces.len() as u32);
        self.pieces.push(CurvePiece { start: 0, end: 0, a: 0.0, b: 0.0 });
    }

    /// Appends one piece to the open lane. Starts must strictly ascend
    /// within a lane and every field must be finite.
    pub fn push(&mut self, p: CurvePiece) {
        debug_assert!(!self.lane_starts.is_empty(), "push before begin_lane");
        debug_assert!(p.start <= p.end, "inverted piece {p:?}");
        debug_assert!(p.a.is_finite() && p.b.is_finite(), "non-finite piece {p:?}");
        debug_assert!(
            self.pieces.len() == *self.lane_starts.last().unwrap() as usize + 1
                || self.pieces.last().is_none_or(|l| l.start < p.start),
            "piece starts must strictly ascend within a lane"
        );
        self.pieces.push(p);
    }

    /// Opens a lane and fills it from a sketch's
    /// [`CurveSketch::for_each_piece`] visitor.
    pub fn add_lane_from<S: CurveSketch + ?Sized>(&mut self, sketch: &S) {
        self.begin_lane();
        sketch.for_each_piece(&mut |p| self.push(p));
    }

    /// Lays the collected lanes out into the aligned parallel arrays.
    pub fn finish(self) -> PieceBank {
        let nlanes = self.lane_starts.len();
        assert!(nlanes <= u32::MAX as usize, "lane count exceeds u32 indexing");
        let mut spans = Vec::with_capacity(nlanes);
        let mut total = 0usize;
        for (i, &s) in self.lane_starts.iter().enumerate() {
            let end = self.lane_starts.get(i + 1).map_or(self.pieces.len(), |&e| e as usize);
            let len = end - s as usize;
            spans.push(LaneSpan { off: total as u32, len: len as u32 });
            total += len.next_multiple_of(LINE_ELEMS);
        }
        assert!(total <= u32::MAX as usize, "piece count exceeds u32 indexing");
        let lay = |dst: &mut [u64], field: &dyn Fn(&CurvePiece) -> u64, pad: u64| {
            dst.fill(pad);
            for (span, &s) in spans.iter().zip(&self.lane_starts) {
                let src = &self.pieces[s as usize..s as usize + span.len as usize];
                for (d, p) in dst[span.off as usize..].iter_mut().zip(src) {
                    *d = field(p);
                }
            }
        };
        // Key padding is u64::MAX so padded slots compare as "after every
        // probe instant" even if a search were ever run unbounded.
        let starts = Aligned64::build(total, |dst| lay(dst, &|p| p.start, u64::MAX));
        let ends = Aligned64::build(total, |dst| lay(dst, &|p| p.end, 0));
        let layf = |dst: &mut [f64], field: &dyn Fn(&CurvePiece) -> f64| {
            for (span, &s) in spans.iter().zip(&self.lane_starts) {
                let src = &self.pieces[s as usize..s as usize + span.len as usize];
                for (d, p) in dst[span.off as usize..].iter_mut().zip(src) {
                    *d = field(p);
                }
            }
        };
        let slopes = Aligned64::build(total, |dst| layf(dst, &|p| p.a));
        let intercepts = Aligned64::build(total, |dst| layf(dst, &|p| p.b));
        PieceBank { starts, ends, slopes, intercepts, spans }
    }
}

/// Output lanes of one [`PieceBank::probe3_rows`] call: the three Eq. 2
/// probe values per row, ready for the median combine. Rows past the
/// queried depth and pre-epoch offsets hold `+0.0`.
#[derive(Debug, Clone, Copy)]
pub struct ProbeRows {
    /// `F̃(t)` per lane.
    pub v0: [f64; MAX_LANES],
    /// `F̃(t−τ)` per lane (0 when `t < τ`).
    pub v1: [f64; MAX_LANES],
    /// `F̃(t−2τ)` per lane (0 when `t < 2τ`).
    pub v2: [f64; MAX_LANES],
}

impl Default for ProbeRows {
    fn default() -> Self {
        ProbeRows { v0: [0.0; MAX_LANES], v1: [0.0; MAX_LANES], v2: [0.0; MAX_LANES] }
    }
}

/// The bank's four parallel arrays as plain slices — hoisted once per
/// kernel call so the inner loops index without re-deriving the aligned
/// sub-slices.
#[derive(Clone, Copy)]
struct Arrays<'a> {
    starts: &'a [u64],
    ends: &'a [u64],
    slopes: &'a [f64],
    intercepts: &'a [f64],
}

impl Arrays<'_> {
    /// Evaluates the piece at flat index `idx` at instant `t` — the
    /// canonical `(a·dt + b).max(0)` with `dt = min(t, end) − start`,
    /// bit-identical to `Segment::eval_clamped` for `t ≥ start` (guaranteed
    /// by rank selection; `saturating_sub` only guards corrupted input).
    #[inline]
    fn eval(&self, idx: usize, t: u64) -> f64 {
        let dt = (t.min(self.ends[idx]).saturating_sub(self.starts[idx])) as f64;
        (self.slopes[idx] * dt + self.intercepts[idx]).max(0.0)
    }
}

impl PieceBank {
    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.spans.len()
    }

    /// Byte footprint of the four arrays plus the span table (padding and
    /// alignment slack included — this is the real resident cost).
    pub fn size_bytes(&self) -> usize {
        4 * self.starts.buf.len() * 8 + self.spans.len() * std::mem::size_of::<LaneSpan>()
    }

    #[inline]
    fn span(&self, lane: u32) -> (usize, usize) {
        let s = self.spans[lane as usize];
        (s.off as usize, s.len as usize)
    }

    /// The four parallel arrays, hoisted once per kernel call: going through
    /// [`Aligned64::as_slice`] per element would re-check the skew bounds on
    /// every read, which the probe loops cannot afford.
    #[inline]
    fn arrays(&self) -> Arrays<'_> {
        Arrays {
            starts: self.starts.as_slice(),
            ends: self.ends.as_slice(),
            slopes: self.slopes.as_slice(),
            intercepts: self.intercepts.as_slice(),
        }
    }

    /// `F̃(t)` of one lane, full-width rank search.
    #[inline]
    pub fn cum_lane(&self, lane: u32, t: Timestamp) -> f64 {
        let a = self.arrays();
        let (off, n) = self.span(lane);
        let keys = &a.starts[off..off + n];
        let tt = t.ticks();
        let r = rank_resume(n, n, |i| keys[i] <= tt);
        a.eval(off + r - 1, tt)
    }

    /// `F̃(t)` of one lane with rank resumption, the bank-side mirror of
    /// [`CurveSketch::estimate_cum_hinted`]. The hint's rank space includes
    /// the lane sentinel (so it is one higher than the AoS rank for the same
    /// instant), which is fine: a hint is a resume point, not a value.
    #[inline]
    pub fn cum_lane_hinted(&self, lane: u32, t: Timestamp, hint: &mut CumHint) -> f64 {
        let a = self.arrays();
        let (off, n) = self.span(lane);
        let keys = &a.starts[off..off + n];
        let tt = t.ticks();
        let r = rank_resume(n, hint.rank, |i| keys[i] <= tt);
        hint.rank = r;
        a.eval(off + r - 1, tt)
    }

    /// Monotone multi-position sweep of one lane: `out[i] = F̃(positions[i])`
    /// for ascending `positions`, in one forward walk of the lane's keys —
    /// the bank-side analogue of chaining [`CurveSketch::estimate_cum_hinted`]
    /// calls, but `O(pieces + positions)` with the lane's key line resident
    /// throughout. Values are bit-identical to per-position searches (the
    /// rank — the count of keys `≤ pos` — is unique, however it is found).
    pub fn cum_lane_sweep(&self, lane: u32, positions: &[u64], out: &mut [f64]) {
        assert_eq!(positions.len(), out.len(), "one output slot per position");
        debug_assert!(positions.is_sorted(), "sweep positions must ascend");
        let a = self.arrays();
        let (off, n) = self.span(lane);
        let keys = &a.starts[off..off + n];
        // The sentinel key 0 is ≤ every position, so the rank starts at 1.
        let mut r = 1usize;
        for (o, &pos) in out.iter_mut().zip(positions) {
            while r < n && keys[r] <= pos {
                r += 1;
            }
            *o = a.eval(off + r - 1, pos);
        }
    }

    /// Fused `[F̃(t), F̃(t−τ), F̃(t−2τ)]` of one lane — the bank-side mirror
    /// of [`CurveSketch::probe3`]: one full search for `t`, bounded backward
    /// resumption for the earlier offsets, pre-epoch offsets reading 0.
    #[inline]
    pub fn probe3_lane(&self, lane: u32, t: Timestamp, tau: BurstSpan) -> [f64; 3] {
        let a = self.arrays();
        let (off, n) = self.span(lane);
        Self::probe3_span(&a, off, n, t, tau)
    }

    /// The shared single-lane probe body, on pre-hoisted arrays.
    #[inline]
    fn probe3_span(a: &Arrays<'_>, off: usize, n: usize, t: Timestamp, tau: BurstSpan) -> [f64; 3] {
        let keys = &a.starts[off..off + n];
        let tt = t.ticks();
        let r0 = rank_resume(n, n, |i| keys[i] <= tt);
        let f0 = a.eval(off + r0 - 1, tt);
        let (f1, r1) = match t.checked_sub(tau.ticks()) {
            Some(earlier) => {
                let e = earlier.ticks();
                let r = rank_resume(n, r0, |i| keys[i] <= e);
                (a.eval(off + r - 1, e), r)
            }
            None => (0.0, r0),
        };
        let f2 = match t.checked_sub(tau.ticks().saturating_mul(2)) {
            Some(earlier) => {
                let e = earlier.ticks();
                let r = rank_resume(n, r1, |i| keys[i] <= e);
                a.eval(off + r - 1, e)
            }
            None => 0.0,
        };
        [f0, f1, f2]
    }

    /// Dense fused probe: `[F̃(t), F̃(t−τ), F̃(t−2τ)]` for **every** lane in
    /// index order, lane `i`'s triplet written to `out[3i..3i + 3]`. Lanes
    /// are laid out consecutively, so this is one strictly sequential pass
    /// over the whole bank — the hardware prefetcher streams the key lines
    /// while each lane's three chained ranks resolve. This is the kernel
    /// behind the dense bursty-event scan, where every cell of the grid
    /// answers exactly once.
    pub fn probe3_all_into(&self, t: Timestamp, tau: BurstSpan, out: &mut [f64]) {
        assert_eq!(out.len(), 3 * self.spans.len(), "three output slots per lane");
        let a = self.arrays();
        for (lane, s) in self.spans.iter().enumerate() {
            let f = Self::probe3_span(&a, s.off as usize, s.len as usize, t, tau);
            out[3 * lane..3 * lane + 3].copy_from_slice(&f);
        }
    }

    /// The batched probe kernel: resolves **all rows** of one `(t, τ)`
    /// probe in a single pass. Phase 1 walks the lanes, chains the three
    /// rank searches per lane (full-width for `t`, bounded-backward for
    /// `t−τ`, `t−2τ`), and *gathers* the selected pieces' `(a, b, dt)` into
    /// fixed-width parameter rows — touching the next lane's key line first
    /// so its fetch overlaps the current lane's search. Phase 2 evaluates
    /// all `3 × MAX_LANES` gathered pieces in three fixed-trip loops of
    /// pure `mul/add/max` on `f64` arrays, which the autovectorizer lowers
    /// to packed SIMD (`scripts/check_vectorization.sh` fails CI if not).
    ///
    /// Unused rows (`lanes.len() < MAX_LANES`) and pre-epoch offsets keep
    /// zeroed parameters and evaluate to `+0.0` — the same bits the AoS
    /// path writes — so callers combine `out.v*[..d]` directly.
    pub fn probe3_rows(&self, lanes: &[u32], t: Timestamp, tau: BurstSpan, out: &mut ProbeRows) {
        assert!(lanes.len() <= MAX_LANES, "probe3_rows supports at most {MAX_LANES} rows");
        let tt = t.ticks();
        let t1 = t.checked_sub(tau.ticks()).map(|e| e.ticks());
        let t2 = t.checked_sub(tau.ticks().saturating_mul(2)).map(|e| e.ticks());
        let a = self.arrays();
        // Gathered piece parameters, one row per Eq. 2 offset leg.
        let mut pa = [[0.0f64; MAX_LANES]; 3];
        let mut pb = [[0.0f64; MAX_LANES]; 3];
        let mut dt = [[0.0f64; MAX_LANES]; 3];
        for (row, &lane) in lanes.iter().enumerate() {
            if let Some(&next) = lanes.get(row + 1) {
                // Software prefetch, `unsafe`-free: a discarded load of the
                // next lane's middle key starts that line's fetch while the
                // current lane's searches and gathers execute. `black_box`
                // keeps the load from being optimised away.
                let (noff, nlen) = self.span(next);
                std::hint::black_box(a.starts[noff + nlen / 2]);
            }
            let (off, n) = self.span(lane);
            let keys = &a.starts[off..off + n];
            let mut gather = |leg: usize, idx: usize, at: u64| {
                pa[leg][row] = a.slopes[idx];
                pb[leg][row] = a.intercepts[idx];
                dt[leg][row] = (at.min(a.ends[idx]).saturating_sub(a.starts[idx])) as f64;
            };
            let r0 = rank_resume(n, n, |i| keys[i] <= tt);
            gather(0, off + r0 - 1, tt);
            let r1 = match t1 {
                Some(e) => {
                    let r = rank_resume(n, r0, |i| keys[i] <= e);
                    gather(1, off + r - 1, e);
                    r
                }
                None => r0,
            };
            if let Some(e) = t2 {
                let r = rank_resume(n, r1, |i| keys[i] <= e);
                gather(2, off + r - 1, e);
            }
        }
        // Lane-parallel evaluation: fixed trip counts over plain f64 arrays
        // — the loops the vectorization guard pins to packed instructions.
        for i in 0..MAX_LANES {
            out.v0[i] = (pa[0][i] * dt[0][i] + pb[0][i]).max(0.0);
        }
        for i in 0..MAX_LANES {
            out.v1[i] = (pa[1][i] * dt[1][i] + pb[1][i]).max(0.0);
        }
        for i in 0..MAX_LANES {
            out.v2[i] = (pa[2][i] * dt[2][i] + pb[2][i]).max(0.0);
        }
    }
}

/// Builds a bank with one lane per sketch in `cells`, in order: lane `i`
/// mirrors `cells[i]`. The natural fit for a CM-PBE grid, where the flat
/// cell index *is* the lane index.
pub fn bank_of_cells<S: CurveSketch>(cells: &[S]) -> PieceBank {
    let mut b = PieceBankBuilder::new();
    for c in cells {
        b.add_lane_from(c);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExactCurve, Pbe1, Pbe1Config, Pbe2, Pbe2Config};

    fn feed<S: CurveSketch>(s: &mut S, ts: &[u64]) {
        for &t in ts {
            s.update(Timestamp(t));
        }
    }

    fn assert_lane_matches<S: CurveSketch>(sketch: &S, probes: &[u64], tau: BurstSpan) {
        let mut b = PieceBankBuilder::new();
        b.add_lane_from(sketch);
        let bank = b.finish();
        let mut hint = CumHint::new();
        for &t in probes {
            let t = Timestamp(t);
            let aos = sketch.estimate_cum(t);
            assert_eq!(bank.cum_lane(0, t).to_bits(), aos.to_bits(), "cum at {t:?}");
            assert_eq!(bank.cum_lane_hinted(0, t, &mut hint).to_bits(), aos.to_bits());
            let want = sketch.probe3(t, tau);
            let got = bank.probe3_lane(0, t, tau);
            for k in 0..3 {
                assert_eq!(got[k].to_bits(), want[k].to_bits(), "probe3 leg {k} at {t:?}");
            }
        }
    }

    #[test]
    fn exact_and_pbe1_lanes_match_aos_bitwise() {
        let ts: Vec<u64> = vec![3, 3, 3, 10, 11, 11, 40, 41, 42, 90, 90, 200, 500, 501];
        let probes: Vec<u64> = (0..600).step_by(7).chain([0, 1, 2, 3, 599, 1000]).collect();
        let tau = BurstSpan::new(37).unwrap();
        let mut ex = ExactCurve::new();
        feed(&mut ex, &ts);
        assert_lane_matches(&ex, &probes, tau);
        let mut p1 = Pbe1::new(Pbe1Config { n_buf: 6, eta: 3 }).unwrap();
        feed(&mut p1, &ts);
        assert_lane_matches(&p1, &probes, tau); // mid-stream: summary ⊕ buffer
        p1.finalize();
        assert_lane_matches(&p1, &probes, tau);
    }

    #[test]
    fn pbe2_lanes_match_aos_bitwise_mid_stream_and_final() {
        let ts: Vec<u64> = (0..200u64).flat_map(|i| [i * 3, i * 3]).chain(600..650).collect();
        let probes: Vec<u64> = (0..700).step_by(11).chain([0, 1, 649, 5000]).collect();
        let tau = BurstSpan::new(29).unwrap();
        let mut p2 = Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 16 }).unwrap();
        feed(&mut p2, &ts);
        assert_lane_matches(&p2, &probes, tau); // open polygon + pending corner
        p2.finalize();
        assert_lane_matches(&p2, &probes, tau);
    }

    #[test]
    fn pending_only_and_empty_lanes_match() {
        let tau = BurstSpan::new(5).unwrap();
        // Pending-only PBE-2: one burst of updates at a single tick, no
        // segments or polygon yet when the first arrival is at t = 0.
        let mut p2 = Pbe2::with_gamma(1.0).unwrap();
        feed(&mut p2, &[0, 0, 0]);
        assert_lane_matches(&p2, &[0, 1, 2, 10], tau);
        // Empty cells of every flavour read 0 everywhere.
        assert_lane_matches(&Pbe2::with_gamma(1.0).unwrap(), &[0, 3, 100], tau);
        assert_lane_matches(&Pbe1::new(Pbe1Config { n_buf: 4, eta: 2 }).unwrap(), &[0, 7], tau);
        assert_lane_matches(&ExactCurve::new(), &[0, 7], tau);
    }

    #[test]
    fn probe3_rows_matches_per_lane_probes() {
        let tau = BurstSpan::new(13).unwrap();
        let mut b = PieceBankBuilder::new();
        let mut cells: Vec<Pbe2> = Vec::new();
        for lane in 0..5u64 {
            let mut p = Pbe2::with_gamma(1.0 + lane as f64).unwrap();
            feed(&mut p, &(0..100).map(|i| i * (lane + 1)).collect::<Vec<_>>());
            if lane % 2 == 0 {
                p.finalize();
            }
            b.add_lane_from(&p);
            cells.push(p);
        }
        let bank = b.finish();
        let lanes: Vec<u32> = (0..5).collect();
        let mut rows = ProbeRows::default();
        for t in [0u64, 5, 12, 13, 26, 27, 99, 450, 900] {
            bank.probe3_rows(&lanes, Timestamp(t), tau, &mut rows);
            for (row, cell) in cells.iter().enumerate() {
                let want = cell.probe3(Timestamp(t), tau);
                assert_eq!(rows.v0[row].to_bits(), want[0].to_bits(), "t={t} row={row}");
                assert_eq!(rows.v1[row].to_bits(), want[1].to_bits(), "t={t} row={row}");
                assert_eq!(rows.v2[row].to_bits(), want[2].to_bits(), "t={t} row={row}");
            }
            for row in 5..MAX_LANES {
                assert_eq!(rows.v0[row], 0.0);
                assert_eq!(rows.v1[row], 0.0);
                assert_eq!(rows.v2[row], 0.0);
            }
        }
    }

    #[test]
    fn dense_and_sweep_kernels_match_per_lane_paths() {
        let tau = BurstSpan::new(13).unwrap();
        let mut b = PieceBankBuilder::new();
        let mut cells: Vec<Pbe2> = Vec::new();
        for lane in 0..6u64 {
            let mut p = Pbe2::with_gamma(1.0 + lane as f64).unwrap();
            if lane != 3 {
                feed(&mut p, &(0..80).map(|i| i * (lane + 1)).collect::<Vec<_>>());
            }
            if lane % 2 == 0 {
                p.finalize();
            }
            b.add_lane_from(&p);
            cells.push(p);
        }
        let bank = b.finish();
        // probe3_all_into == probe3_lane for every lane, at assorted instants.
        let mut all = vec![0.0f64; 3 * bank.lanes()];
        for t in [0u64, 5, 13, 26, 79, 200, 900] {
            bank.probe3_all_into(Timestamp(t), tau, &mut all);
            for lane in 0..bank.lanes() as u32 {
                let want = bank.probe3_lane(lane, Timestamp(t), tau);
                for k in 0..3 {
                    assert_eq!(
                        all[3 * lane as usize + k].to_bits(),
                        want[k].to_bits(),
                        "t={t} lane={lane} leg={k}"
                    );
                }
            }
        }
        // cum_lane_sweep == chained hinted lookups over ascending positions.
        let positions: Vec<u64> = (0..500).step_by(3).chain([500, 900, 901]).collect();
        let mut swept = vec![0.0f64; positions.len()];
        for lane in 0..bank.lanes() as u32 {
            bank.cum_lane_sweep(lane, &positions, &mut swept);
            let mut hint = CumHint::new();
            for (i, &pos) in positions.iter().enumerate() {
                let want = bank.cum_lane_hinted(lane, Timestamp(pos), &mut hint);
                assert_eq!(swept[i].to_bits(), want.to_bits(), "lane={lane} pos={pos}");
            }
        }
    }

    #[test]
    fn lanes_are_cache_line_aligned() {
        let mut b = PieceBankBuilder::new();
        for n in [0usize, 1, 7, 8, 9, 31] {
            b.begin_lane();
            for i in 0..n {
                b.push(CurvePiece::staircase(1 + i as u64, (i + 1) as f64));
            }
        }
        let bank = b.finish();
        assert_eq!(bank.lanes(), 6);
        let base = bank.starts.as_slice().as_ptr() as usize;
        assert_eq!(base % 64, 0, "starts array must be 64-byte aligned");
        assert_eq!(bank.slopes.as_slice().as_ptr() as usize % 64, 0);
        for s in &bank.spans {
            assert_eq!(s.off as usize % LINE_ELEMS, 0, "lane offset off a line boundary");
        }
        let cloned = bank.clone();
        assert_eq!(cloned.starts.as_slice().as_ptr() as usize % 64, 0, "clone must re-align");
        assert_eq!(cloned.starts.as_slice(), bank.starts.as_slice());
        assert!(bank.size_bytes() > 0);
    }
}
