//! Feasible-region geometry for PBE-2.
//!
//! A line `F̃(t) = a·t + b` passes through the γ-range of a constraint point
//! `(t_j, F(t_j))` iff `F(t_j) − γ ≤ a·t_j + b ≤ F(t_j)` (Eq. 4), i.e. the
//! pair `(a, b)` lies between two parallel half-planes in the dual
//! `(slope, intercept)` space (Eq. 5). The set of lines satisfying all
//! constraints so far is the intersection of those half-planes — a convex
//! polygon `G_k` (Fig. 4a). PBE-2 maintains `G_k` incrementally, clipping it
//! with the two half-planes of each new point and cutting a segment when the
//! polygon would become empty (Fig. 4b).

/// A closed half-plane `p·a + q·b ≤ c` in the dual `(a, b)` space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HalfPlane {
    /// Coefficient of the slope axis.
    pub p: f64,
    /// Coefficient of the intercept axis.
    pub q: f64,
    /// Right-hand side.
    pub c: f64,
}

impl HalfPlane {
    /// The two half-planes of one constraint point (Eq. 5):
    /// `b ≤ −t·a + F` and `b ≥ −t·a + (F − γ)`.
    pub fn from_constraint(t: f64, f: f64, gamma: f64) -> (HalfPlane, HalfPlane) {
        let upper = HalfPlane { p: t, q: 1.0, c: f };
        let lower = HalfPlane { p: -t, q: -1.0, c: gamma - f };
        (upper, lower)
    }

    /// Signed slack `c − (p·a + q·b)`; non-negative inside.
    #[inline]
    fn slack(&self, a: f64, b: f64) -> f64 {
        self.c - (self.p * a + self.q * b)
    }

    /// Whether `(a, b)` satisfies the constraint within a relative tolerance
    /// (guards against losing a degenerate-but-feasible polygon to floating
    /// point noise).
    pub fn contains(&self, a: f64, b: f64) -> bool {
        let scale = self.p.abs() * a.abs() + self.q.abs() * b.abs() + self.c.abs() + 1.0;
        self.slack(a, b) >= -1e-9 * scale
    }
}

/// A convex polygon in the dual `(a, b)` space, as an ordered vertex list.
#[derive(Debug, Clone, Default)]
pub struct Polygon {
    vertices: Vec<(f64, f64)>,
}

impl Polygon {
    /// Axis-aligned bounding box `[a_lo, a_hi] × [b_lo, b_hi]` (CCW).
    ///
    /// PBE-2 starts each polygon from a large box instead of an unbounded
    /// region; the bounds only need to exceed any slope/intercept a feasible
    /// line could have.
    pub fn from_box(a_lo: f64, a_hi: f64, b_lo: f64, b_hi: f64) -> Self {
        Polygon { vertices: vec![(a_lo, b_lo), (a_hi, b_lo), (a_hi, b_hi), (a_lo, b_hi)] }
    }

    /// Number of vertices (the paper's polygon-size cap η counts these).
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the feasible region has collapsed.
    pub fn is_empty(&self) -> bool {
        self.vertices.len() < 3
    }

    /// Sutherland–Hodgman clip against one half-plane. Returns `false` when
    /// the polygon becomes empty (the caller then cuts a segment).
    ///
    /// Near-duplicate vertices are merged after clipping: streams with a
    /// constant incoming rate produce a *pencil* of constraint lines through
    /// a single dual point, and without deduplication the polygon
    /// accumulates degenerate slivers of vertices around that apex until it
    /// spuriously hits the vertex cap.
    pub fn clip(&mut self, h: HalfPlane) -> bool {
        if self.vertices.is_empty() {
            return false;
        }
        let n = self.vertices.len();
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(n + 1);
        for i in 0..n {
            let cur = self.vertices[i];
            let nxt = self.vertices[(i + 1) % n];
            let s_cur = h.slack(cur.0, cur.1);
            let s_nxt = h.slack(nxt.0, nxt.1);
            if s_cur >= 0.0 {
                out.push(cur);
            }
            // Edge crosses the boundary: emit the intersection point.
            if (s_cur > 0.0 && s_nxt < 0.0) || (s_cur < 0.0 && s_nxt > 0.0) {
                let denom = s_cur - s_nxt;
                let r = s_cur / denom;
                out.push((cur.0 + r * (nxt.0 - cur.0), cur.1 + r * (nxt.1 - cur.1)));
            }
        }
        dedup_vertices(&mut out);
        self.vertices = out;
        !self.is_empty()
    }

    /// An interior representative `(a, b)` — the vertex centroid, which lies
    /// inside any convex polygon. The paper picks an arbitrary point of
    /// `G_{k−1}`; the centroid makes the construction deterministic.
    pub fn representative(&self) -> Option<(f64, f64)> {
        if self.vertices.is_empty() {
            return None;
        }
        let n = self.vertices.len() as f64;
        let (sa, sb) = self.vertices.iter().fold((0.0, 0.0), |(sa, sb), &(a, b)| (sa + a, sb + b));
        Some((sa / n, sb / n))
    }

    /// Vertex list (tests only).
    #[cfg(test)]
    pub(crate) fn vertices(&self) -> &[(f64, f64)] {
        &self.vertices
    }
}

impl bed_stream::Codec for Polygon {
    fn encode(&self, w: &mut bed_stream::codec::Writer) {
        w.len(self.vertices.len());
        for &(a, b) in &self.vertices {
            w.f64(a);
            w.f64(b);
        }
    }

    fn decode(r: &mut bed_stream::codec::Reader<'_>) -> Result<Self, bed_stream::CodecError> {
        let n = r.len("polygon vertex count", 16)?;
        let mut vertices = Vec::with_capacity(n);
        for _ in 0..n {
            let a = r.f64("polygon vertex a")?;
            let b = r.f64("polygon vertex b")?;
            if !a.is_finite() || !b.is_finite() {
                return Err(bed_stream::CodecError::Invalid { context: "polygon vertex" });
            }
            vertices.push((a, b));
        }
        Ok(Polygon { vertices })
    }
}

/// Merges consecutive vertices that coincide up to a relative tolerance.
fn dedup_vertices(vs: &mut Vec<(f64, f64)>) {
    if vs.len() < 2 {
        return;
    }
    let close = |p: (f64, f64), q: (f64, f64)| {
        let scale_a = p.0.abs().max(q.0.abs()) + 1.0;
        let scale_b = p.1.abs().max(q.1.abs()) + 1.0;
        (p.0 - q.0).abs() <= 1e-9 * scale_a && (p.1 - q.1).abs() <= 1e-9 * scale_b
    };
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(vs.len());
    for &v in vs.iter() {
        if out.last().is_some_and(|&last| close(last, v)) {
            continue;
        }
        out.push(v);
    }
    while out.len() >= 2 && close(out[0], *out.last().unwrap()) {
        out.pop();
    }
    *vs = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Polygon {
        Polygon::from_box(0.0, 1.0, 0.0, 1.0)
    }

    #[test]
    fn clip_keeps_inside_half() {
        let mut p = unit_box();
        // keep a <= 0.5
        assert!(p.clip(HalfPlane { p: 1.0, q: 0.0, c: 0.5 }));
        assert_eq!(p.vertex_count(), 4);
        for &(a, _) in p.vertices() {
            assert!(a <= 0.5 + 1e-12);
        }
    }

    #[test]
    fn clip_to_empty() {
        let mut p = unit_box();
        assert!(!p.clip(HalfPlane { p: 1.0, q: 0.0, c: -1.0 })); // a <= -1: empty
        assert!(p.is_empty());
    }

    #[test]
    fn clip_diagonal_produces_triangle() {
        let mut p = unit_box();
        // keep a + b <= 1 → triangle with the diagonal
        assert!(p.clip(HalfPlane { p: 1.0, q: 1.0, c: 1.0 }));
        assert_eq!(p.vertex_count(), 3);
    }

    #[test]
    fn representative_is_inside_all_clips() {
        let mut p = Polygon::from_box(-10.0, 10.0, -10.0, 10.0);
        let planes = [
            HalfPlane { p: 1.0, q: 2.0, c: 5.0 },
            HalfPlane { p: -1.0, q: 0.5, c: 4.0 },
            HalfPlane { p: 0.0, q: -1.0, c: 3.0 },
        ];
        for h in planes {
            assert!(p.clip(h));
        }
        let (a, b) = p.representative().unwrap();
        for h in planes {
            assert!(h.contains(a, b), "centroid violates {h:?}");
        }
    }

    #[test]
    fn constraint_half_planes_bracket_the_range() {
        let (up, lo) = HalfPlane::from_constraint(10.0, 100.0, 5.0);
        // line a=0, b=98: 98 ∈ [95, 100] → satisfies both
        assert!(up.contains(0.0, 98.0));
        assert!(lo.contains(0.0, 98.0));
        // b=101 violates the upper constraint
        assert!(!up.contains(0.0, 101.0));
        assert!(lo.contains(0.0, 101.0));
        // b=94 violates the lower constraint
        assert!(up.contains(0.0, 94.0));
        assert!(!lo.contains(0.0, 94.0));
        // slope matters: a=1 → value at t=10 is 10+b
        assert!(up.contains(1.0, 90.0)); // 100 ≤ 100
        assert!(!up.contains(1.0, 90.1));
    }

    #[test]
    fn intersection_of_two_constraints_is_feasible_band() {
        // Points (t=0, F=10) and (t=10, F=20), γ=2: feasible slopes around 1.
        let mut p = Polygon::from_box(-1e6, 1e6, -1e6, 1e6);
        let (u1, l1) = HalfPlane::from_constraint(0.0, 10.0, 2.0);
        let (u2, l2) = HalfPlane::from_constraint(10.0, 20.0, 2.0);
        for h in [u1, l1, u2, l2] {
            assert!(p.clip(h), "clipping with {h:?} emptied the polygon");
        }
        let (a, b) = p.representative().unwrap();
        // representative line must satisfy both γ-ranges
        assert!((8.0..=10.0).contains(&b), "b={b}");
        let v10 = a * 10.0 + b;
        assert!((18.0..=20.0).contains(&v10), "value at t=10 is {v10}");
    }

    #[test]
    fn infeasible_constraints_empty_the_polygon() {
        // (t=0, F=0) and (t=1, F=1000) with γ=1: needs slope ~1000, but then
        // a third point (t=2, F=1001) with γ=1 pulls slope back — check the
        // polygon empties on a genuinely contradictory set.
        let mut p = Polygon::from_box(-1e6, 1e6, -1e6, 1e6);
        let pts = [(0.0, 0.0), (1.0, 1000.0), (2.0, 0.0)];
        let mut alive = true;
        for (t, f) in pts {
            let (u, l) = HalfPlane::from_constraint(t, f, 1.0);
            alive = p.clip(u) && p.clip(l);
            if !alive {
                break;
            }
        }
        assert!(!alive, "a line cannot rise 1000 then return to 0 within γ=1");
    }

    #[test]
    fn empty_polygon_has_no_representative() {
        let mut p = unit_box();
        p.clip(HalfPlane { p: 1.0, q: 0.0, c: -5.0 });
        assert_eq!(p.representative(), None);
    }
}
