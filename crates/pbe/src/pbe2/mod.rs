//! PBE-2 — persistent burstiness estimation *without buffering*
//! (Section III-B, Algorithm 2).
//!
//! PBE-2 approximates the frequency curve by an online piecewise-linear
//! approximation (PLA): every constraint point `(t, F(t))` demands
//! `F̃(t) ∈ [F(t) − γ, F(t)]`, which in the dual `(slope, intercept)` space
//! is a pair of half-planes. The set of lines satisfying all constraints of
//! the current piece is a convex polygon; when a new point's half-planes
//! would empty it (or the polygon exceeds the vertex cap), a segment is cut
//! using a representative line of the previous polygon and a fresh polygon
//! starts at the breaking point.
//!
//! Constraint points are the staircase corners **doubled** with their
//! predecessor points (`(t_i − 1, F(t_i − 1))` before each rise): without
//! them, a segment spanning a tall rise could report anything between the
//! two cumulative values in the gap (the paper's Fig. 3a discussion).
//!
//! Guarantee (Lemma 4): at every constraint instant,
//! `|F̃(t) − F(t)| ≤ γ`, hence `|b̃(t) − b(t)| ≤ 4γ`.

pub mod polygon;

use bed_stream::{BurstSpan, StreamError, Timestamp};

use crate::kernel::{rank_resume, CumHint};
use crate::traits::{CurveSketch, SummaryStats};
use polygon::{HalfPlane, Polygon};

/// Bounds of the initial polygon box. Constraints are expressed in
/// segment-local coordinates (`value(t) = a·(t − start) + b`), so slopes are
/// bounded by the steepest one-tick rise of the curve and intercepts by the
/// total stream count — keeping every dual-space coordinate small enough for
/// exact-ish f64 clipping.
const BOX_SLOPE: f64 = 1e7;
const BOX_INTERCEPT: f64 = 4e9;

/// Configuration of a PBE-2 sketch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pbe2Config {
    /// Maximum pointwise deviation γ allowed at constraint points (the
    /// space/accuracy knob of Fig. 9). Must be positive.
    pub gamma: f64,
    /// Polygon vertex cap (the paper's space constraint η on the live
    /// polygon): when exceeded, the current segment is cut.
    pub max_vertices: usize,
}

impl Default for Pbe2Config {
    fn default() -> Self {
        Pbe2Config { gamma: 8.0, max_vertices: 64 }
    }
}

impl Pbe2Config {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), StreamError> {
        // NaN must fail validation, so the negated comparison is deliberate.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.gamma > 0.0) {
            return Err(StreamError::InvalidProbability { parameter: "gamma", got: self.gamma });
        }
        if self.max_vertices < 4 {
            return Err(StreamError::BudgetTooSmall {
                parameter: "max_vertices",
                got: self.max_vertices,
                min: 4,
            });
        }
        Ok(())
    }
}

/// One finished PLA piece: the line `a·(t − start) + b` in effect on
/// `[start, end]`. Segment-local time keeps the dual-space numbers small
/// (global intercepts would be `slope × horizon` and lose precision).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Slope per tick.
    pub a: f64,
    /// Value at `start`.
    pub b: f64,
    /// First constraint timestamp covered.
    pub start: Timestamp,
    /// Last constraint timestamp covered.
    pub end: Timestamp,
}

impl Segment {
    /// Line value at `t`, clamped to the segment's own time range (beyond
    /// `end` the last value holds until the next segment begins).
    #[inline]
    fn eval_clamped(&self, t: Timestamp) -> f64 {
        let t = t.ticks().min(self.end.ticks()).max(self.start.ticks());
        let dt = (t - self.start.ticks()) as f64;
        (self.a * dt + self.b).max(0.0)
    }
}

/// The PBE-2 sketch.
///
/// ```
/// use bed_pbe::{CurveSketch, Pbe2};
/// use bed_stream::Timestamp;
///
/// // γ = 2: every estimate within 2 of the truth at constraint points.
/// let mut pbe = Pbe2::with_gamma(2.0).unwrap();
/// for t in 0..1_000u64 {
///     pbe.update(Timestamp(t)); // constant rate: one mention per tick
/// }
/// pbe.finalize();
///
/// // A constant-rate curve needs a single line segment...
/// assert_eq!(pbe.segments().len(), 1);
/// // ...and the estimate tracks the exact count within γ.
/// let est = pbe.estimate_cum(Timestamp(500));
/// assert!((est - 501.0).abs() <= 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct Pbe2 {
    config: Pbe2Config,
    segments: Vec<Segment>,
    /// Feasible polygon of the open piece, if any.
    poly: Option<Polygon>,
    /// First constraint timestamp of the open piece.
    open_start: Timestamp,
    /// Last constraint timestamp fed into the open piece.
    open_end: Timestamp,
    /// In-flight staircase corner: timestamp of the most recent distinct
    /// arrival tick (its cumulative count is `cum`); fed to the polygon once
    /// time moves past it.
    pending_t: Option<Timestamp>,
    /// Global cumulative count.
    cum: u64,
    arrivals: u64,
    /// Count of segment cuts due to the vertex cap (vs. infeasibility).
    cap_cuts: u64,
}

impl Pbe2 {
    /// Creates an empty sketch.
    pub fn new(config: Pbe2Config) -> Result<Self, StreamError> {
        config.validate()?;
        Ok(Pbe2 {
            config,
            segments: Vec::new(),
            poly: None,
            open_start: Timestamp::ZERO,
            open_end: Timestamp::ZERO,
            pending_t: None,
            cum: 0,
            arrivals: 0,
            cap_cuts: 0,
        })
    }

    /// Convenience constructor with the default vertex cap.
    pub fn with_gamma(gamma: f64) -> Result<Self, StreamError> {
        Pbe2::new(Pbe2Config { gamma, ..Pbe2Config::default() })
    }

    /// The configuration in force.
    pub fn config(&self) -> Pbe2Config {
        self.config
    }

    /// Finished segments so far.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Segments cut because the polygon hit the vertex cap rather than
    /// becoming infeasible.
    pub fn cap_cuts(&self) -> u64 {
        self.cap_cuts
    }

    /// Feeds one constraint point `(t, F(t))` into the open polygon,
    /// cutting a segment when needed (the body of Algorithm 2).
    ///
    /// Dual coordinates are segment-local: the constraint on the line
    /// `a·(t − open_start) + b` uses `dt = t − open_start`.
    fn feed_constraint(&mut self, t: Timestamp, f: u64) {
        match self.poly.take() {
            None => {
                self.open_start = t;
                let (upper, lower) = HalfPlane::from_constraint(0.0, f as f64, self.config.gamma);
                let mut poly =
                    Polygon::from_box(-BOX_SLOPE, BOX_SLOPE, -BOX_INTERCEPT, BOX_INTERCEPT);
                let ok = poly.clip(upper) && poly.clip(lower);
                debug_assert!(ok, "a single constraint can never be infeasible");
                self.poly = Some(poly);
            }
            Some(poly) => {
                let dt = t.saturating_since(self.open_start) as f64;
                let (upper, lower) = HalfPlane::from_constraint(dt, f as f64, self.config.gamma);
                let mut trial = poly.clone();
                let feasible = trial.clip(upper) && trial.clip(lower);
                if feasible && trial.vertex_count() <= self.config.max_vertices {
                    self.poly = Some(trial);
                } else {
                    if feasible {
                        self.cap_cuts += 1;
                    }
                    self.cut_segment(&poly);
                    // Start a fresh polygon at the breaking point.
                    self.open_start = t;
                    let (upper, lower) =
                        HalfPlane::from_constraint(0.0, f as f64, self.config.gamma);
                    let mut fresh =
                        Polygon::from_box(-BOX_SLOPE, BOX_SLOPE, -BOX_INTERCEPT, BOX_INTERCEPT);
                    let ok = fresh.clip(upper) && fresh.clip(lower);
                    debug_assert!(ok);
                    self.poly = Some(fresh);
                }
            }
        }
        self.open_end = t;
    }

    /// Closes `poly` into a segment over `[open_start, open_end]`.
    fn cut_segment(&mut self, poly: &Polygon) {
        let (a, b) =
            poly.representative().expect("cut_segment is only called with a non-empty polygon");
        self.segments.push(Segment { a, b, start: self.open_start, end: self.open_end });
    }

    /// Flushes the pending staircase corner into the polygon (called when
    /// time advances past it, and by `finalize`).
    fn flush_pending(&mut self, next_ts: Option<Timestamp>) {
        let Some(t0) = self.pending_t.take() else { return };
        self.feed_constraint(t0, self.cum);
        if let Some(next) = next_ts {
            // Predecessor point of the upcoming rise: (next − 1, F(next − 1)).
            if let Some(before) = next.checked_sub(1) {
                if before > t0 {
                    self.feed_constraint(before, self.cum);
                }
            }
        }
    }

    /// Virtual segment view of the open polygon (for queries mid-stream).
    #[inline]
    fn open_segment(&self) -> Option<Segment> {
        let poly = self.poly.as_ref()?;
        let (a, b) = poly.representative()?;
        Some(Segment { a, b, start: self.open_start, end: self.open_end })
    }

    /// `estimate_cum` body with rank resumption: same control flow (and
    /// bit-identical values), but the finished-segment search starts from
    /// `from` and the rank actually used is returned alongside the value.
    /// `open` is the caller's precomputed [`Self::open_segment`] so a fused
    /// probe resolves the polygon representative once, not three times.
    #[inline]
    fn cum_with_rank(&self, t: Timestamp, open: &Option<Segment>, from: usize) -> (f64, usize) {
        if let Some(seg) = open {
            if t >= seg.start {
                // The open piece starts after every finished one, so the
                // full rank is exact here.
                return (seg.eval_clamped(t), self.segments.len());
            }
        }
        let idx = rank_resume(self.segments.len(), from, |i| self.segments[i].start <= t);
        if idx == 0 {
            if let Some(t0) = self.pending_t {
                if t >= t0 && open.is_none() && self.segments.is_empty() {
                    return (self.cum as f64, 0);
                }
            }
            return (0.0, 0);
        }
        (self.segments[idx - 1].eval_clamped(t), idx)
    }
}

impl CurveSketch for Pbe2 {
    fn update(&mut self, ts: Timestamp) {
        debug_assert!(self.pending_t.is_none_or(|p| ts >= p), "timestamps must be non-decreasing");
        self.arrivals += 1;
        match self.pending_t {
            Some(t0) if t0 == ts => {
                self.cum += 1;
            }
            Some(_) => {
                self.flush_pending(Some(ts));
                self.pending_t = Some(ts);
                self.cum += 1;
            }
            None => {
                // Anchor the very first piece at (ts − 1, F = 0) so the line
                // cannot float above zero before the first arrival.
                if let Some(before) = ts.checked_sub(1) {
                    if self.cum == 0 && self.segments.is_empty() && self.poly.is_none() {
                        self.feed_constraint(before, 0);
                    }
                }
                self.pending_t = Some(ts);
                self.cum += 1;
            }
        }
    }

    fn estimate_cum(&self, t: Timestamp) -> f64 {
        // Locate the last piece (finished or open) starting at or before t.
        let open = self.open_segment();
        if let Some(seg) = &open {
            if t >= seg.start {
                return seg.eval_clamped(t);
            }
        }
        let idx = self.segments.partition_point(|s| s.start <= t);
        if idx == 0 {
            // Before any piece: pending-only state still knows the exact
            // count at the pending corner.
            if let Some(t0) = self.pending_t {
                if t >= t0 && open.is_none() && self.segments.is_empty() {
                    return self.cum as f64;
                }
            }
            return 0.0;
        }
        self.segments[idx - 1].eval_clamped(t)
    }

    #[inline]
    fn estimate_cum_hinted(&self, t: Timestamp, hint: &mut CumHint) -> f64 {
        let open = self.open_segment();
        let (v, r) = self.cum_with_rank(t, &open, hint.rank);
        hint.rank = r;
        v
    }

    #[inline]
    fn probe3(&self, t: Timestamp, tau: BurstSpan) -> [f64; 3] {
        // Resolve the open polygon's representative line once, search the
        // finished segments once, then step backward for t−τ and t−2τ.
        let open = self.open_segment();
        let (f0, r0) = self.cum_with_rank(t, &open, self.segments.len());
        let (f1, r1) = match t.checked_sub(tau.ticks()) {
            Some(earlier) => self.cum_with_rank(earlier, &open, r0),
            None => (0.0, r0),
        };
        let f2 = match t.checked_sub(tau.ticks().saturating_mul(2)) {
            Some(earlier) => self.cum_with_rank(earlier, &open, r1).0,
            None => 0.0,
        };
        [f0, f1, f2]
    }

    fn finalize(&mut self) {
        self.flush_pending(None);
        if let Some(poly) = self.poly.take() {
            self.cut_segment(&poly);
        }
    }

    fn size_bytes(&self) -> usize {
        // 24 bytes per segment: slope, intercept, end timestamp (the start is
        // the previous segment's end successor).
        let open = usize::from(self.poly.is_some());
        (self.segments.len() + open) * 24
    }

    fn segment_starts(&self) -> Vec<Timestamp> {
        let mut v: Vec<Timestamp> = self.segments.iter().map(|s| s.start).collect();
        if let Some(seg) = self.open_segment() {
            v.push(seg.start);
        }
        v
    }

    fn for_each_segment_start(&self, f: &mut dyn FnMut(Timestamp)) {
        for s in &self.segments {
            f(s.start);
        }
        if let Some(seg) = self.open_segment() {
            f(seg.start);
        }
    }

    fn for_each_piece(&self, f: &mut dyn FnMut(crate::soa::CurvePiece)) {
        // Finished segments map verbatim (same `(a, b, start, end)` and the
        // bank evaluates them with `eval_clamped`'s exact arithmetic). The
        // open polygon's virtual segment starts strictly after every
        // finished one, so appending it last keeps starts ascending and the
        // bank's rank selection reproduces `cum_with_rank`'s open-first
        // check. The pending-corner special case is visible through
        // `estimate_cum` only when there is no open segment and no finished
        // segment — mirror that guard exactly.
        for s in &self.segments {
            f(crate::soa::CurvePiece {
                start: s.start.ticks(),
                end: s.end.ticks(),
                a: s.a,
                b: s.b,
            });
        }
        if let Some(seg) = self.open_segment() {
            f(crate::soa::CurvePiece {
                start: seg.start.ticks(),
                end: seg.end.ticks(),
                a: seg.a,
                b: seg.b,
            });
        } else if self.segments.is_empty() {
            if let Some(t0) = self.pending_t {
                f(crate::soa::CurvePiece::staircase(t0.ticks(), self.cum as f64));
            }
        }
    }

    fn piece_boundaries(&self) -> Vec<Timestamp> {
        // Slope changes at every segment start, right after every segment
        // end (hand-over to the flat hold), and — because estimates clamp at
        // zero — wherever a segment's line crosses zero mid-segment.
        let mut v: Vec<Timestamp> = Vec::with_capacity(self.segments.len() * 3 + 3);
        let mut add_segment = |s: &Segment| {
            v.push(s.start);
            v.push(s.end.saturating_add(1));
            if s.a != 0.0 {
                let dt_star = -s.b / s.a; // line value is 0 at start + dt*
                let span = s.end.ticks() - s.start.ticks();
                if dt_star > 0.0 && dt_star < span as f64 {
                    let k = dt_star.floor() as u64;
                    v.push(Timestamp(s.start.ticks() + k));
                    v.push(Timestamp(s.start.ticks() + k + 1));
                }
            }
        };
        for s in &self.segments {
            add_segment(s);
        }
        if let Some(seg) = self.open_segment() {
            add_segment(&seg);
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    fn interpolation(&self) -> crate::traits::Interpolation {
        crate::traits::Interpolation::Linear
    }

    fn arrivals(&self) -> u64 {
        self.arrivals
    }

    fn summary_stats(&self) -> SummaryStats {
        SummaryStats {
            pieces: self.segments.len() + usize::from(self.poly.is_some()),
            buffered: self.poly.as_ref().map_or(0, |p| p.vertex_count()),
            bytes: self.size_bytes(),
        }
    }
}

/// Persistence (format `PBE2` v1): config, finished segments, and the full
/// live state (open polygon, pending corner, counters) — a decoded sketch
/// continues mid-stream exactly where the encoded one stopped.
impl bed_stream::Codec for Pbe2 {
    fn encode(&self, w: &mut bed_stream::codec::Writer) {
        w.magic(*b"PBE2");
        w.version(1);
        w.f64(self.config.gamma);
        w.u64(self.config.max_vertices as u64);
        w.len(self.segments.len());
        for s in &self.segments {
            w.f64(s.a);
            w.f64(s.b);
            s.start.encode(w);
            s.end.encode(w);
        }
        match &self.poly {
            Some(p) => {
                w.u8(1);
                p.encode(w);
            }
            None => w.u8(0),
        }
        self.open_start.encode(w);
        self.open_end.encode(w);
        match self.pending_t {
            Some(t) => {
                w.u8(1);
                t.encode(w);
            }
            None => w.u8(0),
        }
        w.u64(self.cum);
        w.u64(self.arrivals);
        w.u64(self.cap_cuts);
    }

    fn decode(r: &mut bed_stream::codec::Reader<'_>) -> Result<Self, bed_stream::CodecError> {
        use bed_stream::CodecError;
        r.magic(*b"PBE2")?;
        r.version(1)?;
        let config = Pbe2Config {
            gamma: r.f64("pbe2 gamma")?,
            max_vertices: r.u64("pbe2 max_vertices")? as usize,
        };
        config.validate().map_err(|_| CodecError::Invalid { context: "pbe2 config" })?;
        let n = r.len("pbe2 segment count", 32)?;
        let mut segments = Vec::with_capacity(n);
        for _ in 0..n {
            let a = r.f64("pbe2 segment slope")?;
            let b = r.f64("pbe2 segment intercept")?;
            let start = Timestamp::decode(r)?;
            let end = Timestamp::decode(r)?;
            if !a.is_finite() || !b.is_finite() || start > end {
                return Err(CodecError::Invalid { context: "pbe2 segment" });
            }
            let seg = Segment { a, b, start, end };
            if segments.last().is_some_and(|l: &Segment| l.end >= seg.start) {
                return Err(CodecError::Invalid { context: "pbe2 segment ordering" });
            }
            segments.push(seg);
        }
        let poly = match r.u8("pbe2 polygon flag")? {
            0 => None,
            1 => Some(Polygon::decode(r)?),
            _ => return Err(CodecError::Invalid { context: "pbe2 polygon flag" }),
        };
        let open_start = Timestamp::decode(r)?;
        let open_end = Timestamp::decode(r)?;
        let pending_t = match r.u8("pbe2 pending flag")? {
            0 => None,
            1 => Some(Timestamp::decode(r)?),
            _ => return Err(CodecError::Invalid { context: "pbe2 pending flag" }),
        };
        let cum = r.u64("pbe2 cum")?;
        let arrivals = r.u64("pbe2 arrivals")?;
        let cap_cuts = r.u64("pbe2 cap_cuts")?;
        if arrivals < cum {
            return Err(CodecError::Invalid { context: "pbe2 counters" });
        }
        Ok(Pbe2 {
            config,
            segments,
            poly,
            open_start,
            open_end,
            pending_t,
            cum,
            arrivals,
            cap_cuts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bed_stream::curve::FrequencyCurve;
    use bed_stream::{BurstSpan, SingleEventStream};

    fn feed(pbe: &mut Pbe2, ts: &[u64]) {
        for &t in ts {
            pbe.update(Timestamp(t));
        }
    }

    fn curve_of(ts: &[u64]) -> FrequencyCurve {
        FrequencyCurve::from_stream(&SingleEventStream::from_unsorted(
            ts.iter().map(|&t| Timestamp(t)).collect(),
        ))
    }

    #[test]
    fn config_validation() {
        assert!(Pbe2Config { gamma: 0.0, max_vertices: 16 }.validate().is_err());
        assert!(Pbe2Config { gamma: -1.0, max_vertices: 16 }.validate().is_err());
        assert!(Pbe2Config { gamma: 1.0, max_vertices: 3 }.validate().is_err());
        assert!(Pbe2Config { gamma: 1.0, max_vertices: 4 }.validate().is_ok());
    }

    /// Lemma 4 at constraint points: |F̃ − F| ≤ γ and F̃ never overshoots by
    /// more than float noise.
    #[test]
    fn gamma_bound_holds_at_constraint_points() {
        let ts: Vec<u64> = (0..300u64).map(|i| (i as f64).powf(1.3) as u64 * 2).collect();
        let exact = curve_of(&ts);
        for gamma in [1.0, 4.0, 16.0] {
            let mut pbe = Pbe2::new(Pbe2Config { gamma, max_vertices: 64 }).unwrap();
            let mut sorted = ts.clone();
            sorted.sort_unstable();
            feed(&mut pbe, &sorted);
            pbe.finalize();
            for p in exact.doubled_corners() {
                let est = pbe.estimate_cum(p.t);
                let truth = p.cum as f64;
                assert!(est <= truth + 1e-6, "γ={gamma}: overestimate at {}: {est} > {truth}", p.t);
                assert!(
                    truth - est <= gamma + 1e-6,
                    "γ={gamma}: deviation at {} exceeds γ: {truth} − {est}",
                    p.t
                );
            }
        }
    }

    /// Lemma 4's corollary: burstiness error ≤ 4γ at constraint instants.
    #[test]
    fn burstiness_error_within_4_gamma() {
        let ts: Vec<u64> = (0..500u64).map(|i| i + (i / 40) * (i % 17)).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        let exact = curve_of(&sorted);
        let gamma = 3.0;
        let mut pbe = Pbe2::with_gamma(gamma).unwrap();
        feed(&mut pbe, &sorted);
        pbe.finalize();
        let tau = BurstSpan::new(25).unwrap();
        for p in exact.corners() {
            // at corner instants all three terms of Eq. 2 sit on constraint
            // points only when t−τ and t−2τ are also corners — so allow 4γ
            // plus the staircase quantisation of the two offset terms.
            let est = pbe.estimate_burstiness(p.t, tau);
            let truth = exact.burstiness(p.t, tau) as f64;
            let slack = 4.0 * gamma
                + inter_knee_slack(&exact, p.t, tau.ticks())
                + inter_knee_slack(&exact, p.t, 2 * tau.ticks());
            assert!((est - truth).abs() <= slack + 1e-6, "at {}: |{est} − {truth}| > {slack}", p.t);
        }
    }

    /// Max rise of F within the PLA piece containing t−delta (the offset
    /// terms of Eq. 2 may interpolate inside a riser).
    fn inter_knee_slack(exact: &FrequencyCurve, t: Timestamp, delta: u64) -> f64 {
        match t.checked_sub(delta) {
            None => 0.0,
            Some(earlier) => {
                let corners = exact.corners();
                let idx = corners.partition_point(|c| c.t <= earlier);
                let lo = if idx == 0 { 0 } else { corners[idx - 1].cum };
                let hi = corners.get(idx).map_or(lo, |c| c.cum);
                (hi - lo) as f64
            }
        }
    }

    #[test]
    fn constant_rate_stream_needs_one_segment() {
        // Perfectly linear F: a single line fits within any γ ≥ 1.
        let ts: Vec<u64> = (0..1000u64).collect();
        let mut pbe = Pbe2::with_gamma(1.0).unwrap();
        feed(&mut pbe, &ts);
        pbe.finalize();
        assert_eq!(pbe.segments().len(), 1, "{:?}", pbe.segments().len());
        let s = pbe.segments()[0];
        assert!((s.a - 1.0).abs() < 0.05, "slope {} should be ≈ 1", s.a);
    }

    #[test]
    fn rate_change_forces_new_segment() {
        // Slope 1 for 500 ticks then slope 20: γ=2 cannot span the knee.
        let mut ts: Vec<u64> = (0..500u64).collect();
        for i in 0..500u64 {
            for _ in 0..20 {
                ts.push(500 + i);
            }
        }
        let mut pbe = Pbe2::with_gamma(2.0).unwrap();
        feed(&mut pbe, &ts);
        pbe.finalize();
        assert!(pbe.segments().len() >= 2);
    }

    #[test]
    fn larger_gamma_uses_fewer_segments() {
        let mut ts: Vec<u64> = (0..2000u64).map(|i| i + (i % 50) / 7).collect();
        ts.sort_unstable();
        let mut counts = Vec::new();
        for gamma in [1.0, 8.0, 64.0] {
            let mut pbe = Pbe2::with_gamma(gamma).unwrap();
            feed(&mut pbe, &ts);
            pbe.finalize();
            counts.push(pbe.segments().len());
        }
        assert!(counts[0] >= counts[1] && counts[1] >= counts[2], "{counts:?}");
    }

    #[test]
    fn vertex_cap_cuts_segments() {
        let ts: Vec<u64> = (0..4000u64).map(|i| i + (i * i) % 13).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        let loose = {
            let mut p = Pbe2::new(Pbe2Config { gamma: 50.0, max_vertices: 256 }).unwrap();
            feed(&mut p, &sorted);
            p.finalize();
            p
        };
        let tight = {
            let mut p = Pbe2::new(Pbe2Config { gamma: 50.0, max_vertices: 4 }).unwrap();
            feed(&mut p, &sorted);
            p.finalize();
            p
        };
        assert!(tight.segments().len() >= loose.segments().len());
        assert!(tight.cap_cuts() > 0);
    }

    #[test]
    fn query_before_first_arrival_is_zero() {
        let mut pbe = Pbe2::with_gamma(2.0).unwrap();
        feed(&mut pbe, &[100, 101, 102, 150, 151]);
        pbe.finalize();
        assert_eq!(pbe.estimate_cum(Timestamp(0)), 0.0);
        assert_eq!(pbe.estimate_cum(Timestamp(98)), 0.0);
        assert!(pbe.estimate_cum(Timestamp(160)) > 0.0);
    }

    #[test]
    fn queries_work_mid_stream_via_open_polygon() {
        let mut pbe = Pbe2::with_gamma(2.0).unwrap();
        feed(&mut pbe, &[0, 1, 2, 3, 4, 5, 6, 7]);
        // not finalized: open polygon answers
        let est = pbe.estimate_cum(Timestamp(6));
        assert!((est - 7.0).abs() <= 2.0 + 1e-9, "est={est}");
        assert_eq!(pbe.arrivals(), 8);
        assert!(pbe.size_bytes() > 0);
    }

    #[test]
    fn estimate_holds_last_value_after_stream_end() {
        let mut pbe = Pbe2::with_gamma(1.0).unwrap();
        feed(&mut pbe, &(0..100u64).collect::<Vec<_>>());
        pbe.finalize();
        let at_end = pbe.estimate_cum(Timestamp(99));
        let later = pbe.estimate_cum(Timestamp(10_000));
        assert_eq!(at_end, later, "value must hold flat after the last constraint");
    }

    #[test]
    fn dense_duplicates_collapse_into_one_corner() {
        let mut pbe = Pbe2::with_gamma(1.0).unwrap();
        let mut ts = vec![5u64; 500];
        ts.extend([9, 9, 9]);
        feed(&mut pbe, &ts);
        pbe.finalize();
        // two corners + predecessors → at most a couple of segments
        assert!(pbe.segments().len() <= 2, "{}", pbe.segments().len());
        let est5 = pbe.estimate_cum(Timestamp(5));
        assert!((est5 - 500.0).abs() <= 1.0 + 1e-9);
        let est8 = pbe.estimate_cum(Timestamp(8));
        assert!((est8 - 500.0).abs() <= 1.0 + 1e-9, "flat run must stay near 500, got {est8}");
        let est9 = pbe.estimate_cum(Timestamp(9));
        assert!((est9 - 503.0).abs() <= 1.0 + 1e-9);
    }
}
