//! Exact (non-compressing) curve sketch — the control implementation.
//!
//! Wraps `bed_stream::FrequencyCurve` behind [`CurveSketch`]. Used for
//! testing (a CM-PBE whose cells are exact curves behaves like a pure
//! Count-Min over cumulative counts) and as the "infinite budget" end of the
//! space/accuracy trade-off curves in the experiments.

use bed_stream::curve::FrequencyCurve;
use bed_stream::{BurstSpan, Timestamp};

use crate::kernel::{rank_resume, CumHint};
use crate::traits::CurveSketch;

/// Exact frequency curve: zero approximation error, O(n) space.
#[derive(Debug, Clone, Default)]
pub struct ExactCurve {
    curve: FrequencyCurve,
    arrivals: u64,
}

impl ExactCurve {
    /// Empty sketch.
    pub fn new() -> Self {
        ExactCurve::default()
    }

    /// Access to the underlying exact curve.
    pub fn curve(&self) -> &FrequencyCurve {
        &self.curve
    }

    /// Corner value at rank `r` (`partition_point` result), matching
    /// `FrequencyCurve::value_at`'s indexing.
    #[inline]
    fn cum_at_rank(&self, r: usize) -> f64 {
        if r == 0 {
            0.0
        } else {
            self.curve.corners()[r - 1].cum as f64
        }
    }

    #[inline]
    fn rank_of(&self, t: Timestamp, from: usize) -> usize {
        let corners = self.curve.corners();
        rank_resume(corners.len(), from, |i| corners[i].t <= t)
    }
}

impl CurveSketch for ExactCurve {
    fn update(&mut self, ts: Timestamp) {
        self.curve.record(ts);
        self.arrivals += 1;
    }

    fn estimate_cum(&self, t: Timestamp) -> f64 {
        self.curve.value_at(t) as f64
    }

    #[inline]
    fn estimate_cum_hinted(&self, t: Timestamp, hint: &mut CumHint) -> f64 {
        let r = self.rank_of(t, hint.rank);
        hint.rank = r;
        self.cum_at_rank(r)
    }

    #[inline]
    fn probe3(&self, t: Timestamp, tau: BurstSpan) -> [f64; 3] {
        let n = self.curve.corners().len();
        let r0 = self.rank_of(t, n);
        let f0 = self.cum_at_rank(r0);
        let (f1, r1) = match t.checked_sub(tau.ticks()) {
            Some(earlier) => {
                let r = self.rank_of(earlier, r0);
                (self.cum_at_rank(r), r)
            }
            None => (0.0, r0),
        };
        let f2 = match t.checked_sub(tau.ticks().saturating_mul(2)) {
            Some(earlier) => self.cum_at_rank(self.rank_of(earlier, r1)),
            None => 0.0,
        };
        [f0, f1, f2]
    }

    fn finalize(&mut self) {}

    fn size_bytes(&self) -> usize {
        self.curve.n_points() * 16
    }

    fn segment_starts(&self) -> Vec<Timestamp> {
        self.curve.corners().iter().map(|c| c.t).collect()
    }

    fn for_each_segment_start(&self, f: &mut dyn FnMut(Timestamp)) {
        for c in self.curve.corners() {
            f(c.t);
        }
    }

    fn for_each_piece(&self, f: &mut dyn FnMut(crate::soa::CurvePiece)) {
        // One staircase piece per corner — `b = cum as f64` is exactly what
        // `cum_at_rank` returns, so the bank evaluation is bit-identical.
        for c in self.curve.corners() {
            f(crate::soa::CurvePiece::staircase(c.t.ticks(), c.cum as f64));
        }
    }

    fn arrivals(&self) -> u64 {
        self.arrivals
    }
}

/// Persistence (format `EXCT` v1): the raw curve plus the arrival count.
impl bed_stream::Codec for ExactCurve {
    fn encode(&self, w: &mut bed_stream::codec::Writer) {
        w.magic(*b"EXCT");
        w.version(1);
        self.curve.encode(w);
        w.u64(self.arrivals);
    }

    fn decode(r: &mut bed_stream::codec::Reader<'_>) -> Result<Self, bed_stream::CodecError> {
        r.magic(*b"EXCT")?;
        r.version(1)?;
        let curve = FrequencyCurve::decode(r)?;
        let arrivals = r.u64("exact arrivals")?;
        if arrivals != curve.total() {
            return Err(bed_stream::CodecError::Invalid { context: "exact arrival count" });
        }
        Ok(ExactCurve { curve, arrivals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bed_stream::BurstSpan;

    #[test]
    fn exact_sketch_has_zero_error() {
        let mut s = ExactCurve::new();
        let arrivals = [1u64, 1, 4, 4, 4, 9, 16, 16];
        for &t in &arrivals {
            s.update(Timestamp(t));
        }
        assert_eq!(s.arrivals(), 8);
        for t in 0..20u64 {
            let exact = arrivals.iter().filter(|&&x| x <= t).count() as f64;
            assert_eq!(s.estimate_cum(Timestamp(t)), exact);
        }
        let tau = BurstSpan::new(4).unwrap();
        let b = s.curve().burstiness(Timestamp(16), tau) as f64;
        assert_eq!(s.estimate_burstiness(Timestamp(16), tau), b);
        assert_eq!(s.size_bytes(), 4 * 16);
        assert_eq!(s.segment_starts().len(), 4);
    }
}
