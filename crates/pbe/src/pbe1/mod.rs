//! PBE-1 — persistent burstiness estimation *with buffering* (Section III-A).
//!
//! PBE-1 maintains the exact staircase of the incoming stream until it holds
//! `n_buf` corner points, then replaces the buffer by its optimal η-point
//! under-approximation (computed by the dynamic program in [`dp`]) and starts
//! the next buffer. The retained points are a subset of the true corner
//! points (Lemma 3), so the approximation never overestimates `F`, and each
//! buffer's area error is the minimum achievable Δ* (Lemma 1: the expected
//! burstiness error is at most `4Δ*`).
//!
//! Because the buffer holds *corner points* rather than raw arrivals, `n_buf`
//! counts distinct timestamps — multiple arrivals in one tick do not consume
//! budget (the paper: "the number of points n to represent F(t) could be much
//! less than the actual number of elements N").

pub mod dp;

use bed_stream::curve::{CornerPoint, FrequencyCurve};
use bed_stream::{Codec, StreamError, Timestamp};

use bed_stream::BurstSpan;

use crate::kernel::{rank_resume, CumHint};
use crate::traits::{CurveSketch, SummaryStats};

/// Configuration of a PBE-1 sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pbe1Config {
    /// Buffer capacity in corner points (`n` in the paper; default 1,500 as
    /// used in the experiments).
    pub n_buf: usize,
    /// Points retained per buffer (`η`; the space/accuracy knob of Fig. 8).
    pub eta: usize,
}

impl Default for Pbe1Config {
    fn default() -> Self {
        Pbe1Config { n_buf: 1_500, eta: 128 }
    }
}

impl Pbe1Config {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.eta < 2 {
            return Err(StreamError::BudgetTooSmall { parameter: "eta", got: self.eta, min: 2 });
        }
        if self.n_buf <= self.eta {
            return Err(StreamError::BudgetTooSmall {
                parameter: "n_buf",
                got: self.n_buf,
                min: self.eta + 1,
            });
        }
        Ok(())
    }
}

/// The PBE-1 sketch.
///
/// ```
/// use bed_pbe::{CurveSketch, Pbe1, Pbe1Config};
/// use bed_stream::{BurstSpan, Timestamp};
///
/// let mut pbe = Pbe1::new(Pbe1Config { n_buf: 100, eta: 8 }).unwrap();
/// // steady arrivals, then a burst at t = 800..810
/// for t in (0..800).step_by(10) {
///     pbe.update(Timestamp(t));
/// }
/// for t in 800..810 {
///     for _ in 0..20 {
///         pbe.update(Timestamp(t));
///     }
/// }
/// pbe.finalize();
///
/// let tau = BurstSpan::new(100).unwrap();
/// let quiet = pbe.estimate_burstiness(Timestamp(500), tau);
/// let bursty = pbe.estimate_burstiness(Timestamp(809), tau);
/// assert!(quiet.abs() < 10.0);
/// assert!(bursty > 150.0);
/// assert!(pbe.size_bytes() < 100 * 16); // compressed below the exact curve
/// ```
#[derive(Debug, Clone)]
pub struct Pbe1 {
    config: Pbe1Config,
    /// Compressed corner points from completed buffers (global cumulative
    /// counts, strictly increasing in both coordinates).
    summary: Vec<CornerPoint>,
    /// Exact corner points of the in-flight buffer.
    buffer: Vec<CornerPoint>,
    arrivals: u64,
    /// Σ of the DP's optimal area errors over completed buffers — the Δ* of
    /// Lemma 1 accumulated over the stream.
    accumulated_error: u64,
    compressions: u64,
}

impl Pbe1 {
    /// Creates an empty sketch with the given configuration.
    pub fn new(config: Pbe1Config) -> Result<Self, StreamError> {
        config.validate()?;
        Ok(Pbe1 {
            config,
            summary: Vec::new(),
            buffer: Vec::with_capacity(config.n_buf),
            arrivals: 0,
            accumulated_error: 0,
            compressions: 0,
        })
    }

    /// Convenience constructor with the paper's default buffer size.
    pub fn with_eta(eta: usize) -> Result<Self, StreamError> {
        Pbe1::new(Pbe1Config { eta, ..Pbe1Config::default() })
    }

    /// Offline mode (Section III-A, last paragraph): one optimal DP over an
    /// archived curve, no buffering artifacts.
    pub fn offline(curve: &FrequencyCurve, eta: usize) -> Result<Self, StreamError> {
        let config = Pbe1Config { n_buf: curve.n_points().max(eta + 1) + 1, eta };
        config.validate()?;
        let sol = dp::solve(curve.corners(), eta);
        let summary = sol.chosen.iter().map(|&i| curve.corners()[i]).collect();
        Ok(Pbe1 {
            config,
            summary,
            buffer: Vec::new(),
            arrivals: curve.total(),
            accumulated_error: sol.cost,
            compressions: 1,
        })
    }

    /// Current global cumulative count.
    fn current_cum(&self) -> u64 {
        self.buffer.last().or_else(|| self.summary.last()).map_or(0, |c| c.cum)
    }

    fn compress_buffer(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        if self.buffer.len() <= self.config.eta {
            self.summary.append(&mut self.buffer);
            return;
        }
        let sol = dp::solve(&self.buffer, self.config.eta);
        self.summary.extend(sol.chosen.iter().map(|&i| self.buffer[i]));
        self.accumulated_error += sol.cost;
        self.compressions += 1;
        self.buffer.clear();
    }

    /// Number of buffer compressions run so far.
    pub fn compressions(&self) -> u64 {
        self.compressions
    }

    /// Σ of optimal per-buffer area errors (the Δ* driving Lemma 1's bound).
    pub fn accumulated_area_error(&self) -> u64 {
        self.accumulated_error
    }

    /// Points in the compressed summary (excludes the live buffer).
    pub fn summary_len(&self) -> usize {
        self.summary.len()
    }

    /// The configuration in force.
    pub fn config(&self) -> Pbe1Config {
        self.config
    }

    /// Binary search over the concatenation summary ⊕ buffer.
    fn value_at(&self, t: Timestamp) -> u64 {
        // Buffer timestamps are strictly after summary timestamps.
        if let Some(first_buf) = self.buffer.first() {
            if t >= first_buf.t {
                let idx = self.buffer.partition_point(|c| c.t <= t);
                if idx > 0 {
                    return self.buffer[idx - 1].cum;
                }
            }
        }
        let idx = self.summary.partition_point(|c| c.t <= t);
        if idx == 0 {
            0
        } else {
            self.summary[idx - 1].cum
        }
    }

    // --- rank-based view of the conceptual concatenation summary ⊕ buffer,
    //     for the hinted/fused query kernels. Buffer timestamps are strictly
    //     after summary timestamps, so the concatenation is globally sorted
    //     and `value_at(t) == cum_at_rank(rank_of(t))`.

    #[inline]
    fn n_points(&self) -> usize {
        self.summary.len() + self.buffer.len()
    }

    #[inline]
    fn point_t(&self, i: usize) -> Timestamp {
        if i < self.summary.len() {
            self.summary[i].t
        } else {
            self.buffer[i - self.summary.len()].t
        }
    }

    #[inline]
    fn cum_at_rank(&self, r: usize) -> f64 {
        if r == 0 {
            0.0
        } else if r <= self.summary.len() {
            self.summary[r - 1].cum as f64
        } else {
            self.buffer[r - 1 - self.summary.len()].cum as f64
        }
    }

    #[inline]
    fn rank_of(&self, t: Timestamp, from: usize) -> usize {
        rank_resume(self.n_points(), from, |i| self.point_t(i) <= t)
    }
}

impl CurveSketch for Pbe1 {
    fn update(&mut self, ts: Timestamp) {
        debug_assert!(
            self.buffer.last().is_none_or(|c| ts >= c.t)
                && self.summary.last().is_none_or(|c| ts >= c.t),
            "timestamps must be non-decreasing"
        );
        self.arrivals += 1;
        match self.buffer.last_mut() {
            Some(last) if last.t == ts => {
                last.cum += 1;
                return;
            }
            None => {
                // A compression may have just flushed a buffer ending at this
                // very tick; extend that (exactly kept) corner instead of
                // creating a duplicate-timestamp point.
                if let Some(last) = self.summary.last_mut() {
                    if last.t == ts {
                        last.cum += 1;
                        return;
                    }
                }
                let cum = self.current_cum() + 1;
                self.buffer.push(CornerPoint { t: ts, cum });
            }
            _ => {
                let cum = self.current_cum() + 1;
                self.buffer.push(CornerPoint { t: ts, cum });
            }
        }
        if self.buffer.len() >= self.config.n_buf {
            self.compress_buffer();
        }
    }

    fn estimate_cum(&self, t: Timestamp) -> f64 {
        self.value_at(t) as f64
    }

    #[inline]
    fn estimate_cum_hinted(&self, t: Timestamp, hint: &mut CumHint) -> f64 {
        let r = self.rank_of(t, hint.rank);
        hint.rank = r;
        self.cum_at_rank(r)
    }

    #[inline]
    fn probe3(&self, t: Timestamp, tau: BurstSpan) -> [f64; 3] {
        // One full-width search for the latest offset, then bounded backward
        // resumption for t−τ and t−2τ (t−2τ ≤ t−τ ≤ t).
        let r0 = self.rank_of(t, self.n_points());
        let f0 = self.cum_at_rank(r0);
        let (f1, r1) = match t.checked_sub(tau.ticks()) {
            Some(earlier) => {
                let r = self.rank_of(earlier, r0);
                (self.cum_at_rank(r), r)
            }
            None => (0.0, r0),
        };
        let f2 = match t.checked_sub(tau.ticks().saturating_mul(2)) {
            Some(earlier) => self.cum_at_rank(self.rank_of(earlier, r1)),
            None => 0.0,
        };
        [f0, f1, f2]
    }

    fn finalize(&mut self) {
        self.compress_buffer();
    }

    fn size_bytes(&self) -> usize {
        (self.summary.len() + self.buffer.len()) * 16
    }

    fn segment_starts(&self) -> Vec<Timestamp> {
        self.summary.iter().chain(self.buffer.iter()).map(|c| c.t).collect()
    }

    fn for_each_segment_start(&self, f: &mut dyn FnMut(Timestamp)) {
        for c in self.summary.iter().chain(self.buffer.iter()) {
            f(c.t);
        }
    }

    fn for_each_piece(&self, f: &mut dyn FnMut(crate::soa::CurvePiece)) {
        // The rank view is the concatenation summary ⊕ buffer (globally
        // sorted — buffer timestamps are strictly after summary ones), and
        // `cum_at_rank` reads `cum as f64`; one staircase piece per corner
        // reproduces it bit for bit.
        for c in self.summary.iter().chain(self.buffer.iter()) {
            f(crate::soa::CurvePiece::staircase(c.t.ticks(), c.cum as f64));
        }
    }

    fn arrivals(&self) -> u64 {
        self.arrivals
    }

    fn summary_stats(&self) -> SummaryStats {
        SummaryStats {
            pieces: self.summary.len(),
            buffered: self.buffer.len(),
            bytes: self.size_bytes(),
        }
    }
}

/// Persistence (format `PBE1` v1): config, compressed summary, live buffer,
/// and counters — a decoded sketch continues exactly where the encoded one
/// stopped, including an un-flushed buffer.
impl Codec for Pbe1 {
    fn encode(&self, w: &mut bed_stream::codec::Writer) {
        w.magic(*b"PBE1");
        w.version(1);
        w.u64(self.config.n_buf as u64);
        w.u64(self.config.eta as u64);
        w.len(self.summary.len());
        for c in &self.summary {
            c.encode(w);
        }
        w.len(self.buffer.len());
        for c in &self.buffer {
            c.encode(w);
        }
        w.u64(self.arrivals);
        w.u64(self.accumulated_error);
        w.u64(self.compressions);
    }

    fn decode(r: &mut bed_stream::codec::Reader<'_>) -> Result<Self, bed_stream::CodecError> {
        use bed_stream::CodecError;
        r.magic(*b"PBE1")?;
        r.version(1)?;
        let config =
            Pbe1Config { n_buf: r.u64("pbe1 n_buf")? as usize, eta: r.u64("pbe1 eta")? as usize };
        config.validate().map_err(|_| CodecError::Invalid { context: "pbe1 config" })?;
        let decode_points = |r: &mut bed_stream::codec::Reader<'_>,
                             what: &'static str|
         -> Result<Vec<CornerPoint>, CodecError> {
            let n = r.len(what, 16)?;
            let mut v: Vec<CornerPoint> = Vec::with_capacity(n);
            for _ in 0..n {
                let p = CornerPoint::decode(r)?;
                if v.last().is_some_and(|l| !(l.t < p.t && l.cum < p.cum)) {
                    return Err(CodecError::Invalid { context: what });
                }
                v.push(p);
            }
            Ok(v)
        };
        let summary = decode_points(r, "pbe1 summary")?;
        let buffer = decode_points(r, "pbe1 buffer")?;
        // Buffer strictly follows the summary in both coordinates.
        if let (Some(s), Some(b)) = (summary.last(), buffer.first()) {
            if !(s.t < b.t && s.cum < b.cum) {
                return Err(CodecError::Invalid { context: "pbe1 summary/buffer boundary" });
            }
        }
        let arrivals = r.u64("pbe1 arrivals")?;
        let accumulated_error = r.u64("pbe1 error")?;
        let compressions = r.u64("pbe1 compressions")?;
        let total = buffer.last().or(summary.last()).map_or(0, |c| c.cum);
        if arrivals < total {
            return Err(CodecError::Invalid { context: "pbe1 arrival count" });
        }
        Ok(Pbe1 { config, summary, buffer, arrivals, accumulated_error, compressions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bed_stream::SingleEventStream;

    fn feed(pbe: &mut Pbe1, ts: &[u64]) {
        for &t in ts {
            pbe.update(Timestamp(t));
        }
    }

    fn curve_of(ts: &[u64]) -> FrequencyCurve {
        FrequencyCurve::from_stream(&SingleEventStream::from_unsorted(
            ts.iter().map(|&t| Timestamp(t)).collect(),
        ))
    }

    #[test]
    fn config_validation() {
        assert!(Pbe1Config { n_buf: 10, eta: 1 }.validate().is_err());
        assert!(Pbe1Config { n_buf: 4, eta: 4 }.validate().is_err());
        assert!(Pbe1Config { n_buf: 5, eta: 4 }.validate().is_ok());
    }

    #[test]
    fn exact_while_buffer_not_full() {
        let mut pbe = Pbe1::new(Pbe1Config { n_buf: 100, eta: 4 }).unwrap();
        let ts = [1u64, 1, 4, 9, 9, 16, 25];
        feed(&mut pbe, &ts);
        let exact = curve_of(&ts);
        for t in 0..=30u64 {
            assert_eq!(pbe.estimate_cum(Timestamp(t)), exact.value_at(Timestamp(t)) as f64);
        }
        assert_eq!(pbe.compressions(), 0);
        assert_eq!(pbe.arrivals(), 7);
    }

    #[test]
    fn never_overestimates_after_compression() {
        let mut pbe = Pbe1::new(Pbe1Config { n_buf: 10, eta: 3 }).unwrap();
        let ts: Vec<u64> = (0..100).map(|i| i * 3 + (i % 4)).collect();
        feed(&mut pbe, &ts);
        pbe.finalize();
        let exact = curve_of(&ts);
        for t in 0..=400u64 {
            let approx = pbe.estimate_cum(Timestamp(t));
            let truth = exact.value_at(Timestamp(t)) as f64;
            assert!(approx <= truth, "overestimate at t={t}: {approx} > {truth}");
        }
        assert!(pbe.summary_len() < 100);
        // 76 distinct corners through 10-point buffers → ≥ 7 compressions
        assert!(pbe.compressions() >= 7, "{}", pbe.compressions());
    }

    #[test]
    fn estimate_is_monotone_nondecreasing() {
        let mut pbe = Pbe1::new(Pbe1Config { n_buf: 8, eta: 3 }).unwrap();
        let ts: Vec<u64> = (0..60).map(|i| i * 7 % 97 + i).map(|x| x as u64).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        feed(&mut pbe, &sorted);
        pbe.finalize();
        let mut last = -1.0;
        for t in 0..300u64 {
            let v = pbe.estimate_cum(Timestamp(t));
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn boundary_points_are_exact_so_curve_reconnects() {
        // After each compression the buffer's last corner is kept exactly,
        // so F̃ equals F at buffer boundaries.
        let mut pbe = Pbe1::new(Pbe1Config { n_buf: 5, eta: 2 }).unwrap();
        let ts: Vec<u64> = (1..=20).map(|i| i * 2).collect();
        feed(&mut pbe, &ts);
        pbe.finalize();
        let exact = curve_of(&ts);
        // Buffer boundaries land on every 5th distinct timestamp.
        for boundary in [10u64, 20, 30, 40] {
            assert_eq!(
                pbe.estimate_cum(Timestamp(boundary)),
                exact.value_at(Timestamp(boundary)) as f64,
                "boundary t={boundary}"
            );
        }
    }

    #[test]
    fn offline_equals_streaming_single_buffer() {
        let ts: Vec<u64> = vec![0, 3, 4, 4, 7, 11, 12, 20, 21, 30];
        let curve = curve_of(&ts);
        let offline = Pbe1::offline(&curve, 4).unwrap();
        let mut streaming = Pbe1::new(Pbe1Config { n_buf: 1000, eta: 4 }).unwrap();
        for &t in &ts {
            streaming.update(Timestamp(t));
        }
        streaming.finalize();
        for t in 0..=40u64 {
            assert_eq!(
                offline.estimate_cum(Timestamp(t)),
                streaming.estimate_cum(Timestamp(t)),
                "t={t}"
            );
        }
        assert_eq!(offline.accumulated_area_error(), streaming.accumulated_area_error());
    }

    #[test]
    fn burstiness_error_shrinks_with_eta() {
        use bed_stream::BurstSpan;
        // A bursty ramp: quadratic arrivals. The burst span must cover many
        // staircase knees (as in the paper, where τ is a full day) or the
        // error metric is dominated by knee-local spike artifacts.
        let ts: Vec<u64> = (0..600u64).map(|i| i * i / 40).collect();
        let exact = curve_of(&ts);
        let tau = BurstSpan::new(2000).unwrap();
        let horizon = *ts.last().unwrap();
        let mut errs = Vec::new();
        for eta in [4usize, 16, 64] {
            let mut pbe = Pbe1::new(Pbe1Config { n_buf: 2000, eta }).unwrap();
            for &t in &ts {
                pbe.update(Timestamp(t));
            }
            pbe.finalize();
            let mut total = 0.0;
            let mut count = 0u64;
            let mut t = 0;
            while t <= horizon {
                let est = pbe.estimate_burstiness(Timestamp(t), tau);
                let truth = exact.burstiness(Timestamp(t), tau) as f64;
                total += (est - truth).abs();
                count += 1;
                t += 13;
            }
            errs.push(total / count as f64);
        }
        assert!(errs[0] >= errs[1] && errs[1] >= errs[2], "errors {errs:?} not decreasing");
        assert!(errs[2] < errs[0].max(1.0), "largest eta should clearly beat smallest");
    }

    #[test]
    fn size_accounting_includes_live_buffer_until_finalize() {
        let mut pbe = Pbe1::new(Pbe1Config { n_buf: 50, eta: 4 }).unwrap();
        feed(&mut pbe, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(pbe.size_bytes(), 10 * 16);
        pbe.finalize();
        // 10 ≤ buffer capacity but > eta → compressed to eta points
        assert_eq!(pbe.size_bytes(), 4 * 16);
        assert_eq!(pbe.segment_starts().len(), 4);
    }

    #[test]
    fn duplicate_timestamps_do_not_consume_buffer_budget() {
        let mut pbe = Pbe1::new(Pbe1Config { n_buf: 5, eta: 3 }).unwrap();
        for _ in 0..1000 {
            pbe.update(Timestamp(7));
        }
        assert_eq!(pbe.compressions(), 0);
        assert_eq!(pbe.estimate_cum(Timestamp(7)), 1000.0);
        assert_eq!(pbe.estimate_cum(Timestamp(6)), 0.0);
    }
}
