//! The optimal-staircase dynamic program of PBE-1 (Section III-A).
//!
//! **Problem.** Given the `n` left-upper corner points
//! `P = {p_0, ..., p_{n-1}}` of a staircase `F(t)` (strictly increasing in
//! both coordinates), select `η ≤ n` of them — necessarily including both
//! boundary points (Corollary 1) — whose induced staircase `F̃(t)` minimises
//! the area `Δ = Σ_t (F(t) − F̃(t))` subject to `F̃(t) ≤ F(t)` everywhere
//! (Lemmas 1–3 reduce the search space to exactly this subset selection).
//!
//! **Cost decomposition.** If `a < b` are consecutive *selected* indices, the
//! area contributed between them is
//!
//! ```text
//! cost(a, b) = Σ_{i=a}^{b-1} (t_{i+1} − t_i)·(y_i − y_a)
//!            = (W(b) − W(a)) − y_a·(t_b − t_a)
//! where W(i) = Σ_{k<i} (t_{k+1} − t_k)·y_k            (prefix weights)
//! ```
//!
//! so the DP is `D[j][b] = min_{a<b} D[j-1][a] + cost(a, b)` with
//! `D[1][0] = 0`, answer `D[η][n-1]`.
//!
//! **Two kernels.**
//! * [`solve_naive`] — the direct `O(η·n²)` recurrence, a faithful
//!   transcription of Algorithm 1. Kept as the oracle for tests and as the
//!   ablation baseline.
//! * [`solve`] — `O(η·n)` via the monotone convex-hull trick: for a fixed
//!   layer `j`, `D[j][b] = W(b) + min_a { (−y_a)·t_b + (D[j-1][a] − W(a) + y_a·t_a) }`
//!   is a lower envelope of lines queried at increasing `t_b` with slopes
//!   `−y_a` strictly decreasing in `a`.
//!
//! All arithmetic is done in `i128`: with `y ≤ 2^40` and `t ≤ 2^40` the
//! envelope cross-products stay far below `i128::MAX`.

use bed_stream::curve::CornerPoint;

/// Result of an optimal selection: chosen indices (ascending, always
/// containing `0` and `n−1`) and the minimum area error Δ*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpSolution {
    /// Indices into the input corner slice.
    pub chosen: Vec<usize>,
    /// Minimum achievable area between the exact staircase and the
    /// approximation induced by `chosen`.
    pub cost: u64,
}

/// Prefix weights `W(i) = Σ_{k<i} (t_{k+1} − t_k)·y_k` for O(1) segment cost.
fn prefix_weights(points: &[CornerPoint]) -> Vec<i128> {
    let mut w = Vec::with_capacity(points.len());
    let mut acc: i128 = 0;
    w.push(0);
    for k in 0..points.len().saturating_sub(1) {
        let dt = (points[k + 1].t.ticks() - points[k].t.ticks()) as i128;
        acc += dt * points[k].cum as i128;
        w.push(acc);
    }
    w
}

/// `cost(a, b)` from the decomposition above.
fn seg_cost(points: &[CornerPoint], w: &[i128], a: usize, b: usize) -> i128 {
    let dt = (points[b].t.ticks() - points[a].t.ticks()) as i128;
    (w[b] - w[a]) - points[a].cum as i128 * dt
}

/// Validates inputs shared by both kernels. Returns `Some(trivial)` when no
/// DP is needed (η ≥ n keeps everything; tiny inputs).
fn preamble(points: &[CornerPoint], eta: usize) -> Option<DpSolution> {
    assert!(eta >= 2 || points.len() < 2, "PBE-1 requires η ≥ 2 to keep both boundary points");
    debug_assert!(
        points.windows(2).all(|p| p[0].t < p[1].t && p[0].cum < p[1].cum),
        "corner points must be strictly increasing"
    );
    if points.len() <= eta.max(1) {
        return Some(DpSolution { chosen: (0..points.len()).collect(), cost: 0 });
    }
    None
}

/// Direct `O(η·n²)` dynamic program (Algorithm 1).
#[allow(clippy::needless_range_loop)] // indices drive both `prev` and `parent`
pub fn solve_naive(points: &[CornerPoint], eta: usize) -> DpSolution {
    if let Some(t) = preamble(points, eta) {
        return t;
    }
    let n = points.len();
    let w = prefix_weights(points);
    const INF: i128 = i128::MAX / 4;

    // d[j][b]: min cost selecting j points among 0..=b with b selected.
    let mut prev = vec![INF; n];
    let mut parent = vec![vec![usize::MAX; n]; eta];
    prev[0] = 0;

    let mut curr = vec![INF; n];
    for j in 1..eta {
        for x in curr.iter_mut() {
            *x = INF;
        }
        for b in 1..n {
            for a in 0..b {
                if prev[a] >= INF {
                    continue;
                }
                let c = prev[a] + seg_cost(points, &w, a, b);
                if c < curr[b] {
                    curr[b] = c;
                    parent[j][b] = a;
                }
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }

    reconstruct(points, eta, prev[n - 1], &parent)
}

/// A line `y = m·x + c` of the lower envelope.
#[derive(Clone, Copy)]
struct Line {
    m: i128,
    c: i128,
    /// Index of the predecessor corner that produced this line.
    from: usize,
}

impl Line {
    fn eval(&self, x: i128) -> i128 {
        self.m * x + self.c
    }
}

/// Monotone convex-hull trick: lines inserted with strictly decreasing
/// slopes, queries at non-decreasing x. Minimum envelope.
struct MonotoneCht {
    hull: Vec<Line>,
    /// Cursor into the hull; advances monotonically with queries.
    head: usize,
}

impl MonotoneCht {
    fn new() -> Self {
        MonotoneCht { hull: Vec::new(), head: 0 }
    }

    /// `l3` makes `l2` useless iff `l3` overtakes `l2` before `l2`
    /// overtakes `l1` (standard cross-multiplication test, exact in i128).
    fn bad(l1: &Line, l2: &Line, l3: &Line) -> bool {
        // intersection_x(l1,l3) <= intersection_x(l1,l2)
        (l3.c - l1.c) * (l1.m - l2.m) <= (l2.c - l1.c) * (l1.m - l3.m)
    }

    fn push(&mut self, line: Line) {
        debug_assert!(
            self.hull.last().is_none_or(|l| line.m < l.m),
            "slopes must strictly decrease"
        );
        while self.hull.len() >= 2
            && Self::bad(&self.hull[self.hull.len() - 2], &self.hull[self.hull.len() - 1], &line)
        {
            self.hull.pop();
        }
        // Keep the cursor valid after pops.
        self.head = self.head.min(self.hull.len().saturating_sub(1));
        self.hull.push(line);
    }

    /// Minimum over the envelope at `x`; `x` must be non-decreasing across
    /// calls. Returns the value and the originating corner index.
    fn query(&mut self, x: i128) -> Option<(i128, usize)> {
        if self.hull.is_empty() {
            return None;
        }
        while self.head + 1 < self.hull.len()
            && self.hull[self.head + 1].eval(x) <= self.hull[self.head].eval(x)
        {
            self.head += 1;
        }
        let l = &self.hull[self.head];
        Some((l.eval(x), l.from))
    }
}

/// `O(η·n)` dynamic program using the monotone convex-hull trick.
#[allow(clippy::needless_range_loop)] // indices drive both `prev` and `parent`
pub fn solve(points: &[CornerPoint], eta: usize) -> DpSolution {
    if let Some(t) = preamble(points, eta) {
        return t;
    }
    let n = points.len();
    let w = prefix_weights(points);
    const INF: i128 = i128::MAX / 4;

    let mut prev = vec![INF; n];
    let mut parent = vec![vec![usize::MAX; n]; eta];
    prev[0] = 0;

    let mut curr = vec![INF; n];
    for j in 1..eta {
        for x in curr.iter_mut() {
            *x = INF;
        }
        let mut cht = MonotoneCht::new();
        for b in 1..n {
            // Make corner a = b−1 available as a predecessor. Slopes −y_a
            // strictly decrease because cum strictly increases.
            let a = b - 1;
            if prev[a] < INF {
                let ya = points[a].cum as i128;
                let ta = points[a].t.ticks() as i128;
                cht.push(Line { m: -ya, c: prev[a] - w[a] + ya * ta, from: a });
            }
            if let Some((val, from)) = cht.query(points[b].t.ticks() as i128) {
                curr[b] = val + w[b];
                parent[j][b] = from;
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }

    reconstruct(points, eta, prev[n - 1], &parent)
}

/// Walks parent pointers back from `(η−1, n−1)`.
fn reconstruct(
    points: &[CornerPoint],
    eta: usize,
    cost: i128,
    parent: &[Vec<usize>],
) -> DpSolution {
    let n = points.len();
    let mut chosen = Vec::with_capacity(eta);
    let mut b = n - 1;
    for j in (1..eta).rev() {
        chosen.push(b);
        b = parent[j][b];
        debug_assert_ne!(b, usize::MAX, "broken parent chain");
    }
    chosen.push(b);
    debug_assert_eq!(b, 0, "optimal selection must start at the first corner");
    chosen.reverse();
    DpSolution { chosen, cost: u64::try_from(cost).expect("area cost fits u64") }
}

/// Smallest η whose optimal error is ≤ `cap` ("an end-user may also impose a
/// hard cap on the error instead of a space constraint", Section III-A).
///
/// Runs CHT layers incrementally — `O(n)` per layer — stopping at the first
/// layer that reaches the cap. Worst case `O(n²)` when only the full set
/// achieves the cap.
pub fn solve_error_capped(points: &[CornerPoint], cap: u64) -> DpSolution {
    let n = points.len();
    if n <= 2 {
        return DpSolution { chosen: (0..n).collect(), cost: 0 };
    }
    let w = prefix_weights(points);
    const INF: i128 = i128::MAX / 4;

    let mut prev = vec![INF; n];
    prev[0] = 0;
    let mut parents: Vec<Vec<usize>> = vec![vec![usize::MAX; n]];
    // η = 2 (both boundaries only) is the floor; iterate layers until cap.
    let mut curr = vec![INF; n];
    for _j in 1..n {
        for x in curr.iter_mut() {
            *x = INF;
        }
        let mut layer_parent = vec![usize::MAX; n];
        let mut cht = MonotoneCht::new();
        for b in 1..n {
            let a = b - 1;
            if prev[a] < INF {
                let ya = points[a].cum as i128;
                let ta = points[a].t.ticks() as i128;
                cht.push(Line { m: -ya, c: prev[a] - w[a] + ya * ta, from: a });
            }
            if let Some((val, from)) = cht.query(points[b].t.ticks() as i128) {
                curr[b] = val + w[b];
                layer_parent[b] = from;
            }
        }
        parents.push(layer_parent);
        std::mem::swap(&mut prev, &mut curr);
        if prev[n - 1] <= cap as i128 {
            break;
        }
    }
    let eta = parents.len();
    reconstruct(points, eta, prev[n - 1], &parents)
}

/// Area error of an arbitrary selection (must contain 0 and n−1) — used by
/// tests and by the greedy/uniform ablation baselines in `bed-bench`.
pub fn selection_cost(points: &[CornerPoint], chosen: &[usize]) -> u64 {
    let w = prefix_weights(points);
    let mut cost: i128 = 0;
    for pair in chosen.windows(2) {
        cost += seg_cost(points, &w, pair[0], pair[1]);
    }
    u64::try_from(cost).expect("area cost fits u64")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bed_stream::Timestamp;

    fn pts(raw: &[(u64, u64)]) -> Vec<CornerPoint> {
        raw.iter().map(|&(t, cum)| CornerPoint { t: Timestamp(t), cum }).collect()
    }

    /// Exhaustive optimal over all subsets containing both boundaries.
    fn brute_force(points: &[CornerPoint], eta: usize) -> u64 {
        let n = points.len();
        if n <= eta {
            return 0;
        }
        let interior: Vec<usize> = (1..n - 1).collect();
        let mut best = u64::MAX;
        // choose eta-2 interior points
        fn combos(
            pool: &[usize],
            k: usize,
            start: usize,
            cur: &mut Vec<usize>,
            out: &mut Vec<Vec<usize>>,
        ) {
            if cur.len() == k {
                out.push(cur.clone());
                return;
            }
            for i in start..pool.len() {
                cur.push(pool[i]);
                combos(pool, k, i + 1, cur, out);
                cur.pop();
            }
        }
        let mut all = Vec::new();
        combos(&interior, eta - 2, 0, &mut Vec::new(), &mut all);
        for combo in all {
            let mut chosen = vec![0];
            chosen.extend(combo);
            chosen.push(n - 1);
            best = best.min(selection_cost(points, &chosen));
        }
        best
    }

    #[test]
    fn trivial_cases_keep_everything() {
        let p = pts(&[(0, 1), (5, 3)]);
        let s = solve(&p, 4);
        assert_eq!(s.chosen, vec![0, 1]);
        assert_eq!(s.cost, 0);
        let s = solve_naive(&p, 2);
        assert_eq!(s.cost, 0);
    }

    #[test]
    fn paper_figure_2_example_shape() {
        // Six corners like Fig. 2a: pick η=4 and check the result dominates
        // naive alternatives.
        let p = pts(&[(1, 2), (3, 5), (5, 6), (8, 11), (12, 12), (15, 20)]);
        let s = solve(&p, 4);
        assert_eq!(s.chosen.len(), 4);
        assert_eq!(s.chosen[0], 0);
        assert_eq!(*s.chosen.last().unwrap(), 5);
        assert_eq!(s.cost, brute_force(&p, 4));
        assert_eq!(s.cost, selection_cost(&p, &s.chosen));
    }

    #[test]
    fn naive_and_cht_agree_on_fixed_inputs() {
        let p = pts(&[(0, 1), (2, 2), (3, 4), (7, 5), (9, 9), (10, 10), (14, 13), (20, 14)]);
        for eta in 2..=8 {
            let a = solve_naive(&p, eta);
            let b = solve(&p, eta);
            assert_eq!(a.cost, b.cost, "eta={eta}");
            assert_eq!(selection_cost(&p, &a.chosen), a.cost);
            assert_eq!(selection_cost(&p, &b.chosen), b.cost);
        }
    }

    #[test]
    fn cost_decreases_monotonically_in_eta() {
        let p = pts(&[(0, 3), (4, 7), (5, 8), (9, 20), (13, 21), (17, 30), (21, 31), (30, 45)]);
        let mut last = u64::MAX;
        for eta in 2..=8 {
            let s = solve(&p, eta);
            assert!(s.cost <= last, "eta={eta}: {} > {last}", s.cost);
            last = s.cost;
        }
        assert_eq!(last, 0); // keeping all points is exact
    }

    #[test]
    fn matches_brute_force_on_small_inputs() {
        let p = pts(&[(1, 1), (2, 3), (4, 4), (6, 8), (7, 10), (11, 11), (13, 17)]);
        for eta in 2..7 {
            assert_eq!(solve(&p, eta).cost, brute_force(&p, eta), "eta={eta}");
        }
    }

    #[test]
    fn error_capped_finds_minimal_eta() {
        let p = pts(&[(0, 1), (2, 2), (3, 4), (7, 5), (9, 9), (10, 10), (14, 13), (20, 14)]);
        let full = solve(&p, 4);
        let capped = solve_error_capped(&p, full.cost);
        // capped must achieve the cap...
        assert!(capped.cost <= full.cost);
        // ...with no more points than the eta that achieved it
        assert!(capped.chosen.len() <= 4);
        // and the previous eta must NOT achieve it
        if capped.chosen.len() > 2 {
            let fewer = solve(&p, capped.chosen.len() - 1);
            assert!(fewer.cost > full.cost);
        }
        // cap = 0 keeps everything
        let zero = solve_error_capped(&p, 0);
        assert_eq!(zero.cost, 0);
    }

    #[test]
    fn boundary_points_always_selected() {
        let p = pts(&[(5, 2), (6, 4), (10, 9), (11, 10), (19, 26)]);
        for eta in 2..=5 {
            let s = solve(&p, eta);
            assert_eq!(s.chosen.first(), Some(&0));
            assert_eq!(s.chosen.last(), Some(&4));
        }
    }

    #[test]
    #[should_panic(expected = "η ≥ 2")]
    fn eta_below_two_panics() {
        let p = pts(&[(0, 1), (1, 2), (2, 3)]);
        solve(&p, 1);
    }
}
