//! The common interface of all frequency-curve summaries.

use crate::kernel::CumHint;
use crate::soa::CurvePiece;
use bed_stream::{BurstSpan, TimeRange, Timestamp};

/// How a summary's estimate behaves between its piece boundaries — drives
/// the exact range computation in [`bursty_time_ranges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interpolation {
    /// Constant between boundaries (staircase summaries: PBE-1, exact
    /// curves). The estimate jumps only at boundaries.
    Step,
    /// Linear between boundaries (PLA summaries: PBE-2). Threshold crossings
    /// can fall strictly inside a piece.
    Linear,
}

/// Structural readings of one summary, for observability rollups
/// (`bed-obs`): how many pieces the approximation holds, how much exact
/// state is still buffered, and the byte footprint. Plain data — this crate
/// stays dependency-free and leaves metric registration to `bed-core`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SummaryStats {
    /// Compressed pieces retained (staircase points for PBE-1, PLA segments
    /// for PBE-2 — including the open piece, if any).
    pub pieces: usize,
    /// Exact state awaiting compression (PBE-1 buffer corner points; PBE-2
    /// feasible-polygon vertices of the open piece).
    pub buffered: usize,
    /// Byte footprint, same accounting as [`CurveSketch::size_bytes`].
    pub bytes: usize,
}

/// A streaming summary of one cumulative frequency curve `F(t)` supporting
/// historical estimates.
///
/// Implementations must be *persistent* in the paper's sense: after ingesting
/// the whole stream they can estimate `F̃(t)` — and hence burstiness
/// `b̃(t)` — for **any** `t` in the past, not just "now".
///
/// The estimate is expected to never overestimate: `F̃(t) ≤ F(t)` at every
/// constraint point the sketch has retained (this is what makes the median
/// combination in CM-PBE sound).
pub trait CurveSketch {
    /// Records one arrival at `ts`. Timestamps must be non-decreasing across
    /// calls; violations are a logic error (checked in debug builds).
    fn update(&mut self, ts: Timestamp);

    /// Estimated cumulative frequency `F̃(t)`.
    fn estimate_cum(&self, t: Timestamp) -> f64;

    /// `F̃(t)` with rank resumption: identical value to
    /// [`estimate_cum`](CurveSketch::estimate_cum), but implementations with
    /// a sorted piece array resume the search from `hint` (the rank of the
    /// previous call) and store the new rank back, making monotone probe
    /// sequences `O(1)` amortised. The default ignores the hint.
    fn estimate_cum_hinted(&self, t: Timestamp, hint: &mut CumHint) -> f64 {
        let _ = hint;
        self.estimate_cum(t)
    }

    /// Fused `[F̃(t), F̃(t−τ), F̃(t−2τ)]` — the three probes of Eq. 2 in one
    /// call, pre-epoch offsets reading 0. Implementations resolve the
    /// latest offset with one full search and reach the earlier two by
    /// bounded backward steps (`t−2τ ≤ t−τ ≤ t`). Must be bit-for-bit equal
    /// to composing three [`estimate_cum`](CurveSketch::estimate_cum) calls.
    fn probe3(&self, t: Timestamp, tau: BurstSpan) -> [f64; 3] {
        [
            self.estimate_cum(t),
            self.estimate_cum_offset(t, tau.ticks()),
            self.estimate_cum_offset(t, tau.ticks().saturating_mul(2)),
        ]
    }

    /// `F̃(t − delta)`, treating pre-epoch times as 0.
    fn estimate_cum_offset(&self, t: Timestamp, delta: u64) -> f64 {
        match t.checked_sub(delta) {
            Some(earlier) => self.estimate_cum(earlier),
            None => 0.0,
        }
    }

    /// Estimated burst frequency `b̃f(t) = F̃(t) − F̃(t − τ)`.
    fn estimate_burst_frequency(&self, t: Timestamp, tau: BurstSpan) -> f64 {
        self.estimate_cum(t) - self.estimate_cum_offset(t, tau.ticks())
    }

    /// Estimated burstiness `b̃(t) = F̃(t) − 2·F̃(t−τ) + F̃(t−2τ)` (Eq. 2),
    /// evaluated through the fused [`probe3`](CurveSketch::probe3) kernel.
    fn estimate_burstiness(&self, t: Timestamp, tau: BurstSpan) -> f64 {
        let [f0, f1, f2] = self.probe3(t, tau);
        f0 - 2.0 * f1 + f2
    }

    /// Flushes any internal buffering so that `size_bytes` reflects the final
    /// summary (PBE-1 compresses a partial buffer; PBE-2 closes the open
    /// polygon into a segment). Queries are valid both before and after.
    fn finalize(&mut self);

    /// Current summary size in bytes, using the workspace-wide accounting of
    /// 16 bytes per staircase point and 24 bytes per PLA segment.
    fn size_bytes(&self) -> usize;

    /// Timestamps at which the approximation starts a new piece. Between two
    /// consecutive knees the approximate incoming rate is constant, which is
    /// what makes bursty-time queries linear in the summary size (Section V).
    fn segment_starts(&self) -> Vec<Timestamp>;

    /// Visits every piece-start timestamp without allocating. The default
    /// walks [`segment_starts`](CurveSketch::segment_starts); summaries
    /// backed by in-memory piece arrays override this with a plain loop so
    /// the hot bursty-time candidate path stays heap-free. Visit order and
    /// multiplicity follow the underlying piece array (callers that need a
    /// sorted, deduplicated list must do so themselves, as
    /// [`bursty_time_candidates`] does).
    fn for_each_segment_start(&self, f: &mut dyn FnMut(Timestamp)) {
        for t in self.segment_starts() {
            f(t);
        }
    }

    /// Visits the summary's estimate as canonical [`CurvePiece`]s in
    /// strictly ascending `start` order — the export that feeds the
    /// struct-of-arrays [`crate::soa::PieceBank`]. Evaluating the last piece
    /// starting at or before `t` (0 before the first) must reproduce
    /// [`estimate_cum`](CurveSketch::estimate_cum) **bit for bit**.
    ///
    /// The default covers [`Interpolation::Step`] summaries by emitting one
    /// staircase piece per knee holding the estimate at that knee;
    /// [`Interpolation::Linear`] implementations must override it with their
    /// exact segments.
    fn for_each_piece(&self, f: &mut dyn FnMut(CurvePiece)) {
        debug_assert!(
            self.interpolation() == Interpolation::Step,
            "Linear summaries must override for_each_piece"
        );
        self.for_each_segment_start(&mut |knee| {
            f(CurvePiece::staircase(knee.ticks(), self.estimate_cum(knee)));
        });
    }

    /// All timestamps at which the estimate's slope may change — piece
    /// starts *and* the first tick after each piece ends (where a PLA
    /// segment's line hands over to the flat hold). Staircase summaries only
    /// change at starts, so the default suffices for them.
    fn piece_boundaries(&self) -> Vec<Timestamp> {
        self.segment_starts()
    }

    /// Shape of the estimate between boundaries.
    fn interpolation(&self) -> Interpolation {
        Interpolation::Step
    }

    /// Whether this summary honours the exact
    /// [`for_each_piece`](CurveSketch::for_each_piece) export contract the
    /// struct-of-arrays [`crate::soa::PieceBank`] depends on. Composite
    /// summaries that cannot express their estimate as a flat piece array
    /// (e.g. a tier-compacted cell adding a frozen staircase prefix to a
    /// live PLA curve) return `false`; grids skip the bank for them and
    /// answer from the AoS path instead.
    fn bankable(&self) -> bool {
        true
    }

    /// Number of arrivals ingested so far.
    fn arrivals(&self) -> u64;

    /// Structural readings for observability. The default derives `pieces`
    /// from [`segment_starts`](CurveSketch::segment_starts) and reports no
    /// buffering; implementations with internal buffers should override.
    fn summary_stats(&self) -> SummaryStats {
        SummaryStats { pieces: self.segment_starts().len(), buffered: 0, bytes: self.size_bytes() }
    }
}

/// Blanket helper: candidate query instants for a bursty-time query over a
/// sketch — every knee plus its `+τ` and `+2τ` echoes (burstiness changes
/// only when one of the three terms of Eq. 2 crosses a knee).
pub fn bursty_time_candidates<S: CurveSketch + ?Sized>(
    sketch: &S,
    tau: BurstSpan,
    horizon: Timestamp,
) -> Vec<Timestamp> {
    let mut out: Vec<u64> = Vec::new();
    bursty_time_candidates_into(sketch, tau, horizon, &mut out);
    out.into_iter().map(Timestamp).collect()
}

/// Allocation-reusing form of [`bursty_time_candidates`]: fills `out` with
/// the sorted, deduplicated candidate ticks, clearing it first. Knees are
/// gathered through the [`CurveSketch::for_each_segment_start`] visitor, so
/// no intermediate `Vec` of piece starts is built.
pub fn bursty_time_candidates_into<S: CurveSketch + ?Sized>(
    sketch: &S,
    tau: BurstSpan,
    horizon: Timestamp,
    out: &mut Vec<u64>,
) {
    out.clear();
    sketch.for_each_segment_start(&mut |knee| {
        for delta in [0, tau.ticks(), tau.ticks().saturating_mul(2)] {
            let t = knee.ticks().saturating_add(delta);
            if t <= horizon.ticks() {
                out.push(t);
            }
        }
    });
    out.sort_unstable();
    out.dedup();
}

/// Exact bursty-time **ranges** over a sketch's estimate (an extension of
/// the paper's knee-probing strategy): returns the maximal closed intervals
/// within `[0, horizon]` where `b̃(t) ≥ θ`.
///
/// The estimate's burstiness `b̃(t) = F̃(t) − 2F̃(t−τ) + F̃(t−2τ)` changes
/// shape only where one of the three terms crosses a piece boundary, so
/// evaluating at every boundary echo (`boundary`, `+τ`, `+2τ`) is exact for
/// [`Interpolation::Step`] summaries; for [`Interpolation::Linear`] ones,
/// `b̃` is linear *between* echoes and the θ-crossings inside a stretch are
/// recovered by interpolation.
pub fn bursty_time_ranges<S: CurveSketch + ?Sized>(
    sketch: &S,
    theta: f64,
    tau: BurstSpan,
    horizon: Timestamp,
) -> Vec<TimeRange> {
    // Candidate instants where the piecewise shape can change.
    let mut cands: Vec<u64> = Vec::new();
    cands.push(0);
    for b in sketch.piece_boundaries() {
        for delta in [0, tau.ticks(), tau.ticks().saturating_mul(2)] {
            let t = b.ticks().saturating_add(delta);
            if t <= horizon.ticks() {
                cands.push(t);
            }
        }
    }
    cands.push(horizon.ticks());
    cands.sort_unstable();
    cands.dedup();

    let mut ranges: Vec<TimeRange> = Vec::new();
    let push = |start: u64, end: u64, ranges: &mut Vec<TimeRange>| {
        if start > end {
            return;
        }
        let range = TimeRange { start: Timestamp(start), end: Timestamp(end) };
        match ranges.last_mut() {
            Some(last) if last.adjacent_or_overlapping(&range) => *last = last.merge(&range),
            _ => ranges.push(range),
        }
    };

    let linear = sketch.interpolation() == Interpolation::Linear;

    for i in 0..cands.len() {
        let c1 = cands[i];
        let v1 = sketch.estimate_burstiness(Timestamp(c1), tau);
        // The stretch owns [c1, c2 − 1] (or through the horizon at the end).
        let stretch_end = match cands.get(i + 1) {
            Some(&c2) => c2 - 1,
            None => horizon.ticks(),
        };
        if stretch_end < c1 {
            continue; // adjacent candidates: the next stretch handles c2
        }
        if !linear || stretch_end == c1 {
            // constant stretch (or a single tick): one evaluation decides
            if v1 >= theta {
                push(c1, stretch_end, &mut ranges);
            }
            continue;
        }
        // Linear on the closed stretch: fit the line on the stretch's own
        // endpoints (the next boundary may start a different piece, so its
        // value must not be used for the slope).
        let v_end = sketch.estimate_burstiness(Timestamp(stretch_end), tau);
        match (v1 >= theta, v_end >= theta) {
            (true, true) => push(c1, stretch_end, &mut ranges),
            (false, false) => {}
            (above_at_start, _) => {
                // exactly one crossing: b̃ is monotone linear on the stretch
                let t_star = c1 as f64 + (theta - v1) * (stretch_end - c1) as f64 / (v_end - v1);
                if above_at_start {
                    let end = (t_star.floor() as u64).clamp(c1, stretch_end);
                    push(c1, end, &mut ranges);
                } else {
                    let start = (t_star.ceil() as u64).clamp(c1, stretch_end);
                    push(start, stretch_end, &mut ranges);
                }
            }
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal fake: exact counter with one knee per arrival timestamp.
    struct Fake(Vec<u64>);
    impl CurveSketch for Fake {
        fn update(&mut self, ts: Timestamp) {
            self.0.push(ts.ticks());
        }
        fn estimate_cum(&self, t: Timestamp) -> f64 {
            self.0.iter().filter(|&&x| x <= t.ticks()).count() as f64
        }
        fn finalize(&mut self) {}
        fn size_bytes(&self) -> usize {
            self.0.len() * 8
        }
        fn segment_starts(&self) -> Vec<Timestamp> {
            let mut v = self.0.clone();
            v.sort_unstable();
            v.dedup();
            v.into_iter().map(Timestamp).collect()
        }
        fn arrivals(&self) -> u64 {
            self.0.len() as u64
        }
    }

    #[test]
    fn default_burstiness_combines_three_terms() {
        let mut f = Fake(vec![]);
        for t in [0u64, 0, 0, 0, 5, 5, 5, 5] {
            f.update(Timestamp(t));
        }
        let tau = BurstSpan::new(5).unwrap();
        // F(9)=8, F(4)=4, F(pre-epoch)=0 → b(9) = 8 - 8 + 0 = 0
        assert_eq!(f.estimate_burstiness(Timestamp(9), tau), 0.0);
        // b(4) = F(4) - 2·0 + 0 = 4
        assert_eq!(f.estimate_burstiness(Timestamp(4), tau), 4.0);
        assert_eq!(f.estimate_burst_frequency(Timestamp(9), tau), 4.0);
    }

    #[test]
    fn candidates_include_tau_echoes_within_horizon() {
        let f = Fake(vec![10, 30]);
        let tau = BurstSpan::new(7).unwrap();
        let cands = bursty_time_candidates(&f, tau, Timestamp(40));
        let ticks: Vec<u64> = cands.iter().map(|t| t.ticks()).collect();
        assert_eq!(ticks, vec![10, 17, 24, 30, 37]); // 44 clipped by horizon
    }

    /// Ranges from a step sketch must exactly match per-tick brute force.
    #[test]
    fn step_ranges_match_brute_force() {
        let mut f = Fake(vec![]);
        for t in [5u64, 5, 5, 5, 20, 20, 40] {
            f.update(Timestamp(t));
        }
        let tau = BurstSpan::new(8).unwrap();
        let horizon = Timestamp(80);
        for theta in [-3.0, 1.0, 2.0, 4.0] {
            let ranges = bursty_time_ranges(&f, theta, tau, horizon);
            let mut inside = [false; 81];
            for r in &ranges {
                for t in r.start.ticks()..=r.end.ticks() {
                    inside[t as usize] = true;
                }
            }
            for t in 0..=80u64 {
                let b = f.estimate_burstiness(Timestamp(t), tau);
                assert_eq!(inside[t as usize], b >= theta, "θ={theta} t={t} b={b}");
            }
        }
    }

    /// A fake linear sketch: F̃(t) = t (slope-1 PLA with a single piece).
    struct Ramp;
    impl CurveSketch for Ramp {
        fn update(&mut self, _: Timestamp) {}
        fn estimate_cum(&self, t: Timestamp) -> f64 {
            t.ticks() as f64
        }
        fn finalize(&mut self) {}
        fn size_bytes(&self) -> usize {
            24
        }
        fn segment_starts(&self) -> Vec<Timestamp> {
            vec![Timestamp(0)]
        }
        fn interpolation(&self) -> Interpolation {
            Interpolation::Linear
        }
        fn arrivals(&self) -> u64 {
            0
        }
    }

    /// For a pure ramp, b̃(t) ramps up over [0, 2τ) then settles at 0; the
    /// linear-crossing logic must find the interior crossing exactly.
    #[test]
    fn linear_ranges_find_interior_crossings() {
        let tau = BurstSpan::new(10).unwrap();
        let horizon = Timestamp(100);
        // b̃(t) = t − 2·max(t−10, 0) + max(t−20, 0): rises 0..=10, falls
        // back to 0 at t=20, flat after.
        let ranges = bursty_time_ranges(&Ramp, 4.0, tau, horizon);
        assert_eq!(ranges.len(), 1);
        let r = ranges[0];
        // exact: b̃(t) ≥ 4 ⇔ t ∈ [4, 16]
        assert_eq!(r.start.ticks(), 4, "{r}");
        assert_eq!(r.end.ticks(), 16, "{r}");
    }
}
