//! # bed-pbe — Persistent Burstiness Estimation sketches
//!
//! Implements Section III of *"Bursty Event Detection Throughout Histories"*
//! (Paul, Peng & Li, ICDE 2019): two summaries of a single event stream's
//! cumulative frequency curve `F(t)` that answer **historical** burstiness
//! point queries `b(t) = F(t) − 2F(t−τ) + F(t−2τ)` (Eq. 1–2) at any time
//! instance of the past, in sub-linear space.
//!
//! * [`Pbe1`] — *approximation with buffering* (Section III-A). Buffers the
//!   exact staircase until it holds `n_buf` corner points, then keeps the
//!   **optimal** subset of η points (minimum area error Δ*, never
//!   overestimating `F`) found by dynamic programming. The DP kernel lives
//!   in [`pbe1::dp`] with a naive `O(η·n²)` reference and an `O(η·n)`
//!   convex-hull-trick implementation.
//! * [`Pbe2`] — *approximation without buffering* (Section III-B). An online
//!   piecewise-linear approximation that keeps `F̃(t) ∈ [F(t) − γ, F(t)]` at
//!   every constraint point by maintaining the feasible `(slope, intercept)`
//!   polygon, cutting a new segment whenever the polygon empties
//!   (Algorithm 2). Guarantees `|b̃(t) − b(t)| ≤ 4γ` (Lemma 4).
//! * [`CurveSketch`] — the common interface consumed by `bed-sketch`'s
//!   CM-PBE and by the query layer; [`ExactCurve`] is the trivial exact
//!   implementation used as a control.
//!
//! Both sketches deliberately **never overestimate** `F` — inside a Count-Min
//! cell the hash-collision overestimate and the PBE underestimate offset,
//! which is why CM-PBE combines rows by median rather than minimum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod kernel;
pub mod pbe1;
pub mod pbe2;
pub mod soa;
pub mod traits;

pub use exact::ExactCurve;
pub use kernel::{rank_resume, CumHint, CurveCursor};
pub use pbe1::{Pbe1, Pbe1Config};
pub use pbe2::{Pbe2, Pbe2Config};
pub use soa::{bank_of_cells, CurvePiece, PieceBank, PieceBankBuilder, ProbeRows, MAX_LANES};
pub use traits::{
    bursty_time_candidates, bursty_time_candidates_into, bursty_time_ranges, CurveSketch,
    Interpolation, SummaryStats,
};
