//! Zero-allocation query kernels: hinted rank resumption and the stateful
//! [`CurveCursor`] for monotone probe sequences.
//!
//! Every historical query in the paper reduces to probing a summary's
//! estimate `F̃` at three offsets `t ≥ t−τ ≥ t−2τ` (Eq. 2), and bursty-time
//! queries sweep those probes over a *sorted* candidate list. Both shapes
//! waste work when each probe restarts a full binary search over the piece
//! array. The kernels here exploit the known ordering instead:
//!
//! - [`rank_resume`] finds a partition point starting from a caller-supplied
//!   hint — a bounded backward walk for the `t−τ`/`t−2τ` legs of one probe,
//!   a doubling gallop forward between consecutive probes of a sweep —
//!   falling back to binary search so the worst case stays `O(log n)`.
//! - [`CumHint`] carries one resolved rank between
//!   [`CurveSketch::estimate_cum_hinted`] calls.
//! - [`CurveCursor`] bundles three hints (one per Eq. 2 offset stream) so a
//!   bursty-time sweep advances each stream instead of re-searching.
//!
//! None of this changes any estimate: a hinted search returns the same rank
//! as `partition_point`, so the fused paths are bit-for-bit identical to the
//! composed three-call evaluation (enforced by proptests in
//! `tests/api_contract.rs`).

use crate::traits::CurveSketch;
use bed_stream::{BurstSpan, Timestamp};

/// Resume state for a hinted rank search: the rank returned by the previous
/// [`CurveSketch::estimate_cum_hinted`] call on the same summary.
///
/// A *rank* is a `partition_point` result — the number of pieces whose key
/// is `≤ t`. A default hint (`rank == 0`) is always valid; a stale or
/// wildly wrong hint only costs search time, never correctness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CumHint {
    pub(crate) rank: usize,
}

impl CumHint {
    /// A fresh hint with no resume information.
    pub fn new() -> Self {
        Self::default()
    }
}

/// How many single steps a backward resume takes before giving up and
/// binary-searching the prefix. The `t−τ`/`t−2τ` legs of one probe usually
/// land within a couple of pieces of the previous leg, so a short walk wins;
/// anything farther is handled in `O(log n)`.
const BACKWARD_STEPS: usize = 8;

/// Plain binary search for the partition point of a monotone predicate on
/// `[lo, hi)`, given that every index `< lo` satisfies it and every index
/// `≥ hi` does not.
fn partition(mut lo: usize, mut hi: usize, at_or_before: &impl Fn(usize) -> bool) -> usize {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if at_or_before(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Finds the partition point of the monotone predicate `at_or_before` over
/// `0..n`, resuming from `start` (a previous rank on the same array).
///
/// Returns the same value as `(0..n).partition_point(at_or_before)` for any
/// `start`; the hint only shortens the search. Cost is `O(1)` when the true
/// rank is within `BACKWARD_STEPS` (8) below or a few pieces above `start`,
/// and `O(log n)` otherwise.
pub fn rank_resume(n: usize, start: usize, at_or_before: impl Fn(usize) -> bool) -> usize {
    let mut lo = start.min(n);
    if lo > 0 && !at_or_before(lo - 1) {
        // The target rank is strictly below the hint: walk back a few
        // pieces (the common bounded-backward case for t−τ / t−2τ), then
        // binary search the remaining prefix.
        let mut hi = lo - 1; // invariant: !at_or_before(hi)
        for _ in 0..BACKWARD_STEPS {
            if hi == 0 {
                return 0;
            }
            if at_or_before(hi - 1) {
                return hi;
            }
            hi -= 1;
        }
        return partition(0, hi, &at_or_before);
    }
    // Everything below `lo` satisfies the predicate: gallop forward with a
    // doubling window, then binary search inside it.
    let mut width = 1usize;
    let mut hi = lo;
    loop {
        if hi >= n {
            hi = n;
            break;
        }
        if !at_or_before(hi) {
            break;
        }
        lo = hi + 1;
        hi = hi.saturating_add(width).min(n);
        width = width.saturating_mul(2);
    }
    partition(lo, hi, &at_or_before)
}

/// A stateful probe cursor over one summary, for monotone probe sequences
/// (bursty-time sweeps). Keeps one [`CumHint`] per Eq. 2 offset stream —
/// each stream is itself monotone when the probe instants are — so every
/// probe advances from the previous one instead of re-searching.
///
/// Results are bit-for-bit identical to calling
/// [`CurveSketch::estimate_burstiness`] at each instant; out-of-order
/// probes are still correct, just slower.
#[derive(Debug)]
pub struct CurveCursor<'a, S: CurveSketch + ?Sized> {
    sketch: &'a S,
    hints: [CumHint; 3],
}

impl<'a, S: CurveSketch + ?Sized> CurveCursor<'a, S> {
    /// Starts a cursor with no resume information.
    pub fn new(sketch: &'a S) -> Self {
        Self { sketch, hints: [CumHint::default(); 3] }
    }

    /// `[F̃(t), F̃(t−τ), F̃(t−2τ)]`, pre-epoch offsets reading 0, advancing
    /// the per-offset hints.
    pub fn probe3(&mut self, t: Timestamp, tau: BurstSpan) -> [f64; 3] {
        let f0 = self.sketch.estimate_cum_hinted(t, &mut self.hints[0]);
        let f1 = match t.checked_sub(tau.ticks()) {
            Some(earlier) => self.sketch.estimate_cum_hinted(earlier, &mut self.hints[1]),
            None => 0.0,
        };
        let f2 = match t.checked_sub(tau.ticks().saturating_mul(2)) {
            Some(earlier) => self.sketch.estimate_cum_hinted(earlier, &mut self.hints[2]),
            None => 0.0,
        };
        [f0, f1, f2]
    }

    /// Burstiness `b̃(t)` (Eq. 2) through the hinted probes.
    pub fn burstiness(&mut self, t: Timestamp, tau: BurstSpan) -> f64 {
        let [f0, f1, f2] = self.probe3(t, tau);
        f0 - 2.0 * f1 + f2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(keys: &[u64], t: u64) -> usize {
        keys.partition_point(|&k| k <= t)
    }

    #[test]
    fn rank_resume_matches_partition_point_from_any_hint() {
        let keys: Vec<u64> = (0..200).map(|i| i * 3).collect();
        for t in [0u64, 1, 2, 3, 299, 300, 301, 598, 599, 1000] {
            let want = reference(&keys, t);
            for start in [0usize, 1, 5, 50, 100, 150, 199, 200, 500] {
                let got = rank_resume(keys.len(), start, |i| keys[i] <= t);
                assert_eq!(got, want, "t={t} start={start}");
            }
        }
    }

    #[test]
    fn rank_resume_handles_empty_and_tiny_arrays() {
        assert_eq!(rank_resume(0, 0, |_| unreachable!()), 0);
        assert_eq!(rank_resume(0, 7, |_| unreachable!()), 0);
        let keys = [10u64];
        for start in 0..3 {
            assert_eq!(rank_resume(1, start, |i| keys[i] <= 5), 0);
            assert_eq!(rank_resume(1, start, |i| keys[i] <= 10), 1);
        }
    }
}
