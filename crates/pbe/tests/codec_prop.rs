//! Property tests for the persistence codec: any reachable sketch state
//! round-trips bit-exactly, and decoding random bytes never panics.

use bed_pbe::{CurveSketch, ExactCurve, Pbe1, Pbe1Config, Pbe2, Pbe2Config};
use bed_stream::{Codec, Timestamp};
use proptest::prelude::*;

fn arb_arrivals() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..3_000, 0..300).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

proptest! {
    /// PBE-1 round-trips from any reachable state (mid-buffer or finalized),
    /// and the decoded copy answers identically everywhere.
    #[test]
    fn pbe1_roundtrip(
        ts in arb_arrivals(),
        n_buf in 5usize..60,
        eta in 2usize..5,
        finalize in any::<bool>(),
    ) {
        prop_assume!(eta < n_buf);
        let mut p = Pbe1::new(Pbe1Config { n_buf, eta }).unwrap();
        for &t in &ts {
            p.update(Timestamp(t));
        }
        if finalize {
            p.finalize();
        }
        let bytes = p.to_bytes();
        let q = Pbe1::from_bytes(&bytes).unwrap();
        prop_assert_eq!(q.to_bytes(), bytes);
        for t in (0..3_200u64).step_by(57) {
            prop_assert_eq!(p.estimate_cum(Timestamp(t)), q.estimate_cum(Timestamp(t)));
        }
        prop_assert_eq!(p.arrivals(), q.arrivals());
    }

    /// PBE-2 round-trips including the open polygon and pending corner.
    #[test]
    fn pbe2_roundtrip(
        ts in arb_arrivals(),
        gamma in 1u32..20,
        finalize in any::<bool>(),
    ) {
        let mut p = Pbe2::new(Pbe2Config { gamma: gamma as f64, max_vertices: 32 }).unwrap();
        for &t in &ts {
            p.update(Timestamp(t));
        }
        if finalize {
            p.finalize();
        }
        let bytes = p.to_bytes();
        let q = Pbe2::from_bytes(&bytes).unwrap();
        prop_assert_eq!(q.to_bytes(), bytes);
        for t in (0..3_200u64).step_by(57) {
            prop_assert_eq!(p.estimate_cum(Timestamp(t)), q.estimate_cum(Timestamp(t)));
        }
        prop_assert_eq!(p.segments(), q.segments());
    }

    /// ExactCurve round-trips.
    #[test]
    fn exact_roundtrip(ts in arb_arrivals()) {
        let mut e = ExactCurve::new();
        for &t in &ts {
            e.update(Timestamp(t));
        }
        let q = ExactCurve::from_bytes(&e.to_bytes()).unwrap();
        prop_assert_eq!(e.curve(), q.curve());
    }

    /// Decoding arbitrary bytes returns Err or a valid value — never panics.
    #[test]
    fn decode_random_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = Pbe1::from_bytes(&bytes);
        let _ = Pbe2::from_bytes(&bytes);
        let _ = ExactCurve::from_bytes(&bytes);
    }

    /// Truncating a valid encoding anywhere is always an error.
    #[test]
    fn truncation_always_errors(ts in arb_arrivals(), cut_frac in 0.0f64..1.0) {
        prop_assume!(!ts.is_empty());
        let mut p = Pbe2::with_gamma(2.0).unwrap();
        for &t in &ts {
            p.update(Timestamp(t));
        }
        p.finalize();
        let bytes = p.to_bytes();
        let cut = ((bytes.len() as f64 * cut_frac) as usize).min(bytes.len() - 1);
        prop_assert!(Pbe2::from_bytes(&bytes[..cut]).is_err());
    }
}
