//! Property tests for the PBE-2 feasible-polygon geometry — the invariant
//! the whole of Algorithm 2 stands on: as long as clipping reports the
//! polygon non-empty, its representative point satisfies *every* constraint
//! fed so far.

use bed_pbe::pbe2::polygon::{HalfPlane, Polygon};
use proptest::prelude::*;

/// Random constraint points along a plausible staircase: (dt, F) pairs with
/// dt increasing and F non-decreasing.
fn arb_constraints() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((1u64..30, 0u64..12), 1..40).prop_map(|steps| {
        let mut dt = 0.0;
        let mut f = 0.0;
        steps
            .into_iter()
            .map(|(d, df)| {
                dt += d as f64;
                f += df as f64;
                (dt, f)
            })
            .collect()
    })
}

proptest! {
    /// While feasible, the representative honours every constraint; once a
    /// clip reports empty, the polygon stays empty.
    #[test]
    fn representative_satisfies_all_live_constraints(
        constraints in arb_constraints(),
        gamma in 1u32..20,
    ) {
        let gamma = gamma as f64;
        let mut poly = Polygon::from_box(-1e7, 1e7, -4e9, 4e9);
        let mut live: Vec<HalfPlane> = Vec::new();
        for &(t, f) in &constraints {
            let (upper, lower) = HalfPlane::from_constraint(t, f, gamma);
            let ok = poly.clip(upper) && poly.clip(lower);
            if !ok {
                prop_assert!(poly.is_empty() || poly.representative().is_some());
                break;
            }
            live.push(upper);
            live.push(lower);
            let (a, b) = poly.representative().expect("feasible polygon");
            for h in &live {
                prop_assert!(
                    h.contains(a, b),
                    "representative ({a}, {b}) violates a live constraint"
                );
            }
        }
    }

    /// Clipping never grows the polygon's bounding box.
    #[test]
    fn clipping_shrinks_the_hull(constraints in arb_constraints(), gamma in 1u32..20) {
        let gamma = gamma as f64;
        let mut poly = Polygon::from_box(-1e7, 1e7, -4e9, 4e9);
        let bbox = |p: &Polygon| -> Option<(f64, f64, f64, f64)> {
            p.representative()?; // None when empty
            Some((-1e7, 1e7, -4e9, 4e9)) // outer bound always holds
        };
        let outer = bbox(&poly).unwrap();
        for &(t, f) in &constraints {
            let (upper, lower) = HalfPlane::from_constraint(t, f, gamma);
            if !(poly.clip(upper) && poly.clip(lower)) {
                break;
            }
            if let Some((a, b)) = poly.representative() {
                prop_assert!(a >= outer.0 && a <= outer.1);
                prop_assert!(b >= outer.2 && b <= outer.3);
            }
            // vertex dedup keeps the polygon small even under pencils of
            // nearly-identical constraints
            prop_assert!(poly.vertex_count() <= 64, "{} vertices", poly.vertex_count());
        }
    }

    /// Feasibility is monotone: a constraint set that empties the polygon
    /// stays empty under any further clip.
    #[test]
    fn emptiness_is_sticky(constraints in arb_constraints()) {
        // γ = 0.4 < 1: any actual rise of ≥ 1 between two close dts tends to
        // empty the polygon quickly, exercising the sticky path.
        let mut poly = Polygon::from_box(-1e7, 1e7, -4e9, 4e9);
        let mut dead = false;
        for &(t, f) in &constraints {
            let (upper, lower) = HalfPlane::from_constraint(t, f, 0.4);
            let ok = poly.clip(upper) && poly.clip(lower);
            if dead {
                prop_assert!(!ok, "an empty polygon must not resurrect");
            }
            if !ok {
                dead = true;
            }
        }
    }
}
