//! Property-based tests for PBE-1 and PBE-2.

use bed_pbe::pbe1::dp;
use bed_pbe::{CurveSketch, Pbe1, Pbe1Config, Pbe2, Pbe2Config};
use bed_stream::curve::{CornerPoint, FrequencyCurve};
use bed_stream::{SingleEventStream, Timestamp};
use proptest::prelude::*;

/// Random strictly-increasing staircase corners.
fn arb_corners(max_n: usize) -> impl Strategy<Value = Vec<CornerPoint>> {
    prop::collection::vec((1u64..20, 1u64..10), 2..max_n).prop_map(|steps| {
        let mut t = 0u64;
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(steps.len());
        for (dt, dy) in steps {
            t += dt;
            cum += dy;
            out.push(CornerPoint { t: Timestamp(t), cum });
        }
        out
    })
}

/// Random sorted arrival timestamps (with duplicates).
fn arb_arrivals() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..2_000, 1..400).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

/// A *dense* stream: 1–4 arrivals at every tick of a short horizon. Every
/// tick is then a PBE-2 constraint instant, so Lemma 4's premise — the γ
/// bound at the instants the sketch saw — extends to all integer times.
fn arb_dense_counts() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..5, 20..120)
}

/// Exact burstiness `b(t) = F(t) − 2F(t−τ) + F(t−2τ)` (Eq. 2),
/// pre-epoch terms zero — mirroring `CurveSketch::estimate_burstiness`.
fn exact_burstiness(curve: &FrequencyCurve, t: u64, tau: u64) -> f64 {
    let f = |q: Option<u64>| q.map_or(0.0, |q| curve.value_at(Timestamp(q)) as f64);
    f(Some(t)) - 2.0 * f(t.checked_sub(tau)) + f(t.checked_sub(2 * tau))
}

/// Staircase induced by a subset of corner indices, evaluated at `t`.
fn subset_value(points: &[CornerPoint], chosen: &[usize], t: u64) -> u64 {
    let mut val = 0;
    for &i in chosen {
        if points[i].t.ticks() <= t {
            val = points[i].cum;
        } else {
            break;
        }
    }
    val
}

proptest! {
    /// The CHT kernel matches the naive O(η·n²) recurrence exactly.
    #[test]
    fn dp_cht_equals_naive(points in arb_corners(24), eta in 2usize..10) {
        let fast = dp::solve(&points, eta);
        let slow = dp::solve_naive(&points, eta);
        prop_assert_eq!(fast.cost, slow.cost);
        prop_assert_eq!(dp::selection_cost(&points, &fast.chosen), fast.cost);
        prop_assert_eq!(dp::selection_cost(&points, &slow.chosen), slow.cost);
    }

    /// The reported cost really is the area between the exact staircase and
    /// the staircase induced by the chosen subset.
    #[test]
    fn dp_cost_is_true_area(points in arb_corners(16), eta in 2usize..8) {
        let sol = dp::solve(&points, eta);
        let horizon = points.last().unwrap().t.ticks();
        let mut area = 0u64;
        for t in 0..=horizon {
            let exact = subset_value(&points, &(0..points.len()).collect::<Vec<_>>(), t);
            let approx = subset_value(&points, &sol.chosen, t);
            prop_assert!(approx <= exact, "overestimate at t={}", t);
            area += exact - approx;
        }
        prop_assert_eq!(area, sol.cost);
    }

    /// Optimality: no random alternative subset of the same size beats the DP.
    #[test]
    fn dp_beats_random_subsets(
        points in arb_corners(14),
        eta in 2usize..6,
        seed in 0u64..1000,
    ) {
        let sol = dp::solve(&points, eta);
        let n = points.len();
        if n > eta {
            // pseudo-random alternative subset containing both boundaries
            let mut alt: Vec<usize> = vec![0];
            let mut x = seed;
            while alt.len() < eta - 1 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let cand = 1 + (x >> 33) as usize % (n - 2).max(1);
                if !alt.contains(&cand) {
                    alt.push(cand);
                }
            }
            alt.push(n - 1);
            alt.sort_unstable();
            alt.dedup();
            if alt.len() == eta {
                prop_assert!(dp::selection_cost(&points, &alt) >= sol.cost);
            }
        }
    }

    /// Error-capped mode achieves the cap with the fewest points.
    #[test]
    fn dp_error_capped_is_minimal(points in arb_corners(14), cap in 0u64..200) {
        let sol = dp::solve_error_capped(&points, cap);
        prop_assert!(sol.cost <= cap || sol.chosen.len() == points.len());
        if sol.chosen.len() > 2 && sol.chosen.len() < points.len() {
            let fewer = dp::solve(&points, sol.chosen.len() - 1);
            prop_assert!(fewer.cost > cap, "a smaller η also met the cap");
        }
    }

    /// PBE-1 never overestimates and is monotone, at every tick, with any
    /// buffering configuration.
    #[test]
    fn pbe1_underestimates_everywhere(
        ts in arb_arrivals(),
        n_buf in 6usize..40,
        eta in 2usize..6,
    ) {
        prop_assume!(eta < n_buf);
        let exact = FrequencyCurve::from_stream(&SingleEventStream::from_sorted(
            ts.iter().map(|&t| Timestamp(t)).collect()).unwrap());
        let mut pbe = Pbe1::new(Pbe1Config { n_buf, eta }).unwrap();
        for &t in &ts {
            pbe.update(Timestamp(t));
        }
        pbe.finalize();
        let mut prev = 0.0;
        let horizon = ts.last().unwrap() + 10;
        let mut t = 0;
        while t <= horizon {
            let est = pbe.estimate_cum(Timestamp(t));
            prop_assert!(est <= exact.value_at(Timestamp(t)) as f64);
            prop_assert!(est >= prev);
            prev = est;
            t += 7;
        }
        // final count is exact (last corner always kept)
        prop_assert_eq!(pbe.estimate_cum(Timestamp(horizon)), exact.total() as f64);
    }

    /// Offline PBE-1's accumulated error equals the true L1 distance between
    /// exact and approximate curves.
    #[test]
    fn pbe1_offline_error_is_l1_distance(ts in arb_arrivals(), eta in 2usize..8) {
        let exact = FrequencyCurve::from_stream(&SingleEventStream::from_sorted(
            ts.iter().map(|&t| Timestamp(t)).collect()).unwrap());
        prop_assume!(exact.n_points() > eta);
        let pbe = Pbe1::offline(&exact, eta).unwrap();
        // Reconstruct the approximate staircase from segment starts.
        let approx = FrequencyCurve::from_corners(
            pbe.segment_starts()
                .iter()
                .map(|&t| CornerPoint { t, cum: pbe.estimate_cum(t) as u64 })
                .collect(),
        );
        let horizon = exact.last_timestamp().unwrap();
        prop_assert_eq!(exact.l1_distance(&approx, horizon), pbe.accumulated_area_error());
    }

    /// PBE-2 honours the γ bound at every doubled corner point and never
    /// overestimates there (Lemma 4's premise).
    #[test]
    fn pbe2_gamma_bound(ts in arb_arrivals(), gamma in 1u32..40) {
        let gamma = gamma as f64;
        let exact = FrequencyCurve::from_stream(&SingleEventStream::from_sorted(
            ts.iter().map(|&t| Timestamp(t)).collect()).unwrap());
        let mut pbe = Pbe2::new(Pbe2Config { gamma, max_vertices: 64 }).unwrap();
        for &t in &ts {
            pbe.update(Timestamp(t));
        }
        pbe.finalize();
        for p in exact.doubled_corners() {
            let est = pbe.estimate_cum(p.t);
            let truth = p.cum as f64;
            prop_assert!(est <= truth + 1e-6, "overestimate at {}: {} > {}", p.t, est, truth);
            prop_assert!(truth - est <= gamma + 1e-6, "γ violated at {}: {} vs {}", p.t, truth, est);
        }
    }

    /// Lemma 4 on dense streams: with an arrival at every tick, PBE-2's
    /// cumulative estimate obeys `F(t) − γ ≤ F̃(t) ≤ F(t)` at *every*
    /// integer time, and the burstiness estimate composed from it obeys
    /// `|b̃(t) − b(t)| ≤ 4γ` for every query span τ.
    #[test]
    fn pbe2_lemma4_bounds_on_dense_streams(
        counts in arb_dense_counts(),
        gamma in 1u32..20,
        tau in 1u64..40,
    ) {
        let gamma = gamma as f64;
        let ts: Vec<u64> = counts
            .iter()
            .enumerate()
            .flat_map(|(i, &c)| std::iter::repeat_n(i as u64, c as usize))
            .collect();
        let exact = FrequencyCurve::from_stream(&SingleEventStream::from_sorted(
            ts.iter().map(|&t| Timestamp(t)).collect()).unwrap());
        let mut pbe = Pbe2::new(Pbe2Config { gamma, max_vertices: 64 }).unwrap();
        for &t in &ts {
            pbe.update(Timestamp(t));
        }
        pbe.finalize();
        let tau_span = bed_stream::BurstSpan::new(tau).unwrap();
        let horizon = counts.len() as u64 - 1 + 2 * tau;
        for t in 0..=horizon {
            let truth = exact.value_at(Timestamp(t)) as f64;
            let est = pbe.estimate_cum(Timestamp(t));
            prop_assert!(est <= truth + 1e-6, "overestimate at t={}: {} > {}", t, est, truth);
            prop_assert!(truth - est <= gamma + 1e-6, "γ violated at t={}: F={} F̃={}", t, truth, est);
            let b_true = exact_burstiness(&exact, t, tau);
            let b_est = pbe.estimate_burstiness(Timestamp(t), tau_span);
            prop_assert!(
                (b_est - b_true).abs() <= 4.0 * gamma + 1e-6,
                "Lemma 4 burstiness bound violated at t={}: b={} b̃={} γ={}",
                t, b_true, b_est, gamma
            );
        }
    }

    /// Lemma 3 for PBE-1: with `Δ* = max_t (F(t) − F̃(t))` the maximum
    /// pointwise deviation, every burstiness estimate is within `4Δ*` of
    /// the truth — at every tick, for the sampled τ.
    #[test]
    fn pbe1_lemma3_burstiness_bound(
        ts in arb_arrivals(),
        n_buf in 6usize..40,
        eta in 2usize..6,
        tau in 1u64..60,
    ) {
        prop_assume!(eta < n_buf);
        let exact = FrequencyCurve::from_stream(&SingleEventStream::from_sorted(
            ts.iter().map(|&t| Timestamp(t)).collect()).unwrap());
        let mut pbe = Pbe1::new(Pbe1Config { n_buf, eta }).unwrap();
        for &t in &ts {
            pbe.update(Timestamp(t));
        }
        pbe.finalize();
        let horizon = ts.last().unwrap() + 2 * tau + 10;
        // Δ* — PBE-1 is one-sided, so the deviation is never negative.
        let mut delta_star = 0.0f64;
        for t in 0..=horizon {
            let d = exact.value_at(Timestamp(t)) as f64 - pbe.estimate_cum(Timestamp(t));
            prop_assert!(d >= -1e-9, "PBE-1 overestimated at t={}", t);
            delta_star = delta_star.max(d);
        }
        let tau_span = bed_stream::BurstSpan::new(tau).unwrap();
        for t in 0..=horizon {
            let b_true = exact_burstiness(&exact, t, tau);
            let b_est = pbe.estimate_burstiness(Timestamp(t), tau_span);
            prop_assert!(
                (b_est - b_true).abs() <= 4.0 * delta_star + 1e-6,
                "Lemma 3 violated at t={}: b={} b̃={} Δ*={}",
                t, b_true, b_est, delta_star
            );
        }
    }

    /// PBE-2 segments tile time in order: starts strictly increase and every
    /// segment's end is within its successor's start.
    #[test]
    fn pbe2_segments_are_ordered(ts in arb_arrivals(), gamma in 1u32..20) {
        let mut pbe = Pbe2::new(Pbe2Config { gamma: gamma as f64, max_vertices: 32 }).unwrap();
        for &t in &ts {
            pbe.update(Timestamp(t));
        }
        pbe.finalize();
        let segs = pbe.segments();
        for s in segs {
            prop_assert!(s.start <= s.end);
        }
        for w in segs.windows(2) {
            prop_assert!(w[0].end < w[1].start);
        }
        prop_assert!(!segs.is_empty());
    }

    /// bursty_time_ranges matches per-tick brute force for both sketch
    /// families (step and linear interpolation).
    #[test]
    fn range_query_matches_brute_force(
        ts in arb_arrivals(),
        tau in 1u64..40,
        theta in -10i32..30,
        gamma in 1u32..10,
    ) {
        use bed_pbe::bursty_time_ranges;
        let tau = bed_stream::BurstSpan::new(tau).unwrap();
        let theta = theta as f64;
        let horizon = Timestamp(ts.last().unwrap() + 100);

        let mut p1 = Pbe1::new(Pbe1Config { n_buf: 40, eta: 6 }).unwrap();
        let mut p2 = Pbe2::new(Pbe2Config { gamma: gamma as f64, max_vertices: 32 }).unwrap();
        for &t in &ts {
            p1.update(Timestamp(t));
            p2.update(Timestamp(t));
        }
        p1.finalize();
        p2.finalize();

        for (name, sketch) in [("pbe1", &p1 as &dyn CurveSketch), ("pbe2", &p2)] {
            let ranges = bursty_time_ranges(sketch, theta, tau, horizon);
            let mut inside = vec![false; horizon.ticks() as usize + 1];
            for r in &ranges {
                prop_assert!(r.start <= r.end);
                for t in r.start.ticks()..=r.end.ticks() {
                    inside[t as usize] = true;
                }
            }
            for w in ranges.windows(2) {
                prop_assert!(!w[0].adjacent_or_overlapping(&w[1]), "unmerged ranges");
            }
            // brute-force cross-check with a small tolerance belt around θ
            // for the linear case's float crossings
            for t in 0..=horizon.ticks() {
                let b = sketch.estimate_burstiness(Timestamp(t), tau);
                if b >= theta + 1e-6 {
                    prop_assert!(inside[t as usize], "{}: miss at t={} (b={})", name, t, b);
                }
                if b < theta - 1e-6 {
                    prop_assert!(!inside[t as usize], "{}: false hit at t={} (b={})", name, t, b);
                }
            }
        }
    }

    /// Both PBEs agree with the exact curve when given effectively unbounded
    /// budgets.
    #[test]
    fn generous_budgets_are_near_exact(ts in arb_arrivals()) {
        let exact = FrequencyCurve::from_stream(&SingleEventStream::from_sorted(
            ts.iter().map(|&t| Timestamp(t)).collect()).unwrap());
        let mut p1 = Pbe1::new(Pbe1Config { n_buf: 10_000, eta: 5_000 }).unwrap();
        let mut p2 = Pbe2::new(Pbe2Config { gamma: 1.0, max_vertices: 128 }).unwrap();
        for &t in &ts {
            p1.update(Timestamp(t));
            p2.update(Timestamp(t));
        }
        p1.finalize();
        p2.finalize();
        for c in exact.corners() {
            prop_assert_eq!(p1.estimate_cum(c.t), c.cum as f64);
            prop_assert!((p2.estimate_cum(c.t) - c.cum as f64).abs() <= 1.0 + 1e-6);
        }
    }
}
