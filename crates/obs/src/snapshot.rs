//! Immutable metric snapshots with deterministic text and JSON renderers.

use std::fmt::Write as _;

use crate::metrics::{HistogramSnapshot, LATENCY_BOUNDS_NS};

/// One captured metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// An immutable, name-sorted capture of a [`MetricsRegistry`] — the unit
/// that renderers, the CLI, and the bench report consume.
///
/// [`MetricsRegistry`]: crate::MetricsRegistry
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Builds a snapshot from `(name, value)` pairs; entries are sorted by
    /// name and later duplicates win (mirrors map semantics).
    pub fn from_entries(entries: impl IntoIterator<Item = (String, MetricValue)>) -> Self {
        let mut entries: Vec<(String, MetricValue)> = entries.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = later.1.clone();
                true
            } else {
                false
            }
        });
        Self { entries }
    }

    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metrics were captured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Looks up any metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter total by name (`None` if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge reading by name (`None` if absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram state by name (`None` if absent or not a histogram).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Returns a snapshot with every name prefixed by `prefix` (no separator
    /// is inserted; pass e.g. `"shard.3."`). Used for per-shard rollups.
    pub fn with_prefix(self, prefix: &str) -> Self {
        Self {
            entries: self.entries.into_iter().map(|(n, v)| (format!("{prefix}{n}"), v)).collect(),
        }
    }

    /// Merges `other` into `self` by name: counters and histogram buckets
    /// sum, gauges sum (structural gauges aggregate additively across
    /// shards), and names present on one side only pass through. Summing is
    /// the right default for the sharded rollup; keep distinct names for
    /// readings where a sum is meaningless.
    ///
    /// The same name carrying different metric types on the two sides is a
    /// bug in the producing registries and debug-asserts. In release builds
    /// the **last writer wins**: the value from `other` replaces the one in
    /// `self`, mirroring the duplicate-name rule of [`Self::from_entries`].
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut merged: Vec<(String, MetricValue)> = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < other.entries.len() {
            let take_left = match (self.entries.get(i), other.entries.get(j)) {
                (Some(a), Some(b)) => a.0 <= b.0,
                (Some(_), None) => true,
                _ => false,
            };
            if take_left {
                let (name, a) = &self.entries[i];
                if let Some((_, b)) = other.entries.get(j).filter(|(n, _)| n == name) {
                    merged.push((name.clone(), Self::merge_values(a, b)));
                    j += 1;
                } else {
                    merged.push((name.clone(), a.clone()));
                }
                i += 1;
            } else {
                merged.push(other.entries[j].clone());
                j += 1;
            }
        }
        MetricsSnapshot { entries: merged }
    }

    fn merge_values(a: &MetricValue, b: &MetricValue) -> MetricValue {
        match (a, b) {
            (MetricValue::Counter(x), MetricValue::Counter(y)) => MetricValue::Counter(x + y),
            (MetricValue::Gauge(x), MetricValue::Gauge(y)) => MetricValue::Gauge(x + y),
            (MetricValue::Histogram(x), MetricValue::Histogram(y)) => {
                MetricValue::Histogram(x.merge(y))
            }
            // Type clash across sides: a producer bug. Last writer wins
            // (the `other` side), consistent with `from_entries`.
            _ => {
                debug_assert!(
                    false,
                    "MetricsSnapshot::merge: metric type clash ({a:?} vs {b:?}); \
                     last writer wins"
                );
                b.clone()
            }
        }
    }

    /// Renders the snapshot as a deterministic JSON object keyed by metric
    /// name. Counters render as `{"type":"counter","value":N}`, gauges as
    /// `{"type":"gauge","value":X}` (non-finite readings render as `null`),
    /// histograms as `{"type":"histogram","count":N,"sum_ns":N,
    /// "buckets":[[bound_ns,count],...]}` with `null` as the overflow bound.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (idx, (name, value)) in self.entries.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", json_string(name));
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{{\"type\":\"counter\",\"value\":{v}}}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{}}}", json_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"histogram\",\"count\":{},\"sum_ns\":{},\"buckets\":[",
                        h.count, h.sum_ns
                    );
                    for (i, c) in h.buckets.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        match LATENCY_BOUNDS_NS.get(i) {
                            Some(bound) => {
                                let _ = write!(out, "[{bound},{c}]");
                            }
                            None => {
                                let _ = write!(out, "[null,{c}]");
                            }
                        }
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }

    /// Classifies every metric for rendering. This is the single iteration
    /// path shared by [`Self::to_text`] and [`Self::to_openmetrics`], so the
    /// two surfaces can never disagree about which metrics exist or how a
    /// dotted name maps onto an exposition family and label.
    pub fn render_entries(&self) -> Vec<RenderEntry<'_>> {
        self.entries.iter().map(|(name, value)| RenderEntry::classify(name, value)).collect()
    }

    /// Renders the snapshot as aligned human-readable text, one metric per
    /// line. Histograms summarise as count / mean / p50 / p99 bucket bounds.
    pub fn to_text(&self) -> String {
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for entry in self.render_entries() {
            let (name, value) = (entry.name, entry.value);
            let _ = write!(out, "{name:<width$}  ");
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{v}");
                }
                MetricValue::Histogram(h) => {
                    if h.count == 0 {
                        let _ = writeln!(out, "count=0");
                    } else {
                        let _ = writeln!(
                            out,
                            "count={} mean={}ns p50<={} p99<={}",
                            h.count,
                            h.mean_ns(),
                            fmt_bound(h.quantile_bound_ns(0.50)),
                            fmt_bound(h.quantile_bound_ns(0.99)),
                        );
                    }
                }
            }
        }
        out
    }

    /// Renders the snapshot in the OpenMetrics text exposition format
    /// (`application/openmetrics-text`), terminated by `# EOF`.
    ///
    /// Conventions:
    /// - every family is prefixed `bed_` and dots become underscores;
    /// - `shard.<n>.<rest>` collapses into one `bed_shard_<rest>` family
    ///   with a `shard="<n>"` label, `structure.<layer>.<rest>` into
    ///   `bed_structure_<rest>` with a `layer="..."` label;
    /// - counters gain the `_total` sample suffix, histograms render
    ///   cumulative `_bucket{le="..."}` series plus `_sum` / `_count`;
    /// - label values are escaped per the OpenMetrics ABNF (backslash,
    ///   quote, newline).
    pub fn to_openmetrics(&self) -> String {
        let mut entries = self.render_entries();
        // Group label-bearing series (shard.0.x, shard.1.x, ...) into one
        // family block; the tie-break keeps the original name order stable.
        entries.sort_by(|a, b| a.family.cmp(&b.family).then(a.name.cmp(b.name)));
        let mut out = String::new();
        let mut i = 0;
        while i < entries.len() {
            let family = entries[i].family.clone();
            let end = entries[i..]
                .iter()
                .position(|e| e.family != family)
                .map(|p| i + p)
                .unwrap_or(entries.len());
            let kind = match entries[i].value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {family} {}", escape_help(&entries[i].help));
            let _ = writeln!(out, "# TYPE {family} {kind}");
            for entry in &entries[i..end] {
                entry.write_openmetrics_samples(&mut out);
            }
            i = end;
        }
        out.push_str("# EOF\n");
        out
    }
}

/// One metric classified for rendering: the original dotted name plus its
/// OpenMetrics family name and extracted label. Produced by
/// [`MetricsSnapshot::render_entries`] — the iteration helper shared by the
/// text and OpenMetrics renderers.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderEntry<'a> {
    /// Original dotted metric name.
    pub name: &'a str,
    /// OpenMetrics family name (`bed_` prefix, sanitised, label stripped).
    pub family: String,
    /// Dotted name with any label segment replaced by `*` (used as HELP).
    pub help: String,
    /// Label extracted from the name, e.g. `("shard", "3")`.
    pub label: Option<(&'static str, String)>,
    /// The captured value.
    pub value: &'a MetricValue,
}

impl<'a> RenderEntry<'a> {
    fn classify(name: &'a str, value: &'a MetricValue) -> RenderEntry<'a> {
        let mut parts = name.splitn(3, '.');
        let (first, second, rest) = (parts.next(), parts.next(), parts.next());
        let (base, help, label) = match (first, second, rest) {
            (Some("shard"), Some(ix), Some(rest))
                if !ix.is_empty() && ix.bytes().all(|b| b.is_ascii_digit()) =>
            {
                (
                    format!("shard.{rest}"),
                    format!("shard.*.{rest}"),
                    Some(("shard", ix.to_string())),
                )
            }
            (Some("structure"), Some(layer), Some(rest)) => (
                format!("structure.{rest}"),
                format!("structure.*.{rest}"),
                Some(("layer", layer.to_string())),
            ),
            _ => (name.to_string(), name.to_string(), None),
        };
        RenderEntry { name, family: family_name(&base), help, label, value }
    }

    /// Renders this entry's label set, with `extra` (e.g. `le="250"`)
    /// appended. Empty string when there are no labels at all.
    fn label_set(&self, extra: Option<&str>) -> String {
        let mut inner = String::new();
        if let Some((key, value)) = &self.label {
            let _ = write!(inner, "{key}=\"{}\"", escape_label_value(value));
        }
        if let Some(extra) = extra {
            if !inner.is_empty() {
                inner.push(',');
            }
            inner.push_str(extra);
        }
        if inner.is_empty() {
            inner
        } else {
            format!("{{{inner}}}")
        }
    }

    fn write_openmetrics_samples(&self, out: &mut String) {
        let family = &self.family;
        match self.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{family}_total{} {v}", self.label_set(None));
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{family}{} {}", self.label_set(None), openmetrics_f64(*v));
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, c) in h.buckets.iter().enumerate() {
                    cumulative += c;
                    let le = match LATENCY_BOUNDS_NS.get(i) {
                        Some(bound) => format!("le=\"{bound}\""),
                        None => "le=\"+Inf\"".to_string(),
                    };
                    let _ =
                        write!(out, "{family}_bucket{} {cumulative}", self.label_set(Some(&le)));
                    // OpenMetrics exemplar: ` # {trace_id="..."} <value>`.
                    // Buckets without a traced observation render exactly as
                    // before, keeping pre-exemplar goldens byte-stable.
                    if let Some(&(id, ns)) = h.exemplars.get(i) {
                        if id != 0 {
                            let _ = write!(out, " # {{trace_id=\"{id:016x}\"}} {ns}");
                        }
                    }
                    out.push('\n');
                }
                let _ = writeln!(out, "{family}_sum{} {}", self.label_set(None), h.sum_ns);
                let _ = writeln!(out, "{family}_count{} {}", self.label_set(None), h.count);
            }
        }
    }
}

/// Maps a dotted base name onto a valid OpenMetrics family name:
/// `bed_` prefix, dots to underscores, anything outside `[a-zA-Z0-9_:]`
/// replaced by `_`.
fn family_name(base: &str) -> String {
    let mut out = String::with_capacity(base.len() + 4);
    out.push_str("bed_");
    for ch in base.chars() {
        match ch {
            '.' => out.push('_'),
            c if c.is_ascii_alphanumeric() || c == '_' || c == ':' => out.push(c),
            _ => out.push('_'),
        }
    }
    out
}

/// Escapes an OpenMetrics label value: backslash, double quote, newline.
fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes OpenMetrics HELP text: backslash and newline only.
fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` for OpenMetrics sample lines, which — unlike JSON —
/// spell non-finite readings as `NaN` / `+Inf` / `-Inf`.
fn openmetrics_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

fn fmt_bound(b: Option<u64>) -> String {
    match b {
        Some(u64::MAX) => ">1s".to_owned(),
        Some(ns) => format!("{ns}ns"),
        None => "-".to_owned(),
    }
}

/// Escapes `s` as a JSON string literal. Metric names are ASCII identifiers
/// in practice, but the escaper is complete for control chars and quotes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_json_string(&mut out, s);
    out
}

/// Appends `s` to `out` as a quoted, escaped JSON string literal. Shared
/// with the trace module's slow-query encoder.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` as a JSON value: shortest round-trip decimal for finite
/// readings, `null` for NaN/infinities (which JSON cannot represent).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{}` prints integral floats without a decimal point ("3"), which is
        // still a valid JSON number; keep it — brevity beats bikeshedding.
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn snap() -> MetricsSnapshot {
        let h = Histogram::new();
        h.record_ns(100);
        h.record_ns(5_000);
        MetricsSnapshot::from_entries([
            ("b.count".to_owned(), MetricValue::Counter(7)),
            ("a.gauge".to_owned(), MetricValue::Gauge(2.5)),
            ("c.lat".to_owned(), MetricValue::Histogram(h.snapshot())),
        ])
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let s = snap();
        let j = s.to_json();
        assert_eq!(j, s.to_json());
        let a = j.find("a.gauge").unwrap();
        let b = j.find("b.count").unwrap();
        let c = j.find("c.lat").unwrap();
        assert!(a < b && b < c);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"a.gauge\":{\"type\":\"gauge\",\"value\":2.5}"));
        assert!(j.contains("\"b.count\":{\"type\":\"counter\",\"value\":7}"));
        assert!(j.contains("\"count\":2,\"sum_ns\":5100"));
        assert!(j.contains("[null,0]"), "overflow bucket rendered as null bound");
    }

    #[test]
    fn text_render_mentions_every_metric() {
        let t = snap().to_text();
        assert!(t.contains("a.gauge"));
        assert!(t.contains("b.count"));
        assert!(t.contains("count=2 mean="));
    }

    #[test]
    fn lookup_helpers() {
        let s = snap();
        assert_eq!(s.counter("b.count"), Some(7));
        assert_eq!(s.gauge("a.gauge"), Some(2.5));
        assert_eq!(s.histogram("c.lat").unwrap().count, 2);
        assert_eq!(s.counter("a.gauge"), None, "type-checked lookup");
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn merge_sums_by_name_and_passes_singletons() {
        let a = MetricsSnapshot::from_entries([
            ("n".to_owned(), MetricValue::Counter(1)),
            ("g".to_owned(), MetricValue::Gauge(0.5)),
            ("only_a".to_owned(), MetricValue::Counter(9)),
        ]);
        let b = MetricsSnapshot::from_entries([
            ("n".to_owned(), MetricValue::Counter(2)),
            ("g".to_owned(), MetricValue::Gauge(1.0)),
            ("only_b".to_owned(), MetricValue::Gauge(4.0)),
        ]);
        let m = a.merge(&b);
        assert_eq!(m.counter("n"), Some(3));
        assert_eq!(m.gauge("g"), Some(1.5));
        assert_eq!(m.counter("only_a"), Some(9));
        assert_eq!(m.gauge("only_b"), Some(4.0));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn with_prefix_renames() {
        let s = MetricsSnapshot::from_entries([("x".to_owned(), MetricValue::Counter(1))])
            .with_prefix("shard.0.");
        assert_eq!(s.counter("shard.0.x"), Some(1));
        assert_eq!(s.counter("x"), None);
    }

    #[test]
    fn non_finite_gauge_renders_null() {
        let s = MetricsSnapshot::from_entries([("g".to_owned(), MetricValue::Gauge(f64::NAN))]);
        assert!(s.to_json().contains("\"value\":null"));
    }

    /// Pins the satellite contract: a type clash in `merge` debug-asserts.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "metric type clash")]
    fn merge_type_clash_debug_asserts() {
        let a = MetricsSnapshot::from_entries([("x".to_owned(), MetricValue::Counter(1))]);
        let b = MetricsSnapshot::from_entries([(
            "x".to_owned(),
            MetricValue::Histogram(Histogram::new().snapshot()),
        )]);
        let _ = a.merge(&b);
    }

    /// Pins the satellite contract: in release builds the clash resolves
    /// last-writer-wins — the value from `other` replaces `self`'s.
    #[cfg(not(debug_assertions))]
    #[test]
    fn merge_type_clash_last_writer_wins() {
        let a = MetricsSnapshot::from_entries([("x".to_owned(), MetricValue::Counter(1))]);
        let b = MetricsSnapshot::from_entries([("x".to_owned(), MetricValue::Gauge(7.0))]);
        let m = a.merge(&b);
        assert_eq!(m.len(), 1);
        assert_eq!(m.gauge("x"), Some(7.0));
        // And symmetric: merging the other way keeps the counter.
        assert_eq!(b.merge(&a).counter("x"), Some(1));
    }

    #[test]
    fn openmetrics_counter_and_framing() {
        let s =
            MetricsSnapshot::from_entries([("ingest.count".to_owned(), MetricValue::Counter(5))]);
        assert_eq!(
            s.to_openmetrics(),
            "# HELP bed_ingest_count ingest.count\n\
             # TYPE bed_ingest_count counter\n\
             bed_ingest_count_total 5\n\
             # EOF\n"
        );
    }

    #[test]
    fn openmetrics_groups_shard_series_under_one_family() {
        let s = MetricsSnapshot::from_entries([
            ("shard.0.arrivals".to_owned(), MetricValue::Gauge(10.0)),
            ("shard.1.arrivals".to_owned(), MetricValue::Gauge(20.0)),
            ("shard.count".to_owned(), MetricValue::Gauge(2.0)),
        ]);
        let om = s.to_openmetrics();
        assert_eq!(om.matches("# TYPE bed_shard_arrivals gauge").count(), 1);
        assert!(om.contains("bed_shard_arrivals{shard=\"0\"} 10\n"));
        assert!(om.contains("bed_shard_arrivals{shard=\"1\"} 20\n"));
        assert!(om.contains("# HELP bed_shard_arrivals shard.*.arrivals\n"));
        assert!(om.contains("bed_shard_count 2\n"), "non-numeric second segment is not a label");
        assert!(om.ends_with("# EOF\n"));
    }

    #[test]
    fn openmetrics_layer_label_and_escaping() {
        let s = MetricsSnapshot::from_entries([(
            "structure.we\"ird\\.bytes".to_owned(),
            MetricValue::Gauge(1.0),
        )]);
        let om = s.to_openmetrics();
        assert!(om.contains("bed_structure_bytes{layer=\"we\\\"ird\\\\\"} 1\n"));
    }

    #[test]
    fn openmetrics_histogram_buckets_are_cumulative() {
        let h = Histogram::new();
        h.record_ns(100); // first bucket (<=250)
        h.record_ns(5_000); // fourth bucket (<=16000)
        let s = MetricsSnapshot::from_entries([(
            "query.point.latency_ns".to_owned(),
            MetricValue::Histogram(h.snapshot()),
        )]);
        let om = s.to_openmetrics();
        assert!(om.contains("# TYPE bed_query_point_latency_ns histogram\n"));
        assert!(om.contains("bed_query_point_latency_ns_bucket{le=\"250\"} 1\n"));
        assert!(om.contains("bed_query_point_latency_ns_bucket{le=\"16000\"} 2\n"));
        assert!(om.contains("bed_query_point_latency_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(om.contains("bed_query_point_latency_ns_sum 5100\n"));
        assert!(om.contains("bed_query_point_latency_ns_count 2\n"));
    }

    #[test]
    fn openmetrics_exemplars_render_on_traced_buckets_only() {
        let h = Histogram::new();
        h.record_ns(100); // first bucket, untraced
        h.record_ns_exemplar(5_000, 0xabc); // fourth bucket, traced
        let s = MetricsSnapshot::from_entries([(
            "query.point.latency_ns".to_owned(),
            MetricValue::Histogram(h.snapshot()),
        )]);
        let om = s.to_openmetrics();
        // Untraced bucket renders exactly as before (no exemplar suffix).
        assert!(om.contains("bed_query_point_latency_ns_bucket{le=\"250\"} 1\n"));
        // Traced bucket carries the OpenMetrics exemplar suffix.
        assert!(om.contains(
            "bed_query_point_latency_ns_bucket{le=\"16000\"} 2 \
             # {trace_id=\"0000000000000abc\"} 5000\n"
        ));
        // Cumulative buckets after it do NOT inherit the exemplar.
        assert!(om.contains("bed_query_point_latency_ns_bucket{le=\"64000\"} 2\n"));
        assert!(om.ends_with("# EOF\n"));
    }

    #[test]
    fn openmetrics_non_finite_gauges() {
        let s = MetricsSnapshot::from_entries([
            ("a".to_owned(), MetricValue::Gauge(f64::NAN)),
            ("b".to_owned(), MetricValue::Gauge(f64::INFINITY)),
        ]);
        let om = s.to_openmetrics();
        assert!(om.contains("bed_a NaN\n"));
        assert!(om.contains("bed_b +Inf\n"));
    }

    #[test]
    fn render_entries_covers_every_metric_once() {
        let s = snap();
        let entries = s.render_entries();
        assert_eq!(entries.len(), s.len());
        let names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["a.gauge", "b.count", "c.lat"]);
    }

    #[test]
    fn duplicate_names_last_wins() {
        let s = MetricsSnapshot::from_entries([
            ("x".to_owned(), MetricValue::Counter(1)),
            ("x".to_owned(), MetricValue::Counter(2)),
        ]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.counter("x"), Some(2));
    }
}
