//! Immutable metric snapshots with deterministic text and JSON renderers.

use std::fmt::Write as _;

use crate::metrics::{HistogramSnapshot, LATENCY_BOUNDS_NS};

/// One captured metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// An immutable, name-sorted capture of a [`MetricsRegistry`] — the unit
/// that renderers, the CLI, and the bench report consume.
///
/// [`MetricsRegistry`]: crate::MetricsRegistry
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Builds a snapshot from `(name, value)` pairs; entries are sorted by
    /// name and later duplicates win (mirrors map semantics).
    pub fn from_entries(entries: impl IntoIterator<Item = (String, MetricValue)>) -> Self {
        let mut entries: Vec<(String, MetricValue)> = entries.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = later.1.clone();
                true
            } else {
                false
            }
        });
        Self { entries }
    }

    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metrics were captured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Looks up any metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter total by name (`None` if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge reading by name (`None` if absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram state by name (`None` if absent or not a histogram).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Returns a snapshot with every name prefixed by `prefix` (no separator
    /// is inserted; pass e.g. `"shard.3."`). Used for per-shard rollups.
    pub fn with_prefix(self, prefix: &str) -> Self {
        Self {
            entries: self.entries.into_iter().map(|(n, v)| (format!("{prefix}{n}"), v)).collect(),
        }
    }

    /// Merges `other` into `self` by name: counters and histogram buckets
    /// sum, gauges sum (structural gauges aggregate additively across
    /// shards), and names present on one side only pass through. Summing is
    /// the right default for the sharded rollup; keep distinct names for
    /// readings where a sum is meaningless.
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut merged: Vec<(String, MetricValue)> = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < other.entries.len() {
            let take_left = match (self.entries.get(i), other.entries.get(j)) {
                (Some(a), Some(b)) => a.0 <= b.0,
                (Some(_), None) => true,
                _ => false,
            };
            if take_left {
                let (name, a) = &self.entries[i];
                if let Some((_, b)) = other.entries.get(j).filter(|(n, _)| n == name) {
                    merged.push((name.clone(), Self::merge_values(a, b)));
                    j += 1;
                } else {
                    merged.push((name.clone(), a.clone()));
                }
                i += 1;
            } else {
                merged.push(other.entries[j].clone());
                j += 1;
            }
        }
        MetricsSnapshot { entries: merged }
    }

    fn merge_values(a: &MetricValue, b: &MetricValue) -> MetricValue {
        match (a, b) {
            (MetricValue::Counter(x), MetricValue::Counter(y)) => MetricValue::Counter(x + y),
            (MetricValue::Gauge(x), MetricValue::Gauge(y)) => MetricValue::Gauge(x + y),
            (MetricValue::Histogram(x), MetricValue::Histogram(y)) => {
                MetricValue::Histogram(x.merge(y))
            }
            // Type clash across sides: keep the left reading rather than
            // invent a unit; registries under our control never hit this.
            _ => a.clone(),
        }
    }

    /// Renders the snapshot as a deterministic JSON object keyed by metric
    /// name. Counters render as `{"type":"counter","value":N}`, gauges as
    /// `{"type":"gauge","value":X}` (non-finite readings render as `null`),
    /// histograms as `{"type":"histogram","count":N,"sum_ns":N,
    /// "buckets":[[bound_ns,count],...]}` with `null` as the overflow bound.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (idx, (name, value)) in self.entries.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", json_string(name));
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{{\"type\":\"counter\",\"value\":{v}}}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{}}}", json_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"histogram\",\"count\":{},\"sum_ns\":{},\"buckets\":[",
                        h.count, h.sum_ns
                    );
                    for (i, c) in h.buckets.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        match LATENCY_BOUNDS_NS.get(i) {
                            Some(bound) => {
                                let _ = write!(out, "[{bound},{c}]");
                            }
                            None => {
                                let _ = write!(out, "[null,{c}]");
                            }
                        }
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }

    /// Renders the snapshot as aligned human-readable text, one metric per
    /// line. Histograms summarise as count / mean / p50 / p99 bucket bounds.
    pub fn to_text(&self) -> String {
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in self.iter() {
            let _ = write!(out, "{name:<width$}  ");
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{v}");
                }
                MetricValue::Histogram(h) => {
                    if h.count == 0 {
                        let _ = writeln!(out, "count=0");
                    } else {
                        let _ = writeln!(
                            out,
                            "count={} mean={}ns p50<={} p99<={}",
                            h.count,
                            h.mean_ns(),
                            fmt_bound(h.quantile_bound_ns(0.50)),
                            fmt_bound(h.quantile_bound_ns(0.99)),
                        );
                    }
                }
            }
        }
        out
    }
}

fn fmt_bound(b: Option<u64>) -> String {
    match b {
        Some(u64::MAX) => ">1s".to_owned(),
        Some(ns) => format!("{ns}ns"),
        None => "-".to_owned(),
    }
}

/// Escapes `s` as a JSON string literal. Metric names are ASCII identifiers
/// in practice, but the escaper is complete for control chars and quotes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON value: shortest round-trip decimal for finite
/// readings, `null` for NaN/infinities (which JSON cannot represent).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{}` prints integral floats without a decimal point ("3"), which is
        // still a valid JSON number; keep it — brevity beats bikeshedding.
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn snap() -> MetricsSnapshot {
        let h = Histogram::new();
        h.record_ns(100);
        h.record_ns(5_000);
        MetricsSnapshot::from_entries([
            ("b.count".to_owned(), MetricValue::Counter(7)),
            ("a.gauge".to_owned(), MetricValue::Gauge(2.5)),
            ("c.lat".to_owned(), MetricValue::Histogram(h.snapshot())),
        ])
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let s = snap();
        let j = s.to_json();
        assert_eq!(j, s.to_json());
        let a = j.find("a.gauge").unwrap();
        let b = j.find("b.count").unwrap();
        let c = j.find("c.lat").unwrap();
        assert!(a < b && b < c);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"a.gauge\":{\"type\":\"gauge\",\"value\":2.5}"));
        assert!(j.contains("\"b.count\":{\"type\":\"counter\",\"value\":7}"));
        assert!(j.contains("\"count\":2,\"sum_ns\":5100"));
        assert!(j.contains("[null,0]"), "overflow bucket rendered as null bound");
    }

    #[test]
    fn text_render_mentions_every_metric() {
        let t = snap().to_text();
        assert!(t.contains("a.gauge"));
        assert!(t.contains("b.count"));
        assert!(t.contains("count=2 mean="));
    }

    #[test]
    fn lookup_helpers() {
        let s = snap();
        assert_eq!(s.counter("b.count"), Some(7));
        assert_eq!(s.gauge("a.gauge"), Some(2.5));
        assert_eq!(s.histogram("c.lat").unwrap().count, 2);
        assert_eq!(s.counter("a.gauge"), None, "type-checked lookup");
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn merge_sums_by_name_and_passes_singletons() {
        let a = MetricsSnapshot::from_entries([
            ("n".to_owned(), MetricValue::Counter(1)),
            ("g".to_owned(), MetricValue::Gauge(0.5)),
            ("only_a".to_owned(), MetricValue::Counter(9)),
        ]);
        let b = MetricsSnapshot::from_entries([
            ("n".to_owned(), MetricValue::Counter(2)),
            ("g".to_owned(), MetricValue::Gauge(1.0)),
            ("only_b".to_owned(), MetricValue::Gauge(4.0)),
        ]);
        let m = a.merge(&b);
        assert_eq!(m.counter("n"), Some(3));
        assert_eq!(m.gauge("g"), Some(1.5));
        assert_eq!(m.counter("only_a"), Some(9));
        assert_eq!(m.gauge("only_b"), Some(4.0));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn with_prefix_renames() {
        let s = MetricsSnapshot::from_entries([("x".to_owned(), MetricValue::Counter(1))])
            .with_prefix("shard.0.");
        assert_eq!(s.counter("shard.0.x"), Some(1));
        assert_eq!(s.counter("x"), None);
    }

    #[test]
    fn non_finite_gauge_renders_null() {
        let s = MetricsSnapshot::from_entries([("g".to_owned(), MetricValue::Gauge(f64::NAN))]);
        assert!(s.to_json().contains("\"value\":null"));
    }

    #[test]
    fn duplicate_names_last_wins() {
        let s = MetricsSnapshot::from_entries([
            ("x".to_owned(), MetricValue::Counter(1)),
            ("x".to_owned(), MetricValue::Counter(2)),
        ]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.counter("x"), Some(2));
    }
}
