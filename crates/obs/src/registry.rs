//! Named metric registry with registration-time-only locking.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{MetricValue, MetricsSnapshot};

/// A registered metric handle.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Monotone counter.
    Counter(Arc<Counter>),
    /// Last-write-wins gauge.
    Gauge(Arc<Gauge>),
    /// Fixed-bucket latency histogram.
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics.
///
/// The internal mutex guards only the name→handle map: callers register once,
/// keep the returned `Arc` handle, and update it lock-free thereafter. The
/// lock is re-taken at [`snapshot`](MetricsRegistry::snapshot) time, which is
/// a cold, read-only path.
///
/// `MetricsRegistry` is deliberately **not** `Clone`: sharing metric storage
/// between two detectors after a `.clone()` would double-count. Use
/// [`deep_clone`](MetricsRegistry::deep_clone) to copy current values into
/// independent storage.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, registering it at zero on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type — mixing
    /// types under one name is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}, wanted counter"),
        }
    }

    /// Returns the gauge named `name`, registering it at `0.0` on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map.entry(name.to_owned()).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}, wanted gauge"),
        }
    }

    /// Returns the histogram named `name`, registering it empty on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {other:?}, wanted histogram"),
        }
    }

    /// Captures an immutable, name-sorted snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot::from_entries(map.iter().map(|(name, metric)| {
            let value = match metric {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            };
            (name.clone(), value)
        }))
    }

    /// Copies every metric's *current value* into a fresh registry with
    /// independent storage. Handles held against `self` keep updating `self`
    /// only; callers must re-fetch handles from the clone.
    pub fn deep_clone(&self) -> MetricsRegistry {
        let map = self.inner.lock().expect("metrics registry poisoned");
        let copied: BTreeMap<String, Metric> = map
            .iter()
            .map(|(name, metric)| {
                let fresh = match metric {
                    Metric::Counter(c) => Metric::Counter(Arc::new(Counter::clone(c))),
                    Metric::Gauge(g) => Metric::Gauge(Arc::new(Gauge::clone(g))),
                    Metric::Histogram(h) => Metric::Histogram(Arc::new(Histogram::clone(h))),
                };
                (name.clone(), fresh)
            })
            .collect();
        MetricsRegistry { inner: Mutex::new(copied) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_storage() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = MetricsRegistry::new();
        r.counter("z.count").add(3);
        r.gauge("a.gauge").set(1.5);
        r.histogram("m.hist").record_ns(10);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.gauge", "m.hist", "z.count"]);
        assert_eq!(snap.counter("z.count"), Some(3));
        assert_eq!(snap.gauge("a.gauge"), Some(1.5));
        assert_eq!(snap.histogram("m.hist").map(|h| h.count), Some(1));
    }

    #[test]
    fn deep_clone_decouples_storage() {
        let r = MetricsRegistry::new();
        let c = r.counter("n");
        c.add(5);
        let r2 = r.deep_clone();
        c.inc();
        assert_eq!(r.snapshot().counter("n"), Some(6));
        assert_eq!(r2.snapshot().counter("n"), Some(5));
        r2.counter("n").add(10);
        assert_eq!(r2.snapshot().counter("n"), Some(15));
        assert_eq!(r.snapshot().counter("n"), Some(6));
    }

    #[test]
    fn threaded_updates_land() {
        let r = MetricsRegistry::new();
        let c = r.counter("hits");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
