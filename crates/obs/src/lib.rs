//! # bed-obs — observability primitives for the `bed` workspace
//!
//! A zero-dependency, std-only instrumentation layer: atomic [`Counter`]s,
//! [`Gauge`]s and fixed-bucket latency [`Histogram`]s collected in a
//! [`MetricsRegistry`] and exported as an immutable [`MetricsSnapshot`] with
//! deterministic text and JSON renderers.
//!
//! Design constraints (in priority order):
//!
//! 1. **Cheap enough to stay on by default.** Every hot-path operation is a
//!    single relaxed atomic RMW; the registry mutex is only taken at
//!    registration and snapshot time, never per event. Latency histograms are
//!    meant to be *sampled* by the caller (e.g. 1-in-64 ingests) so that
//!    `Instant::now()` never dominates a sketch update.
//! 2. **No dependencies.** The container builds offline; everything here is
//!    `std` only, including the hand-rolled JSON renderer.
//! 3. **Deterministic output.** Snapshots are sorted by metric name and the
//!    JSON renderer is byte-stable for identical values, so golden tests can
//!    pin the schema.
//!
//! ```
//! use bed_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let ingests = registry.counter("ingest.count");
//! let latency = registry.histogram("ingest.latency_ns");
//!
//! ingests.inc();
//! latency.record_ns(1_200);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("ingest.count"), Some(1));
//! assert!(snap.to_json().contains("\"ingest.count\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Since v2 the crate also carries a std-only structured tracing layer:
//! sampled root spans with [`TraceId`]s, per-stage child spans, a lock-free
//! bounded [`TraceBuffer`] ring, a [`TraceEvent`] JSON-lines encoder, and a
//! bounded slow-query log on the [`Tracer`]. The untraced path is a single
//! relaxed atomic load and allocates nothing.
//!
//! v3 closes the loop end to end: caller-supplied trace ids propagate into
//! recorded spans ([`Tracer::start_sampled_with`]), ring contents assemble
//! into nested JSON trees ([`assemble_trace_tree`]), latency histograms
//! carry OpenMetrics exemplars pointing at recent traces
//! ([`Histogram::record_ns_exemplar`]), and a continuous [`Profiler`]
//! attributes wall-clock time to pipeline stages from metric deltas,
//! dumpable as flamegraph folded stacks.

mod metrics;
mod profile;
mod registry;
mod snapshot;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, LATENCY_BOUNDS_NS};
pub use profile::{default_stage_specs, Profiler, StageSpec};
pub use registry::{Metric, MetricsRegistry};
pub use snapshot::{MetricValue, MetricsSnapshot, RenderEntry};
pub use trace::{
    assemble_trace_tree, ActiveTrace, SlowQuery, SpanName, TraceBuffer, TraceEvent, TraceId,
    Tracer, TracerConfig, MAX_CHILDREN,
};
