//! Continuous self-profiler: wall-clock attribution from metric deltas.
//!
//! Instead of a signal-based stack sampler (useless for attributing time
//! inside a lock-free sketch kernel, and unsafe to hand-roll without
//! dependencies), the profiler rides the instrumentation that already
//! exists: every stage of the system owns a cumulative latency histogram
//! whose `sum_ns` is exactly "wall-clock nanoseconds spent in this stage".
//! A sampling thread calls [`Profiler::sample`] periodically with a merged
//! [`MetricsSnapshot`]; the profiler diffs each stage's cumulative
//! `sum_ns` against the previous tick, accumulates the delta into a
//! per-stage busy counter, and records it into a per-stage tick histogram.
//!
//! Outputs:
//! - [`Profiler::metrics_snapshot`] exports `profile.<stage>.busy_ns`
//!   counters and `profile.<stage>.tick_ns` histograms for `/metrics`;
//! - [`Profiler::to_folded`] renders folded-stack lines
//!   (`bed;<stage> <busy_ns>`) directly consumable by flamegraph tooling.
//!
//! Sampled source histograms (e.g. 1-in-64 ingest timing) carry a `scale`
//! multiplier so the attributed time estimates the true total.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use crate::metrics::Histogram;
use crate::snapshot::{MetricValue, MetricsSnapshot};

/// One profiled stage: where its cumulative time lives and how to label it.
#[derive(Debug, Clone, Copy)]
pub struct StageSpec {
    /// Stage label used in metric names and folded-stack lines.
    pub label: &'static str,
    /// Dotted histogram name to read `sum_ns` from. Matches the exact
    /// name and any `<prefix>.`-qualified variant (e.g. `shard.3.` fan-in),
    /// summing across matches.
    pub metric: &'static str,
    /// Multiplier applied to deltas; >1 when the source histogram samples
    /// (e.g. 64 for a 1-in-64 timed ingest path).
    pub scale: u64,
}

/// The default stage table covering every timed subsystem of the detector
/// serving stack: ingest, WAL fsync, tiered-cell compaction, epoch
/// publish, the five query kinds, and pipeline flushes.
pub fn default_stage_specs() -> Vec<StageSpec> {
    vec![
        // bed-core times 1-in-64 ingests (INGEST_SAMPLE_EVERY).
        StageSpec { label: "ingest", metric: "ingest.latency_ns", scale: 64 },
        StageSpec { label: "wal_fsync", metric: "wal.sync.latency_ns", scale: 1 },
        StageSpec { label: "compaction", metric: "retention.compact.latency_ns", scale: 1 },
        StageSpec { label: "epoch_publish", metric: "epoch.publish.latency_ns", scale: 1 },
        StageSpec { label: "query_point", metric: "query.point.latency_ns", scale: 1 },
        StageSpec {
            label: "query_bursty_times",
            metric: "query.bursty_times.latency_ns",
            scale: 1,
        },
        StageSpec {
            label: "query_bursty_events",
            metric: "query.bursty_events.latency_ns",
            scale: 1,
        },
        StageSpec { label: "query_series", metric: "query.series.latency_ns", scale: 1 },
        StageSpec { label: "query_top_k", metric: "query.top_k.latency_ns", scale: 1 },
        StageSpec { label: "pipeline_flush", metric: "pipeline.flush.latency_ns", scale: 1 },
    ]
}

/// Continuous self-profiler. Thread-safe: one sampler thread calls
/// [`Profiler::sample`], any number of readers render metrics or folded
/// stacks concurrently.
#[derive(Debug)]
pub struct Profiler {
    specs: Vec<StageSpec>,
    ticks: AtomicU64,
    busy_ns: Vec<AtomicU64>,
    tick_hist: Vec<Histogram>,
    // Last observed cumulative (already scaled) sum per stage. Mutex, not
    // atomics: only the sampler thread writes, and sampling is cold.
    last: Mutex<Vec<u64>>,
}

impl Profiler {
    /// Builds a profiler over `specs`.
    pub fn new(specs: Vec<StageSpec>) -> Profiler {
        let n = specs.len();
        Profiler {
            specs,
            ticks: AtomicU64::new(0),
            busy_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
            tick_hist: (0..n).map(|_| Histogram::new()).collect(),
            last: Mutex::new(vec![0; n]),
        }
    }

    /// A profiler over [`default_stage_specs`].
    pub fn with_default_stages() -> Profiler {
        Profiler::new(default_stage_specs())
    }

    /// Number of completed sampling ticks.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Relaxed)
    }

    fn cumulative_ns(&self, snap: &MetricsSnapshot, spec: &StageSpec) -> u64 {
        let mut total = 0u64;
        for entry in snap.render_entries() {
            let matches = entry.name == spec.metric
                || (entry.name.len() > spec.metric.len()
                    && entry.name.ends_with(spec.metric)
                    && entry.name.as_bytes()[entry.name.len() - spec.metric.len() - 1] == b'.');
            if !matches {
                continue;
            }
            if let MetricValue::Histogram(h) = entry.value {
                total = total.saturating_add(h.sum_ns.saturating_mul(spec.scale));
            }
        }
        total
    }

    /// One sampling tick: diffs every stage's cumulative time in `snap`
    /// against the previous tick and attributes the delta. Counters only
    /// move forward — a stage that restarted (cumulative went backwards)
    /// contributes zero for that tick rather than wrapping.
    pub fn sample(&self, snap: &MetricsSnapshot) {
        let mut last = match self.last.lock() {
            Ok(g) => g,
            Err(_) => return,
        };
        for (i, spec) in self.specs.iter().enumerate() {
            let now = self.cumulative_ns(snap, spec);
            let delta = now.saturating_sub(last[i]);
            last[i] = now;
            if delta > 0 {
                self.busy_ns[i].fetch_add(delta, Relaxed);
                self.tick_hist[i].record_ns(delta);
            }
        }
        self.ticks.fetch_add(1, Relaxed);
    }

    /// Profiler state as a snapshot mergeable into `/metrics`:
    /// `profile.ticks`, per-stage `profile.<label>.busy_ns` counters, and
    /// per-stage `profile.<label>.tick_ns` delta histograms.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<(String, MetricValue)> =
            vec![("profile.ticks".to_string(), MetricValue::Counter(self.ticks()))];
        for (i, spec) in self.specs.iter().enumerate() {
            entries.push((
                format!("profile.{}.busy_ns", spec.label),
                MetricValue::Counter(self.busy_ns[i].load(Relaxed)),
            ));
            entries.push((
                format!("profile.{}.tick_ns", spec.label),
                MetricValue::Histogram(self.tick_hist[i].snapshot()),
            ));
        }
        MetricsSnapshot::from_entries(entries)
    }

    /// Renders cumulative attribution as folded-stack lines
    /// (`bed;<stage> <busy_ns>`), one per stage in spec order, suitable
    /// for `flamegraph.pl` / `inferno-flamegraph`. Stages with no
    /// attributed time are included with weight 0 so the stage set is
    /// stable across dumps.
    pub fn to_folded(&self) -> String {
        let mut out = String::with_capacity(self.specs.len() * 32);
        for (i, spec) in self.specs.iter().enumerate() {
            out.push_str("bed;");
            out.push_str(spec.label);
            out.push(' ');
            out.push_str(&self.busy_ns[i].load(Relaxed).to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(entries: Vec<(String, MetricValue)>) -> MetricsSnapshot {
        MetricsSnapshot::from_entries(entries)
    }

    fn hist_with_sum(sum_ns: u64) -> MetricValue {
        let h = Histogram::new();
        h.record_ns(sum_ns);
        MetricValue::Histogram(h.snapshot())
    }

    #[test]
    fn deltas_accumulate_across_ticks() {
        let p =
            Profiler::new(vec![StageSpec { label: "stage_a", metric: "a.latency_ns", scale: 1 }]);
        p.sample(&snap(vec![("a.latency_ns".to_string(), hist_with_sum(100))]));
        p.sample(&snap(vec![("a.latency_ns".to_string(), hist_with_sum(250))]));
        assert_eq!(p.ticks(), 2);
        let m = p.metrics_snapshot();
        assert_eq!(m.counter("profile.stage_a.busy_ns"), Some(250));
        let h = m.histogram("profile.stage_a.tick_ns").unwrap();
        assert_eq!(h.count, 2, "each tick with progress records one delta");
        assert_eq!(h.sum_ns, 250);
        assert_eq!(p.to_folded(), "bed;stage_a 250\n");
    }

    #[test]
    fn scale_and_prefix_matching() {
        let p = Profiler::new(vec![StageSpec {
            label: "ingest",
            metric: "ingest.latency_ns",
            scale: 64,
        }]);
        // Exact and shard-prefixed entries both count; a same-suffix
        // different metric ("reingest...") must not.
        p.sample(&snap(vec![
            ("ingest.latency_ns".to_string(), hist_with_sum(10)),
            ("shard.3.ingest.latency_ns".to_string(), hist_with_sum(5)),
            ("reingest.latency_ns".to_string(), hist_with_sum(1_000)),
        ]));
        assert_eq!(p.metrics_snapshot().counter("profile.ingest.busy_ns"), Some((10 + 5) * 64));
    }

    #[test]
    fn missing_or_backwards_sources_attribute_zero() {
        let p = Profiler::new(vec![StageSpec {
            label: "wal_fsync",
            metric: "wal.sync.latency_ns",
            scale: 1,
        }]);
        p.sample(&snap(vec![])); // source absent entirely
        p.sample(&snap(vec![("wal.sync.latency_ns".to_string(), hist_with_sum(500))]));
        p.sample(&snap(vec![("wal.sync.latency_ns".to_string(), hist_with_sum(100))])); // restart
        let m = p.metrics_snapshot();
        assert_eq!(m.counter("profile.wal_fsync.busy_ns"), Some(500));
        assert_eq!(m.counter("profile.ticks"), Some(3));
    }

    #[test]
    fn default_stage_table_renders_stable_folded_lines() {
        let p = Profiler::with_default_stages();
        let folded = p.to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), default_stage_specs().len());
        assert!(lines.iter().all(|l| l.starts_with("bed;")));
        assert!(folded.contains("bed;ingest 0\n"));
        assert!(folded.contains("bed;compaction 0\n"));
        // Every line is `<stack> <weight>`: exactly one space separator.
        for line in lines {
            let (stack, weight) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            weight.parse::<u64>().unwrap();
        }
    }
}
