//! Atomic metric primitives: counters, gauges, and latency histograms.
//!
//! All types are internally synchronised with relaxed atomics: they are safe
//! to share across threads behind an `Arc`, and no operation takes a lock.
//! Relaxed ordering is sufficient because metrics are monotone accumulators —
//! readers only need *eventually consistent* totals, never cross-metric
//! ordering guarantees.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// A monotonically increasing `u64` counter.
///
/// `Clone` copies the *current value* into an independent counter — cloning a
/// detector must not leave the two halves sharing metric storage.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Increments by one and returns the *previous* value (used for cheap
    /// 1-in-N sampling decisions on hot paths).
    #[inline]
    pub fn inc_fetch(&self) -> u64 {
        self.0.fetch_add(1, Relaxed)
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }

    /// Overwrites the value (used to seed counters from persisted state,
    /// e.g. `ingest.count` from a decoded sketch's arrival total).
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Self(AtomicU64::new(self.get()))
    }
}

/// A last-write-wins `f64` gauge (stored as IEEE-754 bits in an `AtomicU64`).
///
/// Gauges carry *structural* readings — segment counts, cell occupancy,
/// bytes — refreshed at snapshot time rather than maintained incrementally.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at `0.0`.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Overwrites the reading.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Relaxed);
    }

    /// Current reading.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Relaxed))
    }
}

impl Clone for Gauge {
    fn clone(&self) -> Self {
        let g = Self::new();
        g.set(self.get());
        g
    }
}

/// Exponential latency bucket upper bounds, in nanoseconds.
///
/// Roughly ×4 spacing from 250 ns to 1 s; a final implicit overflow bucket
/// catches anything slower. Thirteen buckets keep a histogram at ~15 words —
/// small enough to hold one per query kind per detector.
pub const LATENCY_BOUNDS_NS: [u64; 12] = [
    250,
    1_000,
    4_000,
    16_000,
    64_000,
    250_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    250_000_000,
    1_000_000_000,
];

/// A fixed-bucket latency histogram over [`LATENCY_BOUNDS_NS`].
///
/// Bucket `i` counts observations `<= LATENCY_BOUNDS_NS[i]` (first matching
/// bound, Prometheus-style cumulative rendering is left to consumers); the
/// final bucket counts overflows. `record_ns` is two relaxed adds plus a
/// 12-element scan — callers that can't afford `Instant::now()` per event
/// should sample (see `bed-core`, which times 1-in-64 ingests).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BOUNDS_NS.len() + 1],
    count: AtomicU64,
    sum_ns: AtomicU64,
    // Per-bucket exemplar: the trace id (0 = none) and observed value of
    // the most recent traced observation landing in that bucket.
    // Last-writer-wins relaxed stores; a torn (id, value) pair across two
    // traced requests is acceptable for a diagnostic pointer.
    exemplar_ids: [AtomicU64; LATENCY_BOUNDS_NS.len() + 1],
    exemplar_ns: [AtomicU64; LATENCY_BOUNDS_NS.len() + 1],
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            exemplar_ids: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplar_ns: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    fn bucket_index(ns: u64) -> usize {
        LATENCY_BOUNDS_NS.iter().position(|&b| ns <= b).unwrap_or(LATENCY_BOUNDS_NS.len())
    }

    /// Records one observation of `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let idx = Self::bucket_index(ns);
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum_ns.fetch_add(ns, Relaxed);
    }

    /// Records one observation and, when `trace_id` is nonzero, pins it as
    /// the bucket's exemplar so the OpenMetrics renderer can point the
    /// bucket at an inspectable trace. A zero id is exactly `record_ns`.
    #[inline]
    pub fn record_ns_exemplar(&self, ns: u64, trace_id: u64) {
        let idx = Self::bucket_index(ns);
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum_ns.fetch_add(ns, Relaxed);
        if trace_id != 0 {
            self.exemplar_ns[idx].store(ns, Relaxed);
            self.exemplar_ids[idx].store(trace_id, Relaxed);
        }
    }

    /// Records a [`Duration`] observation (saturating at `u64::MAX` ns).
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of recorded nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Relaxed)
    }

    /// Immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count: self.count(),
            sum_ns: self.sum_ns(),
            exemplars: self
                .exemplar_ids
                .iter()
                .zip(self.exemplar_ns.iter())
                .map(|(id, ns)| (id.load(Relaxed), ns.load(Relaxed)))
                .collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        let snap = self.snapshot();
        let h = Self::new();
        for (dst, src) in h.buckets.iter().zip(snap.buckets.iter()) {
            dst.store(*src, Relaxed);
        }
        h.count.store(snap.count, Relaxed);
        h.sum_ns.store(snap.sum_ns, Relaxed);
        for (i, &(id, ns)) in snap.exemplars.iter().enumerate() {
            h.exemplar_ids[i].store(id, Relaxed);
            h.exemplar_ns[i].store(ns, Relaxed);
        }
        h
    }
}

/// Immutable histogram state: per-bucket counts over [`LATENCY_BOUNDS_NS`]
/// (plus one overflow bucket), total count, and total nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; `buckets[i]` pairs with
    /// `LATENCY_BOUNDS_NS[i]`, the last entry is the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Total observed nanoseconds.
    pub sum_ns: u64,
    /// Per-bucket `(trace_id, observed_ns)` exemplar, aligned with
    /// `buckets`; a zero trace id means the bucket has no exemplar.
    pub exemplars: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation in nanoseconds (`0` when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`q` in `[0, 1]`), or `None` when empty. The overflow bucket reports
    /// `u64::MAX`. This is a bucket-resolution estimate, not an exact rank.
    pub fn quantile_bound_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(LATENCY_BOUNDS_NS.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }

    /// Element-wise sum with `other`. Both sides always share the static
    /// bound layout, so merging is a plain vector add.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        debug_assert_eq!(self.buckets.len(), other.buckets.len());
        // Exemplars are diagnostic pointers, not accumulators: keep ours
        // when present, otherwise adopt the other side's.
        let exemplars = if self.exemplars.len() == other.exemplars.len() {
            self.exemplars
                .iter()
                .zip(other.exemplars.iter())
                .map(|(&a, &b)| if a.0 != 0 { a } else { b })
                .collect()
        } else {
            self.exemplars.clone()
        };
        HistogramSnapshot {
            buckets: self.buckets.iter().zip(other.buckets.iter()).map(|(a, b)| a + b).collect(),
            count: self.count + other.count,
            sum_ns: self.sum_ns + other.sum_ns,
            exemplars,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.inc_fetch(), 10);
        let d = c.clone();
        c.inc();
        assert_eq!(d.get(), 11, "clone is an independent value copy");
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn gauge_stores_f64() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(3.25);
        assert_eq!(g.get(), 3.25);
        g.set(-1.5);
        assert_eq!(g.clone().get(), -1.5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile_bound_ns(0.5), None);
        h.record_ns(100); // bucket 0 (<=250)
        h.record_ns(250); // bucket 0 (inclusive)
        h.record_ns(251); // bucket 1
        h.record_ns(2_000_000_000); // overflow
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_ns, 100 + 250 + 251 + 2_000_000_000);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(*s.buckets.last().unwrap(), 1);
        assert_eq!(s.quantile_bound_ns(0.5), Some(250));
        assert_eq!(s.quantile_bound_ns(1.0), Some(u64::MAX));
        assert_eq!(s.mean_ns(), (100 + 250 + 251 + 2_000_000_000u64) / 4);
    }

    #[test]
    fn histogram_merge_sums() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_ns(10);
        b.record_ns(10);
        b.record_ns(5_000);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.buckets[0], 2);
        assert_eq!(m.buckets[3], 1, "5000ns lands in the <=16000ns bucket");
    }

    #[test]
    fn quantile_bound_edge_cases() {
        // Empty histogram: every quantile is undefined.
        let empty = Histogram::new().snapshot();
        assert_eq!(empty.quantile_bound_ns(0.0), None);
        assert_eq!(empty.quantile_bound_ns(0.5), None);
        assert_eq!(empty.quantile_bound_ns(1.0), None);

        // Single observation in a single bucket: every quantile — including
        // the q=0.0 "minimum" (rank clamps to 1) — reports that bucket.
        let h = Histogram::new();
        h.record_ns(500); // bucket 1 (<=1000)
        let s = h.snapshot();
        assert_eq!(s.quantile_bound_ns(0.0), Some(1_000));
        assert_eq!(s.quantile_bound_ns(0.5), Some(1_000));
        assert_eq!(s.quantile_bound_ns(1.0), Some(1_000));

        // Out-of-range q clamps rather than panicking or escaping the data.
        assert_eq!(s.quantile_bound_ns(-3.0), Some(1_000));
        assert_eq!(s.quantile_bound_ns(42.0), Some(1_000));

        // q=0.0 vs q=1.0 with occupancy at both ends of the bound table.
        let h = Histogram::new();
        h.record_ns(1); // bucket 0
        h.record_ns(2_000_000_000); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.quantile_bound_ns(0.0), Some(250));
        assert_eq!(s.quantile_bound_ns(0.5), Some(250));
        assert_eq!(s.quantile_bound_ns(1.0), Some(u64::MAX));
    }

    #[test]
    fn histogram_merge_with_disjoint_bucket_occupancy() {
        let a = Histogram::new();
        a.record_ns(100); // bucket 0 only
        a.record_ns(200); // bucket 0 only
        let b = Histogram::new();
        b.record_ns(100_000); // bucket 5 (<=250_000) only
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum_ns, 100 + 200 + 100_000);
        assert_eq!(m.buckets[0], 2, "left-side occupancy preserved");
        assert_eq!(m.buckets[5], 1, "right-side occupancy preserved");
        assert_eq!(m.buckets.iter().sum::<u64>(), 3, "no counts invented elsewhere");
        // Quantiles over the merged histogram see both sides.
        assert_eq!(m.quantile_bound_ns(0.5), Some(250));
        assert_eq!(m.quantile_bound_ns(1.0), Some(250_000));
    }

    #[test]
    fn observe_duration() {
        let h = Histogram::new();
        h.observe(Duration::from_micros(2));
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum_ns(), 2_000);
    }

    #[test]
    fn exemplars_pin_last_traced_observation_per_bucket() {
        let h = Histogram::new();
        h.record_ns_exemplar(100, 0); // untraced: no exemplar
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert!(s.exemplars.iter().all(|&(id, _)| id == 0));

        h.record_ns_exemplar(200, 0xabc); // bucket 0
        h.record_ns_exemplar(150, 0xdef); // bucket 0, overwrites
        h.record_ns_exemplar(5_000, 0x123); // bucket 3
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 3);
        assert_eq!(s.exemplars[0], (0xdef, 150));
        assert_eq!(s.exemplars[3], (0x123, 5_000));
        assert_eq!(s.exemplars[1], (0, 0));
        // Plain record_ns leaves exemplars untouched.
        h.record_ns(170);
        assert_eq!(h.snapshot().exemplars[0], (0xdef, 150));
    }

    #[test]
    fn merge_prefers_left_exemplar_then_right() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_ns_exemplar(100, 0xaaa); // bucket 0
        b.record_ns_exemplar(120, 0xbbb); // bucket 0
        b.record_ns_exemplar(5_000, 0xccc); // bucket 3
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.exemplars[0], (0xaaa, 100), "left side wins when both present");
        assert_eq!(m.exemplars[3], (0xccc, 5_000), "right side fills gaps");
        // Clone carries exemplars along.
        assert_eq!(a.clone().snapshot().exemplars[0], (0xaaa, 100));
    }
}
