//! Structured tracing: spans with monotonic timing, a lock-free bounded
//! ring buffer, a JSON-lines event encoder, and a bounded slow-query log.
//!
//! The design is allocation-free on both the untraced path (one relaxed
//! atomic read) and the traced hot path (span names come from a closed
//! static table, child spans live in a fixed inline array, and ring slots
//! are preallocated `AtomicU64` words). Strings are only materialised when
//! a root span crosses the slow-query threshold — a cold path by
//! definition — or when a caller explicitly renders events to JSON.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::snapshot::MetricsSnapshot;
use crate::MetricValue;

/// Closed table of span names. Keeping names as indices into a static
/// table means the ring buffer never stores or clones strings.
static SPAN_NAMES: [&str; 15] = [
    "query.point",
    "query.bursty_times",
    "query.bursty_events",
    "query.series",
    "query.top_k",
    "stage.cell_probe",
    "stage.median_combine",
    "stage.hierarchy_prune",
    "shard.fan_out",
    "pipeline.flush",
    "wal.append",
    "checkpoint.save",
    "checkpoint.recover",
    "epoch.publish",
    "span.unknown",
];

/// A span name drawn from the closed static name table.
///
/// Only the predefined constants can be constructed; this keeps the
/// lock-free [`TraceBuffer`] free of string storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanName(u16);

impl SpanName {
    /// Root span for a point (`f_x(t, tau)`) query.
    pub const QUERY_POINT: SpanName = SpanName(0);
    /// Root span for a bursty-time query.
    pub const QUERY_BURSTY_TIMES: SpanName = SpanName(1);
    /// Root span for a bursty-event query.
    pub const QUERY_BURSTY_EVENTS: SpanName = SpanName(2);
    /// Root span for a burstiness-series query.
    pub const QUERY_SERIES: SpanName = SpanName(3);
    /// Root span for a top-k query.
    pub const QUERY_TOP_K: SpanName = SpanName(4);
    /// Child stage: probing sketch cells / resolving Eq. 2 offsets.
    pub const STAGE_CELL_PROBE: SpanName = SpanName(5);
    /// Child stage: cross-row median combination.
    pub const STAGE_MEDIAN_COMBINE: SpanName = SpanName(6);
    /// Child stage: dyadic pruned search over the hierarchy.
    pub const STAGE_HIERARCHY_PRUNE: SpanName = SpanName(7);
    /// Child stage: fan-out of a query across shards.
    pub const SHARD_FAN_OUT: SpanName = SpanName(8);
    /// Root span for a pipeline batch flush.
    pub const PIPELINE_FLUSH: SpanName = SpanName(9);
    /// Root span for a WAL append + fsync.
    pub const WAL_APPEND: SpanName = SpanName(10);
    /// Root span for a checkpoint save.
    pub const CHECKPOINT_SAVE: SpanName = SpanName(11);
    /// Root span for snapshot + WAL recovery.
    pub const CHECKPOINT_RECOVER: SpanName = SpanName(12);
    /// Root span for publishing one epoch snapshot to concurrent readers.
    pub const EPOCH_PUBLISH: SpanName = SpanName(13);

    /// The string form of this span name.
    pub fn as_str(self) -> &'static str {
        SPAN_NAMES.get(self.0 as usize).copied().unwrap_or("span.unknown")
    }

    fn from_index(ix: u64) -> SpanName {
        if (ix as usize) < SPAN_NAMES.len() {
            SpanName(ix as u16)
        } else {
            SpanName((SPAN_NAMES.len() - 1) as u16)
        }
    }
}

/// Identifier shared by every span recorded under one root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Renders the id as fixed-width lowercase hex.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// One finished span as read back out of the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name from the closed table.
    pub name: &'static str,
    /// Trace id shared with the root and all siblings.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id; 0 for root spans.
    pub parent_id: u64,
    /// Start offset in nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

impl TraceEvent {
    /// Encodes the event as a single JSON line (no trailing newline).
    ///
    /// Field order is fixed so output is byte-stable for golden tests.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"trace_id\":\"{:016x}\",\"span_id\":\"{:016x}\",\
             \"parent_id\":\"{:016x}\",\"start_ns\":{},\"dur_ns\":{}}}",
            self.name, self.trace_id, self.span_id, self.parent_id, self.start_ns, self.dur_ns
        );
        s
    }
}

/// One ring slot: a sequence word plus six payload words.
///
/// The sequence word implements a per-slot seqlock: even = stable,
/// odd = write in progress. Writers claim a slot with a compare-exchange
/// (failed claims drop the event rather than block), so the buffer is
/// lock-free for any number of concurrent writers and readers.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    name: AtomicU64,
    trace_id: AtomicU64,
    span_id: AtomicU64,
    parent_id: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            name: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            span_id: AtomicU64::new(0),
            parent_id: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
        }
    }
}

/// Lock-free bounded ring of finished spans.
///
/// Writers advance a shared cursor with a relaxed `fetch_add` and publish
/// into the addressed slot under its seqlock; readers snapshot slots and
/// discard any observed mid-write. When the ring wraps, the oldest spans
/// are overwritten — the buffer is a diagnostic window, not a log.
#[derive(Debug)]
pub struct TraceBuffer {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
    dropped: AtomicU64,
}

impl TraceBuffer {
    /// Creates a ring with room for `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> TraceBuffer {
        let n = capacity.max(1);
        TraceBuffer {
            slots: (0..n).map(|_| Slot::new()).collect(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of span slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever pushed (including ones since overwritten).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Spans discarded because their slot was mid-write (contended wrap).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn push(&self, ev: &TraceEvent, name: SpanName) {
        let at = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        let slot = &self.slots[at];
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq & 1 == 1 {
            // Another writer wrapped onto this slot and is mid-publish;
            // dropping is cheaper and safer than spinning.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if slot.seq.compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.name.store(name.0 as u64, Ordering::Relaxed);
        slot.trace_id.store(ev.trace_id, Ordering::Relaxed);
        slot.span_id.store(ev.span_id, Ordering::Relaxed);
        slot.parent_id.store(ev.parent_id, Ordering::Relaxed);
        slot.start_ns.store(ev.start_ns, Ordering::Relaxed);
        slot.dur_ns.store(ev.dur_ns, Ordering::Relaxed);
        slot.seq.store(seq + 2, Ordering::Release);
    }

    /// Snapshots every stable slot, oldest first by start offset.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before & 1 == 1 {
                continue; // never written, or write in flight
            }
            let ev = TraceEvent {
                name: SpanName::from_index(slot.name.load(Ordering::Relaxed)).as_str(),
                trace_id: slot.trace_id.load(Ordering::Relaxed),
                span_id: slot.span_id.load(Ordering::Relaxed),
                parent_id: slot.parent_id.load(Ordering::Relaxed),
                start_ns: slot.start_ns.load(Ordering::Relaxed),
                dur_ns: slot.dur_ns.load(Ordering::Relaxed),
            };
            if slot.seq.load(Ordering::Acquire) != before {
                continue; // torn read: slot was reused while we copied it
            }
            out.push(ev);
        }
        out.sort_by_key(|e| (e.start_ns, e.span_id));
        out
    }
}

/// One captured slow query: the rendered request parameters plus the full
/// span tree (root last, children in recording order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// Request parameters, rendered by the caller-supplied closure.
    pub params: String,
    /// Total root-span duration in nanoseconds.
    pub total_ns: u64,
    /// Child spans followed by the root span.
    pub spans: Vec<TraceEvent>,
}

impl SlowQuery {
    /// Encodes the capture as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"params\":");
        crate::snapshot::push_json_string(&mut s, &self.params);
        let _ = write!(s, ",\"total_ns\":{},\"spans\":[", self.total_ns);
        for (i, ev) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&ev.to_json_line());
        }
        s.push_str("]}");
        s
    }
}

/// Tracer configuration. All knobs are fixed at construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracerConfig {
    /// Sample 1 in `sample_every` root spans; 0 disables tracing entirely
    /// (the untraced fast path is a single relaxed load), 1 traces all.
    pub sample_every: u64,
    /// Root spans at least this long are captured into the slow-query
    /// log. 0 captures every traced query.
    pub slow_threshold_ns: u64,
    /// Ring-buffer capacity in spans.
    pub buffer_capacity: usize,
    /// Maximum retained slow queries (oldest evicted first).
    pub slow_capacity: usize,
    /// Dump retained slow queries to stderr when the tracer drops.
    pub dump_slow_on_drop: bool,
}

impl Default for TracerConfig {
    fn default() -> TracerConfig {
        TracerConfig {
            sample_every: 0,
            slow_threshold_ns: 10_000_000,
            buffer_capacity: 4096,
            slow_capacity: 128,
            dump_slow_on_drop: false,
        }
    }
}

/// Sampling tracer with a lock-free span ring and a bounded slow-query log.
///
/// Cost model: when disabled (`sample_every == 0`) starting a span is one
/// relaxed atomic load and no allocation. When sampling skips a request it
/// is one relaxed `fetch_add`. A traced request allocates nothing until it
/// finishes; only a slow capture materialises strings.
#[derive(Debug)]
pub struct Tracer {
    sample_every: u64,
    slow_threshold_ns: u64,
    dump_slow_on_drop: bool,
    epoch: Instant,
    ticket: AtomicU64,
    next_id: AtomicU64,
    sampled: AtomicU64,
    buffer: TraceBuffer,
    slow: Mutex<VecDeque<SlowQuery>>,
    slow_capacity: usize,
    slow_count: AtomicU64,
}

/// `splitmix64` finaliser: spreads a sequential counter into ids that look
/// random but stay deterministic per process.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Tracer {
    /// Builds a tracer from `config`.
    pub fn new(config: TracerConfig) -> Tracer {
        Tracer {
            sample_every: config.sample_every,
            slow_threshold_ns: config.slow_threshold_ns,
            dump_slow_on_drop: config.dump_slow_on_drop,
            epoch: Instant::now(),
            ticket: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            buffer: TraceBuffer::new(config.buffer_capacity),
            slow: Mutex::new(VecDeque::new()),
            slow_capacity: config.slow_capacity.max(1),
            slow_count: AtomicU64::new(0),
        }
    }

    /// A tracer that never samples; the default installed everywhere.
    pub fn disabled() -> Tracer {
        Tracer::new(TracerConfig {
            sample_every: 0,
            buffer_capacity: 1,
            slow_capacity: 1,
            ..TracerConfig::default()
        })
    }

    /// Whether any root span can ever start.
    pub fn enabled(&self) -> bool {
        self.sample_every > 0
    }

    /// The configured 1-in-N sampling period (0 = off).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// The slow-query capture threshold in nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns
    }

    fn fresh_id(&self) -> u64 {
        // `| 1` keeps ids nonzero so 0 can mean "no parent".
        splitmix64(self.next_id.fetch_add(1, Ordering::Relaxed)) | 1
    }

    /// Mints a fresh [`TraceId`] without starting a span. Lets callers
    /// stamp a response with a joinable id even when the request itself
    /// was not sampled into the ring.
    pub fn next_trace_id(&self) -> TraceId {
        TraceId(self.fresh_id())
    }

    fn start(&self, name: SpanName, root: Option<TraceId>) -> ActiveTrace<'_> {
        self.sampled.fetch_add(1, Ordering::Relaxed);
        let trace_id = match root {
            Some(TraceId(id)) if id != 0 => id,
            _ => self.fresh_id(),
        };
        ActiveTrace {
            tracer: self,
            name,
            trace_id,
            span_id: self.fresh_id(),
            start: Instant::now(),
            children: [None; MAX_CHILDREN],
            n_children: 0,
        }
    }

    /// Starts a root span subject to 1-in-N sampling. Returns `None` on
    /// the untraced path without allocating.
    pub fn start_sampled(&self, name: SpanName) -> Option<ActiveTrace<'_>> {
        self.start_sampled_with(name, None)
    }

    /// Like [`Tracer::start_sampled`], but adopts `root` as the trace id
    /// when supplied (and nonzero) instead of minting a fresh one. This is
    /// how a caller-assigned request id propagates into recorded spans.
    pub fn start_sampled_with(
        &self,
        name: SpanName,
        root: Option<TraceId>,
    ) -> Option<ActiveTrace<'_>> {
        if self.sample_every == 0 {
            return None;
        }
        if self.sample_every > 1
            && !self.ticket.fetch_add(1, Ordering::Relaxed).is_multiple_of(self.sample_every)
        {
            return None;
        }
        Some(self.start(name, root))
    }

    /// Starts a root span whenever tracing is enabled, bypassing the
    /// sampler. For rare, heavyweight operations (checkpoint, recovery).
    pub fn start_always(&self, name: SpanName) -> Option<ActiveTrace<'_>> {
        self.start_always_with(name, None)
    }

    /// Like [`Tracer::start_always`], but adopts `root` as the trace id
    /// when supplied (and nonzero).
    pub fn start_always_with(
        &self,
        name: SpanName,
        root: Option<TraceId>,
    ) -> Option<ActiveTrace<'_>> {
        if self.sample_every == 0 {
            return None;
        }
        Some(self.start(name, root))
    }

    /// Snapshot of the span ring, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buffer.events()
    }

    /// Assembles the spans recorded under `id` into a nested JSON tree.
    /// Returns `None` when the ring holds no span for that trace.
    pub fn trace_tree_json(&self, id: TraceId) -> Option<String> {
        assemble_trace_tree(&self.events(), id)
    }

    /// The span ring rendered as JSON lines (one event per line).
    pub fn events_json_lines(&self) -> String {
        let mut s = String::new();
        for ev in self.events() {
            s.push_str(&ev.to_json_line());
            s.push('\n');
        }
        s
    }

    /// Clones the retained slow queries, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow.lock().map(|q| q.iter().cloned().collect()).unwrap_or_default()
    }

    /// The slow-query log rendered as one JSON array (with newline).
    pub fn slow_json(&self) -> String {
        let mut s = String::from("[");
        for (i, q) in self.slow_queries().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&q.to_json());
        }
        s.push_str("]\n");
        s
    }

    /// Tracer health rendered as metrics, mergeable into a
    /// [`MetricsSnapshot`] for the `/metrics` endpoint: sampled/recorded/
    /// dropped span counters, sampler tickets, ring laps, and slow-log
    /// occupancy.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let recorded = self.buffer.recorded();
        let capacity = self.buffer.capacity() as u64;
        let occupancy = self.slow.lock().map(|q| q.len()).unwrap_or(0);
        MetricsSnapshot::from_entries(vec![
            (
                "trace.sampled".to_string(),
                MetricValue::Counter(self.sampled.load(Ordering::Relaxed)),
            ),
            ("trace.spans".to_string(), MetricValue::Counter(recorded)),
            ("trace.dropped".to_string(), MetricValue::Counter(self.buffer.dropped())),
            (
                "trace.sampler.tickets".to_string(),
                MetricValue::Counter(self.ticket.load(Ordering::Relaxed)),
            ),
            (
                "trace.slow.count".to_string(),
                MetricValue::Counter(self.slow_count.load(Ordering::Relaxed)),
            ),
            ("trace.sample_every".to_string(), MetricValue::Gauge(self.sample_every as f64)),
            ("trace.buffer.capacity".to_string(), MetricValue::Gauge(capacity as f64)),
            (
                "trace.buffer.laps".to_string(),
                MetricValue::Gauge((recorded / capacity.max(1)) as f64),
            ),
            ("trace.slow.occupancy".to_string(), MetricValue::Gauge(occupancy as f64)),
        ])
    }

    fn capture_slow(&self, params: String, total_ns: u64, spans: Vec<TraceEvent>) {
        self.slow_count.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut q) = self.slow.lock() {
            if q.len() == self.slow_capacity {
                q.pop_front();
            }
            q.push_back(SlowQuery { params, total_ns, spans });
        }
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        if !self.dump_slow_on_drop {
            return;
        }
        for q in self.slow_queries() {
            eprintln!("bed-obs slow-query {}", q.to_json());
        }
    }
}

fn write_span_node(out: &mut String, events: &[TraceEvent], node: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"span_id\":\"{:016x}\",\"start_ns\":{},\"dur_ns\":{},\"children\":[",
        node.name, node.span_id, node.start_ns, node.dur_ns
    );
    let mut first = true;
    for ev in events {
        if ev.parent_id == node.span_id && ev.span_id != node.span_id {
            if !first {
                out.push(',');
            }
            first = false;
            write_span_node(out, events, ev);
        }
    }
    out.push_str("]}");
}

/// Assembles every span in `events` whose trace id equals `id` into one
/// nested JSON tree: `{"trace_id":"...","roots":[...],"orphans":[...]}`.
///
/// Roots are spans with `parent_id == 0`; a span whose parent was already
/// overwritten in the ring surfaces under `"orphans"` as a flat event so
/// nothing silently disappears. Events are expected in the order
/// [`TraceBuffer::events`] yields them (sorted by start then span id), so
/// output is deterministic for golden tests. Returns `None` when no span
/// carries `id`.
pub fn assemble_trace_tree(events: &[TraceEvent], id: TraceId) -> Option<String> {
    let mine: Vec<TraceEvent> = events.iter().filter(|e| e.trace_id == id.0).cloned().collect();
    if mine.is_empty() {
        return None;
    }
    let present: Vec<u64> = mine.iter().map(|e| e.span_id).collect();
    let mut out = String::with_capacity(256);
    let _ = write!(out, "{{\"trace_id\":\"{:016x}\",\"roots\":[", id.0);
    let mut first = true;
    for ev in &mine {
        if ev.parent_id == 0 {
            if !first {
                out.push(',');
            }
            first = false;
            write_span_node(&mut out, &mine, ev);
        }
    }
    out.push_str("],\"orphans\":[");
    let mut first = true;
    for ev in &mine {
        if ev.parent_id != 0 && !present.contains(&ev.parent_id) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&ev.to_json_line());
        }
    }
    out.push_str("]}");
    Some(out)
}

/// Maximum child spans recorded under one root. Extra children are
/// counted into the last slot's sibling and otherwise dropped — the
/// request path records at most four stages today.
pub const MAX_CHILDREN: usize = 8;

#[derive(Debug, Clone, Copy)]
struct Child {
    name: SpanName,
    start_ns: u64,
    dur_ns: u64,
}

/// A live root span. Children accumulate in a fixed inline array (no
/// heap allocation); everything is published to the ring on
/// [`ActiveTrace::finish`].
#[derive(Debug)]
pub struct ActiveTrace<'t> {
    tracer: &'t Tracer,
    name: SpanName,
    trace_id: u64,
    span_id: u64,
    start: Instant,
    children: [Option<Child>; MAX_CHILDREN],
    n_children: usize,
}

impl<'t> ActiveTrace<'t> {
    /// The id shared by this root and all of its children.
    pub fn trace_id(&self) -> TraceId {
        TraceId(self.trace_id)
    }

    /// Records a child span that ran from `started` until now.
    pub fn child(&mut self, name: SpanName, started: Instant) {
        let dur_ns = started.elapsed().as_nanos() as u64;
        let start_ns = started
            .checked_duration_since(self.tracer.epoch)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        self.push_child(Child { name, start_ns, dur_ns });
    }

    /// Records a duration-only child span (e.g. a stage timing harvested
    /// from `QueryScratch`). Its start is pinned to the root's start, so
    /// durations are exact but stage ordering is not encoded.
    pub fn child_ns(&mut self, name: SpanName, dur_ns: u64) {
        let start_ns = self
            .start
            .checked_duration_since(self.tracer.epoch)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        self.push_child(Child { name, start_ns, dur_ns });
    }

    fn push_child(&mut self, child: Child) {
        if self.n_children < MAX_CHILDREN {
            self.children[self.n_children] = Some(child);
            self.n_children += 1;
        }
    }

    /// Finishes the root span: publishes children then the root to the
    /// ring, and — only if the root crossed the slow threshold — renders
    /// `params` and captures the whole tree into the slow-query log.
    pub fn finish(self, params: impl FnOnce() -> String) {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        let start_ns = self
            .start
            .checked_duration_since(self.tracer.epoch)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut spans: [Option<TraceEvent>; MAX_CHILDREN + 1] = Default::default();
        let mut n = 0;
        for child in self.children.iter().take(self.n_children).flatten() {
            let ev = TraceEvent {
                name: child.name.as_str(),
                trace_id: self.trace_id,
                span_id: self.tracer.fresh_id(),
                parent_id: self.span_id,
                start_ns: child.start_ns,
                dur_ns: child.dur_ns,
            };
            self.tracer.buffer.push(&ev, child.name);
            spans[n] = Some(ev);
            n += 1;
        }
        let root = TraceEvent {
            name: self.name.as_str(),
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: 0,
            start_ns,
            dur_ns,
        };
        self.tracer.buffer.push(&root, self.name);
        spans[n] = Some(root);
        n += 1;
        if dur_ns >= self.tracer.slow_threshold_ns {
            let tree: Vec<TraceEvent> = spans.into_iter().take(n).flatten().collect();
            self.tracer.capture_slow(params(), dur_ns, tree);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced(sample_every: u64, slow_threshold_ns: u64) -> Tracer {
        Tracer::new(TracerConfig {
            sample_every,
            slow_threshold_ns,
            buffer_capacity: 64,
            slow_capacity: 4,
            dump_slow_on_drop: false,
        })
    }

    #[test]
    fn disabled_tracer_never_samples() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert!(t.start_sampled(SpanName::QUERY_POINT).is_none());
        assert!(t.start_always(SpanName::CHECKPOINT_SAVE).is_none());
        assert!(t.events().is_empty());
    }

    #[test]
    fn sampling_takes_one_in_n() {
        let t = traced(4, u64::MAX);
        let taken = (0..16)
            .filter(|_| {
                t.start_sampled(SpanName::QUERY_POINT).map(|a| a.finish(String::new)).is_some()
            })
            .count();
        assert_eq!(taken, 4);
        assert_eq!(t.events().len(), 4);
    }

    #[test]
    fn finished_spans_carry_trace_id_and_children() {
        let t = traced(1, u64::MAX);
        let mut root = t.start_sampled(SpanName::QUERY_BURSTY_EVENTS).unwrap();
        let id = root.trace_id();
        root.child_ns(SpanName::STAGE_CELL_PROBE, 111);
        root.child_ns(SpanName::STAGE_MEDIAN_COMBINE, 222);
        root.finish(String::new);
        let events = t.events();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.trace_id == id.0));
        let root_ev = events.iter().find(|e| e.name == "query.bursty_events").unwrap();
        assert_eq!(root_ev.parent_id, 0);
        for stage in ["stage.cell_probe", "stage.median_combine"] {
            let child = events.iter().find(|e| e.name == stage).unwrap();
            assert_eq!(child.parent_id, root_ev.span_id);
        }
    }

    #[test]
    fn slow_threshold_zero_captures_every_traced_query() {
        let t = traced(1, 0);
        let root = t.start_sampled(SpanName::QUERY_TOP_K).unwrap();
        root.finish(|| "k=5".to_string());
        let slow = t.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].params, "k=5");
        assert_eq!(slow[0].spans.last().unwrap().name, "query.top_k");
        assert!(t.slow_json().starts_with("[{\"params\":\"k=5\""));
    }

    #[test]
    fn fast_queries_skip_params_rendering() {
        let t = traced(1, u64::MAX);
        let root = t.start_sampled(SpanName::QUERY_POINT).unwrap();
        root.finish(|| panic!("params must not render on the fast path"));
        assert!(t.slow_queries().is_empty());
    }

    #[test]
    fn slow_log_is_bounded_oldest_evicted() {
        let t = traced(1, 0);
        for i in 0..9 {
            let root = t.start_sampled(SpanName::QUERY_POINT).unwrap();
            root.finish(move || format!("q={i}"));
        }
        let slow = t.slow_queries();
        assert_eq!(slow.len(), 4); // slow_capacity
        assert_eq!(slow[0].params, "q=5");
        assert_eq!(slow[3].params, "q=8");
    }

    #[test]
    fn ring_wraps_keeping_latest() {
        let t = Tracer::new(TracerConfig {
            sample_every: 1,
            slow_threshold_ns: u64::MAX,
            buffer_capacity: 8,
            slow_capacity: 1,
            dump_slow_on_drop: false,
        });
        for _ in 0..20 {
            t.start_sampled(SpanName::QUERY_SERIES).unwrap().finish(String::new);
        }
        assert_eq!(t.events().len(), 8);
        assert_eq!(t.metrics_snapshot().counter("trace.spans"), Some(20));
    }

    #[test]
    fn json_line_shape_is_stable() {
        let ev = TraceEvent {
            name: "query.point",
            trace_id: 0xabc,
            span_id: 0x1,
            parent_id: 0,
            start_ns: 5,
            dur_ns: 7,
        };
        assert_eq!(
            ev.to_json_line(),
            "{\"name\":\"query.point\",\"trace_id\":\"0000000000000abc\",\
             \"span_id\":\"0000000000000001\",\"parent_id\":\"0000000000000000\",\
             \"start_ns\":5,\"dur_ns\":7}"
        );
    }

    #[test]
    fn concurrent_writers_do_not_corrupt_the_ring() {
        let t = traced(1, u64::MAX);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..200 {
                        if let Some(root) = t.start_sampled(SpanName::QUERY_POINT) {
                            root.finish(String::new);
                        }
                    }
                });
            }
        });
        // Every surviving slot decodes to a known span name.
        for ev in t.events() {
            assert_eq!(ev.name, "query.point");
            assert_ne!(ev.span_id, 0);
        }
        let snap = t.metrics_snapshot();
        assert_eq!(snap.counter("trace.sampled"), Some(800));
    }

    #[test]
    fn metrics_snapshot_names() {
        let t = traced(2, 0);
        assert_eq!(t.metrics_snapshot().counter("trace.sampled"), Some(0));
        assert_eq!(t.metrics_snapshot().gauge("trace.sample_every"), Some(2.0));
    }

    #[test]
    fn metrics_snapshot_reports_tracer_self_health() {
        let t = Tracer::new(TracerConfig {
            sample_every: 1,
            slow_threshold_ns: 0,
            buffer_capacity: 4,
            slow_capacity: 2,
            dump_slow_on_drop: false,
        });
        for _ in 0..9 {
            t.start_sampled(SpanName::QUERY_POINT).unwrap().finish(String::new);
        }
        let snap = t.metrics_snapshot();
        assert_eq!(snap.counter("trace.sampler.tickets"), Some(0)); // 1-in-1 skips the ticket
        assert_eq!(snap.gauge("trace.buffer.capacity"), Some(4.0));
        assert_eq!(snap.gauge("trace.buffer.laps"), Some(2.0)); // 9 spans / 4 slots
        assert_eq!(snap.gauge("trace.slow.occupancy"), Some(2.0)); // bounded at slow_capacity
        let skip = traced(4, u64::MAX);
        for _ in 0..6 {
            let _ = skip.start_sampled(SpanName::QUERY_POINT).map(|a| a.finish(String::new));
        }
        assert_eq!(skip.metrics_snapshot().counter("trace.sampler.tickets"), Some(6));
    }

    #[test]
    fn supplied_trace_id_propagates_to_all_spans() {
        let t = traced(1, u64::MAX);
        let want = TraceId(0xfeed_beef);
        let mut root = t.start_sampled_with(SpanName::QUERY_POINT, Some(want)).unwrap();
        assert_eq!(root.trace_id(), want);
        root.child_ns(SpanName::STAGE_CELL_PROBE, 10);
        root.finish(String::new);
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.trace_id == want.0));
        // A zero id is "no id supplied": fall back to a fresh one.
        let root = t.start_always_with(SpanName::QUERY_POINT, Some(TraceId(0))).unwrap();
        assert_ne!(root.trace_id().0, 0);
        root.finish(String::new);
    }

    #[test]
    fn next_trace_id_is_nonzero_and_distinct() {
        let t = Tracer::disabled();
        let a = t.next_trace_id();
        let b = t.next_trace_id();
        assert_ne!(a.0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn trace_tree_assembles_nested_children() {
        let t = traced(1, u64::MAX);
        let mut root = t.start_sampled_with(SpanName::QUERY_BURSTY_EVENTS, None).unwrap();
        let id = root.trace_id();
        root.child_ns(SpanName::STAGE_HIERARCHY_PRUNE, 42);
        root.finish(String::new);
        let tree = t.trace_tree_json(id).unwrap();
        assert!(tree.starts_with(&format!("{{\"trace_id\":\"{}\",\"roots\":[", id.to_hex())));
        assert!(tree.contains("\"name\":\"query.bursty_events\""));
        assert!(tree.contains("\"name\":\"stage.hierarchy_prune\""));
        assert!(tree.ends_with("],\"orphans\":[]}"));
        assert!(t.trace_tree_json(TraceId(2)).is_none());
    }

    #[test]
    fn trace_tree_golden_from_fixed_events() {
        let events = vec![
            TraceEvent {
                name: "query.point",
                trace_id: 0xa1,
                span_id: 0x10,
                parent_id: 0,
                start_ns: 100,
                dur_ns: 900,
            },
            TraceEvent {
                name: "stage.cell_probe",
                trace_id: 0xa1,
                span_id: 0x11,
                parent_id: 0x10,
                start_ns: 100,
                dur_ns: 300,
            },
            TraceEvent {
                name: "stage.median_combine",
                trace_id: 0xa1,
                span_id: 0x12,
                parent_id: 0x10,
                start_ns: 400,
                dur_ns: 200,
            },
            // Different trace: must not leak into the assembled tree.
            TraceEvent {
                name: "query.series",
                trace_id: 0xb2,
                span_id: 0x20,
                parent_id: 0,
                start_ns: 50,
                dur_ns: 10,
            },
            // Parent evicted from the ring: surfaces as an orphan.
            TraceEvent {
                name: "shard.fan_out",
                trace_id: 0xa1,
                span_id: 0x13,
                parent_id: 0x99,
                start_ns: 150,
                dur_ns: 5,
            },
        ];
        let tree = assemble_trace_tree(&events, TraceId(0xa1)).unwrap();
        assert_eq!(
            tree,
            "{\"trace_id\":\"00000000000000a1\",\"roots\":[\
             {\"name\":\"query.point\",\"span_id\":\"0000000000000010\",\
             \"start_ns\":100,\"dur_ns\":900,\"children\":[\
             {\"name\":\"stage.cell_probe\",\"span_id\":\"0000000000000011\",\
             \"start_ns\":100,\"dur_ns\":300,\"children\":[]},\
             {\"name\":\"stage.median_combine\",\"span_id\":\"0000000000000012\",\
             \"start_ns\":400,\"dur_ns\":200,\"children\":[]}]}],\
             \"orphans\":[\
             {\"name\":\"shard.fan_out\",\"trace_id\":\"00000000000000a1\",\
             \"span_id\":\"0000000000000013\",\"parent_id\":\"0000000000000099\",\
             \"start_ns\":150,\"dur_ns\":5}]}"
        );
        assert!(assemble_trace_tree(&events, TraceId(0xdead)).is_none());
    }
}
