//! Error-path tests for the `CMPB` v1 persistence format: every malformed
//! input must come back as a typed `CodecError`, never a panic or a
//! silently wrong sketch.

use bed_pbe::ExactCurve;
use bed_sketch::CmPbe;
use bed_stream::{Codec, CodecError, EventId, Timestamp};

fn sample() -> Vec<u8> {
    let mut cm = CmPbe::with_dimensions(3, 8, 42, ExactCurve::new);
    for i in 0..200u64 {
        cm.update(EventId((i % 13) as u32), Timestamp(i / 2));
    }
    cm.finalize();
    cm.to_bytes()
}

type Sketch = CmPbe<ExactCurve>;

#[test]
fn roundtrip_is_exact() {
    let bytes = sample();
    let back = Sketch::from_bytes(&bytes).unwrap();
    assert_eq!(back.to_bytes(), bytes);
}

#[test]
fn truncated_header() {
    let bytes = sample();
    for cut in [0, 1, 3, 4, 5] {
        match Sketch::from_bytes(&bytes[..cut]) {
            Err(CodecError::UnexpectedEof { .. }) => {}
            other => panic!("cut at {cut}: expected UnexpectedEof, got {other:?}"),
        }
    }
}

#[test]
fn wrong_magic() {
    let mut bytes = sample();
    bytes[..4].copy_from_slice(b"BOGU");
    match Sketch::from_bytes(&bytes) {
        Err(CodecError::BadMagic { expected, found }) => {
            assert_eq!(&expected, b"CMPB");
            assert_eq!(&found, b"BOGU");
        }
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn version_from_the_future_and_version_zero() {
    let mut bytes = sample();
    bytes[4..6].copy_from_slice(&999u16.to_le_bytes());
    match Sketch::from_bytes(&bytes) {
        Err(CodecError::UnsupportedVersion { found: 999, supported: 1 }) => {}
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    bytes[4..6].copy_from_slice(&0u16.to_le_bytes());
    assert!(matches!(
        Sketch::from_bytes(&bytes),
        Err(CodecError::UnsupportedVersion { found: 0, .. })
    ));
}

#[test]
fn every_strict_prefix_is_rejected() {
    let bytes = sample();
    for cut in 0..bytes.len() {
        assert!(
            Sketch::from_bytes(&bytes[..cut]).is_err(),
            "a {cut}-byte prefix of a {}-byte record decoded successfully",
            bytes.len()
        );
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut bytes = sample();
    bytes.push(0);
    assert!(matches!(Sketch::from_bytes(&bytes), Err(CodecError::TrailingBytes { remaining: 1 })));
}
