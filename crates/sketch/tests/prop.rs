//! Property-based tests for the Count-Min substrate and CM-PBE.

use bed_pbe::{ExactCurve, Pbe2, Pbe2Config};
use bed_sketch::{CmPbe, Combiner, CountMin};
use bed_stream::{EventId, EventStream, Timestamp};
use proptest::prelude::*;

fn arb_stream() -> impl Strategy<Value = Vec<(u32, u64)>> {
    prop::collection::vec((0u32..32, 0u64..1_000), 1..300).prop_map(|mut v| {
        v.sort_by_key(|&(_, t)| t);
        v
    })
}

/// A Zipf-flavoured heavy-tailed stream: raw draws are folded through a
/// square so low ids dominate — with a 4-cell-wide grid every row is
/// collision-heavy, which is exactly where the combiners diverge.
fn arb_skewed_stream() -> impl Strategy<Value = Vec<(u32, u64)>> {
    prop::collection::vec((0u32..1_024, 0u64..1_000), 32..300).prop_map(|mut v| {
        for (e, _) in &mut v {
            let u = *e as f64 / 1_024.0;
            *e = (31.0 * u * u) as u32; // quadratic fold: mass piles on small ids
        }
        v.sort_by_key(|&(_, t)| t);
        v
    })
}

proptest! {
    /// Classic CM never underestimates any item's count.
    #[test]
    fn countmin_one_sided(els in arb_stream(), seed in 0u64..100) {
        let mut cm = CountMin::with_dimensions(4, 16, seed);
        for &(e, _) in &els {
            cm.update(e as u64, 1);
        }
        for e in 0..32u32 {
            let truth = els.iter().filter(|&&(x, _)| x == e).count() as u64;
            prop_assert!(cm.estimate(e as u64) >= truth);
        }
    }

    /// CM-PBE with exact cells: every estimate is sandwiched between the
    /// event's own curve and the full stream count, at every query time.
    #[test]
    fn cmpbe_exact_cells_sandwich(els in arb_stream(), seed in 0u64..100, q in 0u64..1_200) {
        let stream: EventStream = els.iter().copied().collect();
        let mut cm = CmPbe::with_dimensions(3, 8, seed, ExactCurve::new);
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        let t = Timestamp(q);
        let n_upto = els.iter().filter(|&&(_, ts)| ts <= q).count() as f64;
        for e in 0..32u32 {
            let truth = stream.project(EventId(e)).cumulative_frequency(t) as f64;
            let est = cm.estimate_cum(EventId(e), t);
            prop_assert!(est >= truth, "under-estimate with exact cells is impossible");
            prop_assert!(est <= n_upto, "estimate cannot exceed the stream prefix size");
        }
    }

    /// Estimates are monotone in t regardless of cell type.
    #[test]
    fn cmpbe_estimates_monotone(els in arb_stream(), seed in 0u64..50) {
        let mut cm = CmPbe::with_dimensions(3, 8, seed, ExactCurve::new);
        for &(e, t) in &els {
            cm.update(EventId(e), Timestamp(t));
        }
        for e in [0u32, 5, 31] {
            let mut prev = -1.0;
            let mut t = 0u64;
            while t <= 1_100 {
                let v = cm.estimate_cum(EventId(e), Timestamp(t));
                prop_assert!(v >= prev);
                prev = v;
                t += 37;
            }
        }
    }

    /// PBE-2 cells: the final count estimate is within collision mass plus γ
    /// of the truth — and the total over all cells of one row is N.
    #[test]
    fn cmpbe_pbe2_total_mass(els in arb_stream(), seed in 0u64..50) {
        let stream: EventStream = els.iter().copied().collect();
        let mut cm = CmPbe::with_dimensions(3, 8, seed, || {
            Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 32 }).unwrap()
        });
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        cm.finalize();
        let horizon = Timestamp(2_000);
        let n = els.len() as f64;
        for e in 0..32u32 {
            let truth = stream.project(EventId(e)).len() as f64;
            let est = cm.estimate_cum(EventId(e), horizon);
            // lower side: PBE underestimates by ≤ γ per cell; median keeps it
            prop_assert!(est >= truth - 2.0 - 1e-6, "event {}: {} < {}", e, est, truth);
            prop_assert!(est <= n + 1e-6);
        }
    }

    /// Combiner ablation on collision-heavy skewed streams: rows with
    /// exact cells only ever *over*-count (collision mass is one-sided),
    /// so at every query time `truth ≤ Min ≤ Median ≤ Max` — the median
    /// is never farther from the per-event truth than the Max row, and
    /// the public `estimate_cum` is exactly the Median combiner.
    #[test]
    fn median_combiner_is_bracketed(els in arb_skewed_stream(), seed in 0u64..100, q in 0u64..1_200) {
        let stream: EventStream = els.iter().copied().collect();
        let mut cm = CmPbe::with_dimensions(3, 4, seed, ExactCurve::new);
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        let t = Timestamp(q);
        for e in 0..32u32 {
            let e = EventId(e);
            let truth = stream.project(e).cumulative_frequency(t) as f64;
            let lo = cm.estimate_cum_with(e, t, Combiner::Min);
            let med = cm.estimate_cum_with(e, t, Combiner::Median);
            let hi = cm.estimate_cum_with(e, t, Combiner::Max);
            prop_assert!(truth <= lo + 1e-9, "exact cells cannot undershoot: {} < {}", lo, truth);
            prop_assert!(lo <= med + 1e-9 && med <= hi + 1e-9, "ordering broke: {} {} {}", lo, med, hi);
            prop_assert!(
                (med - truth).abs() <= (hi - truth).abs() + 1e-9,
                "median farther from truth than max: |{} − {}| vs |{} − {}|",
                med, truth, hi, truth
            );
            prop_assert_eq!(cm.estimate_cum(e, t).to_bits(), med.to_bits());
        }
    }

    /// The same bracketing holds with lossy PBE-2 cells, where rows are
    /// two-sided (collision mass up, γ down): the median's distance to the
    /// truth never exceeds the worse of the Min and Max rows, at any time
    /// and for burstiness composed per-term from the same combiner.
    #[test]
    fn median_combiner_never_worst_with_pbe2_cells(
        els in arb_skewed_stream(),
        seed in 0u64..50,
        q in 0u64..1_200,
        tau in 1u64..200,
    ) {
        use bed_stream::BurstSpan;
        let stream: EventStream = els.iter().copied().collect();
        let mut cm = CmPbe::with_dimensions(3, 4, seed, || {
            Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 32 }).unwrap()
        });
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        cm.finalize();
        let t = Timestamp(q);
        let tau = BurstSpan::new(tau).unwrap();
        for e in [0u32, 1, 2, 7, 31] {
            let e = EventId(e);
            let truth = stream.project(e).cumulative_frequency(t) as f64;
            let lo = cm.estimate_cum_with(e, t, Combiner::Min);
            let med = cm.estimate_cum_with(e, t, Combiner::Median);
            let hi = cm.estimate_cum_with(e, t, Combiner::Max);
            prop_assert!(lo <= med + 1e-9 && med <= hi + 1e-9);
            let worst = (lo - truth).abs().max((hi - truth).abs());
            prop_assert!(
                (med - truth).abs() <= worst + 1e-9,
                "median is the farthest combiner: med={} min={} max={} truth={}",
                med, lo, hi, truth
            );
            // Eq. 2 composition is combiner-consistent: each burstiness is
            // the telescope of its own combiner's cumulative estimates.
            for c in [Combiner::Min, Combiner::Median, Combiner::Max] {
                let expect = cm.estimate_cum_with(e, t, c)
                    - 2.0 * t.checked_sub(tau.ticks())
                        .map_or(0.0, |p| cm.estimate_cum_with(e, p, c))
                    + t.checked_sub(2 * tau.ticks())
                        .map_or(0.0, |p| cm.estimate_cum_with(e, p, c));
                prop_assert_eq!(cm.estimate_burstiness_with(e, t, tau, c).to_bits(), expect.to_bits());
            }
            // Lemma 5's rationale end-to-end, in envelope form. The naive
            // pairing "dist(median) ≤ max(dist(Min), dist(Max))" is FALSE
            // for burstiness — Eq. 2's offset terms enter with opposite
            // sign, so a Min (or Max) row can cancel toward the truth
            // while the median's terms do not (found by this very test).
            // The sound statement: every per-term combination of row
            // extremes brackets the median telescope, so the median's
            // burstiness is never farther from the exact truth than the
            // worst corner of the Min/Max envelope.
            let cum = |q: Option<Timestamp>, c: Combiner| {
                q.map_or(0.0, |q| cm.estimate_cum_with(e, q, c))
            };
            let (t1, t2) = (t.checked_sub(tau.ticks()), t.checked_sub(2 * tau.ticks()));
            let b_lo = cum(Some(t), Combiner::Min) - 2.0 * cum(t1, Combiner::Max)
                + cum(t2, Combiner::Min);
            let b_hi = cum(Some(t), Combiner::Max) - 2.0 * cum(t1, Combiner::Min)
                + cum(t2, Combiner::Max);
            let b_med = cm.estimate_burstiness_with(e, t, tau, Combiner::Median);
            prop_assert!(
                b_lo - 1e-9 <= b_med && b_med <= b_hi + 1e-9,
                "median burstiness escaped the Min/Max envelope: {} ∉ [{}, {}]",
                b_med, b_lo, b_hi
            );
            let own = stream.project(e);
            let f = |q: Option<Timestamp>| q.map_or(0.0, |q| own.cumulative_frequency(q) as f64);
            let b_true = f(Some(t)) - 2.0 * f(t1) + f(t2);
            prop_assert!(
                (b_med - b_true).abs() <= (b_lo - b_true).abs().max((b_hi - b_true).abs()) + 1e-9,
                "median farther from truth than both envelope corners for {:?} at t={} τ={}",
                e, t.ticks(), tau.ticks()
            );
        }
    }

    /// Burstiness composed from median estimates equals the Eq. 2 telescope
    /// of the public estimate_cum values.
    #[test]
    fn cmpbe_burstiness_consistent(els in arb_stream(), seed in 0u64..50, q in 0u64..1_200, tau in 1u64..200) {
        use bed_stream::BurstSpan;
        let mut cm = CmPbe::with_dimensions(3, 8, seed, ExactCurve::new);
        for &(e, t) in &els {
            cm.update(EventId(e), Timestamp(t));
        }
        let tau = BurstSpan::new(tau).unwrap();
        let t = Timestamp(q);
        for e in [0u32, 9] {
            let e = EventId(e);
            let expect = cm.estimate_cum(e, t)
                - 2.0 * cm.estimate_cum_offset(e, t, tau.ticks())
                + cm.estimate_cum_offset(e, t, 2 * tau.ticks());
            prop_assert_eq!(cm.estimate_burstiness(e, t, tau), expect);
        }
    }
}

/// Shared body for the SoA-bank transparency property: ingest `els`, build
/// the bank (with or without finalizing — the mid-stream states exercise
/// PBE-1 buffers and PBE-2 open polygons / pending corners), then compare
/// every query kernel bit-for-bit against a bank-free clone of the same
/// grid. The probe instant sweeps below `τ` and `2τ`, so the pre-epoch
/// zero legs are covered, and event ids past the populated universe hit
/// empty cells.
fn check_bank_transparent<P: bed_pbe::CurveSketch + Clone>(
    mut grid: CmPbe<P>,
    els: &[(u32, u64)],
    q: u64,
    tau: bed_stream::BurstSpan,
    finalize: bool,
) -> Result<(), TestCaseError> {
    use bed_sketch::QueryScratch;
    for &(e, t) in els {
        grid.update(EventId(e), Timestamp(t));
    }
    if finalize {
        grid.finalize();
    } else {
        grid.build_bank();
    }
    prop_assert!(grid.has_bank());
    let mut plain = grid.clone();
    plain.clear_bank();
    prop_assert!(!plain.has_bank());
    let q = Timestamp(q);
    let horizon = Timestamp(1_400);
    for e in (0..48u32).step_by(5) {
        let a = grid.probe3(EventId(e), q, tau);
        let b = plain.probe3(EventId(e), q, tau);
        for k in 0..3 {
            prop_assert_eq!(a[k].to_bits(), b[k].to_bits(), "probe3 leg {} event {}", k, e);
        }
        prop_assert_eq!(
            grid.estimate_cum(EventId(e), q).to_bits(),
            plain.estimate_cum(EventId(e), q).to_bits()
        );
    }
    let mut sa = QueryScratch::new();
    let mut sb = QueryScratch::new();
    // Dense scan (range ≥ width for every layout used below) and a sparse
    // sub-range scan, both against the bank-free kernels.
    for (lo, hi) in [(0u32, 48u32), (3, 7)] {
        let mut got: Vec<(EventId, u64)> = Vec::new();
        let mut want: Vec<(EventId, u64)> = Vec::new();
        grid.burstiness_scan_into(lo, hi, q, tau, &mut sa, |e, b| got.push((e, b.to_bits())));
        plain.burstiness_scan_into(lo, hi, q, tau, &mut sb, |e, b| want.push((e, b.to_bits())));
        prop_assert_eq!(got, want);
    }
    let mut oa = Vec::new();
    let mut ob = Vec::new();
    for e in [0u32, 7, 31, 40] {
        grid.bursty_times_into(EventId(e), 0.5, tau, horizon, &mut sa, &mut oa);
        plain.bursty_times_into(EventId(e), 0.5, tau, horizon, &mut sb, &mut ob);
        prop_assert_eq!(oa.len(), ob.len());
        for (x, y) in oa.iter().zip(&ob) {
            prop_assert_eq!(x.0, y.0);
            prop_assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
    }
    Ok(())
}

proptest! {
    /// The SoA bank is a bit-for-bit transparent mirror of the AoS path on
    /// every query kernel, for exact, PBE-1, and PBE-2 cell layouts alike
    /// (hashed and direct-indexed), mid-stream and finalized, pre-epoch
    /// probes and empty cells included.
    #[test]
    fn soa_bank_is_bitwise_transparent(
        els in arb_stream(),
        seed in 0u64..50,
        q in 0u64..1_200,
        tau_ticks in 1u64..800,
        finalize in proptest::arbitrary::any::<bool>(),
    ) {
        use bed_pbe::{Pbe1, Pbe1Config};
        let tau = bed_stream::BurstSpan::new(tau_ticks).unwrap();
        // Narrow exact grid: heavy collisions, staircase pieces.
        check_bank_transparent(
            CmPbe::with_dimensions(3, 8, seed, ExactCurve::new), &els, q, tau, finalize,
        )?;
        // Wide PBE-1 grid: empty cells in every row, buffered corners.
        check_bank_transparent(
            CmPbe::with_dimensions(4, 64, seed, || Pbe1::new(Pbe1Config { n_buf: 8, eta: 4 }).unwrap()),
            &els, q, tau, finalize,
        )?;
        // PBE-2 grid: PLA segments, open polygon, pending corner.
        check_bank_transparent(
            CmPbe::with_dimensions(3, 16, seed, || Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 16 }).unwrap()),
            &els, q, tau, finalize,
        )?;
        // Direct-indexed PBE-2 row, as the dyadic hierarchy uses.
        check_bank_transparent(
            CmPbe::direct_indexed(48, || Pbe2::with_gamma(2.0).unwrap()),
            &els, q, tau, finalize,
        )?;
    }
}
