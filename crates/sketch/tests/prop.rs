//! Property-based tests for the Count-Min substrate and CM-PBE.

use bed_pbe::{ExactCurve, Pbe2, Pbe2Config};
use bed_sketch::{CmPbe, CountMin};
use bed_stream::{EventId, EventStream, Timestamp};
use proptest::prelude::*;

fn arb_stream() -> impl Strategy<Value = Vec<(u32, u64)>> {
    prop::collection::vec((0u32..32, 0u64..1_000), 1..300).prop_map(|mut v| {
        v.sort_by_key(|&(_, t)| t);
        v
    })
}

proptest! {
    /// Classic CM never underestimates any item's count.
    #[test]
    fn countmin_one_sided(els in arb_stream(), seed in 0u64..100) {
        let mut cm = CountMin::with_dimensions(4, 16, seed);
        for &(e, _) in &els {
            cm.update(e as u64, 1);
        }
        for e in 0..32u32 {
            let truth = els.iter().filter(|&&(x, _)| x == e).count() as u64;
            prop_assert!(cm.estimate(e as u64) >= truth);
        }
    }

    /// CM-PBE with exact cells: every estimate is sandwiched between the
    /// event's own curve and the full stream count, at every query time.
    #[test]
    fn cmpbe_exact_cells_sandwich(els in arb_stream(), seed in 0u64..100, q in 0u64..1_200) {
        let stream: EventStream = els.iter().copied().collect();
        let mut cm = CmPbe::with_dimensions(3, 8, seed, ExactCurve::new);
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        let t = Timestamp(q);
        let n_upto = els.iter().filter(|&&(_, ts)| ts <= q).count() as f64;
        for e in 0..32u32 {
            let truth = stream.project(EventId(e)).cumulative_frequency(t) as f64;
            let est = cm.estimate_cum(EventId(e), t);
            prop_assert!(est >= truth, "under-estimate with exact cells is impossible");
            prop_assert!(est <= n_upto, "estimate cannot exceed the stream prefix size");
        }
    }

    /// Estimates are monotone in t regardless of cell type.
    #[test]
    fn cmpbe_estimates_monotone(els in arb_stream(), seed in 0u64..50) {
        let mut cm = CmPbe::with_dimensions(3, 8, seed, ExactCurve::new);
        for &(e, t) in &els {
            cm.update(EventId(e), Timestamp(t));
        }
        for e in [0u32, 5, 31] {
            let mut prev = -1.0;
            let mut t = 0u64;
            while t <= 1_100 {
                let v = cm.estimate_cum(EventId(e), Timestamp(t));
                prop_assert!(v >= prev);
                prev = v;
                t += 37;
            }
        }
    }

    /// PBE-2 cells: the final count estimate is within collision mass plus γ
    /// of the truth — and the total over all cells of one row is N.
    #[test]
    fn cmpbe_pbe2_total_mass(els in arb_stream(), seed in 0u64..50) {
        let stream: EventStream = els.iter().copied().collect();
        let mut cm = CmPbe::with_dimensions(3, 8, seed, || {
            Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 32 }).unwrap()
        });
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        cm.finalize();
        let horizon = Timestamp(2_000);
        let n = els.len() as f64;
        for e in 0..32u32 {
            let truth = stream.project(EventId(e)).len() as f64;
            let est = cm.estimate_cum(EventId(e), horizon);
            // lower side: PBE underestimates by ≤ γ per cell; median keeps it
            prop_assert!(est >= truth - 2.0 - 1e-6, "event {}: {} < {}", e, est, truth);
            prop_assert!(est <= n + 1e-6);
        }
    }

    /// Burstiness composed from median estimates equals the Eq. 2 telescope
    /// of the public estimate_cum values.
    #[test]
    fn cmpbe_burstiness_consistent(els in arb_stream(), seed in 0u64..50, q in 0u64..1_200, tau in 1u64..200) {
        use bed_stream::BurstSpan;
        let mut cm = CmPbe::with_dimensions(3, 8, seed, ExactCurve::new);
        for &(e, t) in &els {
            cm.update(EventId(e), Timestamp(t));
        }
        let tau = BurstSpan::new(tau).unwrap();
        let t = Timestamp(q);
        for e in [0u32, 9] {
            let e = EventId(e);
            let expect = cm.estimate_cum(e, t)
                - 2.0 * cm.estimate_cum_offset(e, t, tau.ticks())
                + cm.estimate_cum_offset(e, t, 2 * tau.ticks());
            prop_assert_eq!(cm.estimate_burstiness(e, t, tau), expect);
        }
    }
}
