//! Seeded 2-universal (pairwise-independent) hash family.
//!
//! Count-Min's guarantee needs, per row, a hash drawn from a pairwise
//! independent family. We use the classic Carter–Wegman construction over
//! the Mersenne prime `p = 2^61 − 1`:
//!
//! ```text
//! h_{a,b}(x) = ((a·x + b) mod p) mod w,    a ∈ [1, p), b ∈ [0, p)
//! ```
//!
//! with exact `mod p` arithmetic via 128-bit multiplication and Mersenne
//! folding. Seeds come from a SplitMix64 generator so a sketch is fully
//! reproducible from one `u64` seed — a property the experiment harness
//! relies on.

/// The Mersenne prime 2^61 − 1.
const P: u64 = (1 << 61) - 1;

/// SplitMix64 step — a tiny, high-quality seed expander (public domain
/// constant set; implemented here to avoid a dependency for two lines).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `x mod (2^61 − 1)` via Mersenne folding of a 128-bit value.
#[inline]
fn mod_p(x: u128) -> u64 {
    // Fold twice: x ≤ 2^122, so two folds bring it below 2^62.
    let folded = (x & P as u128) + (x >> 61);
    let folded = ((folded & P as u128) + (folded >> 61)) as u64;
    if folded >= P {
        folded - P
    } else {
        folded
    }
}

/// One pairwise-independent hash function `h(x) = ((a·x + b) mod p) mod w`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
    w: u64,
}

impl PairwiseHash {
    /// Draws a function with uniformly random coefficients.
    fn draw(state: &mut u64, w: u64) -> Self {
        assert!(w > 0, "hash range must be non-empty");
        let a = 1 + splitmix64(state) % (P - 1);
        let b = splitmix64(state) % P;
        PairwiseHash { a, b, w }
    }

    /// Bucket of `x` in `[0, w)`.
    #[inline]
    pub fn bucket(&self, x: u64) -> usize {
        let v = mod_p(self.a as u128 * x as u128 + self.b as u128);
        (v % self.w) as usize
    }
}

/// `d` independent pairwise hash functions onto `[0, w)` — one per CM row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashFamily {
    funcs: Vec<PairwiseHash>,
    width: usize,
}

impl HashFamily {
    /// Draws `d` functions onto `[0, width)` from `seed`.
    pub fn new(d: usize, width: usize, seed: u64) -> Self {
        assert!(d > 0 && width > 0, "need at least one row and one column");
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        let funcs = (0..d).map(|_| PairwiseHash::draw(&mut state, width as u64)).collect();
        HashFamily { funcs, width }
    }

    /// Number of rows d.
    pub fn depth(&self) -> usize {
        self.funcs.len()
    }

    /// Row width w.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Bucket of `x` in row `row`.
    #[inline]
    pub fn bucket(&self, row: usize, x: u64) -> usize {
        self.funcs[row].bucket(x)
    }
}

impl bed_stream::Codec for HashFamily {
    fn encode(&self, w: &mut bed_stream::codec::Writer) {
        w.u64(self.width as u64);
        w.len(self.funcs.len());
        for f in &self.funcs {
            w.u64(f.a);
            w.u64(f.b);
        }
    }

    fn decode(r: &mut bed_stream::codec::Reader<'_>) -> Result<Self, bed_stream::CodecError> {
        use bed_stream::CodecError;
        let width = r.u64("hash width")? as usize;
        let d = r.len("hash function count", 16)?;
        if width == 0 || d == 0 {
            return Err(CodecError::Invalid { context: "hash family dimensions" });
        }
        let mut funcs = Vec::with_capacity(d);
        for _ in 0..d {
            let a = r.u64("hash coefficient a")?;
            let b = r.u64("hash coefficient b")?;
            if a == 0 || a >= P || b >= P {
                return Err(CodecError::Invalid { context: "hash coefficients" });
            }
            funcs.push(PairwiseHash { a, b, w: width as u64 });
        }
        Ok(HashFamily { funcs, width })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_p_agrees_with_u128_remainder() {
        for x in [
            0u128,
            1,
            P as u128 - 1,
            P as u128,
            P as u128 + 1,
            u64::MAX as u128,
            (P as u128) * (P as u128),
        ] {
            assert_eq!(mod_p(x) as u128, x % P as u128, "x={x}");
        }
    }

    #[test]
    fn buckets_are_in_range_and_deterministic() {
        let fam = HashFamily::new(5, 97, 42);
        let fam2 = HashFamily::new(5, 97, 42);
        for row in 0..5 {
            for x in 0..1000u64 {
                let b = fam.bucket(row, x);
                assert!(b < 97);
                assert_eq!(b, fam2.bucket(row, x), "same seed must reproduce");
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = HashFamily::new(3, 64, 1);
        let b = HashFamily::new(3, 64, 2);
        let disagreements =
            (0..500u64).filter(|&x| (0..3).any(|r| a.bucket(r, x) != b.bucket(r, x))).count();
        assert!(disagreements > 400, "only {disagreements} disagreements");
    }

    #[test]
    fn rows_are_mutually_independent_ish() {
        let fam = HashFamily::new(2, 64, 7);
        // Two rows agreeing everywhere would break the union bound over rows.
        let agreements = (0..1000u64).filter(|&x| fam.bucket(0, x) == fam.bucket(1, x)).count();
        assert!(agreements < 100, "{agreements} agreements out of 1000");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let fam = HashFamily::new(1, 16, 99);
        let mut counts = [0usize; 16];
        let n = 16_000u64;
        for x in 0..n {
            counts[fam.bucket(0, x)] += 1;
        }
        let expected = n as usize / 16;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "bucket {i} wildly off: {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn collision_rate_matches_pairwise_bound() {
        // Pr[h(x) = h(y)] ≤ 1/w for x ≠ y; empirically over many pairs the
        // rate should be close to 1/w, certainly below 2/w.
        let w = 32;
        let fam = HashFamily::new(1, w, 1234);
        let mut collisions = 0usize;
        let mut pairs = 0usize;
        for x in 0..200u64 {
            for y in (x + 1)..200 {
                pairs += 1;
                if fam.bucket(0, x) == fam.bucket(0, y) {
                    collisions += 1;
                }
            }
        }
        let rate = collisions as f64 / pairs as f64;
        assert!(rate < 2.0 / w as f64, "collision rate {rate} vs 1/w = {}", 1.0 / w as f64);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_panics() {
        HashFamily::new(0, 8, 1);
    }
}
