//! CM-PBE: Count-Min layout with persistent burstiness estimators as cells
//! (Section IV, Fig. 5).

use bed_pbe::CurveSketch;
use bed_stream::{BurstSpan, EventId, StreamError, Timestamp};

use crate::hash::HashFamily;
use crate::params::SketchParams;

/// Row-combination strategy (see [`CmPbe::estimate_cum_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combiner {
    /// The paper's choice: balances CM over- and PBE under-estimation.
    Median,
    /// Classic Count-Min combiner — biased low with PBE cells.
    Min,
    /// Upper envelope — biased high by collisions.
    Max,
}

/// A `d × w` grid of curve sketches indexed by pairwise-independent hashes.
///
/// Generic over the cell type `P`: `CmPbe<Pbe1>` is the paper's CM-PBE-1,
/// `CmPbe<Pbe2>` is CM-PBE-2, and `CmPbe<ExactCurve>` isolates pure
/// hash-collision error for ablations.
///
/// ```
/// use bed_pbe::{Pbe2, Pbe2Config};
/// use bed_sketch::{CmPbe, SketchParams};
/// use bed_stream::{BurstSpan, EventId, Timestamp};
///
/// let params = SketchParams::new(0.01, 0.05).unwrap();
/// let mut cm = CmPbe::new(params, 42, || Pbe2::with_gamma(2.0).unwrap()).unwrap();
///
/// // event 7 bursts at the end of a 1000-tick stream of 50 events
/// for t in 0..1_000u64 {
///     cm.update(EventId((t % 50) as u32), Timestamp(t));
///     if t >= 950 {
///         for _ in 0..5 {
///             cm.update(EventId(7), Timestamp(t));
///         }
///     }
/// }
/// cm.finalize();
///
/// let tau = BurstSpan::new(100).unwrap();
/// let b7 = cm.estimate_burstiness(EventId(7), Timestamp(999), tau);
/// let b3 = cm.estimate_burstiness(EventId(3), Timestamp(999), tau);
/// assert!(b7 > 100.0, "bursting event: {b7}");
/// assert!(b3.abs() < 50.0, "steady event: {b3}");
/// ```
#[derive(Debug, Clone)]
pub struct CmPbe<P> {
    hashes: HashFamily,
    cells: Vec<P>,
    arrivals: u64,
    /// Direct-indexed mode: ids map to `id` itself (a perfect hash). Used
    /// when the id universe fits in one row — no collisions, no need for
    /// multiple rows.
    identity: bool,
}

impl<P: CurveSketch> CmPbe<P> {
    /// Builds a grid from accuracy parameters; `make_cell` constructs each
    /// of the `d·w` cells (they must start empty and identical up to
    /// configuration).
    pub fn new(
        params: SketchParams,
        seed: u64,
        make_cell: impl FnMut() -> P,
    ) -> Result<Self, StreamError> {
        params.validate()?;
        Ok(Self::with_dimensions(params.depth(), params.width(), seed, make_cell))
    }

    /// Builds a grid with explicit dimensions.
    pub fn with_dimensions(
        depth: usize,
        width: usize,
        seed: u64,
        mut make_cell: impl FnMut() -> P,
    ) -> Self {
        let hashes = HashFamily::new(depth, width, seed);
        let cells = (0..depth * width).map(|_| make_cell()).collect();
        CmPbe { hashes, cells, arrivals: 0, identity: false }
    }

    /// Builds a **direct-indexed** grid: one row of `universe` cells where id
    /// `x` maps to cell `x`. A perfect hash — zero collision error — used
    /// when the id universe is smaller than the row width a hashed grid
    /// would need (e.g. the upper levels of the dyadic hierarchy, where a
    /// 2-bucket hashed row would collide half the time).
    pub fn direct_indexed(universe: usize, mut make_cell: impl FnMut() -> P) -> Self {
        let hashes = HashFamily::new(1, universe, 0);
        let cells = (0..universe).map(|_| make_cell()).collect();
        CmPbe { hashes, cells, arrivals: 0, identity: true }
    }

    /// Rows d.
    pub fn depth(&self) -> usize {
        self.hashes.depth()
    }

    /// Columns w.
    pub fn width(&self) -> usize {
        self.hashes.width()
    }

    /// Elements ingested so far (N).
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    #[inline]
    fn cell_index(&self, row: usize, event: EventId) -> usize {
        if self.identity {
            assert!(
                (event.value() as usize) < self.width(),
                "event id {} outside the direct-indexed universe of {}",
                event.value(),
                self.width()
            );
            return event.value() as usize;
        }
        row * self.width() + self.hashes.bucket(row, event.value() as u64)
    }

    /// Records `(event, ts)`: one cell per row ingests the timestamp,
    /// ignoring the id (Fig. 5). Timestamps must be non-decreasing.
    pub fn update(&mut self, event: EventId, ts: Timestamp) {
        for row in 0..self.depth() {
            let idx = self.cell_index(row, event);
            self.cells[idx].update(ts);
        }
        self.arrivals += 1;
    }

    /// Ingests a whole batch sequentially (baseline for the parallel path).
    pub fn update_batch(&mut self, batch: &[(EventId, Timestamp)]) {
        for &(e, t) in batch {
            self.update(e, t);
        }
    }

    /// Ingests a batch with **one thread per row** — the paper's
    /// "parallel processing on mutually exclusive partitions" applied to
    /// the CM layout: rows touch disjoint cell ranges, so they ingest the
    /// same batch independently with no synchronisation.
    ///
    /// Direct-indexed grids have a single row and fall back to the
    /// sequential path. The batch must be timestamp-sorted (same contract as
    /// repeated [`CmPbe::update`] calls).
    pub fn update_batch_parallel(&mut self, batch: &[(EventId, Timestamp)])
    where
        P: Send,
    {
        let w = self.width();
        let d = self.depth();
        if self.identity || d == 1 || batch.len() < 1_024 {
            self.update_batch(batch);
            return;
        }
        let hashes = &self.hashes;
        std::thread::scope(|scope| {
            for (row, row_cells) in self.cells.chunks_mut(w).enumerate() {
                scope.spawn(move || {
                    for &(e, t) in batch {
                        let b = hashes.bucket(row, e.value() as u64);
                        row_cells[b].update(t);
                    }
                });
            }
        });
        self.arrivals += batch.len() as u64;
    }

    /// Flushes internal buffering in every cell.
    pub fn finalize(&mut self) {
        for cell in &mut self.cells {
            cell.finalize();
        }
    }

    /// Per-row estimates of `F_e(t)` — each approximates the *mixed* curve
    /// of everything hashed into that cell, so each is (PBE-error aside) an
    /// overestimate of `F_e(t)`.
    fn row_estimates(&self, event: EventId, t: Timestamp) -> Vec<f64> {
        (0..self.depth())
            .map(|row| self.cells[self.cell_index(row, event)].estimate_cum(t))
            .collect()
    }

    /// Median-combined estimate `F̃_e(t)` (Theorem 1).
    pub fn estimate_cum(&self, event: EventId, t: Timestamp) -> f64 {
        median(self.row_estimates(event, t))
    }

    /// Estimate with an explicit row combiner — ablation hook for comparing
    /// the paper's median against the classic Count-Min minimum (which is
    /// wrong here: the PBE's one-sided *under*-estimation means the minimum
    /// row systematically undershoots) and the maximum.
    pub fn estimate_cum_with(&self, event: EventId, t: Timestamp, combiner: Combiner) -> f64 {
        let rows = self.row_estimates(event, t);
        match combiner {
            Combiner::Median => median(rows),
            Combiner::Min => rows.into_iter().fold(f64::INFINITY, f64::min),
            Combiner::Max => rows.into_iter().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Burstiness via an explicit combiner (composes Eq. 2 from the
    /// combined cumulative estimates, like [`CmPbe::estimate_burstiness`]).
    pub fn estimate_burstiness_with(
        &self,
        event: EventId,
        t: Timestamp,
        tau: BurstSpan,
        combiner: Combiner,
    ) -> f64 {
        let at = |q: Option<Timestamp>| match q {
            Some(q) => self.estimate_cum_with(event, q, combiner),
            None => 0.0,
        };
        at(Some(t)) - 2.0 * at(t.checked_sub(tau.ticks()))
            + at(t.checked_sub(tau.ticks().saturating_mul(2)))
    }

    /// `F̃_e(t − delta)` with pre-epoch times as 0.
    pub fn estimate_cum_offset(&self, event: EventId, t: Timestamp, delta: u64) -> f64 {
        match t.checked_sub(delta) {
            Some(earlier) => self.estimate_cum(event, earlier),
            None => 0.0,
        }
    }

    /// Estimated burst frequency `b̃f_e(t)`.
    pub fn estimate_burst_frequency(&self, event: EventId, t: Timestamp, tau: BurstSpan) -> f64 {
        self.estimate_cum(event, t) - self.estimate_cum_offset(event, t, tau.ticks())
    }

    /// Estimated burstiness `b̃_e(t)` from the median cumulative estimates
    /// (Lemma 5; the paper composes b̃ from the three median F̃ terms).
    pub fn estimate_burstiness(&self, event: EventId, t: Timestamp, tau: BurstSpan) -> f64 {
        let f0 = self.estimate_cum(event, t);
        let f1 = self.estimate_cum_offset(event, t, tau.ticks());
        let f2 = self.estimate_cum_offset(event, t, tau.ticks().saturating_mul(2));
        f0 - 2.0 * f1 + f2
    }

    /// Ablation variant: compute burstiness per row, then take the median of
    /// the d burstiness values (instead of median-then-compose).
    pub fn estimate_burstiness_rowwise(&self, event: EventId, t: Timestamp, tau: BurstSpan) -> f64 {
        let vals = (0..self.depth())
            .map(|row| {
                let cell = &self.cells[self.cell_index(row, event)];
                cell.estimate_burstiness(t, tau)
            })
            .collect();
        median(vals)
    }

    /// Union of segment-start knees across the cells `event` maps to —
    /// the probe instants for a bursty-time query over this event
    /// (Section V).
    pub fn segment_starts(&self, event: EventId) -> Vec<Timestamp> {
        let mut out: Vec<Timestamp> = (0..self.depth())
            .flat_map(|row| self.cells[self.cell_index(row, event)].segment_starts())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Summary size in bytes (sum over cells; hash seeds are negligible).
    pub fn size_bytes(&self) -> usize {
        self.cells.iter().map(|c| c.size_bytes()).sum()
    }

    /// Structural readings for observability: grid dimensions, cell fill,
    /// and the heaviest cell's arrival count (a collision proxy — in a
    /// direct-indexed grid it is simply the most frequent event, while in a
    /// hashed grid a cell far above `N/w` signals colliding heavy ids).
    pub fn structure(&self) -> CmStructure {
        let mut occupied = 0usize;
        let mut heaviest = 0u64;
        let mut pieces = 0usize;
        let mut buffered = 0usize;
        for cell in &self.cells {
            let a = cell.arrivals();
            if a > 0 {
                occupied += 1;
            }
            heaviest = heaviest.max(a);
            let stats = cell.summary_stats();
            pieces += stats.pieces;
            buffered += stats.buffered;
        }
        CmStructure {
            depth: self.depth(),
            width: self.width(),
            cells: self.cells.len(),
            occupied_cells: occupied,
            heaviest_cell_arrivals: heaviest,
            pieces,
            buffered,
            bytes: self.size_bytes(),
        }
    }
}

/// Structural readings of one CM-PBE grid (see [`CmPbe::structure`]).
/// Plain data consumed by `bed-core`'s metrics layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CmStructure {
    /// Rows `d`.
    pub depth: usize,
    /// Columns `w`.
    pub width: usize,
    /// Total cells `d·w`.
    pub cells: usize,
    /// Cells that have ingested at least one arrival.
    pub occupied_cells: usize,
    /// Largest per-cell arrival count (collision proxy).
    pub heaviest_cell_arrivals: u64,
    /// Summary pieces across all cells (staircase points / PLA segments).
    pub pieces: usize,
    /// Buffered exact state across all cells awaiting compression.
    pub buffered: usize,
    /// Total byte footprint of the grid's summaries.
    pub bytes: usize,
}

impl CmStructure {
    /// Element-wise sum (used by the hierarchy to roll levels up).
    pub fn accumulate(&mut self, other: &CmStructure) {
        self.depth += other.depth;
        self.width += other.width;
        self.cells += other.cells;
        self.occupied_cells += other.occupied_cells;
        self.heaviest_cell_arrivals = self.heaviest_cell_arrivals.max(other.heaviest_cell_arrivals);
        self.pieces += other.pieces;
        self.buffered += other.buffered;
        self.bytes += other.bytes;
    }
}

/// Persistence (format `CMPB` v1): hash family, every cell, the arrival
/// count, and the indexing mode. Generic over any `Codec` cell type.
impl<P: bed_stream::Codec> bed_stream::Codec for CmPbe<P> {
    fn encode(&self, w: &mut bed_stream::codec::Writer) {
        w.magic(*b"CMPB");
        w.version(1);
        w.u8(u8::from(self.identity));
        self.hashes.encode(w);
        w.len(self.cells.len());
        for cell in &self.cells {
            cell.encode(w);
        }
        w.u64(self.arrivals);
    }

    fn decode(r: &mut bed_stream::codec::Reader<'_>) -> Result<Self, bed_stream::CodecError> {
        use bed_stream::CodecError;
        r.magic(*b"CMPB")?;
        r.version(1)?;
        let identity = match r.u8("cmpbe identity flag")? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::Invalid { context: "cmpbe identity flag" }),
        };
        let hashes = HashFamily::decode(r)?;
        let n = r.len("cmpbe cell count", 1)?;
        let expected = if identity { hashes.width() } else { hashes.depth() * hashes.width() };
        if n != expected {
            return Err(CodecError::Invalid { context: "cmpbe cell count" });
        }
        let mut cells = Vec::with_capacity(n);
        for _ in 0..n {
            cells.push(P::decode(r)?);
        }
        let arrivals = r.u64("cmpbe arrivals")?;
        Ok(CmPbe { hashes, cells, arrivals, identity })
    }
}

/// Median of an unsorted sample; averages the two middles for even sizes.
fn median(mut vals: Vec<f64>) -> f64 {
    assert!(!vals.is_empty(), "median of an empty sample");
    vals.sort_by(|a, b| a.partial_cmp(b).expect("estimates are never NaN"));
    let n = vals.len();
    if n % 2 == 1 {
        vals[n / 2]
    } else {
        (vals[n / 2 - 1] + vals[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bed_pbe::{ExactCurve, Pbe1, Pbe1Config, Pbe2, Pbe2Config};
    use bed_stream::EventStream;

    fn mixed_stream(events: u32, arrivals_per_event: u64) -> EventStream {
        // Interleaved constant-rate streams with different phases.
        let mut els = Vec::new();
        for e in 0..events {
            for i in 0..arrivals_per_event {
                els.push((e, i * 10 + e as u64));
            }
        }
        els.sort_by_key(|&(_, t)| t);
        els.into_iter().collect()
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(vec![7.0]), 7.0);
    }

    #[test]
    fn exact_cells_overestimate_only() {
        // With exact cells the only error is hash collision, which can only
        // inflate the per-row estimate; the median of overestimates is ≥ F.
        let stream = mixed_stream(50, 20);
        let mut cm = CmPbe::with_dimensions(3, 16, 42, ExactCurve::new);
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        for e in 0..50u32 {
            let truth = stream.project(EventId(e)).len() as f64;
            let est = cm.estimate_cum(EventId(e), Timestamp(u64::MAX - 1));
            assert!(est >= truth, "event {e}: {est} < {truth}");
        }
        assert_eq!(cm.arrivals(), 1000);
    }

    #[test]
    fn wide_grid_is_nearly_exact() {
        // Far more columns than events → no collisions → exact.
        let stream = mixed_stream(10, 30);
        let mut cm = CmPbe::with_dimensions(4, 4096, 7, ExactCurve::new);
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        for e in 0..10u32 {
            for t in [50u64, 150, 250] {
                let truth = stream.project(EventId(e)).cumulative_frequency(Timestamp(t)) as f64;
                assert_eq!(cm.estimate_cum(EventId(e), Timestamp(t)), truth);
            }
        }
    }

    #[test]
    fn pbe1_cells_bound_error() {
        let stream = mixed_stream(40, 50);
        let mut cm = CmPbe::with_dimensions(5, 64, 3, || {
            Pbe1::new(Pbe1Config { n_buf: 64, eta: 16 }).unwrap()
        });
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        cm.finalize();
        let n = cm.arrivals() as f64;
        let mut worst = 0.0f64;
        for e in 0..40u32 {
            let truth = stream.project(EventId(e)).cumulative_frequency(Timestamp(300)) as f64;
            let est = cm.estimate_cum(EventId(e), Timestamp(300));
            worst = worst.max((est - truth).abs());
        }
        // generous sanity bound: collisions ≤ a few ε·N with ε ≈ e/64
        assert!(worst <= 0.2 * n, "worst error {worst} vs N={n}");
    }

    #[test]
    fn pbe2_cells_work_and_burstiness_is_finite() {
        let stream = mixed_stream(20, 40);
        let mut cm = CmPbe::with_dimensions(3, 32, 9, || {
            Pbe2::new(Pbe2Config { gamma: 4.0, max_vertices: 32 }).unwrap()
        });
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        cm.finalize();
        let tau = BurstSpan::new(50).unwrap();
        for e in [0u32, 7, 19] {
            let b = cm.estimate_burstiness(EventId(e), Timestamp(350), tau);
            assert!(b.is_finite());
            let br = cm.estimate_burstiness_rowwise(EventId(e), Timestamp(350), tau);
            assert!(br.is_finite());
        }
        assert!(cm.size_bytes() > 0);
        assert!(!cm.segment_starts(EventId(0)).is_empty());
    }

    #[test]
    fn same_seed_reproduces_estimates() {
        let stream = mixed_stream(30, 10);
        let build = || {
            let mut cm = CmPbe::with_dimensions(4, 32, 1234, || {
                Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 16 }).unwrap()
            });
            for el in stream.iter() {
                cm.update(el.event, el.ts);
            }
            cm.finalize();
            cm
        };
        let a = build();
        let b = build();
        for e in 0..30u32 {
            assert_eq!(
                a.estimate_cum(EventId(e), Timestamp(200)),
                b.estimate_cum(EventId(e), Timestamp(200))
            );
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let r = CmPbe::new(SketchParams { epsilon: 2.0, delta: 0.1 }, 1, ExactCurve::new);
        assert!(r.is_err());
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let batch: Vec<(EventId, Timestamp)> =
            (0..8_000u64).map(|i| (EventId((i * 7 % 300) as u32), Timestamp(i / 4))).collect();
        let mut seq = CmPbe::with_dimensions(4, 64, 11, ExactCurve::new);
        let mut par = CmPbe::with_dimensions(4, 64, 11, ExactCurve::new);
        seq.update_batch(&batch);
        par.update_batch_parallel(&batch);
        assert_eq!(seq.arrivals(), par.arrivals());
        for e in (0..300u32).step_by(13) {
            for t in [100u64, 1_000, 1_999] {
                assert_eq!(
                    seq.estimate_cum(EventId(e), Timestamp(t)),
                    par.estimate_cum(EventId(e), Timestamp(t)),
                    "e={e} t={t}"
                );
            }
        }
    }

    #[test]
    fn small_batches_fall_back_to_sequential() {
        let batch: Vec<(EventId, Timestamp)> =
            (0..100u64).map(|i| (EventId(i as u32 % 10), Timestamp(i))).collect();
        let mut cm = CmPbe::with_dimensions(3, 16, 5, ExactCurve::new);
        cm.update_batch_parallel(&batch);
        assert_eq!(cm.arrivals(), 100);
    }
}
