//! CM-PBE: Count-Min layout with persistent burstiness estimators as cells
//! (Section IV, Fig. 5).

use bed_pbe::kernel::CumHint;
use bed_pbe::soa::ProbeRows;
use bed_pbe::CurveSketch;
use bed_stream::{BurstSpan, EventId, StreamError, Timestamp};

use crate::bank::CellBank;
use crate::hash::HashFamily;
use crate::params::SketchParams;

/// Row-combination strategy (see [`CmPbe::estimate_cum_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combiner {
    /// The paper's choice: balances CM over- and PBE under-estimation.
    Median,
    /// Classic Count-Min combiner — biased low with PBE cells.
    Min,
    /// Upper envelope — biased high by collisions.
    Max,
}

/// A `d × w` grid of curve sketches indexed by pairwise-independent hashes.
///
/// Generic over the cell type `P`: `CmPbe<Pbe1>` is the paper's CM-PBE-1,
/// `CmPbe<Pbe2>` is CM-PBE-2, and `CmPbe<ExactCurve>` isolates pure
/// hash-collision error for ablations.
///
/// ```
/// use bed_pbe::{Pbe2, Pbe2Config};
/// use bed_sketch::{CmPbe, SketchParams};
/// use bed_stream::{BurstSpan, EventId, Timestamp};
///
/// let params = SketchParams::new(0.01, 0.05).unwrap();
/// let mut cm = CmPbe::new(params, 42, || Pbe2::with_gamma(2.0).unwrap()).unwrap();
///
/// // event 7 bursts at the end of a 1000-tick stream of 50 events
/// for t in 0..1_000u64 {
///     cm.update(EventId((t % 50) as u32), Timestamp(t));
///     if t >= 950 {
///         for _ in 0..5 {
///             cm.update(EventId(7), Timestamp(t));
///         }
///     }
/// }
/// cm.finalize();
///
/// let tau = BurstSpan::new(100).unwrap();
/// let b7 = cm.estimate_burstiness(EventId(7), Timestamp(999), tau);
/// let b3 = cm.estimate_burstiness(EventId(3), Timestamp(999), tau);
/// assert!(b7 > 100.0, "bursting event: {b7}");
/// assert!(b3.abs() < 50.0, "steady event: {b3}");
/// ```
#[derive(Debug, Clone)]
pub struct CmPbe<P> {
    hashes: HashFamily,
    cells: Vec<P>,
    arrivals: u64,
    /// Direct-indexed mode: ids map to `id` itself (a perfect hash). Used
    /// when the id universe fits in one row — no collisions, no need for
    /// multiple rows.
    identity: bool,
    /// Struct-of-arrays query mirror of `cells`, built by
    /// [`CmPbe::finalize`] and dropped by any ingest. Purely an
    /// acceleration structure: never persisted (the `CMPB` codec skips it)
    /// and bit-for-bit transparent to every query.
    bank: Option<CellBank>,
}

impl<P: CurveSketch> CmPbe<P> {
    /// Builds a grid from accuracy parameters; `make_cell` constructs each
    /// of the `d·w` cells (they must start empty and identical up to
    /// configuration).
    pub fn new(
        params: SketchParams,
        seed: u64,
        make_cell: impl FnMut() -> P,
    ) -> Result<Self, StreamError> {
        params.validate()?;
        Ok(Self::with_dimensions(params.depth(), params.width(), seed, make_cell))
    }

    /// Builds a grid with explicit dimensions.
    pub fn with_dimensions(
        depth: usize,
        width: usize,
        seed: u64,
        mut make_cell: impl FnMut() -> P,
    ) -> Self {
        // A zero-dimension grid has no rows to combine: every estimate
        // would be a fold over an empty sample (±∞ under Min/Max, a panic
        // under Median). Reject at construction instead.
        assert!(depth >= 1, "CmPbe needs at least one row (depth = 0)");
        assert!(width >= 1, "CmPbe needs at least one column (width = 0)");
        let hashes = HashFamily::new(depth, width, seed);
        let cells = (0..depth * width).map(|_| make_cell()).collect();
        CmPbe { hashes, cells, arrivals: 0, identity: false, bank: None }
    }

    /// Builds a **direct-indexed** grid: one row of `universe` cells where id
    /// `x` maps to cell `x`. A perfect hash — zero collision error — used
    /// when the id universe is smaller than the row width a hashed grid
    /// would need (e.g. the upper levels of the dyadic hierarchy, where a
    /// 2-bucket hashed row would collide half the time).
    pub fn direct_indexed(universe: usize, mut make_cell: impl FnMut() -> P) -> Self {
        assert!(universe >= 1, "direct-indexed CmPbe needs a non-empty universe");
        let hashes = HashFamily::new(1, universe, 0);
        let cells = (0..universe).map(|_| make_cell()).collect();
        CmPbe { hashes, cells, arrivals: 0, identity: true, bank: None }
    }

    /// Rows d.
    pub fn depth(&self) -> usize {
        self.hashes.depth()
    }

    /// Columns w.
    pub fn width(&self) -> usize {
        self.hashes.width()
    }

    /// Elements ingested so far (N).
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    #[inline]
    fn cell_index(&self, row: usize, event: EventId) -> usize {
        if self.identity {
            assert!(
                (event.value() as usize) < self.width(),
                "event id {} outside the direct-indexed universe of {}",
                event.value(),
                self.width()
            );
            return event.value() as usize;
        }
        row * self.width() + self.hashes.bucket(row, event.value() as u64)
    }

    /// Records `(event, ts)`: one cell per row ingests the timestamp,
    /// ignoring the id (Fig. 5). Timestamps must be non-decreasing.
    pub fn update(&mut self, event: EventId, ts: Timestamp) {
        // Any mutation invalidates the SoA mirror; the next finalize
        // rebuilds it. A plain store — `None` stays `None` on the hot
        // ingest path, so this costs nothing after the first arrival.
        self.bank = None;
        for row in 0..self.depth() {
            let idx = self.cell_index(row, event);
            self.cells[idx].update(ts);
        }
        self.arrivals += 1;
    }

    /// Ingests a whole batch sequentially (baseline for the parallel path).
    pub fn update_batch(&mut self, batch: &[(EventId, Timestamp)]) {
        for &(e, t) in batch {
            self.update(e, t);
        }
    }

    /// Ingests a batch with **one thread per row** — the paper's
    /// "parallel processing on mutually exclusive partitions" applied to
    /// the CM layout: rows touch disjoint cell ranges, so they ingest the
    /// same batch independently with no synchronisation.
    ///
    /// Direct-indexed grids have a single row and fall back to the
    /// sequential path. The batch must be timestamp-sorted (same contract as
    /// repeated [`CmPbe::update`] calls).
    pub fn update_batch_parallel(&mut self, batch: &[(EventId, Timestamp)])
    where
        P: Send,
    {
        let w = self.width();
        let d = self.depth();
        if self.identity || d == 1 || batch.len() < 1_024 {
            self.update_batch(batch);
            return;
        }
        self.bank = None;
        let hashes = &self.hashes;
        std::thread::scope(|scope| {
            for (row, row_cells) in self.cells.chunks_mut(w).enumerate() {
                scope.spawn(move || {
                    for &(e, t) in batch {
                        let b = hashes.bucket(row, e.value() as u64);
                        row_cells[b].update(t);
                    }
                });
            }
        });
        self.arrivals += batch.len() as u64;
    }

    /// Flushes internal buffering in every cell, then (re)builds the
    /// struct-of-arrays query mirror so every subsequent query rides the
    /// batched SoA kernels. Ingest after finalize drops the mirror again.
    pub fn finalize(&mut self) {
        for cell in &mut self.cells {
            cell.finalize();
        }
        self.build_bank();
    }

    /// (Re)builds the SoA cell bank from the cells' current state without
    /// finalizing them — exposed so equivalence tests and benches can
    /// compare the banked and bank-free paths on identical cell state.
    pub fn build_bank(&mut self) {
        // A single unbankable cell (a tier-compacted composite, say) poisons
        // the whole grid: the bank's piece export would not be bit-identical
        // to the AoS estimate, so the grid stays on the AoS path.
        if self.cells.iter().any(|c| !c.bankable()) {
            self.bank = None;
            return;
        }
        self.bank = Some(CellBank::build(&self.cells));
    }

    /// Visits every cell immutably (row-major) — observability walks.
    pub fn for_each_cell(&self, mut f: impl FnMut(&P)) {
        for cell in &self.cells {
            f(cell);
        }
    }

    /// Visits every cell mutably (row-major), dropping the SoA mirror
    /// first since any mutation invalidates it. Retention compaction runs
    /// through here.
    pub fn for_each_cell_mut(&mut self, mut f: impl FnMut(&mut P)) {
        self.bank = None;
        for cell in &mut self.cells {
            f(cell);
        }
    }

    /// Drops the SoA mirror, forcing queries back onto the per-cell
    /// array-of-structs path (the bank-free baseline).
    pub fn clear_bank(&mut self) {
        self.bank = None;
    }

    /// Whether the SoA query mirror is currently built.
    pub fn has_bank(&self) -> bool {
        self.bank.is_some()
    }

    /// Resident bytes of the SoA mirror (0 when absent). Reported separately
    /// from [`CmPbe::size_bytes`], which keeps the paper's summary-only
    /// accounting.
    pub fn bank_size_bytes(&self) -> usize {
        self.bank.as_ref().map_or(0, CellBank::size_bytes)
    }

    /// Per-row estimates of `F_e(t)` — each approximates the *mixed* curve
    /// of everything hashed into that cell, so each is (PBE-error aside) an
    /// overestimate of `F_e(t)`.
    fn row_estimates(&self, event: EventId, t: Timestamp) -> Vec<f64> {
        (0..self.depth())
            .map(|row| self.cells[self.cell_index(row, event)].estimate_cum(t))
            .collect()
    }

    /// Median-combined estimate `F̃_e(t)` (Theorem 1).
    pub fn estimate_cum(&self, event: EventId, t: Timestamp) -> f64 {
        let d = self.depth();
        if d <= MEDIAN_STACK {
            let mut vals = [0.0f64; MEDIAN_STACK];
            for (row, v) in vals[..d].iter_mut().enumerate() {
                let ci = self.cell_index(row, event);
                *v = match &self.bank {
                    Some(bank) => bank.cum_cell(ci, t),
                    None => self.cells[ci].estimate_cum(t),
                };
            }
            median_stack(&mut vals[..d])
        } else {
            median(self.row_estimates(event, t))
        }
    }

    /// Fused `[F̃_e(t), F̃_e(t−τ), F̃_e(t−2τ)]` — the three Eq. 2 probes of
    /// one event resolved cell by cell (each cell's own
    /// [`CurveSketch::probe3`] fast path runs once per row), then combined
    /// by three stack medians. Pre-epoch offsets read 0, matching
    /// [`CmPbe::estimate_cum_offset`]. Bit-for-bit equal to three
    /// [`CmPbe::estimate_cum`] calls; allocation-free for `d ≤ MEDIAN_STACK`.
    pub fn probe3(&self, event: EventId, t: Timestamp, tau: BurstSpan) -> [f64; 3] {
        let d = self.depth();
        let t1 = t.checked_sub(tau.ticks());
        let t2 = t.checked_sub(tau.ticks().saturating_mul(2));
        if d > MEDIAN_STACK {
            return [
                self.estimate_cum(event, t),
                t1.map_or(0.0, |e| self.estimate_cum(event, e)),
                t2.map_or(0.0, |e| self.estimate_cum(event, e)),
            ];
        }
        if let Some(bank) = &self.bank {
            // Batched SoA path: all d rows of the (t, τ) probe resolved in
            // one `probe3_rows` pass, combined lane-wise.
            let mut lanes = [0u32; MEDIAN_STACK];
            for (row, lane) in lanes[..d].iter_mut().enumerate() {
                *lane = self.cell_index(row, event) as u32;
            }
            let mut rows = ProbeRows::default();
            bank.probe3_rows(&lanes[..d], t, tau, &mut rows);
            return median_stack_rows(
                d,
                &mut rows.v0,
                &mut rows.v1,
                &mut rows.v2,
                t1.is_some(),
                t2.is_some(),
            );
        }
        let mut v0 = [0.0f64; MEDIAN_STACK];
        let mut v1 = [0.0f64; MEDIAN_STACK];
        let mut v2 = [0.0f64; MEDIAN_STACK];
        for row in 0..d {
            let p = self.cells[self.cell_index(row, event)].probe3(t, tau);
            v0[row] = p[0];
            v1[row] = p[1];
            v2[row] = p[2];
        }
        median_stack_rows(d, &mut v0, &mut v1, &mut v2, t1.is_some(), t2.is_some())
    }

    /// [`CmPbe::probe3`] with the scratch stage clocks armed: bit-for-bit
    /// the same three estimates, with the cell-probe and median-combine
    /// phases timed separately and bank/scalar probes counted into
    /// `stages`. Falls straight through to [`CmPbe::probe3`] when the
    /// clocks are disarmed, so the untraced path pays one branch.
    pub fn probe3_stages(
        &self,
        event: EventId,
        t: Timestamp,
        tau: BurstSpan,
        stages: &mut StageTimings,
    ) -> [f64; 3] {
        if !stages.enabled {
            return self.probe3(event, t, tau);
        }
        let d = self.depth();
        let t1 = t.checked_sub(tau.ticks());
        let t2 = t.checked_sub(tau.ticks().saturating_mul(2));
        let probe_t0 = std::time::Instant::now();
        if d > MEDIAN_STACK {
            // Deep grids fall back to the scattered per-offset estimates;
            // the medians interleave with the probes, so the whole pass is
            // attributed to the probe stage.
            let r = [
                self.estimate_cum(event, t),
                t1.map_or(0.0, |e| self.estimate_cum(event, e)),
                t2.map_or(0.0, |e| self.estimate_cum(event, e)),
            ];
            stages.scalar_probes += 3 * d as u64;
            stages.cell_probe_ns += probe_t0.elapsed().as_nanos() as u64;
            return r;
        }
        if let Some(bank) = &self.bank {
            let mut lanes = [0u32; MEDIAN_STACK];
            for (row, lane) in lanes[..d].iter_mut().enumerate() {
                *lane = self.cell_index(row, event) as u32;
            }
            let mut rows = ProbeRows::default();
            bank.probe3_rows(&lanes[..d], t, tau, &mut rows);
            stages.bank_probes += 3 * d as u64;
            stages.cell_probe_ns += probe_t0.elapsed().as_nanos() as u64;
            let combine_t0 = std::time::Instant::now();
            let r = median_stack_rows(
                d,
                &mut rows.v0,
                &mut rows.v1,
                &mut rows.v2,
                t1.is_some(),
                t2.is_some(),
            );
            stages.median_combine_ns += combine_t0.elapsed().as_nanos() as u64;
            return r;
        }
        let mut v0 = [0.0f64; MEDIAN_STACK];
        let mut v1 = [0.0f64; MEDIAN_STACK];
        let mut v2 = [0.0f64; MEDIAN_STACK];
        for row in 0..d {
            let p = self.cells[self.cell_index(row, event)].probe3(t, tau);
            v0[row] = p[0];
            v1[row] = p[1];
            v2[row] = p[2];
        }
        stages.scalar_probes += 3 * d as u64;
        stages.cell_probe_ns += probe_t0.elapsed().as_nanos() as u64;
        let combine_t0 = std::time::Instant::now();
        let r = median_stack_rows(d, &mut v0, &mut v1, &mut v2, t1.is_some(), t2.is_some());
        stages.median_combine_ns += combine_t0.elapsed().as_nanos() as u64;
        r
    }

    /// [`CmPbe::estimate_burstiness`] through [`CmPbe::probe3_stages`]:
    /// identical value, stage clocks populated when armed.
    pub fn estimate_burstiness_stages(
        &self,
        event: EventId,
        t: Timestamp,
        tau: BurstSpan,
        stages: &mut StageTimings,
    ) -> f64 {
        let [f0, f1, f2] = self.probe3_stages(event, t, tau, stages);
        f0 - 2.0 * f1 + f2
    }

    /// Estimate with an explicit row combiner — ablation hook for comparing
    /// the paper's median against the classic Count-Min minimum (which is
    /// wrong here: the PBE's one-sided *under*-estimation means the minimum
    /// row systematically undershoots) and the maximum.
    pub fn estimate_cum_with(&self, event: EventId, t: Timestamp, combiner: Combiner) -> f64 {
        let rows = self.row_estimates(event, t);
        match combiner {
            Combiner::Median => median(rows),
            Combiner::Min => rows.into_iter().fold(f64::INFINITY, f64::min),
            Combiner::Max => rows.into_iter().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Burstiness via an explicit combiner (composes Eq. 2 from the
    /// combined cumulative estimates, like [`CmPbe::estimate_burstiness`]).
    pub fn estimate_burstiness_with(
        &self,
        event: EventId,
        t: Timestamp,
        tau: BurstSpan,
        combiner: Combiner,
    ) -> f64 {
        let at = |q: Option<Timestamp>| match q {
            Some(q) => self.estimate_cum_with(event, q, combiner),
            None => 0.0,
        };
        at(Some(t)) - 2.0 * at(t.checked_sub(tau.ticks()))
            + at(t.checked_sub(tau.ticks().saturating_mul(2)))
    }

    /// `F̃_e(t − delta)` with pre-epoch times as 0.
    pub fn estimate_cum_offset(&self, event: EventId, t: Timestamp, delta: u64) -> f64 {
        match t.checked_sub(delta) {
            Some(earlier) => self.estimate_cum(event, earlier),
            None => 0.0,
        }
    }

    /// Estimated burst frequency `b̃f_e(t)`.
    pub fn estimate_burst_frequency(&self, event: EventId, t: Timestamp, tau: BurstSpan) -> f64 {
        self.estimate_cum(event, t) - self.estimate_cum_offset(event, t, tau.ticks())
    }

    /// Estimated burstiness `b̃_e(t)` from the median cumulative estimates
    /// (Lemma 5; the paper composes b̃ from the three median F̃ terms),
    /// evaluated through the fused [`CmPbe::probe3`] kernel.
    pub fn estimate_burstiness(&self, event: EventId, t: Timestamp, tau: BurstSpan) -> f64 {
        let [f0, f1, f2] = self.probe3(event, t, tau);
        f0 - 2.0 * f1 + f2
    }

    /// Ablation variant: compute burstiness per row, then take the median of
    /// the d burstiness values (instead of median-then-compose).
    pub fn estimate_burstiness_rowwise(&self, event: EventId, t: Timestamp, tau: BurstSpan) -> f64 {
        let vals = (0..self.depth())
            .map(|row| {
                let cell = &self.cells[self.cell_index(row, event)];
                cell.estimate_burstiness(t, tau)
            })
            .collect();
        median(vals)
    }

    /// Visits every segment-start knee of every cell `event` maps to,
    /// without allocating (duplicates across rows included — see
    /// [`CmPbe::segment_starts`] for the sorted, deduplicated form).
    pub fn for_each_segment_start(&self, event: EventId, f: &mut dyn FnMut(Timestamp)) {
        for row in 0..self.depth() {
            self.cells[self.cell_index(row, event)].for_each_segment_start(f);
        }
    }

    /// Union of segment-start knees across the cells `event` maps to —
    /// the probe instants for a bursty-time query over this event
    /// (Section V). Thin wrapper over
    /// [`CmPbe::for_each_segment_start`].
    pub fn segment_starts(&self, event: EventId) -> Vec<Timestamp> {
        let mut out: Vec<Timestamp> = Vec::new();
        self.for_each_segment_start(event, &mut |t| out.push(t));
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Batched bursty-event kernel: evaluates `b̃_e(t)` for every event id
    /// in `lo..hi` and calls `emit(event, burstiness)` for each, in id
    /// order. Instead of `(hi−lo)·d` scattered per-event probes, each
    /// distinct cell answers its fused [`CurveSketch::probe3`] exactly once
    /// into a per-cell probe cache — hash-colliding candidates share one
    /// search, and a scan covering a full row walks the d×w table
    /// **row-major** (one sequential pass over each row's cells) instead of
    /// hopping around it per candidate. Results are bit-for-bit the
    /// per-event [`CmPbe::estimate_burstiness`] values.
    ///
    /// All working memory lives in `scratch`; after its buffers have grown
    /// to the high-water mark the kernel performs no heap allocation.
    /// Grids deeper than [`MEDIAN_STACK`] rows fall back to the per-event
    /// path.
    pub fn burstiness_scan_into(
        &self,
        lo: u32,
        hi: u32,
        t: Timestamp,
        tau: BurstSpan,
        scratch: &mut QueryScratch,
        mut emit: impl FnMut(EventId, f64),
    ) {
        let d = self.depth();
        let count = hi.saturating_sub(lo) as usize;
        if count == 0 {
            return;
        }
        if d > MEDIAN_STACK {
            for e in lo..hi {
                emit(EventId(e), self.estimate_burstiness(EventId(e), t, tau));
            }
            return;
        }
        let t1 = t.checked_sub(tau.ticks());
        let t2 = t.checked_sub(tau.ticks().saturating_mul(2));
        let ncells = self.cells.len();
        let QueryScratch { cells, order, probes, stages, .. } = scratch;
        // Resolve each candidate's cell per row exactly once (one hash each).
        cells.clear();
        cells.resize(count * d, 0);
        for row in 0..d {
            for (i, e) in (lo..hi).enumerate() {
                cells[i * d + row] = self.cell_index(row, EventId(e));
            }
        }
        probes.clear();
        probes.resize(ncells * 3, 0.0);
        let probe_t0 = stages.enabled.then(std::time::Instant::now);
        // With the SoA bank present, each per-cell probe walks the shared
        // key/coefficient arrays (one lane per cell) instead of that cell's
        // own piece structs; values are bit-identical either way.
        let probe_cell = |ci: usize| -> [f64; 3] {
            match &self.bank {
                Some(bank) => bank.probe3_cell(ci, t, tau),
                None => self.cells[ci].probe3(t, tau),
            }
        };
        let mut probed = 0u64;
        if count >= self.width() {
            // Dense scan: nearly every cell is some candidate's — probe the
            // whole table row-major, one sequential cache-friendly pass.
            // With the bank present that pass is a single call walking the
            // contiguous SoA arrays front to back.
            match &self.bank {
                Some(bank) => bank.probe3_all_into(t, tau, &mut probes[..]),
                None => {
                    for ci in 0..ncells {
                        probes[ci * 3..ci * 3 + 3].copy_from_slice(&probe_cell(ci));
                    }
                }
            }
            probed = ncells as u64;
        } else {
            // Sparse scan: lazily probe only the cells candidates map to.
            order.clear();
            order.resize(ncells, 0);
            for &ci in cells.iter() {
                if order[ci] == 0 {
                    order[ci] = 1;
                    probes[ci * 3..ci * 3 + 3].copy_from_slice(&probe_cell(ci));
                    probed += 1;
                }
            }
        }
        if stages.enabled {
            if self.bank.is_some() {
                stages.bank_probes += probed;
            } else {
                stages.scalar_probes += probed;
            }
        }
        if let Some(t0) = probe_t0 {
            stages.cell_probe_ns += t0.elapsed().as_nanos() as u64;
        }
        let combine_t0 = stages.enabled.then(std::time::Instant::now);
        let mut v0 = [0.0f64; MEDIAN_STACK];
        let mut v1 = [0.0f64; MEDIAN_STACK];
        let mut v2 = [0.0f64; MEDIAN_STACK];
        for i in 0..count {
            for row in 0..d {
                let base = cells[i * d + row] * 3;
                v0[row] = probes[base];
                v1[row] = probes[base + 1];
                v2[row] = probes[base + 2];
            }
            let [f0, f1, f2] =
                median_stack_rows(d, &mut v0, &mut v1, &mut v2, t1.is_some(), t2.is_some());
            emit(EventId(lo + i as u32), f0 - 2.0 * f1 + f2);
        }
        if let Some(t0) = combine_t0 {
            stages.median_combine_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Fused bursty-time kernel for one event: fills `out` with every
    /// `(t, b̃_e(t))` where `t` is a candidate instant (each knee of the
    /// event's cells plus its `+τ`/`+2τ` echoes, clipped to `horizon`) and
    /// `b̃_e(t) ≥ theta`, in ascending `t` order — the same contract as
    /// filtering [`CmPbe::segment_starts`] candidates through
    /// [`CmPbe::estimate_burstiness`], bit for bit.
    ///
    /// The candidate sweep is monotone, so each of the event's `d` cells
    /// keeps one [`CumHint`] per Eq. 2 offset stream and resumes its piece
    /// search instead of re-running `3·d` binary searches per instant. All
    /// working memory lives in `scratch` and `out` (cleared first); after
    /// warm-up the sweep performs no heap allocation beyond `out` growth.
    pub fn bursty_times_into(
        &self,
        event: EventId,
        theta: f64,
        tau: BurstSpan,
        horizon: Timestamp,
        scratch: &mut QueryScratch,
        out: &mut Vec<(Timestamp, f64)>,
    ) {
        out.clear();
        let d = self.depth();
        let QueryScratch { times, knees, probes, order, stages, .. } = scratch;
        // Sort the knees alone, then produce the `+0/+τ/+2τ` echo candidates
        // by a three-way merge of the shifted knee streams — O(n) instead of
        // sorting a 3n-element echo list.
        knees.clear();
        self.for_each_segment_start(event, &mut |knee| knees.push(knee.ticks()));
        knees.sort_unstable();
        knees.dedup();
        times.clear();
        let shifts = [0, tau.ticks(), tau.ticks().saturating_mul(2)];
        let mut at = [0usize; 3];
        loop {
            let mut next: Option<u64> = None;
            for k in 0..3 {
                if let Some(&knee) = knees.get(at[k]) {
                    let c = knee.saturating_add(shifts[k]);
                    next = Some(next.map_or(c, |n| n.min(c)));
                }
            }
            let Some(c) = next else { break };
            // Streams ascend, so once the minimum passes the horizon all
            // remaining candidates do too.
            if c > horizon.ticks() {
                break;
            }
            for k in 0..3 {
                if let Some(&knee) = knees.get(at[k]) {
                    if knee.saturating_add(shifts[k]) == c {
                        at[k] += 1;
                    }
                }
            }
            times.push(c);
        }
        if d > MEDIAN_STACK {
            for &t in times.iter() {
                let b = self.estimate_burstiness(event, Timestamp(t), tau);
                if b >= theta {
                    out.push((Timestamp(t), b));
                }
            }
            return;
        }
        // The three Eq. 2 offset streams of the candidate sweep largely
        // revisit each other's positions (the `t−τ` probe of a `knee+τ`
        // candidate *is* `knee`), so first merge the distinct probe
        // positions `⋃_k {t−kτ : t ∈ times, t ≥ kτ}` into one ascending
        // list (`knees` is done feeding candidates and is reused), keeping
        // for every (instant, offset) its position index in `order`
        // (`u32::MAX` marks a pre-epoch offset, which reads 0).
        order.clear();
        order.resize(times.len() * 3, u32::MAX);
        knees.clear();
        let mut at = [0usize; 3];
        for k in 0..3 {
            // Skip the pre-epoch prefix: those instants keep the sentinel.
            while at[k] < times.len() && times[at[k]] < shifts[k] {
                at[k] += 1;
            }
        }
        loop {
            let mut next: Option<u64> = None;
            for k in 0..3 {
                if let Some(&t) = times.get(at[k]) {
                    let pos = t - shifts[k];
                    next = Some(next.map_or(pos, |n| n.min(pos)));
                }
            }
            let Some(pos) = next else { break };
            let pi = knees.len() as u32;
            knees.push(pos);
            for k in 0..3 {
                if let Some(&t) = times.get(at[k]) {
                    if t - shifts[k] == pos {
                        order[at[k] * 3 + k] = pi;
                        at[k] += 1;
                    }
                }
            }
        }
        // Row-major sweep: each of the event's d cells answers every
        // distinct position exactly once, in one tight ascending pass with a
        // single resumed rank — its segment array stays in cache and no
        // position is searched twice across the three offset streams.
        let npos = knees.len();
        probes.clear();
        probes.resize(d * npos, 0.0);
        let probe_t0 = stages.enabled.then(std::time::Instant::now);
        for row in 0..d {
            let ci = self.cell_index(row, event);
            let base = row * npos;
            match &self.bank {
                // SoA sweep: one forward walk of the cell's contiguous key
                // lane answers every ascending position.
                Some(bank) => bank.cum_cell_sweep(ci, knees, &mut probes[base..base + npos]),
                None => {
                    let cell = &self.cells[ci];
                    let mut h = CumHint::new();
                    for (i, &pos) in knees.iter().enumerate() {
                        probes[base + i] = cell.estimate_cum_hinted(Timestamp(pos), &mut h);
                    }
                }
            }
        }
        if stages.enabled {
            let probed = (d * npos) as u64;
            if self.bank.is_some() {
                stages.bank_probes += probed;
            } else {
                stages.scalar_probes += probed;
            }
        }
        if let Some(t0) = probe_t0 {
            stages.cell_probe_ns += t0.elapsed().as_nanos() as u64;
        }
        let combine_t0 = stages.enabled.then(std::time::Instant::now);
        let mut v0 = [0.0f64; MEDIAN_STACK];
        let mut v1 = [0.0f64; MEDIAN_STACK];
        let mut v2 = [0.0f64; MEDIAN_STACK];
        for (j, &tick) in times.iter().enumerate() {
            let [p0, p1, p2] = [order[j * 3], order[j * 3 + 1], order[j * 3 + 2]];
            for row in 0..d {
                let base = row * npos;
                v0[row] = probes[base + p0 as usize];
                v1[row] = if p1 != u32::MAX { probes[base + p1 as usize] } else { 0.0 };
                v2[row] = if p2 != u32::MAX { probes[base + p2 as usize] } else { 0.0 };
            }
            let [f0, f1, f2] =
                median_stack_rows(d, &mut v0, &mut v1, &mut v2, p1 != u32::MAX, p2 != u32::MAX);
            let b = f0 - 2.0 * f1 + f2;
            if b >= theta {
                out.push((Timestamp(tick), b));
            }
        }
        if let Some(t0) = combine_t0 {
            stages.median_combine_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Summary size in bytes (sum over cells; hash seeds are negligible).
    pub fn size_bytes(&self) -> usize {
        self.cells.iter().map(|c| c.size_bytes()).sum()
    }

    /// Structural readings for observability: grid dimensions, cell fill,
    /// and the heaviest cell's arrival count (a collision proxy — in a
    /// direct-indexed grid it is simply the most frequent event, while in a
    /// hashed grid a cell far above `N/w` signals colliding heavy ids).
    pub fn structure(&self) -> CmStructure {
        let mut occupied = 0usize;
        let mut heaviest = 0u64;
        let mut pieces = 0usize;
        let mut buffered = 0usize;
        for cell in &self.cells {
            let a = cell.arrivals();
            if a > 0 {
                occupied += 1;
            }
            heaviest = heaviest.max(a);
            let stats = cell.summary_stats();
            pieces += stats.pieces;
            buffered += stats.buffered;
        }
        CmStructure {
            depth: self.depth(),
            width: self.width(),
            cells: self.cells.len(),
            occupied_cells: occupied,
            heaviest_cell_arrivals: heaviest,
            pieces,
            buffered,
            bytes: self.size_bytes(),
        }
    }
}

/// Structural readings of one CM-PBE grid (see [`CmPbe::structure`]).
/// Plain data consumed by `bed-core`'s metrics layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CmStructure {
    /// Rows `d`.
    pub depth: usize,
    /// Columns `w`.
    pub width: usize,
    /// Total cells `d·w`.
    pub cells: usize,
    /// Cells that have ingested at least one arrival.
    pub occupied_cells: usize,
    /// Largest per-cell arrival count (collision proxy).
    pub heaviest_cell_arrivals: u64,
    /// Summary pieces across all cells (staircase points / PLA segments).
    pub pieces: usize,
    /// Buffered exact state across all cells awaiting compression.
    pub buffered: usize,
    /// Total byte footprint of the grid's summaries.
    pub bytes: usize,
}

impl CmStructure {
    /// Element-wise sum (used by the hierarchy to roll levels up).
    pub fn accumulate(&mut self, other: &CmStructure) {
        self.depth += other.depth;
        self.width += other.width;
        self.cells += other.cells;
        self.occupied_cells += other.occupied_cells;
        self.heaviest_cell_arrivals = self.heaviest_cell_arrivals.max(other.heaviest_cell_arrivals);
        self.pieces += other.pieces;
        self.buffered += other.buffered;
        self.bytes += other.bytes;
    }
}

/// Persistence (format `CMPB` v1): hash family, every cell, the arrival
/// count, and the indexing mode. Generic over any `Codec` cell type.
impl<P: bed_stream::Codec> bed_stream::Codec for CmPbe<P> {
    fn encode(&self, w: &mut bed_stream::codec::Writer) {
        w.magic(*b"CMPB");
        w.version(1);
        w.u8(u8::from(self.identity));
        self.hashes.encode(w);
        w.len(self.cells.len());
        for cell in &self.cells {
            cell.encode(w);
        }
        w.u64(self.arrivals);
    }

    fn decode(r: &mut bed_stream::codec::Reader<'_>) -> Result<Self, bed_stream::CodecError> {
        use bed_stream::CodecError;
        r.magic(*b"CMPB")?;
        r.version(1)?;
        let identity = match r.u8("cmpbe identity flag")? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::Invalid { context: "cmpbe identity flag" }),
        };
        let hashes = HashFamily::decode(r)?;
        let n = r.len("cmpbe cell count", 1)?;
        let expected = if identity { hashes.width() } else { hashes.depth() * hashes.width() };
        if n != expected {
            return Err(CodecError::Invalid { context: "cmpbe cell count" });
        }
        let mut cells = Vec::with_capacity(n);
        for _ in 0..n {
            cells.push(P::decode(r)?);
        }
        let arrivals = r.u64("cmpbe arrivals")?;
        Ok(CmPbe { hashes, cells, arrivals, identity, bank: None })
    }
}

/// Deepest grid the stack-allocated query kernels cover. `d = ⌈ln(1/δ)⌉`,
/// so 8 rows corresponds to a failure probability δ ≈ 3e−4 — beyond any
/// configuration the paper evaluates. Deeper grids fall back to the
/// heap-allocating per-event path. Tied to [`bed_pbe::MAX_LANES`] so the
/// batched SoA kernel's output lanes map one-to-one onto the median stacks.
pub const MEDIAN_STACK: usize = bed_pbe::MAX_LANES;

/// The shared Eq. 2 combine: three cross-row stack medians over the lane
/// buffers of one probe instant, with the `t−τ` / `t−2τ` legs gated to 0
/// when pre-epoch (`live1` / `live2` false). Every batched kernel — the
/// fused per-event probe, the bursty-event scan, and the bursty-time sweep
/// — funnels its lanes through this one helper, so the median semantics
/// (stable insertion sort, average of two middles) live in exactly one
/// place.
#[inline]
fn median_stack_rows(
    d: usize,
    v0: &mut [f64; MEDIAN_STACK],
    v1: &mut [f64; MEDIAN_STACK],
    v2: &mut [f64; MEDIAN_STACK],
    live1: bool,
    live2: bool,
) -> [f64; 3] {
    [
        median_stack(&mut v0[..d]),
        if live1 { median_stack(&mut v1[..d]) } else { 0.0 },
        if live2 { median_stack(&mut v2[..d]) } else { 0.0 },
    ]
}

/// Median of an unsorted sample; averages the two middles for even sizes.
fn median(mut vals: Vec<f64>) -> f64 {
    assert!(!vals.is_empty(), "median of an empty sample");
    vals.sort_by(|a, b| a.partial_cmp(b).expect("estimates are never NaN"));
    let n = vals.len();
    if n % 2 == 1 {
        vals[n / 2]
    } else {
        (vals[n / 2 - 1] + vals[n / 2]) / 2.0
    }
}

/// Median of a small sample by in-place insertion sort — no `Vec`, no
/// comparator indirection. Bit-for-bit identical to [`median`] on NaN-free
/// samples: both fully sort (stably — insertion with a strict `>` guard
/// never reorders equal keys) and average the same two middles.
#[inline]
fn median_stack(vals: &mut [f64]) -> f64 {
    debug_assert!(!vals.is_empty(), "median of an empty sample");
    match *vals {
        [a] => a,
        // The 2- and 3-row cases are unrolled with the exact swap decisions
        // of the general insertion sort (strict `>`, so equal keys — and
        // -0.0/0.0 ties — land exactly where the stable sort puts them).
        [a, b] => {
            let (a, b) = if a > b { (b, a) } else { (a, b) };
            (a + b) / 2.0
        }
        [a, b, c] => {
            let (a, b) = if a > b { (b, a) } else { (a, b) };
            let (b, c) = if b > c { (c, b) } else { (b, c) };
            let b = if a > b { a } else { b };
            let _ = c;
            b
        }
        _ => {
            for i in 1..vals.len() {
                let mut j = i;
                while j > 0 && vals[j - 1] > vals[j] {
                    vals.swap(j - 1, j);
                    j -= 1;
                }
            }
            let n = vals.len();
            if n % 2 == 1 {
                vals[n / 2]
            } else {
                (vals[n / 2 - 1] + vals[n / 2]) / 2.0
            }
        }
    }
}

/// Reusable working memory for the batched query kernels
/// ([`CmPbe::burstiness_scan_into`], [`CmPbe::bursty_times_into`]).
///
/// Holds resolved cell indices, a candidate-order permutation, the
/// row-major probe buffer, and the candidate-instant list. Buffers grow to
/// the high-water mark of the queries they serve and are then reused, so a
/// warm scratch makes the kernels allocation-free. Create one per query
/// thread and pass it to every query (a fresh scratch is always valid —
/// reuse only saves the allocations).
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    /// Resolved cell index per (candidate, row), candidate-major.
    cells: Vec<usize>,
    /// Candidate permutation used to group candidates by cell within a row.
    order: Vec<u32>,
    /// Row-major probe results: 3 values per (candidate, row).
    probes: Vec<f64>,
    /// Sorted, deduplicated candidate instants of a bursty-time sweep.
    times: Vec<u64>,
    /// Sorted, deduplicated knees feeding the candidate merge.
    knees: Vec<u64>,
    /// Per-stage kernel timings, armed by a tracing root (see
    /// [`StageTimings`]). Defaults to disarmed: the kernels then skip every
    /// clock read.
    pub stages: StageTimings,
    /// Root trace id of the request this scratch is serving (0 = none).
    /// Set by the serving layer so sampled spans and latency exemplars can
    /// share the caller-visible id; ignored by the kernels.
    pub trace_id: u64,
    /// Explain mode: the serving layer arms stage timing and harvests the
    /// populated [`StageTimings`] after the query instead of letting the
    /// tracing root disarm it.
    pub explain: bool,
}

impl QueryScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-stage wall-clock accumulators for one traced query.
///
/// This is how the sampler decision reaches the query kernels without
/// `bed-sketch` depending on any tracing machinery: the component that owns
/// the root span arms the scratch via [`StageTimings::reset`]`(true)`, the
/// kernels accumulate nanoseconds into these plain fields (two
/// `Instant::now()` pairs per kernel call, no allocation), and the root
/// harvests them into child spans. When disarmed — the default — the only
/// cost is a branch on [`StageTimings::enabled`].
///
/// Grids deeper than [`MEDIAN_STACK`] fall back to per-event estimation and
/// record nothing; stage spans then simply do not appear under the root.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Whether the kernels should time their stages.
    pub enabled: bool,
    /// Nanoseconds spent probing cells (fused Eq. 2 offset resolution).
    pub cell_probe_ns: u64,
    /// Nanoseconds spent in cross-row median combination and emission.
    pub median_combine_ns: u64,
    /// Nanoseconds spent in the dyadic pruned search (recorded by the
    /// hierarchy caller, carried here so one struct reaches the root).
    pub hierarchy_prune_ns: u64,
    /// Cell probes answered by the SoA bank path (counted only while
    /// `enabled`; lets EXPLAIN name the serving path actually taken).
    pub bank_probes: u64,
    /// Cell probes answered by the scalar per-cell path (counted only
    /// while `enabled`).
    pub scalar_probes: u64,
}

impl StageTimings {
    /// Clears the accumulators and arms (`enabled = true`) or disarms the
    /// stage clocks. Called by whoever starts the root span, once per query.
    #[inline]
    pub fn reset(&mut self, enabled: bool) {
        *self = StageTimings { enabled, ..StageTimings::default() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bed_pbe::{ExactCurve, Pbe1, Pbe1Config, Pbe2, Pbe2Config};
    use bed_stream::EventStream;

    fn mixed_stream(events: u32, arrivals_per_event: u64) -> EventStream {
        // Interleaved constant-rate streams with different phases.
        let mut els = Vec::new();
        for e in 0..events {
            for i in 0..arrivals_per_event {
                els.push((e, i * 10 + e as u64));
            }
        }
        els.sort_by_key(|&(_, t)| t);
        els.into_iter().collect()
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(vec![7.0]), 7.0);
    }

    #[test]
    fn median_stack_matches_heap_median() {
        let samples: &[&[f64]] = &[
            &[7.0],
            &[3.0, 1.0],
            &[3.0, 1.0, 2.0],
            &[4.0, 1.0, 2.0, 3.0],
            &[5.0, 5.0, 5.0, 1.0, 9.0],
            &[0.0, -0.0, 2.5, 2.5, -1.0, 4.0],
        ];
        for s in samples {
            let mut buf = s.to_vec();
            assert_eq!(median_stack(&mut buf).to_bits(), median(s.to_vec()).to_bits(), "{s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_depth_grid_is_rejected() {
        let _ = CmPbe::with_dimensions(0, 16, 1, ExactCurve::new);
    }

    #[test]
    #[should_panic(expected = "non-empty universe")]
    fn zero_universe_direct_grid_is_rejected() {
        let _ = CmPbe::direct_indexed(0, ExactCurve::new);
    }

    #[test]
    fn fused_kernels_match_composed_queries() {
        let stream = mixed_stream(40, 30);
        let mut cm = CmPbe::with_dimensions(4, 32, 99, || {
            Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 16 }).unwrap()
        });
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        let tau = BurstSpan::new(40).unwrap();
        let horizon = Timestamp(400);
        let composed = |e: EventId, t: Timestamp| {
            let f0 = cm.estimate_cum(e, t);
            let f1 = cm.estimate_cum_offset(e, t, tau.ticks());
            let f2 = cm.estimate_cum_offset(e, t, tau.ticks().saturating_mul(2));
            f0 - 2.0 * f1 + f2
        };
        let mut scratch = QueryScratch::new();
        // batched scan == per-event composition
        let mut batched = Vec::new();
        cm.burstiness_scan_into(0, 40, Timestamp(250), tau, &mut scratch, |e, b| {
            batched.push((e, b));
        });
        assert_eq!(batched.len(), 40);
        for &(e, b) in &batched {
            assert_eq!(b.to_bits(), composed(e, Timestamp(250)).to_bits(), "event {e:?}");
        }
        // fused bursty-time sweep == candidate filter over composed probes
        let mut fused = Vec::new();
        cm.bursty_times_into(EventId(7), 0.5, tau, horizon, &mut scratch, &mut fused);
        let mut reference = Vec::new();
        for knee in cm.segment_starts(EventId(7)) {
            for delta in [0, tau.ticks(), tau.ticks() * 2] {
                let t = knee.ticks().saturating_add(delta);
                if t <= horizon.ticks() {
                    reference.push(t);
                }
            }
        }
        reference.sort_unstable();
        reference.dedup();
        let reference: Vec<(Timestamp, f64)> = reference
            .into_iter()
            .map(|t| (Timestamp(t), composed(EventId(7), Timestamp(t))))
            .filter(|&(_, b)| b >= 0.5)
            .collect();
        assert_eq!(fused.len(), reference.len());
        for (got, want) in fused.iter().zip(&reference) {
            assert_eq!(got.0, want.0);
            assert_eq!(got.1.to_bits(), want.1.to_bits());
        }
    }

    #[test]
    fn stage_probe_counters_name_the_serving_path() {
        let stream = mixed_stream(40, 30);
        let mut cm = CmPbe::with_dimensions(4, 32, 99, || {
            Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 16 }).unwrap()
        });
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        let tau = BurstSpan::new(40).unwrap();
        let mut scratch = QueryScratch::new();

        // Disarmed: counters must stay untouched on the hot path.
        cm.burstiness_scan_into(0, 40, Timestamp(250), tau, &mut scratch, |_, _| {});
        assert_eq!(scratch.stages.bank_probes, 0);
        assert_eq!(scratch.stages.scalar_probes, 0);

        // Armed, bank absent: probes attribute to the scalar path.
        scratch.stages.reset(true);
        assert!(!cm.has_bank());
        cm.burstiness_scan_into(0, 40, Timestamp(250), tau, &mut scratch, |_, _| {});
        assert_eq!(scratch.stages.bank_probes, 0);
        assert!(scratch.stages.scalar_probes > 0);

        // Armed, bank built: same query attributes to the bank path.
        cm.finalize();
        assert!(cm.has_bank());
        scratch.stages.reset(true);
        cm.burstiness_scan_into(0, 40, Timestamp(250), tau, &mut scratch, |_, _| {});
        assert!(scratch.stages.bank_probes > 0);
        assert_eq!(scratch.stages.scalar_probes, 0);

        // The bursty-time sweep counts its per-row position probes too.
        scratch.stages.reset(true);
        let mut out = Vec::new();
        cm.bursty_times_into(EventId(7), 0.0, tau, Timestamp(400), &mut scratch, &mut out);
        assert!(scratch.stages.bank_probes > 0);

        // reset() clears the accumulated counts.
        scratch.stages.reset(false);
        assert_eq!(scratch.stages.bank_probes, 0);
        assert_eq!(scratch.stages.scalar_probes, 0);
    }

    #[test]
    fn probe3_stages_matches_probe3_and_attributes_phases() {
        let stream = mixed_stream(40, 30);
        let mut cm = CmPbe::with_dimensions(4, 32, 99, || {
            Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 16 }).unwrap()
        });
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        let tau = BurstSpan::new(40).unwrap();
        let mut stages = StageTimings::default();

        // Disarmed: falls through to probe3 and leaves the clocks alone.
        let plain = cm.probe3(EventId(7), Timestamp(250), tau);
        assert_eq!(cm.probe3_stages(EventId(7), Timestamp(250), tau, &mut stages), plain);
        assert_eq!(stages.scalar_probes, 0);
        assert_eq!(stages.cell_probe_ns, 0);

        // Armed, scalar cells: same bits, probes counted per row and offset.
        stages.reset(true);
        let staged = cm.probe3_stages(EventId(7), Timestamp(250), tau, &mut stages);
        assert_eq!(staged.map(f64::to_bits), plain.map(f64::to_bits));
        assert_eq!(stages.scalar_probes, 3 * 4);
        assert_eq!(stages.bank_probes, 0);

        // Armed, bank built: same bits through the SoA lanes.
        cm.finalize();
        let banked = cm.probe3(EventId(7), Timestamp(250), tau);
        stages.reset(true);
        let staged = cm.probe3_stages(EventId(7), Timestamp(250), tau, &mut stages);
        assert_eq!(staged.map(f64::to_bits), banked.map(f64::to_bits));
        assert_eq!(stages.bank_probes, 3 * 4);
        assert_eq!(stages.scalar_probes, 0);

        // The burstiness wrapper composes the identical estimate.
        stages.reset(true);
        let b = cm.estimate_burstiness_stages(EventId(7), Timestamp(250), tau, &mut stages);
        assert_eq!(b.to_bits(), cm.estimate_burstiness(EventId(7), Timestamp(250), tau).to_bits());
    }

    #[test]
    fn exact_cells_overestimate_only() {
        // With exact cells the only error is hash collision, which can only
        // inflate the per-row estimate; the median of overestimates is ≥ F.
        let stream = mixed_stream(50, 20);
        let mut cm = CmPbe::with_dimensions(3, 16, 42, ExactCurve::new);
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        for e in 0..50u32 {
            let truth = stream.project(EventId(e)).len() as f64;
            let est = cm.estimate_cum(EventId(e), Timestamp(u64::MAX - 1));
            assert!(est >= truth, "event {e}: {est} < {truth}");
        }
        assert_eq!(cm.arrivals(), 1000);
    }

    #[test]
    fn wide_grid_is_nearly_exact() {
        // Far more columns than events → no collisions → exact.
        let stream = mixed_stream(10, 30);
        let mut cm = CmPbe::with_dimensions(4, 4096, 7, ExactCurve::new);
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        for e in 0..10u32 {
            for t in [50u64, 150, 250] {
                let truth = stream.project(EventId(e)).cumulative_frequency(Timestamp(t)) as f64;
                assert_eq!(cm.estimate_cum(EventId(e), Timestamp(t)), truth);
            }
        }
    }

    #[test]
    fn pbe1_cells_bound_error() {
        let stream = mixed_stream(40, 50);
        let mut cm = CmPbe::with_dimensions(5, 64, 3, || {
            Pbe1::new(Pbe1Config { n_buf: 64, eta: 16 }).unwrap()
        });
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        cm.finalize();
        let n = cm.arrivals() as f64;
        let mut worst = 0.0f64;
        for e in 0..40u32 {
            let truth = stream.project(EventId(e)).cumulative_frequency(Timestamp(300)) as f64;
            let est = cm.estimate_cum(EventId(e), Timestamp(300));
            worst = worst.max((est - truth).abs());
        }
        // generous sanity bound: collisions ≤ a few ε·N with ε ≈ e/64
        assert!(worst <= 0.2 * n, "worst error {worst} vs N={n}");
    }

    #[test]
    fn pbe2_cells_work_and_burstiness_is_finite() {
        let stream = mixed_stream(20, 40);
        let mut cm = CmPbe::with_dimensions(3, 32, 9, || {
            Pbe2::new(Pbe2Config { gamma: 4.0, max_vertices: 32 }).unwrap()
        });
        for el in stream.iter() {
            cm.update(el.event, el.ts);
        }
        cm.finalize();
        let tau = BurstSpan::new(50).unwrap();
        for e in [0u32, 7, 19] {
            let b = cm.estimate_burstiness(EventId(e), Timestamp(350), tau);
            assert!(b.is_finite());
            let br = cm.estimate_burstiness_rowwise(EventId(e), Timestamp(350), tau);
            assert!(br.is_finite());
        }
        assert!(cm.size_bytes() > 0);
        assert!(!cm.segment_starts(EventId(0)).is_empty());
    }

    #[test]
    fn same_seed_reproduces_estimates() {
        let stream = mixed_stream(30, 10);
        let build = || {
            let mut cm = CmPbe::with_dimensions(4, 32, 1234, || {
                Pbe2::new(Pbe2Config { gamma: 2.0, max_vertices: 16 }).unwrap()
            });
            for el in stream.iter() {
                cm.update(el.event, el.ts);
            }
            cm.finalize();
            cm
        };
        let a = build();
        let b = build();
        for e in 0..30u32 {
            assert_eq!(
                a.estimate_cum(EventId(e), Timestamp(200)),
                b.estimate_cum(EventId(e), Timestamp(200))
            );
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let r = CmPbe::new(SketchParams { epsilon: 2.0, delta: 0.1 }, 1, ExactCurve::new);
        assert!(r.is_err());
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let batch: Vec<(EventId, Timestamp)> =
            (0..8_000u64).map(|i| (EventId((i * 7 % 300) as u32), Timestamp(i / 4))).collect();
        let mut seq = CmPbe::with_dimensions(4, 64, 11, ExactCurve::new);
        let mut par = CmPbe::with_dimensions(4, 64, 11, ExactCurve::new);
        seq.update_batch(&batch);
        par.update_batch_parallel(&batch);
        assert_eq!(seq.arrivals(), par.arrivals());
        for e in (0..300u32).step_by(13) {
            for t in [100u64, 1_000, 1_999] {
                assert_eq!(
                    seq.estimate_cum(EventId(e), Timestamp(t)),
                    par.estimate_cum(EventId(e), Timestamp(t)),
                    "e={e} t={t}"
                );
            }
        }
    }

    #[test]
    fn small_batches_fall_back_to_sequential() {
        let batch: Vec<(EventId, Timestamp)> =
            (0..100u64).map(|i| (EventId(i as u32 % 10), Timestamp(i))).collect();
        let mut cm = CmPbe::with_dimensions(3, 16, 5, ExactCurve::new);
        cm.update_batch_parallel(&batch);
        assert_eq!(cm.arrivals(), 100);
    }
}
