//! # Tiered retention — bounded memory over unbounded histories
//!
//! Hokusai ("Sketching Streams in Real Time", PAPERS.md) ages sketch
//! state into progressively coarser tiers: the most recent window keeps
//! full resolution, each older window holds half the detail of the one
//! before it. This module adapts that idea to CM-PBE cells, whose state
//! is a monotone cumulative staircase rather than a counter array: aging
//! a curve means *decimating its knees*, keeping at most `budget` knees
//! per tier so an infinite history occupies `O(budget · log₂ horizon)`
//! knees per cell instead of `O(arrivals)`.
//!
//! ## Tier layout
//!
//! With `window = W` ticks and the current watermark `now`:
//!
//! | tier | age range (ticks)  | span       | grain (ticks/knee) |
//! |------|--------------------|------------|--------------------|
//! | 0    | `[0, W)`           | `W`        | 1 (full resolution)|
//! | 1    | `[W, 2W)`          | `W`        | `max(1, W/budget)` |
//! | k≥1  | `[W·2ᵏ⁻¹, W·2ᵏ)`   | `W·2ᵏ⁻¹`   | `max(1, W·2ᵏ⁻¹/budget)` |
//!
//! Every compaction re-evaluates each knee's tier against the *current*
//! watermark, so knees drift into coarser tiers as the history grows —
//! exactly Hokusai's halving, expressed on staircase knees instead of
//! counter arrays.
//!
//! ## Error budget
//!
//! Decimation keeps the **last** knee of every `(tier, grain-bucket)`
//! pair, so the retained staircase never exceeds the original curve and
//! under-estimates it by at most the mass that arrived inside one grain
//! bucket. Stacked on Theorem 1, a probe served by tier `k` satisfies
//! `F(t) − F̃(t) ≤ 3εN + mass(bucketₖ(t))` — the envelope scaled by the
//! tier's halving factor, pinned by `crates/core/tests/retention.rs`.

use bed_stream::codec::{Reader, Writer};
use bed_stream::{Codec, CodecError};

/// How aggressively old history is coarsened, and how often.
///
/// Attached to a detector config; `window`/`budget` define the tier
/// geometry above, `compact_every` is the cadence (in arrivals) at which
/// the detector folds live PBE state into the frozen tiered prefix.
/// Compaction runs *inside* `ingest` on an arrivals-count trigger so WAL
/// replay reproduces the compacted state bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Width of the full-resolution tier-0 window, in ticks.
    pub window: u64,
    /// Maximum knees retained per tier (per cell) after decimation.
    pub budget: u32,
    /// Compact once per this many arrivals (per detector shard).
    pub compact_every: u64,
}

impl RetentionPolicy {
    /// Default compaction cadence, aligned with the checkpoint cadence
    /// (`CheckpointPolicy::default().every_arrivals`).
    pub const DEFAULT_COMPACT_EVERY: u64 = 65_536;

    /// Builds a policy, validating the invariants.
    pub fn new(window: u64, budget: u32, compact_every: u64) -> Result<Self, String> {
        let p = Self { window, budget, compact_every };
        p.validate()?;
        Ok(p)
    }

    /// Checks `window ≥ 1`, `budget ≥ 1`, `compact_every ≥ 1`.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("retention window must be >= 1 tick".into());
        }
        if self.budget == 0 {
            return Err("retention budget must be >= 1 knee per tier".into());
        }
        if self.compact_every == 0 {
            return Err("retention cadence must be >= 1 arrival".into());
        }
        Ok(())
    }

    /// Parses `"window:budget"` or `"window:budget:every"` (the
    /// `--retention` CLI syntax).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        let window = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| format!("bad retention window in {s:?}"))?;
        let budget = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| format!("bad retention budget in {s:?} (want window:budget[:every])"))?;
        let every = match parts.next() {
            Some(p) => p.parse().map_err(|_| format!("bad retention cadence in {s:?}"))?,
            None => Self::DEFAULT_COMPACT_EVERY,
        };
        if parts.next().is_some() {
            return Err(format!("trailing fields in retention spec {s:?}"));
        }
        Self::new(window, budget, every)
    }

    /// The tier serving a probe at `t` when the watermark is `now`:
    /// 0 while the age is inside the full-resolution window, then one
    /// tier per doubling of age.
    pub fn tier_of(&self, t: u64, now: u64) -> u32 {
        let age = now.saturating_sub(t);
        if age < self.window {
            0
        } else {
            (age / self.window).ilog2() + 1
        }
    }

    /// Knee spacing inside `tier`: tier 0 is verbatim, tier `k ≥ 1`
    /// spreads its `budget` knees over a `window · 2^(k−1)` span.
    pub fn grain(&self, tier: u32) -> u64 {
        if tier == 0 {
            return 1;
        }
        let span = self.window.saturating_mul(1u64.checked_shl(tier - 1).unwrap_or(u64::MAX));
        (span / u64::from(self.budget)).max(1)
    }

    /// Number of tiers in play for a history whose oldest tick has the
    /// given age (= `tier_of(oldest, now) + 1`).
    pub fn tiers_for_age(&self, age: u64) -> u32 {
        if age < self.window {
            1
        } else {
            (age / self.window).ilog2() + 2
        }
    }
}

impl std::fmt::Display for RetentionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.window, self.budget, self.compact_every)
    }
}

impl Codec for RetentionPolicy {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.window);
        w.u32(self.budget);
        w.u64(self.compact_every);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let window = r.u64("retention window")?;
        let budget = r.u32("retention budget")?;
        let compact_every = r.u64("retention cadence")?;
        let p = Self { window, budget, compact_every };
        p.validate().map_err(|_| CodecError::Invalid { context: "retention policy" })?;
        Ok(p)
    }
}

/// The frozen, tier-decimated prefix of one cell's cumulative curve.
///
/// Knees are `(t, F(t))` staircase corners in strictly ascending `t`
/// with non-decreasing value; `eval` holds the value of the latest knee
/// at or before `t` (0 before the first knee, the frozen total after
/// the last). Live PBE state starts from zero after every fold, so a
/// tiered cell's estimate is simply `frozen.eval(t) + live(t)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FrozenCurve {
    knees: Vec<(u64, f64)>,
    /// Watermark of the latest fold; all frozen mass arrived at `t ≤ cut`.
    cut: u64,
    /// Exact arrival count folded in (the estimate is approximate, the
    /// count is not — occupancy stats stay truthful).
    arrivals: u64,
}

impl FrozenCurve {
    /// An empty prefix (nothing folded yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Staircase evaluation: value of the latest knee with `knee.t ≤ t`.
    pub fn eval(&self, t: u64) -> f64 {
        let idx = self.knees.partition_point(|&(kt, _)| kt <= t);
        if idx == 0 {
            0.0
        } else {
            self.knees[idx - 1].1
        }
    }

    /// Total frozen mass (estimate at or beyond the cut).
    pub fn total(&self) -> f64 {
        self.knees.last().map_or(0.0, |&(_, v)| v)
    }

    /// Watermark of the latest fold.
    pub fn cut(&self) -> u64 {
        self.cut
    }

    /// Exact arrivals folded into this prefix.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Retained knee count.
    pub fn len(&self) -> usize {
        self.knees.len()
    }

    /// True when nothing has been folded.
    pub fn is_empty(&self) -> bool {
        self.knees.is_empty() && self.arrivals == 0
    }

    /// Heap footprint of the retained knees.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.knees.len() * std::mem::size_of::<(u64, f64)>()
    }

    /// Visits every retained knee in ascending `t`.
    pub fn for_each_knee(&self, mut f: impl FnMut(u64, f64)) {
        for &(t, v) in &self.knees {
            f(t, v);
        }
    }

    /// Folds a freshly sampled live staircase into the prefix and
    /// re-decimates everything against the new watermark `now`.
    ///
    /// `samples` are `(t, live_estimate)` pairs in ascending `t` — the
    /// live curve sampled at its own piece boundaries (staircasing a
    /// PBE-2 PLA curve under-estimates it, which keeps the one-sided
    /// error direction). Values are offset by the previous frozen total
    /// and clamped monotone so the merged staircase never regresses.
    /// Samples older than the frozen frontier are skipped: they carry no
    /// post-cut mass (a PBE anchors its first piece one tick before its
    /// first arrival), and folding one would restate the frozen total at
    /// an earlier instant — an over-estimate.
    pub fn fold(
        &mut self,
        samples: impl IntoIterator<Item = (u64, f64)>,
        live_arrivals: u64,
        now: u64,
        policy: &RetentionPolicy,
    ) {
        let offset = self.total();
        let frontier = self.knees.last().map(|&(kt, _)| kt);
        let mut floor = offset;
        for (t, v) in samples {
            if frontier.is_some_and(|f| t < f) {
                continue;
            }
            debug_assert!(self.knees.last().is_none_or(|&(kt, _)| kt <= t), "samples not sorted");
            let v = (offset + v.max(0.0)).max(floor);
            floor = v;
            match self.knees.last_mut() {
                Some(last) if last.0 == t => last.1 = v,
                _ => self.knees.push((t, v)),
            }
        }
        self.arrivals += live_arrivals;
        self.cut = now.max(self.cut);
        self.decimate(now, policy);
    }

    /// One forward pass keeping the **last** knee of each
    /// `(tier, grain-bucket)` pair. Because values ascend, the survivor
    /// carries the exact cumulative value at the bucket's end, so the
    /// decimated staircase only ever under-estimates — and the final
    /// knee (the frozen total) is always in its own newest bucket, so
    /// totals are preserved exactly.
    fn decimate(&mut self, now: u64, policy: &RetentionPolicy) {
        let mut out: Vec<(u64, f64)> = Vec::with_capacity(self.knees.len().min(256));
        let mut last_key: Option<(u32, u64)> = None;
        for &(t, v) in &self.knees {
            let tier = policy.tier_of(t, now);
            let key = (tier, t / policy.grain(tier));
            if last_key == Some(key) {
                *out.last_mut().expect("key implies a survivor") = (t, v);
            } else {
                out.push((t, v));
                last_key = Some(key);
            }
        }
        self.knees = out;
    }
}

impl Codec for FrozenCurve {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.cut);
        w.u64(self.arrivals);
        w.len(self.knees.len());
        for &(t, v) in &self.knees {
            w.u64(t);
            w.f64(v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let cut = r.u64("frozen cut")?;
        let arrivals = r.u64("frozen arrivals")?;
        let n = r.len("frozen knee count", 16)?;
        let mut knees = Vec::with_capacity(n);
        let mut prev_t = None;
        let mut prev_v = 0.0f64;
        for _ in 0..n {
            let t = r.u64("frozen knee t")?;
            let v = r.f64("frozen knee value")?;
            if prev_t.is_some_and(|p| t <= p) || !v.is_finite() || v < prev_v {
                return Err(CodecError::Invalid { context: "frozen knee order" });
            }
            prev_t = Some(t);
            prev_v = v;
            knees.push((t, v));
        }
        if prev_t.is_some_and(|p| p > cut) {
            return Err(CodecError::Invalid { context: "frozen knee beyond cut" });
        }
        Ok(Self { knees, cut, arrivals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parse_forms() {
        let p = RetentionPolicy::parse("1000:64").unwrap();
        assert_eq!(
            p,
            RetentionPolicy::new(1000, 64, RetentionPolicy::DEFAULT_COMPACT_EVERY).unwrap()
        );
        let p = RetentionPolicy::parse("1000:64:4096").unwrap();
        assert_eq!(p.compact_every, 4096);
        assert!(RetentionPolicy::parse("0:64").is_err());
        assert!(RetentionPolicy::parse("1000").is_err());
        assert!(RetentionPolicy::parse("1000:0").is_err());
        assert!(RetentionPolicy::parse("1000:64:1:9").is_err());
        assert!(RetentionPolicy::parse("x:y").is_err());
    }

    #[test]
    fn tier_geometry() {
        let p = RetentionPolicy::new(100, 10, 1).unwrap();
        // ages: [0,100) → 0, [100,200) → 1, [200,400) → 2, [400,800) → 3 …
        assert_eq!(p.tier_of(1000, 1000), 0);
        assert_eq!(p.tier_of(901, 1000), 0);
        assert_eq!(p.tier_of(900, 1000), 1); // exact seam: age == window
        assert_eq!(p.tier_of(801, 1000), 1);
        assert_eq!(p.tier_of(800, 1000), 2); // age == 2·window
        assert_eq!(p.tier_of(601, 1000), 2);
        assert_eq!(p.tier_of(600, 1000), 3); // age == 4·window
        assert_eq!(p.tier_of(0, 1000), 4);
        // t in the future of the watermark still maps to tier 0
        assert_eq!(p.tier_of(2000, 1000), 0);

        assert_eq!(p.grain(0), 1);
        assert_eq!(p.grain(1), 10); // span 100 / budget 10
        assert_eq!(p.grain(2), 20); // span 200 (ages [200,400))
        assert_eq!(p.grain(3), 40); // span 400
        assert_eq!(p.grain(4), 80);

        assert_eq!(p.tiers_for_age(0), 1);
        assert_eq!(p.tiers_for_age(99), 1);
        assert_eq!(p.tiers_for_age(100), 2);
        assert_eq!(p.tiers_for_age(400), 4);
    }

    #[test]
    fn fold_keeps_recent_verbatim_and_decimates_old() {
        let p = RetentionPolicy::new(10, 2, 1).unwrap();
        let mut f = FrozenCurve::new();
        // 100 unit steps, one per tick.
        f.fold((0..100).map(|t| (t, (t + 1) as f64)), 100, 99, &p);
        assert_eq!(f.total(), 100.0);
        assert_eq!(f.arrivals(), 100);
        assert_eq!(f.cut(), 99);
        // tier 0 (ages < 10 → t in (89, 99]) is verbatim
        for t in 90..100 {
            assert_eq!(f.eval(t), (t + 1) as f64);
        }
        // older ticks under-estimate but never over-estimate, and by at
        // most one grain bucket of mass (grain ticks × 1 unit/tick).
        for t in 0..90 {
            let truth = (t + 1) as f64;
            let tier = p.tier_of(t, 99);
            let slack = p.grain(tier) as f64;
            assert!(f.eval(t) <= truth, "over-estimate at {t}");
            assert!(truth - f.eval(t) <= slack, "gap {} > {slack} at {t}", truth - f.eval(t));
        }
        // far fewer knees than arrivals: ~budget per tier + full window
        assert!(f.len() < 30, "kept {} knees", f.len());
    }

    #[test]
    fn repeated_folds_stay_monotone_and_bounded() {
        let p = RetentionPolicy::new(16, 4, 1).unwrap();
        let mut f = FrozenCurve::new();
        let mut total = 0.0;
        for round in 0..64u64 {
            let base = round * 100;
            let samples: Vec<_> = (0..100).map(|i| (base + i, total + (i + 1) as f64)).collect();
            // fold() offsets by the running total itself; pass raw live values
            let raw: Vec<_> = samples.iter().map(|&(t, v)| (t, v - total)).collect();
            f.fold(raw, 100, base + 99, &p);
            total += 100.0;
            assert_eq!(f.total(), total);
            // eval is monotone in t
            let mut prev = -1.0;
            f.for_each_knee(|_, v| {
                assert!(v >= prev);
                prev = v;
            });
        }
        // 6400 ticks of history under a 16-tick window: O(budget · log)
        // knees, not O(arrivals).
        assert!(f.len() < 80, "kept {} knees for 6400 arrivals", f.len());
    }

    #[test]
    fn codec_roundtrip_and_rejects_disorder() {
        let p = RetentionPolicy::new(10, 4, 128).unwrap();
        let mut w = Writer::new();
        p.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(RetentionPolicy::decode(&mut r).unwrap(), p);
        r.finish().unwrap();

        let mut f = FrozenCurve::new();
        f.fold([(5, 1.0), (7, 3.0), (20, 4.5)], 5, 20, &p);
        let mut w = Writer::new();
        f.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = FrozenCurve::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, f);

        // knees out of order → Invalid
        let mut w = Writer::new();
        w.u64(30); // cut
        w.u64(2); // arrivals
        w.len(2);
        w.u64(9);
        w.f64(2.0);
        w.u64(4); // t goes backwards
        w.f64(3.0);
        let bytes = w.into_bytes();
        assert!(FrozenCurve::decode(&mut Reader::new(&bytes)).is_err());
    }
}
