//! # bed-sketch — Count-Min substrate and CM-PBE
//!
//! Section IV of *"Bursty Event Detection Throughout Histories"* handles
//! mixed event streams by combining a Count-Min layout with the
//! single-stream PBEs: a `d × w` grid where every cell is a **persistent
//! burstiness estimator** instead of a plain counter. An arriving element
//! `(e, t)` updates one cell per row (chosen by that row's hash of `e`); the
//! cell ignores the id and treats everything hashed into it as one single
//! event stream.
//!
//! Querying `F̃_e(t)` probes the d cells `e` maps to and combines them with
//! the **median**: each cell's PBE *under*-estimates its own mixed curve,
//! while hash collisions make that curve an *over*-estimate of `F_e`, so
//! (unlike a classic CM sketch) neither min nor max is safe — the median
//! balances the two one-sided errors and yields Theorem 1's
//! `Pr[|F̃_e(t) − F_e(t)| ≤ εN + Δ] ≥ 1 − δ`.
//!
//! * [`hash`] — seeded 2-universal hash family (no external dependencies).
//! * [`params`] — (ε, δ) → (w, d) conversions.
//! * [`countmin`] — the classic counter-based CM sketch (Section II-C),
//!   kept as a reference implementation and used to sanity-check the hash
//!   family.
//! * [`cmpbe`] — the CM-PBE structure, generic over any
//!   [`bed_pbe::CurveSketch`] cell type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod cmpbe;
pub mod countmin;
pub mod hash;
pub mod params;
pub mod retention;

pub use bank::CellBank;
pub use cmpbe::{CmPbe, CmStructure, Combiner, QueryScratch, StageTimings, MEDIAN_STACK};
pub use countmin::CountMin;
pub use hash::HashFamily;
pub use params::SketchParams;
pub use retention::{FrozenCurve, RetentionPolicy};
