//! The classic Count-Min sketch (Cormode & Muthukrishnan), Section II-C.
//!
//! Kept as a reference implementation: it validates the hash family and the
//! (w, d) parameterisation against the textbook guarantee
//! `Pr[f̃(x) ≤ f(x) + εN] ≥ 1 − δ`, and serves as the non-persistent
//! strawman in the experiments (it can only summarise the *whole* stream,
//! not an arbitrary historical prefix — exactly the gap CM-PBE closes).

use crate::hash::HashFamily;
use crate::params::SketchParams;
use bed_stream::StreamError;

/// Counter-based Count-Min sketch over `u64` item ids.
#[derive(Debug, Clone)]
pub struct CountMin {
    hashes: HashFamily,
    counters: Vec<u64>,
    total: u64,
}

impl CountMin {
    /// Builds a sketch from accuracy parameters and a seed.
    pub fn new(params: SketchParams, seed: u64) -> Result<Self, StreamError> {
        params.validate()?;
        Ok(Self::with_dimensions(params.depth(), params.width(), seed))
    }

    /// Builds a sketch with explicit dimensions.
    pub fn with_dimensions(depth: usize, width: usize, seed: u64) -> Self {
        let hashes = HashFamily::new(depth, width, seed);
        CountMin { counters: vec![0; depth * width], hashes, total: 0 }
    }

    /// Rows d.
    pub fn depth(&self) -> usize {
        self.hashes.depth()
    }

    /// Columns w.
    pub fn width(&self) -> usize {
        self.hashes.width()
    }

    /// Total count N across all updates.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Adds `count` occurrences of `item`.
    pub fn update(&mut self, item: u64, count: u64) {
        let w = self.width();
        for row in 0..self.depth() {
            let b = self.hashes.bucket(row, item);
            self.counters[row * w + b] += count;
        }
        self.total += count;
    }

    /// Point estimate `f̃(item) = min over rows` — never an underestimate.
    pub fn estimate(&self, item: u64) -> u64 {
        let w = self.width();
        (0..self.depth())
            .map(|row| self.counters[row * w + self.hashes.bucket(row, item)])
            .min()
            .unwrap_or(0)
    }

    /// Size in bytes (8 per counter).
    pub fn size_bytes(&self) -> usize {
        self.counters.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cm = CountMin::with_dimensions(4, 32, 7);
        let truth: Vec<(u64, u64)> = (0..200).map(|i| (i, (i % 7) + 1)).collect();
        for &(item, c) in &truth {
            cm.update(item, c);
        }
        for &(item, c) in &truth {
            assert!(cm.estimate(item) >= c, "item {item}");
        }
        assert_eq!(cm.total(), truth.iter().map(|&(_, c)| c).sum::<u64>());
    }

    #[test]
    fn epsilon_bound_holds_for_most_items() {
        let params = SketchParams::new(0.02, 0.05).unwrap();
        let mut cm = CountMin::new(params, 11).unwrap();
        for i in 0..5_000u64 {
            cm.update(i % 500, 1);
        }
        let n = cm.total() as f64;
        let bound = (params.epsilon * n).ceil() as u64;
        let violations = (0..500u64).filter(|&i| cm.estimate(i) > 10 + bound).count();
        // δ = 5%: allow up to ~10% violations for slack in a single run.
        assert!(violations <= 50, "{violations} items exceeded the εN bound");
    }

    #[test]
    fn unseen_items_estimate_small() {
        let mut cm = CountMin::with_dimensions(5, 1024, 3);
        for i in 0..100u64 {
            cm.update(i, 10);
        }
        // An unseen item can only pick up collision mass.
        let est = cm.estimate(999_999);
        assert!(est <= 20, "unseen estimate {est} too large");
    }

    #[test]
    fn size_accounting() {
        let cm = CountMin::with_dimensions(3, 10, 1);
        assert_eq!(cm.size_bytes(), 240);
    }
}
