//! The grid-level struct-of-arrays cell bank.
//!
//! A finalized CM-PBE grid re-exports every cell's pieces into one
//! [`bed_pbe::PieceBank`] whose lane index *is* the flat cell index
//! (`row · w + bucket`), so the query kernels resolve probes over four
//! contiguous, cache-line-aligned arrays instead of chasing `d` heap
//! pointers per probe. The bank is a read-only acceleration mirror: it is
//! rebuilt by [`crate::CmPbe::finalize`], dropped on any ingest, excluded
//! from the `CMPB` codec, and every answer through it is bit-for-bit equal
//! to the array-of-structs path it shadows.

use bed_pbe::kernel::CumHint;
use bed_pbe::soa::{bank_of_cells, PieceBank, ProbeRows};
use bed_pbe::CurveSketch;
use bed_stream::{BurstSpan, Timestamp};

/// SoA mirror of one grid's cells (lane `i` ⇔ `cells[i]`).
#[derive(Debug, Clone)]
pub struct CellBank {
    bank: PieceBank,
}

impl CellBank {
    /// Lays out `cells` into the bank, one lane per cell in index order.
    pub fn build<P: CurveSketch>(cells: &[P]) -> Self {
        CellBank { bank: bank_of_cells(cells) }
    }

    /// Resident byte footprint of the mirror (arrays + span table).
    pub fn size_bytes(&self) -> usize {
        self.bank.size_bytes()
    }

    /// Fused `[F̃(t), F̃(t−τ), F̃(t−2τ)]` of one cell, mirroring that cell's
    /// [`CurveSketch::probe3`].
    #[inline]
    pub fn probe3_cell(&self, cell: usize, t: Timestamp, tau: BurstSpan) -> [f64; 3] {
        self.bank.probe3_lane(cell as u32, t, tau)
    }

    /// `F̃(t)` of one cell, mirroring [`CurveSketch::estimate_cum`].
    #[inline]
    pub fn cum_cell(&self, cell: usize, t: Timestamp) -> f64 {
        self.bank.cum_lane(cell as u32, t)
    }

    /// `F̃(t)` of one cell with rank resumption, mirroring
    /// [`CurveSketch::estimate_cum_hinted`].
    #[inline]
    pub fn cum_cell_hinted(&self, cell: usize, t: Timestamp, hint: &mut CumHint) -> f64 {
        self.bank.cum_lane_hinted(cell as u32, t, hint)
    }

    /// Monotone multi-position sweep of one cell (ascending `positions`),
    /// mirroring a chain of [`CurveSketch::estimate_cum_hinted`] calls in
    /// one forward key walk — see [`PieceBank::cum_lane_sweep`].
    #[inline]
    pub fn cum_cell_sweep(&self, cell: usize, positions: &[u64], out: &mut [f64]) {
        self.bank.cum_lane_sweep(cell as u32, positions, out);
    }

    /// Dense fused probe of **every** cell at one `(t, τ)`: cell `i`'s
    /// `[F̃(t), F̃(t−τ), F̃(t−2τ)]` lands in `out[3i..3i + 3]`, in one
    /// sequential pass over the bank — see [`PieceBank::probe3_all_into`].
    #[inline]
    pub fn probe3_all_into(&self, t: Timestamp, tau: BurstSpan, out: &mut [f64]) {
        self.bank.probe3_all_into(t, tau, out);
    }

    /// Batched probe of one event's `d` cells through
    /// [`PieceBank::probe3_rows`] — all rows of one `(t, τ)` in a single
    /// pass with next-row prefetch and a vectorized evaluation.
    #[inline]
    pub fn probe3_rows(&self, cells: &[u32], t: Timestamp, tau: BurstSpan, out: &mut ProbeRows) {
        self.bank.probe3_rows(cells, t, tau, out);
    }
}
