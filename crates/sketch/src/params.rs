//! (ε, δ) → (width, depth) conversions for Count-Min layouts.

use bed_stream::StreamError;

/// Accuracy parameters of a Count-Min layout: additive error `εN` with
/// failure probability `δ` (Section II-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchParams {
    /// Relative additive error; each row has `w = ⌈e/ε⌉` cells.
    pub epsilon: f64,
    /// Failure probability; the sketch keeps `d = ⌈ln(1/δ)⌉` rows.
    pub delta: f64,
}

impl SketchParams {
    /// The paper's experimental setting: ε = 0.005, δ = 0.02 ("a failure
    /// probability of 2%", Section VI-C; the text's "ε = .5" loses its
    /// leading zeros — `0.005` reproduces the reported megabyte-scale
    /// sketches on million-element streams).
    pub const PAPER: SketchParams = SketchParams { epsilon: 0.005, delta: 0.02 };

    /// Creates and validates parameters.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self, StreamError> {
        let p = SketchParams { epsilon, delta };
        p.validate()?;
        Ok(p)
    }

    /// Checks both parameters lie in (0, 1).
    pub fn validate(&self) -> Result<(), StreamError> {
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(StreamError::InvalidProbability {
                parameter: "epsilon",
                got: self.epsilon,
            });
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(StreamError::InvalidProbability { parameter: "delta", got: self.delta });
        }
        Ok(())
    }

    /// Row width `w = ⌈e/ε⌉`.
    pub fn width(&self) -> usize {
        (std::f64::consts::E / self.epsilon).ceil() as usize
    }

    /// Depth `d = ⌈ln(1/δ)⌉`, at least 1.
    pub fn depth(&self) -> usize {
        ((1.0 / self.delta).ln().ceil() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_out_of_range() {
        assert!(SketchParams::new(0.0, 0.1).is_err());
        assert!(SketchParams::new(0.1, 0.0).is_err());
        assert!(SketchParams::new(1.0, 0.1).is_err());
        assert!(SketchParams::new(0.1, 1.0).is_err());
        assert!(SketchParams::new(0.1, 0.1).is_ok());
    }

    #[test]
    fn classic_cm_dimensions() {
        let p = SketchParams::new(0.01, 0.01).unwrap();
        assert_eq!(p.width(), 272); // ⌈e/0.01⌉
        assert_eq!(p.depth(), 5); // ⌈ln 100⌉
    }

    #[test]
    fn paper_setting() {
        let p = SketchParams::PAPER;
        p.validate().unwrap();
        assert_eq!(p.width(), 544);
        assert_eq!(p.depth(), 4); // ⌈ln 50⌉ = 4
    }

    #[test]
    fn depth_never_zero() {
        let p = SketchParams::new(0.5, 0.9).unwrap();
        assert_eq!(p.depth(), 1);
    }
}
