//! Property-based tests for the stream substrate invariants.

use bed_stream::{
    curve::FrequencyCurve, BurstSpan, EventId, EventStream, ExactBaseline, SingleEventStream,
    TimeRange, Timestamp,
};
use proptest::prelude::*;

/// Arbitrary sorted timestamp vector (duplicates allowed).
fn arb_timestamps() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..500, 0..200).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

proptest! {
    /// F(t) from the curve matches naive counting at every t.
    #[test]
    fn curve_value_matches_naive_count(ts in arb_timestamps(), q in 0u64..600) {
        let stream: SingleEventStream = ts.iter().copied().collect();
        let curve = FrequencyCurve::from_stream(&stream);
        let naive = ts.iter().filter(|&&x| x <= q).count() as u64;
        prop_assert_eq!(curve.value_at(Timestamp(q)), naive);
        prop_assert_eq!(stream.cumulative_frequency(Timestamp(q)), naive);
    }

    /// Corners are strictly increasing in t and cum; cum ends at N.
    #[test]
    fn curve_corner_invariants(ts in arb_timestamps()) {
        let curve = FrequencyCurve::from_stream(&ts.iter().copied().collect());
        for w in curve.corners().windows(2) {
            prop_assert!(w[0].t < w[1].t);
            prop_assert!(w[0].cum < w[1].cum);
        }
        prop_assert_eq!(curve.total(), ts.len() as u64);
    }

    /// Burstiness telescopes: b(t) = bf(t) − bf(t−τ) for all t ≥ τ.
    #[test]
    fn burstiness_telescopes(ts in arb_timestamps(), tau in 1u64..50, t in 0u64..600) {
        let curve = FrequencyCurve::from_stream(&ts.iter().copied().collect());
        let tau = BurstSpan::new(tau).unwrap();
        let t = Timestamp(t);
        let bf_now = curve.burst_frequency(t, tau) as i64;
        let bf_prev = t
            .checked_sub(tau.ticks())
            .map_or(0, |e| curve.burst_frequency(e, tau) as i64);
        prop_assert_eq!(curve.burstiness(t, tau), bf_now - bf_prev);
    }

    /// The sum of burstiness over a full quiet tail returns to zero:
    /// once 2τ ticks pass with no arrivals, b = 0.
    #[test]
    fn burstiness_decays_to_zero(ts in arb_timestamps(), tau in 1u64..50) {
        prop_assume!(!ts.is_empty());
        let curve = FrequencyCurve::from_stream(&ts.iter().copied().collect());
        let tau_span = BurstSpan::new(tau).unwrap();
        let last = *ts.last().unwrap();
        prop_assert_eq!(curve.burstiness(Timestamp(last + 2 * tau), tau_span), 0);
    }

    /// doubled_corners stays on the staircase: every emitted point (t, cum)
    /// satisfies cum == F(t), and timestamps strictly increase.
    #[test]
    fn doubled_corners_lie_on_curve(ts in arb_timestamps()) {
        let curve = FrequencyCurve::from_stream(&ts.iter().copied().collect());
        let doubled = curve.doubled_corners();
        for w in doubled.windows(2) {
            prop_assert!(w[0].t < w[1].t);
        }
        for p in &doubled {
            prop_assert_eq!(p.cum, curve.value_at(p.t));
        }
        prop_assert!(doubled.len() <= curve.n_points() * 2);
    }

    /// l1_distance is a metric-ish: symmetric, zero on identical curves, and
    /// matches the area difference when one curve dominates.
    #[test]
    fn l1_distance_symmetry(ts1 in arb_timestamps(), ts2 in arb_timestamps()) {
        let f = FrequencyCurve::from_stream(&ts1.iter().copied().collect());
        let g = FrequencyCurve::from_stream(&ts2.iter().copied().collect());
        let horizon = Timestamp(700);
        prop_assert_eq!(f.l1_distance(&g, horizon), g.l1_distance(&f, horizon));
        prop_assert_eq!(f.l1_distance(&f, horizon), 0);
    }

    /// Substream frequency equals frequency over the range.
    #[test]
    fn substream_consistency(ts in arb_timestamps(), a in 0u64..500, len in 0u64..200) {
        let stream: SingleEventStream = ts.iter().copied().collect();
        let range = TimeRange::new(Timestamp(a), Timestamp(a + len)).unwrap();
        let sub = stream.substream(range);
        prop_assert_eq!(sub.len() as u64, stream.frequency(range));
        for &t in sub.timestamps() {
            prop_assert!(range.contains(t));
        }
    }

    /// ExactBaseline point query agrees with a per-event curve built by hand.
    #[test]
    fn baseline_matches_projection(
        els in prop::collection::vec((0u32..8, 0u64..300), 0..200),
        tau in 1u64..40,
        q in 0u64..400,
    ) {
        let stream: EventStream = els.iter().copied().collect();
        let baseline = ExactBaseline::from_stream(&stream);
        let tau = BurstSpan::new(tau).unwrap();
        for e in 0..8u32 {
            let proj = stream.project(EventId(e));
            let curve = FrequencyCurve::from_stream(&proj);
            prop_assert_eq!(
                baseline.point_query(EventId(e), Timestamp(q), tau),
                curve.burstiness(Timestamp(q), tau)
            );
        }
    }

    /// Bursty-events output contains exactly the events whose point query
    /// passes the threshold.
    #[test]
    fn bursty_events_is_exact_filter(
        els in prop::collection::vec((0u32..6, 0u64..200), 1..150),
        tau in 1u64..30,
        t in 0u64..250,
        theta in -20i64..20,
    ) {
        let stream: EventStream = els.iter().copied().collect();
        let baseline = ExactBaseline::from_stream(&stream);
        let tau = BurstSpan::new(tau).unwrap();
        let hits = baseline.bursty_events(Timestamp(t), theta, tau);
        for &(e, b) in &hits {
            prop_assert_eq!(baseline.point_query(e, Timestamp(t), tau), b);
            prop_assert!(b >= theta);
        }
        // completeness over events that appeared
        for e in stream.distinct_events() {
            let b = baseline.point_query(e, Timestamp(t), tau);
            let listed = hits.iter().any(|&(he, _)| he == e);
            prop_assert_eq!(listed, b >= theta);
        }
    }

    /// Bursty-times ranges are exactly the ticks passing the threshold
    /// (cross-checked by brute force on small horizons).
    #[test]
    fn bursty_times_matches_brute_force(
        ts in prop::collection::vec(0u64..120, 1..60),
        tau in 1u64..20,
        theta in -5i64..8,
    ) {
        let stream: EventStream = ts.iter().map(|&t| (0u32, t)).collect();
        let baseline = ExactBaseline::from_stream(&stream);
        let tau = BurstSpan::new(tau).unwrap();
        let horizon = Timestamp(200);
        let ranges = baseline.bursty_times(EventId(0), theta, tau, horizon);
        let mut reported = vec![false; 201];
        for r in &ranges {
            for t in r.start.ticks()..=r.end.ticks().min(200) {
                reported[t as usize] = true;
            }
        }
        for t in 0..=200u64 {
            let qualifies = baseline.point_query(EventId(0), Timestamp(t), tau) >= theta;
            prop_assert_eq!(reported[t as usize], qualifies, "tick {}", t);
        }
    }
}
