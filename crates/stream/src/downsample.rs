//! Timestamp downsampling.
//!
//! The paper's streams tick in seconds; many deployments only need minute-
//! or hour-level burst resolution. Coarsening timestamps **before** ingest
//! shrinks the exact staircase (fewer distinct corner points `n`), which
//! directly shrinks PBE summaries at equal accuracy parameters — the `n`
//! dependency measured in Fig. 10b. A [`Downsampler`] is a tiny stateless
//! mapper that performs the coarsening and converts query parameters
//! consistently.

use crate::error::StreamError;
use crate::time::{BurstSpan, Timestamp};

/// Maps fine-grained timestamps onto a coarser tick grid.
///
/// All ticks within one bucket of `factor` fine ticks collapse onto the
/// bucket index, so a stream at second granularity downsampled by 60 yields
/// minute-granularity corner points.
///
/// ```
/// use bed_stream::downsample::Downsampler;
/// use bed_stream::{BurstSpan, Timestamp};
///
/// let ds = Downsampler::new(60).unwrap(); // seconds → minutes
/// assert_eq!(ds.map(Timestamp(59)), Timestamp(0));
/// assert_eq!(ds.map(Timestamp(60)), Timestamp(1));
/// let tau = BurstSpan::new(86_400).unwrap(); // one day in seconds
/// assert_eq!(ds.map_span(tau).unwrap().ticks(), 1_440); // one day in minutes
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Downsampler {
    factor: u64,
}

impl Downsampler {
    /// Creates a downsampler collapsing `factor` fine ticks per coarse tick.
    pub fn new(factor: u64) -> Result<Self, StreamError> {
        if factor == 0 {
            return Err(StreamError::ZeroBurstSpan);
        }
        Ok(Downsampler { factor })
    }

    /// The collapse factor.
    pub fn factor(&self) -> u64 {
        self.factor
    }

    /// Maps a fine timestamp to its coarse bucket.
    #[inline]
    pub fn map(&self, t: Timestamp) -> Timestamp {
        Timestamp(t.ticks() / self.factor)
    }

    /// Converts a burst span expressed in fine ticks; rejects spans smaller
    /// than one coarse tick (the burstiness of a sub-bucket span is not
    /// observable after coarsening).
    pub fn map_span(&self, tau: BurstSpan) -> Result<BurstSpan, StreamError> {
        BurstSpan::new(tau.ticks() / self.factor)
    }

    /// Maps a coarse bucket back to the first fine tick it covers (for
    /// presenting query results in the original time unit).
    #[inline]
    pub fn unmap(&self, t: Timestamp) -> Timestamp {
        Timestamp(t.ticks().saturating_mul(self.factor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_factor() {
        assert!(Downsampler::new(0).is_err());
    }

    #[test]
    fn mapping_is_monotone_and_bucketed() {
        let ds = Downsampler::new(10).unwrap();
        let mut last = Timestamp::ZERO;
        for t in 0..100u64 {
            let m = ds.map(Timestamp(t));
            assert!(m >= last);
            assert_eq!(m.ticks(), t / 10);
            last = m;
        }
    }

    #[test]
    fn span_conversion_floors_and_rejects_subbucket() {
        let ds = Downsampler::new(60).unwrap();
        assert_eq!(ds.map_span(BurstSpan::new(120).unwrap()).unwrap().ticks(), 2);
        assert_eq!(ds.map_span(BurstSpan::new(90).unwrap()).unwrap().ticks(), 1);
        assert!(ds.map_span(BurstSpan::new(59).unwrap()).is_err());
    }

    #[test]
    fn unmap_is_left_inverse_on_bucket_starts() {
        let ds = Downsampler::new(7).unwrap();
        for b in 0..50u64 {
            assert_eq!(ds.map(ds.unmap(Timestamp(b))), Timestamp(b));
        }
    }

    #[test]
    fn downsampling_shrinks_the_staircase() {
        use crate::curve::FrequencyCurve;
        use crate::stream::SingleEventStream;
        let ts: Vec<Timestamp> = (0..1_000u64).map(Timestamp).collect();
        let fine =
            FrequencyCurve::from_stream(&SingleEventStream::from_sorted(ts.clone()).unwrap());
        let ds = Downsampler::new(50).unwrap();
        let coarse_ts: Vec<Timestamp> = ts.iter().map(|&t| ds.map(t)).collect();
        let coarse =
            FrequencyCurve::from_stream(&SingleEventStream::from_sorted(coarse_ts).unwrap());
        assert_eq!(fine.n_points(), 1_000);
        assert_eq!(coarse.n_points(), 20);
        assert_eq!(fine.total(), coarse.total());
    }
}
