//! Event streams: the mixed stream `S` and single-event streams `S_e`.

use std::collections::BTreeSet;

use crate::element::StreamElement;
use crate::error::StreamError;
use crate::event::EventId;
use crate::time::{TimeRange, Timestamp};

/// An ordered sequence of timestamps for one event — the special case
/// `S_e = {t_i | (a_i, t_i) ∈ S, a_i = e}` of Section II-A.
///
/// Duplicated timestamps are allowed (several messages mentioning the event
/// in the same tick); timestamps are non-decreasing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SingleEventStream {
    timestamps: Vec<Timestamp>,
}

impl SingleEventStream {
    /// Empty stream.
    pub fn new() -> Self {
        SingleEventStream::default()
    }

    /// Builds a stream from already-sorted timestamps, verifying order.
    pub fn from_sorted(timestamps: Vec<Timestamp>) -> Result<Self, StreamError> {
        for w in timestamps.windows(2) {
            if w[1] < w[0] {
                return Err(StreamError::NonMonotonicTimestamp { previous: w[0], offered: w[1] });
            }
        }
        Ok(SingleEventStream { timestamps })
    }

    /// Builds a stream from arbitrary-order timestamps by sorting.
    pub fn from_unsorted(mut timestamps: Vec<Timestamp>) -> Self {
        timestamps.sort_unstable();
        SingleEventStream { timestamps }
    }

    /// Appends an arrival, enforcing monotonicity.
    pub fn push(&mut self, ts: Timestamp) -> Result<(), StreamError> {
        if let Some(&last) = self.timestamps.last() {
            if ts < last {
                return Err(StreamError::NonMonotonicTimestamp { previous: last, offered: ts });
            }
        }
        self.timestamps.push(ts);
        Ok(())
    }

    /// Number of arrivals N.
    #[inline]
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// Whether the stream is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// All timestamps, sorted non-decreasing.
    #[inline]
    pub fn timestamps(&self) -> &[Timestamp] {
        &self.timestamps
    }

    /// Latest timestamp `T`, if any.
    pub fn last_timestamp(&self) -> Option<Timestamp> {
        self.timestamps.last().copied()
    }

    /// Cumulative frequency `F(t)`: number of arrivals with timestamp ≤ t
    /// (binary search, O(log n)).
    pub fn cumulative_frequency(&self, t: Timestamp) -> u64 {
        self.timestamps.partition_point(|&x| x <= t) as u64
    }

    /// Frequency `f(t1, t2)`: arrivals in the closed range.
    pub fn frequency(&self, range: TimeRange) -> u64 {
        let hi = self.timestamps.partition_point(|&x| x <= range.end);
        let lo = self.timestamps.partition_point(|&x| x < range.start);
        (hi - lo) as u64
    }

    /// Temporal substream restricted to `range`.
    pub fn substream(&self, range: TimeRange) -> SingleEventStream {
        let lo = self.timestamps.partition_point(|&x| x < range.start);
        let hi = self.timestamps.partition_point(|&x| x <= range.end);
        SingleEventStream { timestamps: self.timestamps[lo..hi].to_vec() }
    }
}

impl FromIterator<u64> for SingleEventStream {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        SingleEventStream::from_unsorted(iter.into_iter().map(Timestamp).collect())
    }
}

/// A mixed event stream `S = {(a_1, t_1), (a_2, t_2), ...}` with
/// non-decreasing timestamps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventStream {
    elements: Vec<StreamElement>,
}

impl EventStream {
    /// Empty stream.
    pub fn new() -> Self {
        EventStream::default()
    }

    /// Builds from elements already sorted by timestamp, verifying order.
    pub fn from_sorted(elements: Vec<StreamElement>) -> Result<Self, StreamError> {
        for w in elements.windows(2) {
            if w[1].ts < w[0].ts {
                return Err(StreamError::NonMonotonicTimestamp {
                    previous: w[0].ts,
                    offered: w[1].ts,
                });
            }
        }
        Ok(EventStream { elements })
    }

    /// Builds from arbitrary-order elements by stable-sorting on timestamp.
    pub fn from_unsorted(mut elements: Vec<StreamElement>) -> Self {
        elements.sort_by_key(|el| el.ts);
        EventStream { elements }
    }

    /// Appends an element, enforcing monotone timestamps.
    pub fn push(&mut self, el: StreamElement) -> Result<(), StreamError> {
        if let Some(last) = self.elements.last() {
            if el.ts < last.ts {
                return Err(StreamError::NonMonotonicTimestamp {
                    previous: last.ts,
                    offered: el.ts,
                });
            }
        }
        self.elements.push(el);
        Ok(())
    }

    /// Number of elements N.
    #[inline]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the stream is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// All elements in timestamp order.
    #[inline]
    pub fn elements(&self) -> &[StreamElement] {
        &self.elements
    }

    /// Iterates over elements.
    pub fn iter(&self) -> impl Iterator<Item = &StreamElement> {
        self.elements.iter()
    }

    /// Latest timestamp `T`, if any.
    pub fn last_timestamp(&self) -> Option<Timestamp> {
        self.elements.last().map(|el| el.ts)
    }

    /// Distinct event ids that appear in the stream, ascending.
    pub fn distinct_events(&self) -> Vec<EventId> {
        let set: BTreeSet<EventId> = self.elements.iter().map(|el| el.event).collect();
        set.into_iter().collect()
    }

    /// Temporal substream `S[t1, t2]`.
    pub fn substream(&self, range: TimeRange) -> EventStream {
        let lo = self.elements.partition_point(|el| el.ts < range.start);
        let hi = self.elements.partition_point(|el| el.ts <= range.end);
        EventStream { elements: self.elements[lo..hi].to_vec() }
    }

    /// Projects the single-event stream `S_e` out of the mixed stream.
    pub fn project(&self, event: EventId) -> SingleEventStream {
        let timestamps =
            self.elements.iter().filter(|el| el.event == event).map(|el| el.ts).collect();
        // Projection of a sorted stream stays sorted.
        SingleEventStream { timestamps }
    }
}

impl FromIterator<(u32, u64)> for EventStream {
    fn from_iter<I: IntoIterator<Item = (u32, u64)>>(iter: I) -> Self {
        EventStream::from_unsorted(
            iter.into_iter().map(|(e, t)| StreamElement::new(e, t)).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ses(ts: &[u64]) -> SingleEventStream {
        ts.iter().copied().collect()
    }

    #[test]
    fn single_stream_monotonicity_enforced() {
        let mut s = SingleEventStream::new();
        s.push(Timestamp(5)).unwrap();
        s.push(Timestamp(5)).unwrap(); // duplicates allowed
        assert!(s.push(Timestamp(4)).is_err());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn from_sorted_rejects_disorder() {
        assert!(SingleEventStream::from_sorted(vec![Timestamp(2), Timestamp(1)]).is_err());
        assert!(SingleEventStream::from_sorted(vec![Timestamp(1), Timestamp(1)]).is_ok());
    }

    #[test]
    fn cumulative_frequency_counts_inclusively() {
        let s = ses(&[1, 3, 3, 7]);
        assert_eq!(s.cumulative_frequency(Timestamp(0)), 0);
        assert_eq!(s.cumulative_frequency(Timestamp(1)), 1);
        assert_eq!(s.cumulative_frequency(Timestamp(3)), 3);
        assert_eq!(s.cumulative_frequency(Timestamp(6)), 3);
        assert_eq!(s.cumulative_frequency(Timestamp(7)), 4);
        assert_eq!(s.cumulative_frequency(Timestamp(100)), 4);
    }

    #[test]
    fn frequency_over_closed_range() {
        let s = ses(&[1, 3, 3, 7]);
        let r = |a, b| TimeRange::new(Timestamp(a), Timestamp(b)).unwrap();
        assert_eq!(s.frequency(r(1, 3)), 3);
        assert_eq!(s.frequency(r(2, 2)), 0);
        assert_eq!(s.frequency(r(3, 7)), 3);
        assert_eq!(s.frequency(r(0, 100)), 4);
    }

    #[test]
    fn substream_extraction() {
        let s = ses(&[1, 3, 3, 7]);
        let sub = s.substream(TimeRange::new(Timestamp(2), Timestamp(5)).unwrap());
        assert_eq!(sub.timestamps(), &[Timestamp(3), Timestamp(3)]);
    }

    #[test]
    fn event_stream_projection_and_distinct() {
        let s: EventStream = [(1, 0), (2, 1), (1, 1), (3, 4), (1, 9)].into_iter().collect();
        assert_eq!(s.len(), 5);
        let e1 = s.project(EventId(1));
        assert_eq!(e1.timestamps(), &[Timestamp(0), Timestamp(1), Timestamp(9)]);
        assert_eq!(s.distinct_events(), vec![EventId(1), EventId(2), EventId(3)]);
        assert!(s.project(EventId(99)).is_empty());
    }

    #[test]
    fn event_stream_substream() {
        let s: EventStream = [(1, 0), (2, 3), (3, 5), (1, 8)].into_iter().collect();
        let sub = s.substream(TimeRange::new(Timestamp(3), Timestamp(5)).unwrap());
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.elements()[0].event, EventId(2));
        assert_eq!(sub.elements()[1].event, EventId(3));
    }

    #[test]
    fn event_stream_push_monotone() {
        let mut s = EventStream::new();
        s.push(StreamElement::new(0u32, 1u64)).unwrap();
        s.push(StreamElement::new(1u32, 1u64)).unwrap();
        assert!(s.push(StreamElement::new(2u32, 0u64)).is_err());
    }

    #[test]
    fn from_unsorted_sorts_stably() {
        let s = EventStream::from_unsorted(vec![
            StreamElement::new(9u32, 5u64),
            StreamElement::new(1u32, 2u64),
            StreamElement::new(7u32, 5u64),
        ]);
        assert_eq!(s.elements()[0].event, EventId(1));
        // stable: event 9 (inserted before 7 at the same ts) stays first
        assert_eq!(s.elements()[1].event, EventId(9));
        assert_eq!(s.elements()[2].event, EventId(7));
    }
}
