//! # bed-stream — stream substrate for bursty event detection
//!
//! This crate provides the foundational data model used by every other crate
//! in the `bed` workspace, following the formulation of *"Bursty Event
//! Detection Throughout Histories"* (Paul, Peng & Li, ICDE 2019), Section II:
//!
//! * [`Timestamp`], [`TimeRange`] and [`BurstSpan`] — the discrete time domain
//!   and the burst span parameter τ.
//! * [`EventId`] and [`StreamElement`] — the event identifier space Σ and the
//!   elements of an event stream `S = {(a_i, t_i)}`.
//! * [`Message`] and [`EventMapper`] — the paper's black-box map `h` from raw
//!   text messages to one or more event identifiers.
//! * [`SingleEventStream`] and [`EventStream`] — ordered streams of
//!   timestamps / (id, timestamp) pairs with temporal substream extraction.
//! * [`FrequencyCurve`] — the exact cumulative frequency staircase `F(t)`
//!   together with burst frequency `bf(t)` and burstiness `b(t)`.
//! * [`ExactBaseline`] — the naive exact solution of Section II-B: store
//!   everything, answer point queries by binary search, and range queries by
//!   scanning; it doubles as the ground-truth oracle in the experiments.
//!
//! Everything here is exact; the approximation machinery lives in `bed-pbe`
//! and `bed-sketch`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod curve;
pub mod downsample;
pub mod element;
pub mod error;
pub mod event;
pub mod exact;
pub mod mappers;
pub mod reorder;
pub mod stream;
pub mod time;

pub use codec::{Codec, CodecError};
pub use crc::{crc32, Crc32};
pub use curve::FrequencyCurve;
pub use element::{EventMapper, HashtagMapper, Message, StreamElement};
pub use error::StreamError;
pub use event::EventId;
pub use exact::ExactBaseline;
pub use stream::{EventStream, SingleEventStream};
pub use time::{BurstSpan, TimeRange, Timestamp};

/// Burstiness values are signed: an event decelerating has negative
/// burstiness (see Fig. 1 of the paper, range `[4, 5)`).
pub type Burstiness = i64;
