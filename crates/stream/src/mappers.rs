//! Additional [`EventMapper`] implementations.
//!
//! The paper built its event ids "based on hashtags and keywords"
//! (Section VI). [`crate::HashtagMapper`] covers the hashtag half;
//! [`KeywordMapper`] covers curated keyword dictionaries (each keyword or
//! phrase is assigned an explicit event id — the "fire breakout" /
//! "anthem protest" style of event), and [`CompositeMapper`] chains any two
//! mappers so both sources contribute.

use std::collections::HashMap;

use crate::element::{EventMapper, Message, StreamElement};
use crate::event::EventId;

/// Dictionary mapper: case-insensitive whole-word keyword → event id.
///
/// Multi-word phrases match as contiguous word sequences. A message that
/// mentions several keywords emits one element per *distinct* event id.
///
/// ```
/// use bed_stream::mappers::KeywordMapper;
/// use bed_stream::{EventMapper, EventId, Message};
///
/// let mapper = KeywordMapper::new([
///     ("earthquake", EventId(0)),
///     ("anthem protest", EventId(1)),
/// ]);
/// let els = mapper.map(&Message::new("Anthem Protest spreads after earthquake", 9u64));
/// assert_eq!(els.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeywordMapper {
    /// keyword (lower-cased, possibly multi-word) → event id
    dictionary: HashMap<String, EventId>,
    /// longest phrase length in words (bounds the scan window)
    max_words: usize,
}

impl KeywordMapper {
    /// Builds a mapper from `(keyword, event)` pairs.
    pub fn new<I, S>(entries: I) -> Self
    where
        I: IntoIterator<Item = (S, EventId)>,
        S: AsRef<str>,
    {
        let mut dictionary = HashMap::new();
        let mut max_words = 1;
        for (k, e) in entries {
            let key = normalise(k.as_ref());
            max_words = max_words.max(key.split(' ').count());
            dictionary.insert(key, e);
        }
        KeywordMapper { dictionary, max_words }
    }

    /// Registered keyword count.
    pub fn len(&self) -> usize {
        self.dictionary.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.dictionary.is_empty()
    }

    /// The event a keyword maps to, if registered.
    pub fn event_for(&self, keyword: &str) -> Option<EventId> {
        self.dictionary.get(&normalise(keyword)).copied()
    }
}

/// Lower-cases and collapses whitespace runs; strips punctuation edges.
fn normalise(s: &str) -> String {
    s.split_whitespace()
        .map(|w| w.trim_matches(|c: char| !c.is_alphanumeric()).to_lowercase())
        .filter(|w| !w.is_empty())
        .collect::<Vec<_>>()
        .join(" ")
}

impl EventMapper for KeywordMapper {
    fn map_into(&self, message: &Message, out: &mut Vec<StreamElement>) {
        let words: Vec<String> = message
            .text
            .split_whitespace()
            .map(|w| w.trim_matches(|c: char| !c.is_alphanumeric()).to_lowercase())
            .filter(|w| !w.is_empty())
            .collect();
        let before = out.len();
        for start in 0..words.len() {
            let mut phrase = String::new();
            for len in 1..=self.max_words.min(words.len() - start) {
                if len > 1 {
                    phrase.push(' ');
                }
                phrase.push_str(&words[start + len - 1]);
                if let Some(&event) = self.dictionary.get(&phrase) {
                    if !out[before..].iter().any(|el| el.event == event) {
                        out.push(StreamElement { event, ts: message.ts });
                    }
                }
            }
        }
    }
}

/// Runs two mappers and combines their outputs (deduplicated per message).
#[derive(Debug, Clone)]
pub struct CompositeMapper<A, B> {
    first: A,
    second: B,
}

impl<A, B> CompositeMapper<A, B> {
    /// Chains two mappers.
    pub fn new(first: A, second: B) -> Self {
        CompositeMapper { first, second }
    }
}

impl<A: EventMapper, B: EventMapper> EventMapper for CompositeMapper<A, B> {
    fn map_into(&self, message: &Message, out: &mut Vec<StreamElement>) {
        let before = out.len();
        self.first.map_into(message, out);
        let mid = out.len();
        self.second.map_into(message, out);
        // dedupe events the second mapper repeated
        let mut i = mid;
        while i < out.len() {
            let e = out[i].event;
            if out[before..mid].iter().any(|el| el.event == e) {
                out.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::HashtagMapper;
    use crate::time::Timestamp;

    fn km() -> KeywordMapper {
        KeywordMapper::new([
            ("earthquake", EventId(10)),
            ("anthem protest", EventId(11)),
            ("access hollywood tape", EventId(12)),
        ])
    }

    #[test]
    fn single_word_match_is_case_insensitive() {
        let els = km().map(&Message::new("EARTHQUAKE hits the coast!", 5u64));
        assert_eq!(els, vec![StreamElement::new(10u32, 5u64)]);
    }

    #[test]
    fn multi_word_phrases_match_contiguously() {
        let els = km().map(&Message::new("the Anthem Protest grows", 7u64));
        assert_eq!(els.len(), 1);
        assert_eq!(els[0].event, EventId(11));
        // non-contiguous words do not match
        let els = km().map(&Message::new("anthem of the protest", 8u64));
        assert!(els.is_empty());
        // three-word phrase
        let els = km().map(&Message::new("leak of the Access Hollywood tape", 9u64));
        assert_eq!(els[0].event, EventId(12));
    }

    #[test]
    fn punctuation_is_stripped() {
        let els = km().map(&Message::new("“earthquake”!!!", 1u64));
        assert_eq!(els.len(), 1);
    }

    #[test]
    fn duplicate_keywords_emit_once() {
        let els = km().map(&Message::new("earthquake after earthquake", 2u64));
        assert_eq!(els.len(), 1);
    }

    #[test]
    fn unknown_text_maps_to_nothing() {
        assert!(km().map(&Message::new("a quiet day", 3u64)).is_empty());
        assert_eq!(km().event_for("earthquake"), Some(EventId(10)));
        assert_eq!(km().event_for("volcano"), None);
        assert_eq!(km().len(), 3);
    }

    #[test]
    fn composite_combines_and_dedupes() {
        // hashtags land in a high id range, keywords in a curated low range
        let composite = CompositeMapper::new(km(), HashtagMapper::new(1 << 20));
        let msg = Message::new("earthquake! #earthquake #breaking", 4u64);
        let els = composite.map(&msg);
        // keyword event 10 + two distinct hashtag events
        assert_eq!(els.len(), 3, "{els:?}");
        assert!(els.iter().any(|el| el.event == EventId(10)));
        assert!(els.iter().all(|el| el.ts == Timestamp(4)));
    }

    #[test]
    fn composite_dedupes_same_event_from_both() {
        // both mappers produce the same id: keep one
        let a = KeywordMapper::new([("x", EventId(1))]);
        let b = KeywordMapper::new([("x", EventId(1)), ("y", EventId(2))]);
        let composite = CompositeMapper::new(a, b);
        let els = composite.map(&Message::new("x y", 1u64));
        assert_eq!(els.len(), 2);
    }
}
