//! Error types shared across the stream substrate.

use std::fmt;

use crate::time::Timestamp;

/// Errors produced by stream construction and querying.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A time range was constructed with `start > end`.
    InvertedRange {
        /// Offending lower bound.
        start: Timestamp,
        /// Offending upper bound.
        end: Timestamp,
    },
    /// The burst span τ must be strictly positive.
    ZeroBurstSpan,
    /// An element arrived with a timestamp earlier than its predecessor.
    ///
    /// Streams are defined with `t_i ≤ t_j` iff `i < j` (Section II-A);
    /// ingestion enforces this.
    NonMonotonicTimestamp {
        /// Timestamp of the previous element.
        previous: Timestamp,
        /// Timestamp of the rejected element.
        offered: Timestamp,
    },
    /// An operation that needs at least one element was invoked on an empty
    /// stream.
    EmptyStream,
    /// An event id fell outside the configured universe `[0, K)`.
    EventOutOfUniverse {
        /// Offending event id value.
        event: u32,
        /// Universe size K.
        universe: u32,
    },
    /// A space budget parameter was too small to be meaningful (e.g. PBE-1
    /// needs η ≥ 2 to keep both boundary points; a CM sketch needs at least
    /// one row and one column).
    BudgetTooSmall {
        /// Human-readable name of the parameter.
        parameter: &'static str,
        /// Value supplied by the caller.
        got: usize,
        /// Minimum accepted value.
        min: usize,
    },
    /// A sketch accuracy parameter (ε or δ) was outside `(0, 1)`.
    InvalidProbability {
        /// Human-readable name of the parameter.
        parameter: &'static str,
        /// Value supplied by the caller.
        got: f64,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::InvertedRange { start, end } => {
                write!(f, "inverted time range: start {start} > end {end}")
            }
            StreamError::ZeroBurstSpan => write!(f, "burst span τ must be > 0"),
            StreamError::NonMonotonicTimestamp { previous, offered } => {
                write!(f, "non-monotonic timestamp: {offered} arrived after {previous}")
            }
            StreamError::EmptyStream => write!(f, "operation requires a non-empty stream"),
            StreamError::EventOutOfUniverse { event, universe } => {
                write!(f, "event id {event} outside universe [0, {universe})")
            }
            StreamError::BudgetTooSmall { parameter, got, min } => {
                write!(f, "{parameter} = {got} too small (minimum {min})")
            }
            StreamError::InvalidProbability { parameter, got } => {
                write!(f, "{parameter} = {got} must lie in (0, 1)")
            }
        }
    }
}

impl std::error::Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e =
            StreamError::NonMonotonicTimestamp { previous: Timestamp(10), offered: Timestamp(3) };
        let msg = e.to_string();
        assert!(msg.contains("t3"));
        assert!(msg.contains("t10"));

        let e = StreamError::BudgetTooSmall { parameter: "eta", got: 1, min: 2 };
        assert!(e.to_string().contains("eta"));

        let e = StreamError::InvalidProbability { parameter: "epsilon", got: 1.5 };
        assert!(e.to_string().contains("epsilon"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: E) {}
        assert_err(StreamError::ZeroBurstSpan);
    }
}
