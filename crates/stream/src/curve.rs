//! The exact cumulative frequency curve `F(t)` and burstiness arithmetic.
//!
//! With discrete timestamps, `F(t)` is a monotonically increasing staircase
//! (Fig. 2a). We represent it by its **left-upper corner points**
//! `P_F = {p_0, ..., p_{n-1}}` with `p_i = (t_i, F(t_i))`: the curve holds the
//! value `F(t_i)` on `[t_i, t_{i+1})` and is 0 before `t_0`.
//!
//! Everything downstream — both PBE variants and their error analysis — is
//! phrased in terms of this staircase: PBE-1 selects a subset of the corner
//! points, PBE-2 threads line segments through γ-ranges below them, and the
//! approximation error Δ is the area enclosed between `F` and its
//! approximation (Eq. 3).

use crate::stream::SingleEventStream;
use crate::time::{BurstSpan, Timestamp};
use crate::Burstiness;

/// One left-upper corner point `(t, F(t))` of the staircase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CornerPoint {
    /// Timestamp at which the curve rises to `cum`.
    pub t: Timestamp,
    /// Cumulative frequency from `t` until the next corner.
    pub cum: u64,
}

/// The exact staircase `F(t)` of a single event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrequencyCurve {
    corners: Vec<CornerPoint>,
}

impl FrequencyCurve {
    /// Empty curve (`F ≡ 0`).
    pub fn new() -> Self {
        FrequencyCurve::default()
    }

    /// Builds the staircase from a single event stream: arrivals sharing a
    /// timestamp collapse into one corner, so `n ≤ N` (often `n ≪ N`, which
    /// is why PBE-1 buffers corner points rather than raw elements).
    pub fn from_stream(stream: &SingleEventStream) -> Self {
        let mut corners: Vec<CornerPoint> = Vec::new();
        for &ts in stream.timestamps() {
            match corners.last_mut() {
                Some(last) if last.t == ts => last.cum += 1,
                Some(last) => {
                    let cum = last.cum + 1;
                    corners.push(CornerPoint { t: ts, cum });
                }
                None => corners.push(CornerPoint { t: ts, cum: 1 }),
            }
        }
        FrequencyCurve { corners }
    }

    /// Builds directly from corner points; panics (debug) on violations of
    /// strict monotonicity in both coordinates.
    pub fn from_corners(corners: Vec<CornerPoint>) -> Self {
        debug_assert!(
            corners.windows(2).all(|w| w[0].t < w[1].t && w[0].cum < w[1].cum),
            "corner points must be strictly increasing in t and cum"
        );
        FrequencyCurve { corners }
    }

    /// Streaming construction: records one more arrival at `ts`
    /// (must be ≥ the last corner's timestamp).
    pub fn record(&mut self, ts: Timestamp) {
        match self.corners.last_mut() {
            Some(last) if last.t == ts => last.cum += 1,
            Some(last) => {
                assert!(ts > last.t, "record() requires non-decreasing timestamps");
                let cum = last.cum + 1;
                self.corners.push(CornerPoint { t: ts, cum });
            }
            None => self.corners.push(CornerPoint { t: ts, cum: 1 }),
        }
    }

    /// Corner points `P_F`, strictly increasing in both coordinates.
    #[inline]
    pub fn corners(&self) -> &[CornerPoint] {
        &self.corners
    }

    /// Number of corner points `n = |F(t)|`.
    #[inline]
    pub fn n_points(&self) -> usize {
        self.corners.len()
    }

    /// Whether the curve is identically zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.corners.is_empty()
    }

    /// Final cumulative count `F(∞)` (= N, the stream length).
    pub fn total(&self) -> u64 {
        self.corners.last().map_or(0, |c| c.cum)
    }

    /// Timestamp of the last rise.
    pub fn last_timestamp(&self) -> Option<Timestamp> {
        self.corners.last().map(|c| c.t)
    }

    /// `F(t)`: cumulative frequency at time `t` (O(log n) binary search).
    pub fn value_at(&self, t: Timestamp) -> u64 {
        let idx = self.corners.partition_point(|c| c.t <= t);
        if idx == 0 {
            0
        } else {
            self.corners[idx - 1].cum
        }
    }

    /// `F(t − delta)`, treating times before the epoch as frequency 0.
    pub fn cum_at_offset(&self, t: Timestamp, delta: u64) -> u64 {
        match t.checked_sub(delta) {
            Some(earlier) => self.value_at(earlier),
            None => 0,
        }
    }

    /// Burst frequency (incoming rate) `bf(t) = F(t) − F(t − τ)`.
    pub fn burst_frequency(&self, t: Timestamp, tau: BurstSpan) -> u64 {
        self.value_at(t) - self.cum_at_offset(t, tau.ticks())
    }

    /// Burstiness `b(t) = F(t) − 2·F(t−τ) + F(t−2τ)` (Eq. 1).
    pub fn burstiness(&self, t: Timestamp, tau: BurstSpan) -> Burstiness {
        let f0 = self.value_at(t) as i64;
        let f1 = self.cum_at_offset(t, tau.ticks()) as i64;
        let f2 = self.cum_at_offset(t, tau.ticks().saturating_mul(2)) as i64;
        f0 - 2 * f1 + f2
    }

    /// Integral `Σ_{t=0}^{horizon} F(t)` over the discrete time domain.
    ///
    /// Used to express the approximation error functional
    /// `Δ = Σ (F(t) − F̃(t))` of Eq. 3 as `area(F) − area(F̃)` when
    /// `F̃ ≤ F` everywhere.
    pub fn area_up_to(&self, horizon: Timestamp) -> u64 {
        let mut area = 0u64;
        for (i, c) in self.corners.iter().enumerate() {
            if c.t > horizon {
                break;
            }
            let seg_end = match self.corners.get(i + 1) {
                Some(next) if next.t <= horizon => next.t.ticks(),
                // last (or clipped) segment extends through `horizon` inclusive
                _ => horizon.ticks().saturating_add(1),
            };
            area += c.cum * (seg_end - c.t.ticks());
        }
        area
    }

    /// Discrete L1 distance `Σ_{t=0}^{horizon} |F(t) − G(t)|` between two
    /// staircases, evaluated segment-wise over the merged breakpoints.
    pub fn l1_distance(&self, other: &FrequencyCurve, horizon: Timestamp) -> u64 {
        // Merge breakpoints of both curves, then each inter-breakpoint run of
        // ticks has constant |F − G|.
        let mut breaks: Vec<u64> = std::iter::once(0)
            .chain(self.corners.iter().map(|c| c.t.ticks()))
            .chain(other.corners.iter().map(|c| c.t.ticks()))
            .filter(|&t| t <= horizon.ticks())
            .collect();
        breaks.sort_unstable();
        breaks.dedup();
        breaks.push(horizon.ticks().saturating_add(1));

        let mut total = 0u64;
        for w in breaks.windows(2) {
            let (start, end) = (w[0], w[1]);
            let f = self.value_at(Timestamp(start));
            let g = other.value_at(Timestamp(start));
            total += f.abs_diff(g) * (end - start);
        }
        total
    }

    /// Corner points augmented with the **predecessor points** required by
    /// PBE-2 (Section III-B): for every corner `p_i = (t_i, F(t_i))` with
    /// `i ≥ 1`, the point `(t_i − 1, F(t_i − 1))` on the leveling part of the
    /// staircase right before the rise. The first corner gets `(t_0 − 1, 0)`
    /// when `t_0 > 0`. Duplicates (when corners are one tick apart) collapse.
    ///
    /// The result has up to `2n` points, matching the paper's "the new
    /// `P_F(t)`'s size is 2n".
    pub fn doubled_corners(&self) -> Vec<CornerPoint> {
        let mut out = Vec::with_capacity(self.corners.len() * 2);
        for (i, c) in self.corners.iter().enumerate() {
            if let Some(before) = c.t.checked_sub(1) {
                let prev_cum = if i == 0 { 0 } else { self.corners[i - 1].cum };
                let dominated = match i {
                    0 => false,
                    _ => self.corners[i - 1].t == before, // consecutive ticks: point already present
                };
                if !dominated {
                    out.push(CornerPoint { t: before, cum: prev_cum });
                }
            }
            out.push(*c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(ts: &[u64]) -> FrequencyCurve {
        FrequencyCurve::from_stream(&ts.iter().copied().collect())
    }

    #[test]
    fn staircase_collapses_duplicate_timestamps() {
        let c = curve(&[1, 3, 3, 3, 7]);
        assert_eq!(c.n_points(), 3);
        assert_eq!(
            c.corners(),
            &[
                CornerPoint { t: Timestamp(1), cum: 1 },
                CornerPoint { t: Timestamp(3), cum: 4 },
                CornerPoint { t: Timestamp(7), cum: 5 },
            ]
        );
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn value_at_steps_correctly() {
        let c = curve(&[1, 3, 3, 7]);
        assert_eq!(c.value_at(Timestamp(0)), 0);
        assert_eq!(c.value_at(Timestamp(1)), 1);
        assert_eq!(c.value_at(Timestamp(2)), 1);
        assert_eq!(c.value_at(Timestamp(3)), 3);
        assert_eq!(c.value_at(Timestamp(7)), 4);
        assert_eq!(c.value_at(Timestamp(1_000)), 4);
    }

    #[test]
    fn streaming_record_equals_batch_construction() {
        let ts = [2u64, 2, 5, 9, 9, 9, 14];
        let batch = curve(&ts);
        let mut inc = FrequencyCurve::new();
        for &t in &ts {
            inc.record(Timestamp(t));
        }
        assert_eq!(batch, inc);
    }

    #[test]
    fn burstiness_matches_figure_1_shape() {
        // Reconstruct the flavour of Fig. 1 with τ = 10 and per-span arrival
        // counts [2, 2, 4, 8, 16, 18]: stable in the first two spans,
        // accelerating through spans 3–5, then still fast but decelerating.
        let counts = [2u64, 2, 4, 8, 16, 18];
        let mut ts: Vec<u64> = Vec::new();
        for (span, &k) in counts.iter().enumerate() {
            for i in 0..k {
                ts.push(span as u64 * 10 + (i * 10 / k));
            }
        }
        let c = FrequencyCurve::from_stream(&SingleEventStream::from_unsorted(
            ts.into_iter().map(Timestamp).collect(),
        ));
        let tau = BurstSpan::new(10).unwrap();
        let b = |t: u64| c.burstiness(Timestamp(t), tau);
        assert_eq!(b(19), 0); // two stable spans
        assert!(b(29) > 0);
        assert!(b(39) > b(29)); // accelerating
        assert!(b(49) > b(39));
        assert!(b(59) < b(49)); // still fast but decelerating
    }

    #[test]
    fn burstiness_can_be_negative() {
        // burst then silence: acceleration goes negative one span later.
        let c = curve(&[0, 0, 0, 0, 1, 1, 1, 1]);
        let tau = BurstSpan::new(5).unwrap();
        assert_eq!(c.burstiness(Timestamp(4), tau), 8);
        assert_eq!(c.burstiness(Timestamp(9), tau), -8);
        assert_eq!(c.burstiness(Timestamp(14), tau), 0);
    }

    #[test]
    fn burstiness_identity_against_burst_frequency() {
        let c = curve(&[1, 2, 2, 5, 8, 8, 8, 13, 21]);
        let tau = BurstSpan::new(4).unwrap();
        for t in 0..30u64 {
            let t = Timestamp(t);
            let bf_now = c.burst_frequency(t, tau) as i64;
            let bf_prev = match t.checked_sub(tau.ticks()) {
                Some(earlier) => c.burst_frequency(earlier, tau) as i64,
                None => 0,
            };
            assert_eq!(c.burstiness(t, tau), bf_now - bf_prev, "at {t}");
        }
    }

    #[test]
    fn area_up_to_sums_ticks() {
        let c = curve(&[2, 4]); // F: 0,0,1,1,2,2,...
        assert_eq!(c.area_up_to(Timestamp(5)), 1 + 1 + 2 + 2);
        assert_eq!(c.area_up_to(Timestamp(1)), 0);
        assert_eq!(c.area_up_to(Timestamp(2)), 1);
    }

    #[test]
    fn area_of_empty_curve_is_zero() {
        assert_eq!(FrequencyCurve::new().area_up_to(Timestamp(100)), 0);
    }

    #[test]
    fn l1_distance_between_staircases() {
        let f = curve(&[2, 4]);
        let g = curve(&[2]); // G: 0,0,1,1,1,...
                             // |F-G| per tick over [0,5]: 0,0,0,0,1,1 = 2
        assert_eq!(f.l1_distance(&g, Timestamp(5)), 2);
        assert_eq!(g.l1_distance(&f, Timestamp(5)), 2);
        assert_eq!(f.l1_distance(&f, Timestamp(5)), 0);
    }

    #[test]
    fn l1_distance_matches_area_difference_for_dominated_curve() {
        let f = curve(&[1, 2, 3, 10, 10, 12]);
        let g = curve(&[1, 3, 12]); // G ≤ F pointwise (fewer arrivals, same times subset)
        let horizon = Timestamp(20);
        for t in 0..=20u64 {
            assert!(g.value_at(Timestamp(t)) <= f.value_at(Timestamp(t)));
        }
        assert_eq!(f.l1_distance(&g, horizon), f.area_up_to(horizon) - g.area_up_to(horizon));
    }

    #[test]
    fn doubled_corners_insert_predecessor_points() {
        let c = curve(&[2, 5, 6]);
        // corners: (2,1), (5,2), (6,3)
        // doubled: (1,0), (2,1), (4,1), (5,2), (6,3)   — (5,2) precedes (6,3)
        // by one tick, so its predecessor point (5,2) is already present.
        let d = c.doubled_corners();
        assert_eq!(
            d,
            vec![
                CornerPoint { t: Timestamp(1), cum: 0 },
                CornerPoint { t: Timestamp(2), cum: 1 },
                CornerPoint { t: Timestamp(4), cum: 1 },
                CornerPoint { t: Timestamp(5), cum: 2 },
                CornerPoint { t: Timestamp(6), cum: 3 },
            ]
        );
        // strictly increasing timestamps, non-decreasing cum
        assert!(d.windows(2).all(|w| w[0].t < w[1].t && w[0].cum <= w[1].cum));
    }

    #[test]
    fn doubled_corners_at_epoch() {
        let c = curve(&[0, 3]);
        let d = c.doubled_corners();
        // first corner at t=0 has no predecessor tick
        assert_eq!(d[0], CornerPoint { t: Timestamp(0), cum: 1 });
        assert_eq!(d[1], CornerPoint { t: Timestamp(2), cum: 1 });
        assert_eq!(d[2], CornerPoint { t: Timestamp(3), cum: 2 });
    }
}
