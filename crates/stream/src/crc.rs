//! CRC-32 (IEEE 802.3 polynomial) — integrity tags for persisted state.
//!
//! The checkpoint/recovery subsystem frames every durable artifact — BEDS
//! v2 snapshot envelopes and write-ahead-log records — with a CRC so that
//! torn writes and bit rot surface as a typed [`crate::CodecError`] instead
//! of a silently wrong summary. The implementation is the standard
//! byte-at-a-time table walk (reflected polynomial `0xEDB88320`), built at
//! compile time; no dependencies, no unsafe.

/// Reflected CRC-32 lookup table, one entry per byte value.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 state, for checksumming data that arrives in pieces
/// (e.g. a WAL record assembled field by field).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state (equivalent to a CRC over the empty string).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finishes and returns the checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"checkpoint payload bytes".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at byte {i} bit {bit}");
            }
        }
    }
}
